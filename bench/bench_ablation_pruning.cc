// Ablation: the Theorem-1 bi-directional pruning rule
// (dist + cost + l_opposite < minCost in the E-operator). The paper claims
// it shrinks the search space once a first s-t path is known; this bench
// removes only that predicate and measures the cost.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Ablation: Theorem-1 pruning",
         "BSDJ and BSEG(20) with the pruning predicate removed, Power",
         "pruning reduces visited rows and expansions, never changes "
         "distances (DESIGN.md ablation list)");
  BenchEnv env = GetEnv();
  std::printf("%10s %8s | %10s %8s | %10s %8s %9s\n", "algo", "nodes",
              "pruned_s", "vst", "ablated_s", "vst", "vst_ratio");
  const int64_t bases[] = {10000, 20000};
  for (size_t i = 0; i < 2; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 1400 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 10400 + i);
    SharedGraph sg = SharedGraph::Make(list);
    for (Algorithm algo : {Algorithm::kBSDJ, Algorithm::kBSEG}) {
      AvgResult on, off;
      {
        auto finder = sg.Finder(algo, 20);
        on = RunQueries(finder.get(), pairs);
      }
      {
        SegTable* seg = nullptr;
        if (algo == Algorithm::kBSEG) seg = sg.segtables.back().get();
        PathFinderOptions popts;
        popts.algorithm = algo;
        popts.disable_pruning = true;
        std::unique_ptr<PathFinder> finder;
        Check(PathFinder::Create(sg.graph.get(), popts, &finder, seg),
              "ablated finder");
        off = RunQueries(finder.get(), pairs);
      }
      std::printf("%10s %8lld | %10.4f %8.0f | %10.4f %8.0f %8.2fx\n",
                  AlgorithmName(algo), static_cast<long long>(n), on.time_s,
                  on.visited, off.time_s, off.visited,
                  on.visited > 0 ? off.visited / on.visited : 0.0);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
