#include "bench_common.h"

#include <cstdlib>
#include <map>
#include <utility>

namespace relgraph {
namespace bench {

// ---------------------------------------------------------- JSON sink state

namespace {

struct JsonRecordData {
  std::string experiment;
  std::string label;
  std::map<std::string, double> context;
  AvgResult avg;
};

struct JsonSink {
  bool enabled = false;
  std::string path;
  std::string experiment;  // last Banner()
  std::map<std::string, double> context;
  std::vector<JsonRecordData> records;
};

JsonSink& Sink() {
  static JsonSink sink;
  return sink;
}

/// Doubles print with enough digits to round-trip; integers stay integral.
void AppendNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
  }
  out->push_back('"');
}

void FlushJson() {
  JsonSink& sink = Sink();
  if (!sink.enabled) return;
  std::string out = "[\n";
  for (size_t i = 0; i < sink.records.size(); i++) {
    const JsonRecordData& r = sink.records[i];
    out += "  {\"experiment\": ";
    AppendQuoted(&out, r.experiment);
    out += ", \"label\": ";
    AppendQuoted(&out, r.label);
    out += ", \"context\": {";
    bool first = true;
    for (const auto& [k, v] : r.context) {
      if (!first) out += ", ";
      first = false;
      AppendQuoted(&out, k);
      out += ": ";
      AppendNumber(&out, v);
    }
    out += "}, \"metrics\": {";
    const AvgResult& a = r.avg;
    const std::pair<const char*, double> metrics[] = {
        {"time_s", a.time_s},         {"expansions", a.expansions},
        {"visited", a.visited},       {"statements", a.statements},
        {"pe_s", a.pe_s},             {"sc_s", a.sc_s},
        {"fpr_s", a.fpr_s},           {"f_s", a.f_s},
        {"e_s", a.e_s},               {"m_s", a.m_s},
        {"buffer_misses", a.buffer_misses},
        {"retries", a.retries},       {"failures", a.failures},
        {"breaker_opens", a.breaker_opens},
        {"failovers", a.failovers},   {"hedges", a.hedges},
        {"sheds", a.sheds},
        {"found", static_cast<double>(a.found)},
        {"total", static_cast<double>(a.total)},
    };
    first = true;
    for (const auto& [k, v] : metrics) {
      if (!first) out += ", ";
      first = false;
      AppendQuoted(&out, k);
      out += ": ";
      AppendNumber(&out, v);
    }
    out += "}}";
    if (i + 1 < sink.records.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  if (std::FILE* f = std::fopen(sink.path.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "RELGRAPH_JSON: cannot write %s\n",
                 sink.path.c_str());
  }
}

void EnsureJsonInit() {
  static bool initialized = false;
  if (initialized) return;
  initialized = true;
  if (const char* path = std::getenv("RELGRAPH_JSON")) {
    if (path[0] != '\0') {
      Sink().enabled = true;
      Sink().path = path;
      std::atexit(FlushJson);
    }
  }
}

}  // namespace

bool JsonEnabled() {
  EnsureJsonInit();
  return Sink().enabled;
}

void JsonContext(const std::string& key, double value) {
  if (!JsonEnabled()) return;
  Sink().context[key] = value;
}

void JsonRecord(const std::string& label, const AvgResult& avg) {
  if (!JsonEnabled()) return;
  JsonSink& sink = Sink();
  sink.records.push_back({sink.experiment, label, sink.context, avg});
}

BenchEnv GetEnv() {
  BenchEnv env;
  if (const char* q = std::getenv("RELGRAPH_QUERIES")) {
    env.queries = std::max(1, std::atoi(q));
  }
  if (const char* s = std::getenv("RELGRAPH_SCALE")) {
    env.scale = std::max(0.01, std::atof(s));
  }
  return env;
}

int64_t Scaled(int64_t base_nodes) {
  return static_cast<int64_t>(base_nodes * GetEnv().scale);
}

std::vector<std::pair<node_id_t, node_id_t>> MakeQueryPairs(int64_t num_nodes,
                                                            int n,
                                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<node_id_t, node_id_t>> pairs;
  pairs.reserve(n);
  while (static_cast<int>(pairs.size()) < n) {
    node_id_t s = rng.NextInt(0, num_nodes - 1);
    node_id_t t = rng.NextInt(0, num_nodes - 1);
    if (s != t) pairs.emplace_back(s, t);
  }
  return pairs;
}

AvgResult RunQueries(
    PathFinder* finder,
    const std::vector<std::pair<node_id_t, node_id_t>>& pairs) {
  AvgResult avg;
  for (auto [s, t] : pairs) {
    PathQueryResult result;
    Check(finder->Find(s, t, &result), "query");
    const QueryStats& qs = result.stats;
    avg.time_s += qs.total_us / 1e6;
    avg.expansions += static_cast<double>(qs.expansions);
    avg.visited += static_cast<double>(qs.visited_rows);
    avg.statements += static_cast<double>(qs.statements);
    avg.pe_s += qs.path_expansion_us / 1e6;
    avg.sc_s += qs.stat_collection_us / 1e6;
    avg.fpr_s += qs.path_recovery_us / 1e6;
    avg.f_s += qs.f_operator_us / 1e6;
    avg.e_s += qs.e_operator_us / 1e6;
    avg.m_s += qs.m_operator_us / 1e6;
    avg.buffer_misses += static_cast<double>(qs.buffer_misses);
    if (result.found) avg.found++;
    avg.total++;
  }
  int n = std::max(avg.total, 1);
  avg.time_s /= n;
  avg.expansions /= n;
  avg.visited /= n;
  avg.statements /= n;
  avg.pe_s /= n;
  avg.sc_s /= n;
  avg.fpr_s /= n;
  avg.f_s /= n;
  avg.e_s /= n;
  avg.m_s /= n;
  avg.buffer_misses /= n;
  JsonRecord(std::string(AlgorithmName(finder->options().algorithm)) + "/" +
                 SqlModeName(finder->options().sql_mode),
             avg);
  return avg;
}

Workbench Workbench::Make(const EdgeList& list, Algorithm algorithm,
                          weight_t lthd, SqlMode sql_mode,
                          IndexStrategy strategy, DatabaseOptions dopts) {
  Workbench wb;
  wb.db = std::make_unique<Database>(dopts);
  GraphStoreOptions gopts;
  gopts.strategy = strategy;
  Check(GraphStore::Create(wb.db.get(), list, gopts, &wb.graph),
        "graph store");
  if (algorithm == Algorithm::kBSEG) {
    SegTableOptions sopts;
    sopts.lthd = lthd;
    sopts.sql_mode = sql_mode;
    sopts.strategy = strategy;
    Check(SegTable::Build(wb.db.get(), wb.graph.get(), sopts, &wb.segtable,
                          &wb.seg_stats),
          "segtable build");
  }
  PathFinderOptions popts;
  popts.algorithm = algorithm;
  popts.sql_mode = sql_mode;
  Check(PathFinder::Create(wb.graph.get(), popts, &wb.finder,
                           wb.segtable.get()),
        "path finder");
  return wb;
}

SharedGraph SharedGraph::Make(const EdgeList& list, IndexStrategy strategy,
                              DatabaseOptions dopts) {
  SharedGraph sg;
  sg.db = std::make_unique<Database>(dopts);
  GraphStoreOptions gopts;
  gopts.strategy = strategy;
  Check(GraphStore::Create(sg.db.get(), list, gopts, &sg.graph),
        "graph store");
  return sg;
}

std::unique_ptr<PathFinder> SharedGraph::Finder(Algorithm algorithm,
                                                weight_t lthd,
                                                SqlMode sql_mode,
                                                SegTableBuildStats* stats) {
  SegTable* seg = nullptr;
  if (algorithm == Algorithm::kBSEG) {
    SegTableOptions sopts;
    sopts.lthd = lthd;
    sopts.sql_mode = sql_mode;
    sopts.strategy = graph->strategy();
    sopts.prefix = "seg" + std::to_string(next_seg++) + "_";
    std::unique_ptr<SegTable> built;
    Check(SegTable::Build(db.get(), graph.get(), sopts, &built, stats),
          "segtable build");
    seg = built.get();
    segtables.push_back(std::move(built));
  }
  PathFinderOptions popts;
  popts.algorithm = algorithm;
  popts.sql_mode = sql_mode;
  std::unique_ptr<PathFinder> finder;
  Check(PathFinder::Create(graph.get(), popts, &finder, seg), "path finder");
  return finder;
}

void Banner(const char* experiment, const char* caption,
            const char* paper_shape) {
  if (JsonEnabled()) Sink().experiment = experiment;
  std::printf("##\n## %s — %s\n", experiment, caption);
  std::printf("## paper shape: %s\n", paper_shape);
  BenchEnv env = GetEnv();
  std::printf("## queries/point=%d scale=%.2f (see EXPERIMENTS.md)\n##\n",
              env.queries, env.scale);
}

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace relgraph
