#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/path_finder.h"
#include "src/core/segtable.h"
#include "src/graph/generators.h"
#include "src/graph/memgraph.h"

namespace relgraph {
namespace bench {

/// Harness knobs, read from the environment:
///   RELGRAPH_QUERIES — random s-t queries per data point (default 5;
///                      the paper used 100)
///   RELGRAPH_SCALE   — multiplier on every graph size (default 1.0; the
///                      defaults are scaled-down versions of the paper's
///                      graphs so the whole suite finishes in minutes —
///                      see EXPERIMENTS.md for the per-figure ratios)
struct BenchEnv {
  int queries = 5;
  double scale = 1.0;
};

BenchEnv GetEnv();

/// Applies the scale knob to a node count.
int64_t Scaled(int64_t base_nodes);

/// Random query endpoints, the paper's workload methodology (§5.2).
std::vector<std::pair<node_id_t, node_id_t>> MakeQueryPairs(int64_t num_nodes,
                                                            int n,
                                                            uint64_t seed);

/// Averaged per-query metrics for one (algorithm, graph) cell. The
/// resilience block (totals, not averages) is zero for single-node benches
/// and populated by the distributed/networked ones, so CI can gate on
/// "this series must see zero sheds / exactly these failovers".
struct AvgResult {
  double time_s = 0;
  double expansions = 0;
  double visited = 0;
  double statements = 0;
  double pe_s = 0, sc_s = 0, fpr_s = 0;
  double f_s = 0, e_s = 0, m_s = 0;
  double buffer_misses = 0;
  double retries = 0, failures = 0, breaker_opens = 0;
  double failovers = 0, hedges = 0, sheds = 0;
  int found = 0;
  int total = 0;
};

/// Runs `pairs` through `finder` and averages the stats. When RELGRAPH_JSON
/// is set, also appends one machine-readable record (see JsonRecord below).
AvgResult RunQueries(PathFinder* finder,
                     const std::vector<std::pair<node_id_t, node_id_t>>& pairs);

/// ----- machine-readable output ---------------------------------------------
/// RELGRAPH_JSON=path enables a JSON sink: every RunQueries() call (and any
/// explicit JsonRecord() call) appends one record, and the whole list is
/// written to `path` as a JSON array when the process exits. CI uploads these
/// files to track figure reproductions over time.

/// True when RELGRAPH_JSON is set.
bool JsonEnabled();

/// Sticky context attached to every subsequent record until overwritten
/// (benches call e.g. JsonContext("nodes", n) at the top of each data-point
/// loop). Setting an existing key replaces its value.
void JsonContext(const std::string& key, double value);

/// Appends one record: the current experiment (from Banner), `label`
/// (typically algorithm/sql-mode), the sticky context, and the averaged
/// metrics. No-op unless RELGRAPH_JSON is set.
void JsonRecord(const std::string& label, const AvgResult& avg);

/// Convenience: build a GraphStore (+ optional SegTable) in a fresh
/// Database and answer queries with one algorithm.
struct Workbench {
  std::unique_ptr<Database> db;
  std::unique_ptr<GraphStore> graph;
  std::unique_ptr<SegTable> segtable;
  std::unique_ptr<PathFinder> finder;
  SegTableBuildStats seg_stats;

  static Workbench Make(const EdgeList& list, Algorithm algorithm,
                        weight_t lthd = 0,
                        SqlMode sql_mode = SqlMode::kNsql,
                        IndexStrategy strategy = IndexStrategy::kCluIndex,
                        DatabaseOptions dopts = DatabaseOptions{});
};

/// One database + graph shared by several finders — loading a large graph
/// into the engine dominates bench setup, so benches that compare
/// algorithms on the same graph reuse it.
struct SharedGraph {
  std::unique_ptr<Database> db;
  std::unique_ptr<GraphStore> graph;
  std::vector<std::unique_ptr<SegTable>> segtables;  // keep-alive
  int next_seg = 0;

  static SharedGraph Make(const EdgeList& list,
                          IndexStrategy strategy = IndexStrategy::kCluIndex,
                          DatabaseOptions dopts = DatabaseOptions{});

  /// Builds a finder on this graph; builds a SegTable first for kBSEG.
  std::unique_ptr<PathFinder> Finder(Algorithm algorithm, weight_t lthd = 0,
                                     SqlMode sql_mode = SqlMode::kNsql,
                                     SegTableBuildStats* stats = nullptr);
};

/// Prints the bench banner: experiment id, what the paper reported, and
/// what to look for in the reproduced shape.
void Banner(const char* experiment, const char* caption,
            const char* paper_shape);

/// Dies with a message on error Status (benches have no recovery path).
void Check(const Status& st, const char* what);

}  // namespace bench
}  // namespace relgraph
