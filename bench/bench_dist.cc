// Extension bench (paper §7 future work): distributed BSDJ over a
// hash-partitioned edge relation, now with *real* concurrency. Two series:
//
//  - per-strategy shard sweep: the serial coordinator (measured serial
//    clock + simulated-parallel clock) against the thread-pool coordinator
//    (measured parallel wall clock) on the same workload — the quantities
//    that decide whether partitioning the tables pays off, with the
//    speedup no longer hypothetical;
//  - multi-client throughput: N concurrent query sessions over one shared
//    shard pool (queries/sec vs client count), the "many clients, one
//    cluster" shape of the scaling story.
//
// JSON records (RELGRAPH_JSON): label dist/<strategy>/<mode>, context
// shards (+ clients for the multi-client series). `visited` carries
// rows_shipped and `statements` the shard+coordinator statement total —
// both deterministic, so the diff_bench gate flags any drift.
#include <thread>

#include "bench_common.h"
#include "src/common/timer.h"
#include "src/dist/dist_path_finder.h"
#include "src/dist/sharded_graph.h"

namespace relgraph {
namespace bench {
namespace {

constexpr int kPoolThreads = 4;

struct DistAvg {
  double wall_s = 0;       // measured per-query wall clock of this mode
  double other_clock_s = 0;  // serial mode: simulated parallel; threaded
                             // mode: backed-out serial estimate
  double rows_shipped = 0;
  double statements = 0;  // shard + coordinator statements
  int found = 0;
  int total = 0;
};

DistAvg RunPairs(DistPathFinder* finder,
                 const std::vector<std::pair<node_id_t, node_id_t>>& pairs,
                 bool threaded) {
  DistAvg avg;
  for (const auto& [s, t] : pairs) {
    DistPathResult r;
    Check(finder->Find(s, t, &r), "DistPathFinder::Find");
    const int64_t wall = threaded ? r.stats.parallel_us : r.stats.serial_us;
    const int64_t other = threaded ? r.stats.serial_us : r.stats.parallel_us;
    avg.wall_s += static_cast<double>(wall) / 1e6;
    avg.other_clock_s += static_cast<double>(other) / 1e6;
    avg.rows_shipped += static_cast<double>(r.stats.rows_shipped);
    avg.statements += static_cast<double>(r.stats.shard_statements +
                                          r.stats.coordinator_statements);
    if (r.found) avg.found++;
    avg.total++;
  }
  int q = std::max(avg.total, 1);
  avg.wall_s /= q;
  avg.other_clock_s /= q;
  avg.rows_shipped /= q;
  avg.statements /= q;
  return avg;
}

void EmitJson(const std::string& label, const DistAvg& avg) {
  AvgResult a;
  a.time_s = avg.wall_s;
  a.visited = avg.rows_shipped;  // deterministic: rows over the "network"
  a.statements = avg.statements;
  a.found = avg.found;
  a.total = avg.total;
  JsonRecord(label, a);
}

void RunStrategy(IndexStrategy strategy, const EdgeList& list,
                 const std::vector<std::pair<node_id_t, node_id_t>>& pairs) {
  std::printf("strategy=%s (threaded pool: %d workers)\n",
              IndexStrategyName(strategy), kPoolThreads);
  std::printf("%8s %12s %14s %14s %10s %14s %14s\n", "shards", "serial_s",
              "sim_par_s", "threaded_s", "speedup", "rows_shipped", "stmts");
  for (int shards : {1, 2, 4, 8}) {
    ShardedGraphOptions opts;
    opts.num_shards = shards;
    opts.strategy = strategy;
    std::unique_ptr<ShardedGraphStore> store;
    Check(ShardedGraphStore::Create(list, opts, &store),
          "ShardedGraphStore::Create");
    JsonContext("shards", shards);

    // Serial coordinator: measured serial clock + simulated parallel.
    std::unique_ptr<DistPathFinder> serial;
    Check(DistPathFinder::Create(store.get(), &serial), "serial finder");
    DistAvg s = RunPairs(serial.get(), pairs, /*threaded=*/false);
    EmitJson(std::string("dist/") + IndexStrategyName(strategy) + "/serial",
             s);

    // Thread-pool coordinator on the same store: measured parallel wall.
    DistOptions dopts;
    dopts.num_threads = kPoolThreads;
    std::unique_ptr<DistPathFinder> threaded;
    Check(DistPathFinder::Create(store.get(), &threaded, dopts),
          "threaded finder");
    DistAvg t = RunPairs(threaded.get(), pairs, /*threaded=*/true);
    EmitJson(std::string("dist/") + IndexStrategyName(strategy) +
                 "/threaded", t);

    std::printf("%8d %12.4f %14.4f %14.4f %10.2f %14.0f %14.0f\n", shards,
                s.wall_s, s.other_clock_s, t.wall_s,
                t.wall_s > 0 ? s.wall_s / t.wall_s : 0.0, s.rows_shipped,
                s.statements);
  }
}

/// Multi-client throughput: every client drives its own session (own
/// TVisited + FEM state) over the same coordinator; shard connection pools
/// are sized to the client count so sessions contend on shards, not on a
/// starved pool.
void RunMultiClient(const EdgeList& list,
                    const std::vector<std::pair<node_id_t, node_id_t>>& pairs,
                    int shards) {
  std::printf("\nmulti-client throughput (shards=%d, pool=%d workers, "
              "CluIndex)\n", shards, kPoolThreads);
  std::printf("%8s %12s %14s %14s\n", "clients", "wall_s", "queries/s",
              "avg_query_s");
  ShardedGraphOptions opts;
  opts.num_shards = shards;
  opts.strategy = IndexStrategy::kCluIndex;
  std::unique_ptr<ShardedGraphStore> store;
  Check(ShardedGraphStore::Create(list, opts, &store),
        "ShardedGraphStore::Create");
  JsonContext("shards", shards);

  for (int clients : {1, 2, 4, 8}) {
    DistOptions dopts;
    dopts.num_threads = kPoolThreads;
    dopts.connections_per_shard = clients;
    std::unique_ptr<DistCoordinator> coord;
    Check(DistCoordinator::Create(store.get(), dopts, &coord),
          "DistCoordinator::Create");
    std::vector<std::unique_ptr<DistPathFinder>> sessions(clients);
    for (int c = 0; c < clients; c++) {
      Check(coord->NewSession(&sessions[c]), "NewSession");
    }

    Timer wall;
    std::vector<std::thread> threads;
    std::vector<DistAvg> avgs(clients);
    for (int c = 0; c < clients; c++) {
      threads.emplace_back([&, c] {
        avgs[c] = RunPairs(sessions[c].get(), pairs, /*threaded=*/true);
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s = wall.ElapsedSeconds();
    const int total_queries = clients * static_cast<int>(pairs.size());

    DistAvg combined;
    double avg_query_s = 0;  // mean per-query latency as each client saw it
    for (const DistAvg& a : avgs) {
      combined.rows_shipped += a.rows_shipped;
      combined.statements += a.statements;
      combined.found += a.found;
      combined.total += a.total;
      avg_query_s += a.wall_s;
    }
    combined.rows_shipped /= clients;  // per-query means stay comparable
    combined.statements /= clients;
    avg_query_s /= clients;
    combined.wall_s = wall_s / std::max(total_queries, 1);
    JsonContext("clients", clients);
    EmitJson("dist/multiclient", combined);

    std::printf("%8d %12.4f %14.1f %14.4f\n", clients, wall_s,
                wall_s > 0 ? total_queries / wall_s : 0.0, avg_query_s);
  }
}

void Run() {
  Banner("Distributed BSDJ (extension, paper §7)",
         "serial vs thread-pool coordinator, and concurrent query sessions",
         "NoIndex shards: per-shard scans shrink by K and now run "
         "concurrently, so the measured threaded clock drops with shards "
         "where the old simulation could only predict it. CluIndex shards: "
         "probes are already cheap and the coordinator dominates — "
         "partitioning helps exactly when per-shard work scales down. "
         "Multi-client: throughput grows with clients until the shard "
         "pools saturate");
  BenchEnv env = GetEnv();
  int64_t n = Scaled(20000);
  EdgeList list = GenerateBarabasiAlbert(n, 3, WeightRange{1, 100}, 777);
  auto pairs = MakeQueryPairs(n, env.queries, 9777);

  RunStrategy(IndexStrategy::kNoIndex, list, pairs);
  std::printf("\n");
  RunStrategy(IndexStrategy::kCluIndex, list, pairs);
  RunMultiClient(list, pairs, /*shards=*/4);
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
