// Extension bench (paper §7 future work): distributed BSDJ over a
// hash-partitioned edge relation. Reports the serial cost this simulation
// pays, the simulated-parallel wall clock (each round charged its slowest
// shard), and the rows crossing the "network" — the quantities that decide
// whether partitioning the tables pays off.
#include "bench_common.h"
#include "src/dist/dist_path_finder.h"
#include "src/dist/sharded_graph.h"

namespace relgraph {
namespace bench {
namespace {

void RunStrategy(IndexStrategy strategy, const EdgeList& list,
                 const std::vector<std::pair<node_id_t, node_id_t>>& pairs) {
  std::printf("strategy=%s\n", IndexStrategyName(strategy));
  std::printf("%8s %12s %14s %10s %14s %14s\n", "shards", "serial_s",
              "parallel_s", "speedup", "rows_shipped", "shard_stmts");
  double base_parallel = 0;
  for (int shards : {1, 2, 4, 8}) {
    ShardedGraphOptions opts;
    opts.num_shards = shards;
    opts.strategy = strategy;
    std::unique_ptr<ShardedGraphStore> store;
    Check(ShardedGraphStore::Create(list, opts, &store),
          "ShardedGraphStore::Create");
    std::unique_ptr<DistPathFinder> finder;
    Check(DistPathFinder::Create(store.get(), &finder),
          "DistPathFinder::Create");

    double serial = 0, parallel = 0, shipped = 0, stmts = 0;
    for (const auto& [s, t] : pairs) {
      DistPathResult r;
      Check(finder->Find(s, t, &r), "DistPathFinder::Find");
      serial += static_cast<double>(r.stats.serial_us) / 1e6;
      parallel += static_cast<double>(r.stats.parallel_us) / 1e6;
      shipped += static_cast<double>(r.stats.rows_shipped);
      stmts += static_cast<double>(r.stats.shard_statements);
    }
    int q = static_cast<int>(pairs.size());
    serial /= q;
    parallel /= q;
    shipped /= q;
    stmts /= q;
    if (shards == 1) base_parallel = parallel;
    std::printf("%8d %12.4f %14.4f %10.2f %14.0f %14.0f\n", shards, serial,
                parallel, parallel > 0 ? base_parallel / parallel : 0.0,
                shipped, stmts);
  }
}

void Run() {
  Banner("Distributed BSDJ (extension, paper §7)",
         "query time vs shard count, Power graph, two shard layouts",
         "NoIndex shards: per-shard scans shrink by K, parallel time drops "
         "with shards. CluIndex shards: probes are already cheap, the "
         "coordinator dominates and sharding does not pay — partitioning "
         "helps exactly when per-shard work scales down");
  BenchEnv env = GetEnv();
  int64_t n = Scaled(20000);
  EdgeList list = GenerateBarabasiAlbert(n, 3, WeightRange{1, 100}, 777);
  auto pairs = MakeQueryPairs(n, env.queries, 9777);

  RunStrategy(IndexStrategy::kNoIndex, list, pairs);
  std::printf("\n");
  RunStrategy(IndexStrategy::kCluIndex, list, pairs);
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
