// Networked-transport bench: the same distributed BSDJ workload through
// in-process shard services vs loopback TCP ShardServers — what one hop of
// real wire (framing, syscalls, a round trip per contacted shard per
// round) costs on top of the function call it replaces.
//
// JSON records (RELGRAPH_JSON): label dist_net/<transport>, context
// shards. The deterministic metrics (`visited` = rows_shipped,
// `statements`, found/total) are asserted identical across transports
// before emitting — the bench itself enforces the transport-invisibility
// invariant — so the diff_bench gate pins them exactly and any drift in
// either transport fails CI.
//
// Two resilience series ride along: dist_net/replicated (2 replicas per
// shard; a healthy fleet must route without a single failover/hedge/shed —
// those metrics are pinned at 0 by the gate) and dist_net/overload (4
// concurrent sessions over 1-connection pools; the admission queue must
// absorb the contention with zero sheds and bit-identical results).
//
// A restart series closes the set: dist_net/restart_ingest (cold start by
// re-ingesting the edge list) vs dist_net/restart_snapshot (verify + load
// the checksummed shard snapshots a previous run persisted). The snapshot
// page count is deterministic, so the gate pins it; the wall-clock ratio
// is the operational payoff of durable shards.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "bench_common.h"
#include "src/dist/dist_path_finder.h"
#include "src/dist/shard_snapshot.h"
#include "src/dist/sharded_graph.h"
#include "src/net/shard_server.h"

namespace relgraph {
namespace bench {
namespace {

struct NetAvg {
  double wall_s = 0;  // measured serial clock per query
  double rows_shipped = 0;
  double statements = 0;
  int found = 0;
  int total = 0;
  ResilienceCounters resilience;  // totals over the whole series
};

NetAvg RunPairs(DistPathFinder* finder,
                const std::vector<std::pair<node_id_t, node_id_t>>& pairs) {
  NetAvg avg;
  for (const auto& [s, t] : pairs) {
    DistPathResult r;
    Check(finder->Find(s, t, &r), "DistPathFinder::Find");
    avg.wall_s += static_cast<double>(r.stats.serial_us) / 1e6;
    avg.rows_shipped += static_cast<double>(r.stats.rows_shipped);
    avg.statements += static_cast<double>(r.stats.shard_statements +
                                          r.stats.coordinator_statements);
    if (r.found) avg.found++;
    avg.total++;
  }
  int q = std::max(avg.total, 1);
  avg.wall_s /= q;
  avg.rows_shipped /= q;
  avg.statements /= q;
  return avg;
}

void EmitJson(const std::string& label, const NetAvg& avg) {
  AvgResult a;
  a.time_s = avg.wall_s;
  a.visited = avg.rows_shipped;
  a.statements = avg.statements;
  a.found = avg.found;
  a.total = avg.total;
  const ResilienceCounters& rc = avg.resilience;
  a.retries = static_cast<double>(rc.retries);
  a.failures = static_cast<double>(rc.failures);
  a.breaker_opens = static_cast<double>(rc.breaker_opens);
  a.failovers = static_cast<double>(rc.failovers);
  a.hedges = static_cast<double>(rc.hedges);
  a.sheds = static_cast<double>(rc.sheds);
  JsonRecord(label, a);
}

void Run() {
  Banner("Networked shard transport (loopback)",
         "in-process shard services vs TCP ShardServers, serial coordinator",
         "The loopback column pays framing + syscalls + one round trip per "
         "contacted shard per round; rows_shipped and statements must be "
         "bit-identical across transports (asserted) — only the clock may "
         "move. The gap bounds the per-round wire tax a real deployment "
         "starts from before network latency is added");
  BenchEnv env = GetEnv();
  int64_t n = Scaled(8000);
  EdgeList list = GenerateBarabasiAlbert(n, 3, WeightRange{1, 100}, 4242);
  auto pairs = MakeQueryPairs(n, env.queries, 24242);

  std::printf("%8s %12s %14s %10s %14s %14s\n", "shards", "local_s",
              "loopback_s", "wire_tax", "rows_shipped", "stmts");
  for (int shards : {2, 4}) {
    ShardedGraphOptions sopts;
    sopts.num_shards = shards;
    std::unique_ptr<ShardedGraphStore> store;
    Check(ShardedGraphStore::Create(list, sopts, &store),
          "ShardedGraphStore::Create");
    JsonContext("shards", shards);

    // All-local baseline.
    std::unique_ptr<DistPathFinder> local;
    Check(DistPathFinder::Create(store.get(), &local), "local finder");
    NetAvg l = RunPairs(local.get(), pairs);
    EmitJson("dist_net/local", l);

    // Every shard behind a loopback ShardServer.
    std::vector<std::unique_ptr<net::ShardServer>> servers;
    DistOptions dopts;
    for (int s = 0; s < shards; s++) {
      std::unique_ptr<net::ShardServer> server;
      Check(net::ShardServer::Start(store.get(), s, net::ShardServerOptions{},
                                    &server),
            "ShardServer::Start");
      dopts.shard_endpoints.push_back("127.0.0.1:" +
                                      std::to_string(server->port()));
      servers.push_back(std::move(server));
    }
    std::unique_ptr<DistPathFinder> remote;
    Check(DistPathFinder::Create(store.get(), &remote, dopts),
          "loopback finder");
    NetAvg r = RunPairs(remote.get(), pairs);
    r.resilience = remote->coordinator()->Resilience();
    EmitJson("dist_net/loopback", r);

    // The invariant the whole transport hangs on.
    if (l.rows_shipped != r.rows_shipped || l.statements != r.statements ||
        l.found != r.found) {
      std::fprintf(stderr,
                   "FATAL: loopback transport drifted from local results "
                   "(shards=%d)\n", shards);
      std::exit(1);
    }

    // Two replicas per shard: a healthy replica set must be
    // indistinguishable from one replica — same results, zero failovers,
    // zero hedges, zero sheds (the gate pins those at 0).
    std::vector<std::unique_ptr<net::ShardServer>> replicas;
    DistOptions ropts;
    for (int s = 0; s < shards; s++) {
      std::string joined;
      for (int rep = 0; rep < 2; rep++) {
        std::unique_ptr<net::ShardServer> server;
        Check(net::ShardServer::Start(store.get(), s,
                                      net::ShardServerOptions{}, &server),
              "replica ShardServer::Start");
        if (!joined.empty()) joined += '|';
        joined += "127.0.0.1:" + std::to_string(server->port());
        replicas.push_back(std::move(server));
      }
      ropts.shard_endpoints.push_back(std::move(joined));
    }
    std::unique_ptr<DistPathFinder> replicated;
    Check(DistPathFinder::Create(store.get(), &replicated, ropts),
          "replicated finder");
    NetAvg rr = RunPairs(replicated.get(), pairs);
    rr.resilience = replicated->coordinator()->Resilience();
    EmitJson("dist_net/replicated", rr);
    if (rr.rows_shipped != l.rows_shipped || rr.statements != l.statements ||
        rr.found != l.found || rr.resilience.failovers != 0 ||
        rr.resilience.hedges != 0 || rr.resilience.sheds != 0) {
      std::fprintf(stderr,
                   "FATAL: healthy replicated fleet drifted from local "
                   "results (shards=%d)\n", shards);
      std::exit(1);
    }

    // Oversubscription: 4 concurrent sessions over 1-connection local
    // pools. The admission queue must absorb the contention — every query
    // completes with the oracle's exact counters and zero sheds.
    constexpr int kSessions = 4;
    DistOptions oopts;
    oopts.connections_per_shard = 1;
    std::unique_ptr<DistCoordinator> ocoord;
    Check(DistCoordinator::Create(store.get(), oopts, &ocoord),
          "overload coordinator");
    std::vector<std::unique_ptr<DistPathFinder>> sessions(kSessions);
    for (auto& s : sessions) Check(ocoord->NewSession(&s), "overload session");
    std::vector<NetAvg> per_session(kSessions);
    {
      std::vector<std::thread> threads;
      for (int i = 0; i < kSessions; i++) {
        threads.emplace_back([&, i] {
          per_session[i] = RunPairs(sessions[i].get(), pairs);
        });
      }
      for (auto& th : threads) th.join();
    }
    // Every session ran the same pairs, so the deterministic counters must
    // agree session-to-session AND with the uncontended local baseline.
    NetAvg o = per_session[0];
    o.wall_s = 0;
    for (const NetAvg& s : per_session) {
      o.wall_s += s.wall_s / kSessions;
      if (s.rows_shipped != l.rows_shipped || s.statements != l.statements ||
          s.found != l.found) {
        std::fprintf(stderr,
                     "FATAL: oversubscribed session drifted from local "
                     "results (shards=%d)\n", shards);
        std::exit(1);
      }
    }
    o.resilience = ocoord->Resilience();
    EmitJson("dist_net/overload", o);
    if (o.resilience.sheds != 0) {
      std::fprintf(stderr,
                   "FATAL: admission queue shed load under a workload it "
                   "must absorb (shards=%d)\n", shards);
      std::exit(1);
    }

    std::printf("%8d %12.4f %14.4f %9.2fx %14.0f %14.0f\n", shards, l.wall_s,
                r.wall_s, l.wall_s > 0 ? r.wall_s / l.wall_s : 0.0,
                l.rows_shipped, l.statements);

    // Restart paths: re-ingesting the edge list from scratch vs verifying
    // and loading the checksummed snapshots this fleet would have left on
    // disk. Page counts are deterministic (pinned by the gate); the clock
    // ratio is what a durable shard buys at restart time.
    namespace fs = std::filesystem;
    using Clock = std::chrono::steady_clock;
    auto seconds = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    fs::path snapdir = fs::temp_directory_path() /
                       ("relgraph_bench_snap_" + std::to_string(::getpid()));
    fs::create_directories(snapdir);

    auto t0 = Clock::now();
    {
      std::unique_ptr<ShardedGraphStore> reingested;
      Check(ShardedGraphStore::Create(list, sopts, &reingested),
            "re-ingest ShardedGraphStore::Create");
    }
    auto t1 = Clock::now();
    NetAvg ingest;
    ingest.wall_s = seconds(t0, t1);
    ingest.rows_shipped = static_cast<double>(list.edges.size());
    ingest.found = shards;
    ingest.total = shards;
    EmitJson("dist_net/restart_ingest", ingest);

    std::vector<std::string> snaps;
    for (int s = 0; s < shards; s++) {
      snaps.push_back((snapdir / ("shard" + std::to_string(s) + ".rgsnap"))
                          .string());
      Check(WriteShardSnapshot(*store, s, snaps.back()),
            "WriteShardSnapshot");
    }
    int64_t total_pages = 0;
    auto t2 = Clock::now();
    for (int s = 0; s < shards; s++) {
      int64_t pages = 0;
      Check(VerifySnapshotPages(snaps[s], &pages), "VerifySnapshotPages");
      total_pages += pages;
      std::unique_ptr<ShardedGraphStore> loaded;
      ShardSnapshotInfo info;
      Check(LoadShardSnapshot(snaps[s], DatabaseOptions{},
                              /*verify_structure=*/true, &loaded, &info),
            "LoadShardSnapshot");
      if (info.shard != s || info.num_shards != shards ||
          info.num_nodes != store->num_nodes() ||
          info.num_edges != store->num_edges()) {
        std::fprintf(stderr,
                     "FATAL: snapshot manifest drifted from the store it "
                     "was written from (shards=%d)\n", shards);
        std::exit(1);
      }
    }
    auto t3 = Clock::now();
    NetAvg snap;
    snap.wall_s = seconds(t2, t3);
    snap.rows_shipped = static_cast<double>(total_pages);
    snap.found = shards;
    snap.total = shards;
    EmitJson("dist_net/restart_snapshot", snap);

    double scrub_mb = static_cast<double>(total_pages) * kPageSize / 1e6;
    std::printf("%8s %12.4f %14.4f %9.2fx %14lld %10.1f MB/s\n", "restart",
                ingest.wall_s, snap.wall_s,
                snap.wall_s > 0 ? ingest.wall_s / snap.wall_s : 0.0,
                static_cast<long long>(total_pages),
                snap.wall_s > 0 ? scrub_mb / snap.wall_s : 0.0);
    std::error_code ec;
    fs::remove_all(snapdir, ec);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
