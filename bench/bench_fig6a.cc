// Figure 6(a): query time vs graph scale for BDJ and BSDJ on Power graphs.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 6(a)", "query time vs |V|, Power graphs, BDJ vs BSDJ",
         "both grow roughly linearly; BSDJ ~1/3 the time of BDJ");
  BenchEnv env = GetEnv();
  std::printf("%10s %10s %10s %10s\n", "nodes", "BDJ_s", "BSDJ_s", "ratio");
  const int64_t bases[] = {2000, 4000, 6000, 8000, 10000};
  for (size_t i = 0; i < 5; i++) {
    int64_t n = Scaled(bases[i]);
    JsonContext("nodes", static_cast<double>(n));
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 100 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9100 + i);
    SharedGraph sg = SharedGraph::Make(list);
    auto bdj = sg.Finder(Algorithm::kBDJ);
    AvgResult rb = RunQueries(bdj.get(), pairs);
    auto bsdj = sg.Finder(Algorithm::kBSDJ);
    AvgResult rs = RunQueries(bsdj.get(), pairs);
    std::printf("%10lld %10.3f %10.3f %10.2f\n", static_cast<long long>(n),
                rb.time_s, rs.time_s,
                rs.time_s > 0 ? rb.time_s / rs.time_s : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
