// Figure 6(b): BSDJ query time split by phase — PE (path expansion),
// SC (statistics collection), FPR (full path recovery).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 6(b)", "BSDJ time by phase (PE / SC / FPR), Power graphs",
         "path expansion dominates; recovery and statistics are minor");
  BenchEnv env = GetEnv();
  std::printf("%10s %10s %10s %10s %10s\n", "nodes", "PE_s", "SC_s", "FPR_s",
              "total_s");
  const int64_t bases[] = {2000, 4000, 6000, 8000, 10000};
  for (size_t i = 0; i < 5; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 100 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9200 + i);
    Workbench wb = Workbench::Make(list, Algorithm::kBSDJ);
    AvgResult r = RunQueries(wb.finder.get(), pairs);
    std::printf("%10lld %10.4f %10.4f %10.4f %10.4f\n",
                static_cast<long long>(n), r.pe_s, r.sc_s, r.fpr_s, r.time_s);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
