// Figure 6(c): BSDJ query time split by FEM operator (F / E / M).
//
// Two regimes are reported. With a hot buffer the whole graph is cached
// and the E-operator's index probes are cheap, so its share drops; with a
// cold, small buffer plus per-miss I/O latency (the paper's disk-bound
// 2003-era setup) the E-operator dominates because it is the operator that
// touches the big TEdges relation — the paper's ~75% number.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void RunRegime(const char* label, const DatabaseOptions& dopts) {
  BenchEnv env = GetEnv();
  std::printf("# regime: %s\n", label);
  std::printf("%10s %10s %10s %10s %12s\n", "nodes", "F_s", "E_s", "M_s",
              "E_share");
  const int64_t bases[] = {2000, 4000, 6000, 8000, 10000};
  for (size_t i = 0; i < 5; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 100 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9300 + i);
    Workbench wb = Workbench::Make(list, Algorithm::kBSDJ, 0, SqlMode::kNsql,
                                   IndexStrategy::kCluIndex, dopts);
    AvgResult r = RunQueries(wb.finder.get(), pairs);
    double pe = r.f_s + r.e_s + r.m_s;
    std::printf("%10lld %10.4f %10.4f %10.4f %11.0f%%\n",
                static_cast<long long>(n), r.f_s, r.e_s, r.m_s,
                pe > 0 ? 100.0 * r.e_s / pe : 0.0);
  }
}

void Run() {
  Banner("Figure 6(c)", "BSDJ time by operator (F / E / M), Power graphs",
         "the E-operator takes ~75% of path-finding time in the paper's "
         "disk-bound setup (it joins TEdges); cold regime below reproduces "
         "that, hot regime shows the cached limit");
  RunRegime("hot buffer (whole graph cached)", DatabaseOptions{});
  DatabaseOptions cold;
  cold.in_memory = false;
  cold.buffer_pool_pages = 128;
  cold.simulated_io_latency_us = 50;
  RunRegime("cold 128-page buffer + 50us/miss disk", cold);
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
