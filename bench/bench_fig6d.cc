// Figure 6(d): new SQL features (window + MERGE, "NSQL") vs traditional
// formulation (aggregate+re-join, update+insert, "TSQL") for BSDJ.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 6(d)", "BSDJ with NSQL vs TSQL statements, Power graphs",
         "NSQL clearly faster (one pass + one merge vs double join + two "
         "statements)");
  BenchEnv env = GetEnv();
  std::printf("%10s %10s %10s %10s\n", "nodes", "NSQL_s", "TSQL_s",
              "TSQL/NSQL");
  const int64_t bases[] = {2000, 4000, 6000, 8000, 10000};
  for (size_t i = 0; i < 5; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 100 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9400 + i);
    SharedGraph sg = SharedGraph::Make(list);
    auto nsql = sg.Finder(Algorithm::kBSDJ, 0, SqlMode::kNsql);
    AvgResult rn = RunQueries(nsql.get(), pairs);
    auto tsql = sg.Finder(Algorithm::kBSDJ, 0, SqlMode::kTsql);
    AvgResult rt = RunQueries(tsql.get(), pairs);
    std::printf("%10lld %10.4f %10.4f %10.2f\n", static_cast<long long>(n),
                rn.time_s, rt.time_s,
                rn.time_s > 0 ? rt.time_s / rn.time_s : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
