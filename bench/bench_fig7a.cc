// Figure 7(a): BSDJ vs BBFS vs BSEG(3) on LiveJournal-like graphs of
// growing size (the paper sweeps 0.5M-4M nodes; we scale down).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 7(a)",
         "query time vs |V|, LiveJournal stand-in, BSDJ/BBFS/BSEG(3)",
         "BSEG fastest (~1/3 of BSDJ, ~1/7 of BBFS at the largest size)");
  BenchEnv env = GetEnv();
  std::printf("%10s %10s %10s %10s\n", "nodes", "BSDJ_s", "BBFS_s",
              "BSEG3_s");
  const int64_t bases[] = {30000, 60000, 120000, 240000};
  for (size_t i = 0; i < 4; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 4, WeightRange{1, 100}, 300 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9500 + i);
    SharedGraph sg = SharedGraph::Make(list);
    auto bsdj = sg.Finder(Algorithm::kBSDJ);
    AvgResult rs = RunQueries(bsdj.get(), pairs);
    auto bbfs = sg.Finder(Algorithm::kBBFS);
    AvgResult rf = RunQueries(bbfs.get(), pairs);
    auto bseg = sg.Finder(Algorithm::kBSEG, /*lthd=*/3);
    AvgResult rg = RunQueries(bseg.get(), pairs);
    std::printf("%10lld %10.3f %10.3f %10.3f\n", static_cast<long long>(n),
                rs.time_s, rf.time_s, rg.time_s);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
