// Figure 7(b): BBFS / BSDJ / BSEG(3,5,7) on Random graphs (the paper
// sweeps 5M-40M nodes at average degree 3; we scale down).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 7(b)",
         "query time, Random graphs N3d, BBFS/BSDJ/BSEG(3)/BSEG(5)/BSEG(7)",
         "BSEG variants fastest (~1/2-1/3 of BSDJ); BBFS degrades at scale");
  BenchEnv env = GetEnv();
  std::printf("%10s %10s %10s %10s %10s %10s\n", "nodes", "BBFS_s", "BSDJ_s",
              "BSEG3_s", "BSEG5_s", "BSEG7_s");
  const int64_t bases[] = {50000, 100000, 200000, 400000};
  for (size_t i = 0; i < 4; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateRandomGraph(n, 3 * n, WeightRange{1, 100}, 400 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9600 + i);
    SharedGraph sg = SharedGraph::Make(list);
    auto bbfs = sg.Finder(Algorithm::kBBFS);
    AvgResult rf = RunQueries(bbfs.get(), pairs);
    auto bsdj = sg.Finder(Algorithm::kBSDJ);
    AvgResult rs = RunQueries(bsdj.get(), pairs);
    double seg_times[3];
    weight_t lthds[3] = {3, 5, 7};
    for (int k = 0; k < 3; k++) {
      auto bseg = sg.Finder(Algorithm::kBSEG, lthds[k]);
      seg_times[k] = RunQueries(bseg.get(), pairs).time_s;
    }
    std::printf("%10lld %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                static_cast<long long>(n), rf.time_s, rs.time_s, seg_times[0],
                seg_times[1], seg_times[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
