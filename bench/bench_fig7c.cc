// Figure 7(c): BSEG query time vs the index threshold lthd on Power
// graphs — the sweet-spot curve (performance improves, then declines).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void RunRegime(const char* label, const DatabaseOptions& dopts) {
  BenchEnv env = GetEnv();
  std::printf("# regime: %s\n", label);
  std::printf("%10s %12s %12s %12s %12s\n", "nodes", "lthd=5_s", "lthd=10_s",
              "lthd=30_s", "lthd=50_s");
  const int64_t bases[] = {10000, 20000};
  const weight_t lthds[] = {5, 10, 30, 50};
  for (size_t i = 0; i < 2; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 500 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9800 + i);
    SharedGraph sg = SharedGraph::Make(list, IndexStrategy::kCluIndex, dopts);
    double times[4];
    for (int k = 0; k < 4; k++) {
      auto bseg = sg.Finder(Algorithm::kBSEG, lthds[k]);
      times[k] = RunQueries(bseg.get(), pairs).time_s;
    }
    std::printf("%10lld %12.4f %12.4f %12.4f %12.4f\n",
                static_cast<long long>(n), times[0], times[1], times[2],
                times[3]);
  }
}

void Run() {
  Banner("Figure 7(c)", "BSEG time vs lthd, Power graphs",
         "time improves then declines with lthd. The optimum depends on "
         "per-statement overhead: with the paper's client/server "
         "round-trips (simulated below) a mid-range lthd wins; embedded, "
         "the search-space penalty dominates sooner so the optimum shifts "
         "to smaller lthd");
  RunRegime("embedded (no statement overhead)", DatabaseOptions{});
  DatabaseOptions jdbc;
  jdbc.simulated_statement_latency_us = 500;  // a LAN JDBC round-trip
  RunRegime("client/server (500us per statement)", jdbc);
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
