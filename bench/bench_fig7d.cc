// Figure 7(d): BSEG query time vs lthd on the real-graph stand-ins
// (GoogleWeb, DBLP) — smaller thresholds suit these graphs.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 7(d)", "BSEG time vs lthd, GoogleWeb/DBLP stand-ins",
         "small lthd (6-8) is best on the real graphs; too-large lthd "
         "inflates the search space");
  BenchEnv env = GetEnv();
  std::printf("%12s %10s %10s %10s %10s %10s\n", "dataset", "lthd=2_s",
              "lthd=4_s", "lthd=6_s", "lthd=8_s", "lthd=10_s");
  struct DataSet {
    const char* name;
    EdgeList list;
  };
  DataSet sets[] = {
      {"GoogleWeb", MakeGoogleWebStandIn(0.03 * GetEnv().scale, 600)},
      {"DBLP", MakeDblpStandIn(0.08 * GetEnv().scale, 601)},
  };
  const weight_t lthds[] = {2, 4, 6, 8, 10};
  for (auto& ds : sets) {
    auto pairs = MakeQueryPairs(ds.list.num_nodes, env.queries, 9900);
    SharedGraph sg = SharedGraph::Make(ds.list);
    double times[5];
    for (int k = 0; k < 5; k++) {
      auto bseg = sg.Finder(Algorithm::kBSEG, lthds[k]);
      times[k] = RunQueries(bseg.get(), pairs).time_s;
    }
    std::printf("%12s %10.4f %10.4f %10.4f %10.4f %10.4f\n", ds.name,
                times[0], times[1], times[2], times[3], times[4]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
