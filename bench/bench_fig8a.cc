// Figure 8(a): BBFS vs BSEG(20) on the PostgreSQL 9.0 engine profile
// (window function available, MERGE absent -> update+insert M-operator).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 8(a)",
         "BBFS vs BSEG(20) on the PostgreSQL-9.0 profile, Power graphs",
         "same ordering as on DBMS-X: BSEG beats BBFS — the approach is "
         "portable across engines");
  BenchEnv env = GetEnv();
  std::printf("%10s %10s %10s\n", "nodes", "BBFS_s", "BSEG20_s");
  DatabaseOptions dopts;
  dopts.profile = EngineProfile::kPostgres90;
  const int64_t bases[] = {10000, 20000, 40000};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 700 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 10000 + i);
    SharedGraph sg =
        SharedGraph::Make(list, IndexStrategy::kCluIndex, dopts);
    auto bbfs = sg.Finder(Algorithm::kBBFS);
    AvgResult rf = RunQueries(bbfs.get(), pairs);
    auto bseg = sg.Finder(Algorithm::kBSEG, 20);
    AvgResult rg = RunQueries(bseg.get(), pairs);
    std::printf("%10lld %10.4f %10.4f\n", static_cast<long long>(n),
                rf.time_s, rg.time_s);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
