// Figure 8(b): BSEG(3) query time vs RDBMS buffer size on the
// LiveJournal stand-in. Runs on file-backed storage with a simulated
// per-miss I/O latency (see DESIGN.md "Substitutions": the host page cache
// would otherwise hide the misses the paper's disk made expensive).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 8(b)",
         "BSEG(3) time vs buffer size, LiveJournal stand-in, file-backed",
         "near-linear improvement with buffer size until the working set "
         "fits, then flat");
  BenchEnv env = GetEnv();
  std::printf("%14s %12s %10s %14s\n", "buffer_pages", "buffer_MiB",
              "BSEG3_s", "misses/query");
  int64_t n = Scaled(60000);
  EdgeList list = GenerateBarabasiAlbert(n, 4, WeightRange{1, 100}, 800);
  auto pairs = MakeQueryPairs(n, env.queries, 10100);
  const size_t pools[] = {64, 256, 1024, 4096, 16384};
  for (size_t pool : pools) {
    DatabaseOptions dopts;
    dopts.in_memory = false;
    dopts.buffer_pool_pages = pool;
    dopts.simulated_io_latency_us = 50;
    Workbench wb = Workbench::Make(list, Algorithm::kBSEG, 3, SqlMode::kNsql,
                                   IndexStrategy::kCluIndex, dopts);
    // Warm the buffer as the paper does ("after the database buffer
    // becomes hot"): run the workload once before measuring.
    RunQueries(wb.finder.get(), pairs);
    AvgResult r = RunQueries(wb.finder.get(), pairs);
    std::printf("%14zu %12.1f %10.4f %14.0f\n", pool,
                pool * kPageSize / (1024.0 * 1024.0), r.time_s,
                r.buffer_misses);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
