// Figure 8(c): index strategies — NoIndex vs non-clustered Index vs
// clustered CluIndex on the SegTable and TVisited tables, BSEG(20).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 8(c)", "BSEG(20) under NoIndex / Index / CluIndex, Power",
         "CluIndex best; Index close; NoIndex far slower (joins degrade to "
         "scans)");
  BenchEnv env = GetEnv();
  std::printf("%10s %12s %12s %12s\n", "nodes", "NoIndex_s", "Index_s",
              "CluIndex_s");
  const int64_t bases[] = {2000, 5000, 10000};
  const IndexStrategy strategies[] = {IndexStrategy::kNoIndex,
                                      IndexStrategy::kIndex,
                                      IndexStrategy::kCluIndex};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 900 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 10200 + i);
    double times[3];
    for (int k = 0; k < 3; k++) {
      Workbench wb = Workbench::Make(list, Algorithm::kBSEG, 20,
                                     SqlMode::kNsql, strategies[k]);
      times[k] = RunQueries(wb.finder.get(), pairs).time_s;
    }
    std::printf("%10lld %12.4f %12.4f %12.4f\n", static_cast<long long>(n),
                times[0], times[1], times[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
