// Figure 8(d): the relational BSEG(20) against the in-memory baselines
// MDJ (Dijkstra) and MBDJ (bi-directional Dijkstra), equal memory budget.
#include "bench_common.h"

#include "src/common/timer.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 8(d)", "MDJ vs BSEG(20) vs MBDJ, Power graphs",
         "MBDJ fastest; BSEG beats plain in-memory MDJ and scales better — "
         "the relational approach is competitive, not optimal");
  BenchEnv env = GetEnv();
  std::printf("%10s %12s %12s %12s\n", "nodes", "MDJ_s", "BSEG20_s",
              "MBDJ_s");
  const int64_t bases[] = {10000, 20000, 40000};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 1000 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 10300 + i);
    MemGraph mem(list);
    double mdj_s = 0, mbdj_s = 0;
    for (auto [s, t] : pairs) {
      Timer timer;
      mem.Dijkstra(s, t);
      mdj_s += timer.ElapsedSeconds();
      timer.Reset();
      mem.BidirectionalDijkstra(s, t);
      mbdj_s += timer.ElapsedSeconds();
    }
    mdj_s /= pairs.size();
    mbdj_s /= pairs.size();
    SharedGraph sg = SharedGraph::Make(list);
    auto bseg = sg.Finder(Algorithm::kBSEG, 20);
    AvgResult rg = RunQueries(bseg.get(), pairs);
    std::printf("%10lld %12.5f %12.5f %12.5f\n", static_cast<long long>(n),
                mdj_s, rg.time_s, mbdj_s);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
