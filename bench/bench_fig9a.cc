// Figure 9(a): SegTable index size (encoding number) vs lthd, Power graphs.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(a)", "SegTable entries vs lthd, Power graphs",
         "index size grows with both lthd and |V|, roughly linearly in |V|");
  std::printf("%10s %12s %12s %12s %12s\n", "nodes", "lthd=10", "lthd=20",
              "lthd=30", "lthd=40");
  const int64_t bases[] = {5000, 10000, 20000};
  const weight_t lthds[] = {10, 20, 30, 40};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 1100 + i);
    SharedGraph sg = SharedGraph::Make(list);
    int64_t sizes[4];
    for (int k = 0; k < 4; k++) {
      (void)sg.Finder(Algorithm::kBSEG, lthds[k]);
      const SegTable& st = *sg.segtables.back();
      sizes[k] = st.num_out_entries() + st.num_in_entries();
    }
    std::printf("%10lld %12lld %12lld %12lld %12lld\n",
                static_cast<long long>(n), static_cast<long long>(sizes[0]),
                static_cast<long long>(sizes[1]),
                static_cast<long long>(sizes[2]),
                static_cast<long long>(sizes[3]));
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
