// Figure 9(b): SegTable index size vs lthd on the real-graph stand-ins;
// GoogleWeb's skewed degrees make it more lthd-sensitive than DBLP.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(b)", "SegTable entries vs lthd, GoogleWeb/DBLP stand-ins",
         "size grows with lthd; GoogleWeb (skewed degrees) more sensitive "
         "than DBLP");
  std::printf("%12s %10s %10s %10s %10s %10s\n", "dataset", "lthd=2",
              "lthd=4", "lthd=6", "lthd=8", "lthd=10");
  struct DataSet {
    const char* name;
    EdgeList list;
  };
  DataSet sets[] = {
      {"GoogleWeb", MakeGoogleWebStandIn(0.03 * GetEnv().scale, 600)},
      {"DBLP", MakeDblpStandIn(0.08 * GetEnv().scale, 601)},
  };
  const weight_t lthds[] = {2, 4, 6, 8, 10};
  for (auto& ds : sets) {
    SharedGraph sg = SharedGraph::Make(ds.list);
    int64_t sizes[5];
    for (int k = 0; k < 5; k++) {
      (void)sg.Finder(Algorithm::kBSEG, lthds[k]);
      const SegTable& st = *sg.segtables.back();
      sizes[k] = st.num_out_entries() + st.num_in_entries();
    }
    std::printf("%12s %10lld %10lld %10lld %10lld %10lld\n", ds.name,
                static_cast<long long>(sizes[0]),
                static_cast<long long>(sizes[1]),
                static_cast<long long>(sizes[2]),
                static_cast<long long>(sizes[3]),
                static_cast<long long>(sizes[4]));
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
