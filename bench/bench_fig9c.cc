// Figure 9(c): SegTable construction time vs lthd, Power graphs.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(c)", "SegTable construction time vs lthd, Power graphs",
         "construction time grows with lthd (longer segments, more "
         "iterations) and with |V|");
  std::printf("%10s %12s %12s %12s %12s\n", "nodes", "lthd=10_s",
              "lthd=20_s", "lthd=30_s", "lthd=40_s");
  const int64_t bases[] = {5000, 10000, 20000};
  const weight_t lthds[] = {10, 20, 30, 40};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 1100 + i);
    SharedGraph sg = SharedGraph::Make(list);
    double times[4];
    for (int k = 0; k < 4; k++) {
      SegTableBuildStats stats;
      (void)sg.Finder(Algorithm::kBSEG, lthds[k], SqlMode::kNsql, &stats);
      times[k] = stats.build_us / 1e6;
    }
    std::printf("%10lld %12.3f %12.3f %12.3f %12.3f\n",
                static_cast<long long>(n), times[0], times[1], times[2],
                times[3]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
