// Figure 9(d): SegTable construction time vs lthd, real-graph stand-ins.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(d)",
         "SegTable construction time vs lthd, GoogleWeb/DBLP stand-ins",
         "same growth-with-lthd behaviour as on synthetic graphs");
  std::printf("%12s %10s %10s %10s %10s\n", "dataset", "lthd=2_s",
              "lthd=4_s", "lthd=6_s", "lthd=8_s");
  struct DataSet {
    const char* name;
    EdgeList list;
  };
  DataSet sets[] = {
      {"GoogleWeb", MakeGoogleWebStandIn(0.03 * GetEnv().scale, 600)},
      {"DBLP", MakeDblpStandIn(0.08 * GetEnv().scale, 601)},
  };
  const weight_t lthds[] = {2, 4, 6, 8};
  for (auto& ds : sets) {
    SharedGraph sg = SharedGraph::Make(ds.list);
    double times[4];
    for (int k = 0; k < 4; k++) {
      SegTableBuildStats stats;
      (void)sg.Finder(Algorithm::kBSEG, lthds[k], SqlMode::kNsql, &stats);
      times[k] = stats.build_us / 1e6;
    }
    std::printf("%12s %10.3f %10.3f %10.3f %10.3f\n", ds.name, times[0],
                times[1], times[2], times[3]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
