// Figure 9(e): SegTable construction time on the PostgreSQL 9.0 profile
// (no MERGE -> update+insert in the construction's M-operator).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(e)",
         "SegTable construction time vs lthd, PostgreSQL-9.0 profile, Power",
         "same curve shape as DBMS-X (Fig 9(c)) — the method ports across "
         "engines");
  std::printf("%10s %12s %12s %12s\n", "nodes", "lthd=10_s", "lthd=20_s",
              "lthd=30_s");
  DatabaseOptions dopts;
  dopts.profile = EngineProfile::kPostgres90;
  const int64_t bases[] = {5000, 10000, 20000};
  const weight_t lthds[] = {10, 20, 30};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 1100 + i);
    SharedGraph sg =
        SharedGraph::Make(list, IndexStrategy::kCluIndex, dopts);
    double times[3];
    for (int k = 0; k < 3; k++) {
      SegTableBuildStats stats;
      (void)sg.Finder(Algorithm::kBSEG, lthds[k], SqlMode::kNsql, &stats);
      times[k] = stats.build_us / 1e6;
    }
    std::printf("%10lld %12.3f %12.3f %12.3f\n", static_cast<long long>(n),
                times[0], times[1], times[2]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
