// Figure 9(f): SegTable construction with NSQL vs TSQL statements.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(f)", "construction time, NSQL vs TSQL, Power, lthd=20",
         "NSQL faster, but by a smaller margin than in query evaluation "
         "(the lthd bound caps the intermediate sets)");
  std::printf("%10s %10s %10s %10s\n", "nodes", "NSQL_s", "TSQL_s",
              "TSQL/NSQL");
  const int64_t bases[] = {5000, 10000, 20000};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 1100 + i);
    SharedGraph sg = SharedGraph::Make(list);
    SegTableBuildStats sn, st;
    (void)sg.Finder(Algorithm::kBSEG, 20, SqlMode::kNsql, &sn);
    (void)sg.Finder(Algorithm::kBSEG, 20, SqlMode::kTsql, &st);
    double ns = sn.build_us / 1e6;
    double ts = st.build_us / 1e6;
    std::printf("%10lld %10.3f %10.3f %10.2f\n", static_cast<long long>(n),
                ns, ts, ns > 0 ? ts / ns : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
