// Figure 9(g): SegTable construction time vs buffer size, LiveJournal
// stand-in, file-backed with simulated per-miss latency (see Fig 8(b)).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(g)",
         "SegTable(3) construction time vs buffer size, LJ stand-in",
         "time drops as the buffer grows, flat once the working set fits");
  std::printf("%14s %12s %14s %16s\n", "buffer_pages", "buffer_MiB",
              "build_s", "buffer_misses");
  int64_t n = Scaled(40000);
  EdgeList list = GenerateBarabasiAlbert(n, 4, WeightRange{1, 100}, 1200);
  const size_t pools[] = {128, 512, 2048, 8192};
  for (size_t pool : pools) {
    DatabaseOptions dopts;
    dopts.in_memory = false;
    dopts.buffer_pool_pages = pool;
    dopts.simulated_io_latency_us = 50;
    Workbench wb = Workbench::Make(list, Algorithm::kBSEG, 3, SqlMode::kNsql,
                                   IndexStrategy::kCluIndex, dopts);
    std::printf("%14zu %12.1f %14.3f %16lld\n", pool,
                pool * kPageSize / (1024.0 * 1024.0),
                wb.seg_stats.build_us / 1e6,
                static_cast<long long>(wb.seg_stats.buffer_misses));
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
