// Figure 9(h): SegTable construction time vs graph scale (LiveJournal
// stand-in series) — should grow about linearly (the index only encodes
// local segments).
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Figure 9(h)",
         "SegTable(3) construction time vs |V|, LiveJournal stand-in",
         "near-linear growth in graph size");
  std::printf("%10s %12s %14s %14s\n", "nodes", "build_s", "entries",
              "s_per_Mnode");
  const int64_t bases[] = {30000, 60000, 120000, 240000};
  for (size_t i = 0; i < 4; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateBarabasiAlbert(n, 4, WeightRange{1, 100}, 1300 + i);
    Workbench wb = Workbench::Make(list, Algorithm::kBSEG, 3);
    double s = wb.seg_stats.build_us / 1e6;
    std::printf("%10lld %12.3f %14lld %14.2f\n", static_cast<long long>(n),
                s,
                static_cast<long long>(wb.segtable->num_out_entries() +
                                       wb.segtable->num_in_entries()),
                s / (n / 1e6));
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
