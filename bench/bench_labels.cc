// Extension bench: the hub-label distance index (serve-from-index fast
// path) against the FEM fallback it degrades to. Three questions per
// graph size:
//
//  - build cost: wall clock, SQL statements, and label rows of one
//    complete pruned-landmark construction run;
//  - label-vs-FEM crossover: average serve-from-index latency vs the
//    exact BSDJ/FEM distance query on the same pairs, and how many
//    queries amortize the build (build_s / (fem_s - serve_s));
//  - hit/fallback counters: a fresh complete index must serve every
//    distance; one graph mutation must flip every subsequent query to
//    the FEM fallback (counted as stale_fallbacks), still bit-identical
//    to FEM run directly.
//
// The bench aborts on any correctness violation: a label-served distance
// differing from FEM, a fresh-index query not served, or a post-mutation
// query not falling back. JSON records (RELGRAPH_JSON): labels/build
// (visited = label rows), labels/serve, labels/fem, labels/stale —
// statement counts and row counts are deterministic, so the diff_bench
// gate pins them exactly.
#include "bench_common.h"
#include "src/common/timer.h"
#include "src/labels/label_builder.h"
#include "src/labels/labeled_path_finder.h"

namespace relgraph {
namespace bench {
namespace {

void Die(const char* what, node_id_t s, node_id_t t) {
  std::fprintf(stderr, "bench_labels: %s (pair %lld -> %lld)\n", what,
               static_cast<long long>(s), static_cast<long long>(t));
  std::exit(1);
}

void RunSize(int64_t n, int queries) {
  EdgeList list = GenerateBarabasiAlbert(n, 3, WeightRange{1, 100}, 4242);
  auto pairs = MakeQueryPairs(n, queries, 1000 + n);
  JsonContext("nodes", static_cast<double>(n));

  Database db{DatabaseOptions{}};
  std::unique_ptr<GraphStore> graph;
  Check(GraphStore::Create(&db, list, GraphStoreOptions{}, &graph),
        "GraphStore::Create");

  LabelBuildStats bstats;
  std::unique_ptr<LabelIndex> index;
  Check(LabelBuilder::Build(graph.get(), "", LabelBuildOptions{}, &index,
                            &bstats),
        "LabelBuilder::Build");
  AvgResult build;
  build.time_s = bstats.build_us / 1e6;
  build.statements = static_cast<double>(bstats.statements);
  build.visited = static_cast<double>(bstats.entries);
  JsonRecord("labels/build", build);

  std::unique_ptr<LabeledPathFinder> finder;
  Check(LabeledPathFinder::Create(graph.get(), index.get(),
                                  LabeledPathFinderOptions{}, &finder),
        "LabeledPathFinder::Create");

  // FEM baseline: the same pairs through the finder's own exact fallback
  // engine (BSDJ over the same tables), so both sides pay identical
  // storage and plan-cache conditions.
  AvgResult fem;
  std::vector<PathQueryResult> fem_results(pairs.size());
  for (size_t i = 0; i < pairs.size(); i++) {
    Check(finder->fallback()->Find(pairs[i].first, pairs[i].second,
                                   &fem_results[i]),
          "FEM Find");
    const QueryStats& qs = fem_results[i].stats;
    fem.time_s += qs.total_us / 1e6;
    fem.expansions += static_cast<double>(qs.expansions);
    fem.visited += static_cast<double>(qs.visited_rows);
    fem.statements += static_cast<double>(qs.statements);
    if (fem_results[i].found) fem.found++;
    fem.total++;
  }
  const int q = std::max<int>(static_cast<int>(pairs.size()), 1);
  fem.time_s /= q;
  fem.expansions /= q;
  fem.visited /= q;
  fem.statements /= q;
  JsonRecord("labels/fem", fem);

  // Serve-from-index: every pair must be a label hit (the index is fresh
  // and complete) and bit-identical to the FEM answer.
  AvgResult serve;
  for (size_t i = 0; i < pairs.size(); i++) {
    PathQueryResult r;
    bool served = false;
    Check(finder->Distance(pairs[i].first, pairs[i].second, &r, &served),
          "label Distance");
    if (!served) Die("fresh complete index failed to serve", pairs[i].first,
                     pairs[i].second);
    if (r.found != fem_results[i].found ||
        (r.found && r.distance != fem_results[i].distance)) {
      Die("label-served distance differs from FEM", pairs[i].first,
          pairs[i].second);
    }
    serve.time_s += r.stats.total_us / 1e6;
    serve.statements += static_cast<double>(r.stats.statements);
    if (r.found) serve.found++;
    serve.total++;
  }
  serve.time_s /= q;
  serve.statements /= q;
  JsonRecord("labels/serve", serve);

  // One mutation stales the index: every subsequent query must fall back
  // to FEM (never a wrong answer) and see the post-mutation graph.
  Check(graph->AddEdge(Edge{0, static_cast<node_id_t>(n - 1), 1}),
        "AddEdge");
  AvgResult stale;
  for (size_t i = 0; i < pairs.size(); i++) {
    PathQueryResult want;
    Check(finder->fallback()->Find(pairs[i].first, pairs[i].second, &want),
          "FEM Find (post-mutation)");
    PathQueryResult r;
    bool served = true;
    Check(finder->Distance(pairs[i].first, pairs[i].second, &r, &served),
          "stale Distance");
    if (served) Die("stale index served instead of falling back",
                    pairs[i].first, pairs[i].second);
    if (r.found != want.found || (r.found && r.distance != want.distance)) {
      Die("stale fallback differs from FEM", pairs[i].first,
          pairs[i].second);
    }
    stale.time_s += r.stats.total_us / 1e6;
    stale.statements += static_cast<double>(r.stats.statements);
    if (r.found) stale.found++;
    stale.total++;
  }
  stale.time_s /= q;
  stale.statements /= q;
  JsonRecord("labels/stale", stale);

  const LabelServeCounters& c = finder->counters();
  const double gain = fem.time_s - serve.time_s;
  std::printf("%8lld %10.3f %10lld %10lld %12.4f %12.6f %9.1fx %10.0f "
              "%5lld/%lld\n",
              static_cast<long long>(n), bstats.build_us / 1e6,
              static_cast<long long>(bstats.statements),
              static_cast<long long>(bstats.entries), fem.time_s * 1e3,
              serve.time_s * 1e3,
              serve.time_s > 0 ? fem.time_s / serve.time_s : 0.0,
              gain > 0 ? (bstats.build_us / 1e6) / gain : -1.0,
              static_cast<long long>(c.label_hits),
              static_cast<long long>(c.label_hits + c.fallbacks));
}

void Run() {
  Banner("Label index (extension)",
         "hub-label build cost, serve-vs-FEM crossover, hit/fallback "
         "counters",
         "serve-from-index answers a distance with one prepared range-scan "
         "statement — microseconds against FEM's milliseconds, a >=10x gap "
         "that widens with graph size; the build is a one-time cost "
         "amortized after `crossover` queries; a mutation flips every "
         "query to the FEM fallback with identical answers");
  BenchEnv env = GetEnv();
  std::printf("%8s %10s %10s %10s %12s %12s %9s %10s %8s\n", "nodes",
              "build_s", "build_st", "entries", "fem_ms", "serve_ms",
              "speedup", "crossover", "hits");
  for (int64_t base : {2000, 4000}) {
    RunSize(Scaled(base), env.queries);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
