// Micro-benchmarks (google-benchmark) for the executor layer: the window
// function and the MERGE statement — the two "new SQL features" whose cost
// profile §5.2 (Fig 6(d)) depends on — plus the E-operator's index join,
// the row-at-a-time vs batched (EvalBatch) filter+project comparison that
// motivates defaulting everything to the batch path, the selection-vector
// vs force-compact filter regimes across selectivities, and the vectorized
// open-addressing hash aggregate against the classic std::map probe.
//
// Two run modes: without RELGRAPH_JSON this is a normal google-benchmark
// binary. With RELGRAPH_JSON=path it instead runs a small deterministic
// series (selectivity sweep + agg comparison, min-of-5 wall clocks and
// exact row counters) and emits bench_common JSON records — the form CI
// pins in the ci_smoke rolling diff window.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <limits>
#include <map>

#include "bench/bench_common.h"
#include "src/catalog/table.h"
#include "src/exec/agg_executors.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/window_executor.h"

namespace relgraph {
namespace {

Schema ExpSchema() {
  return Schema({{"nid", TypeId::kInt}, {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}

std::vector<Tuple> MakeExpansionRows(int64_t n, int64_t dups) {
  std::vector<Tuple> rows;
  rows.reserve(n * dups);
  for (int64_t i = 0; i < n; i++) {
    for (int64_t d = 0; d < dups; d++) {
      rows.push_back(
          Tuple({Value(i), Value((i * 31 + d * 17) % 1000), Value(d)}));
    }
  }
  return rows;
}

void BM_WindowRowNumberDedup(benchmark::State& state) {
  auto rows = MakeExpansionRows(state.range(0), 4);
  for (auto _ : state) {
    auto src = std::make_unique<MaterializedExecutor>(rows, ExpSchema());
    WindowRowNumberExecutor window(std::move(src), {"nid"},
                                   {{Col("cost"), true}});
    std::vector<Tuple> out;
    (void)Collect(&window, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_WindowRowNumberDedup)->Arg(1000)->Arg(10000);

void BM_MergeStatement(benchmark::State& state) {
  // MERGE of `n` source rows into a target holding half of them already.
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager dm;
    BufferPool pool(4096, &dm);
    std::unique_ptr<Table> table;
    (void)Table::Create(&pool, "t",
                        Schema({{"nid", TypeId::kInt},
                                {"d2s", TypeId::kInt},
                                {"p2s", TypeId::kInt}}),
                        TableOptions{}, &table);
    (void)table->CreateSecondaryIndex("nid", true);
    for (int64_t i = 0; i < n / 2; i++) {
      (void)table->Insert(Tuple({Value(i), Value(int64_t{500}), Value(i)}));
    }
    auto rows = MakeExpansionRows(n, 1);
    state.ResumeTiming();

    MaterializedExecutor source(rows, ExpSchema());
    MergeSpec spec;
    spec.target_key_column = "nid";
    spec.source_key_column = "nid";
    spec.matched_condition = Cmp(CompareOp::kGt, Col("t.d2s"), Col("s.cost"));
    spec.matched_sets = {{"d2s", Col("s.cost")}, {"p2s", Col("s.pid")}};
    spec.insert_values = {Col("nid"), Col("cost"), Col("pid")};
    int64_t affected;
    (void)MergeInto(table.get(), &source, spec, &affected);
    benchmark::DoNotOptimize(affected);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeStatement)->Arg(1000)->Arg(10000);

/// The E-operator's post-join schema: frontier row joined with one edge.
Schema JoinedSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"dist", TypeId::kInt},
                 {"tid", TypeId::kInt},
                 {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}

std::vector<Tuple> MakeJoinedRows(int64_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; i++) {
    rows.push_back(Tuple({Value(i % 997), Value((i * 13) % 500),
                          Value((i * 7) % 997), Value(i % 100),
                          Value(i % 31)}));
  }
  return rows;
}

/// The classic Volcano-overhead pipeline, shaped like the E-operator's
/// expansion statement (Listing 4(2)): the Theorem-1 prune predicate
/// `dist + cost + lb < minCost AND flag-ish conjunct`, then the projection
/// to (nid, dist + cost, pid, aid). Both variants below build the identical
/// plan over the identical rows; only the pull style differs, so the gap is
/// pure per-row interpretation overhead (virtual dispatch, per-row column
/// name resolution, per-row Value boxing).
ExecRef MakeFilterProjectPlan(const std::vector<Tuple>& rows) {
  ExecRef scan = std::make_unique<MaterializedExecutor>(rows, JoinedSchema());
  ExecRef filter = std::make_unique<FilterExecutor>(
      std::move(scan),
      And(Cmp(CompareOp::kLt,
              Add(Add(Col("dist"), Col("cost")), Lit(int64_t{40})),
              Lit(int64_t{420})),
          Cmp(CompareOp::kNe, Col("pid"), Lit(int64_t{1}))));
  std::vector<ExprRef> exprs = {Col("tid"), Add(Col("dist"), Col("cost")),
                                Col("pid"), Col("nid")};
  return std::make_unique<ProjectExecutor>(
      std::move(filter), std::move(exprs),
      Schema({{"nid", TypeId::kInt},
              {"cost", TypeId::kInt},
              {"pid", TypeId::kInt},
              {"aid", TypeId::kInt}}));
}

/// Both drains *consume* the pipeline (fold one output column into a sum)
/// rather than retain the tuples — exactly what the engine's hot consumers
/// do: the MERGE probe loop reads each source row once, and the aggregate
/// executors fold batches into accumulators. Retaining consumers pay one
/// inherent allocation per kept row in either pull style, which only
/// dilutes the execution-path difference being measured.
void BM_FilterProjectRowAtATime(benchmark::State& state) {
  auto rows = MakeJoinedRows(state.range(0) * 4);
  // The plan is built once and re-Init()ed per iteration — the prepared-
  // statement pattern — so the timing covers execution, not the one-off
  // copy of the input into the materialized source.
  ExecRef plan = MakeFilterProjectPlan(rows);
  for (auto _ : state) {
    if (!plan->Init().ok()) state.SkipWithError("init failed");
    int64_t acc = 0;
    Tuple t;
    while (plan->Next(&t)) acc += t.value(1).AsInt();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_FilterProjectRowAtATime)->Arg(1000)->Arg(10000);

void BM_FilterProjectBatched(benchmark::State& state) {
  auto rows = MakeJoinedRows(state.range(0) * 4);
  // Second argument sweeps the batch size (0 keeps the default), so the
  // kExecBatchSize default in src/common/config.h can be revalidated here.
  SetExecBatchSize(static_cast<size_t>(state.range(1)));
  ExecRef plan = MakeFilterProjectPlan(rows);
  for (auto _ : state) {
    if (!plan->Init().ok()) state.SkipWithError("init failed");
    int64_t acc = 0;
    std::vector<Tuple> batch;
    while (plan->NextBatch(&batch)) {
      for (const Tuple& t : batch) acc += t.value(1).AsInt();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
  SetExecBatchSize(0);  // restore the default for later benchmarks
}
BENCHMARK(BM_FilterProjectBatched)
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({10000, 16})
    ->Args({10000, 64})
    ->Args({10000, 256})
    ->Args({10000, 1024})
    ->Args({10000, 4096});

// ---------------------------------------------------------------------------
// Selection-vector regimes. k = i % 100 makes `k < s` an exact s%
// selectivity predicate; the second Args slot picks the filter regime:
// 0 = default (selection vectors above kSelVectorMinRows), 1 = force the
// legacy compact-every-batch path. The gap between the two at a given
// selectivity is what the selection-vector representation buys.
//
// The input rows are base-table-wide (a POI row: id columns plus name and
// address attributes) while the projection keeps two ints — the standard
// scan -> filter -> narrow-project shape. The plan stacks two filters the
// way conjunct pushdown does (the selective key predicate, then a fixed
// ~50% attribute predicate). That shape is what the compact regime pays
// for: each filter deep-copies every surviving wide row (strings included)
// just for the rows to be thrown away after projection, while selection
// vectors compose through the stack and only the two projected columns are
// ever touched.
// ---------------------------------------------------------------------------

Schema SelSchema() {
  return Schema({{"k", TypeId::kInt},
                 {"a", TypeId::kInt},
                 {"b", TypeId::kInt},
                 {"lat", TypeId::kInt},
                 {"lng", TypeId::kInt},
                 {"cat", TypeId::kInt},
                 {"name", TypeId::kVarchar},
                 {"addr", TypeId::kVarchar}});
}

std::vector<Tuple> MakeSelRows(int64_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; i++) {
    rows.push_back(Tuple({Value(i % 100), Value((i * 13) % 500),
                          Value(i % 31), Value((i * 7) % 3600),
                          Value((i * 11) % 1800), Value(i % 40),
                          Value("point-of-interest-" + std::to_string(i % 1000)),
                          Value("no. " + std::to_string(i % 500) +
                                " example boulevard, sample city")}));
  }
  return rows;
}

ExecRef MakeSelPlan(const std::vector<Tuple>& rows, int64_t s) {
  ExecRef scan = std::make_unique<MaterializedExecutor>(rows, SelSchema());
  ExecRef filter1 = std::make_unique<FilterExecutor>(
      std::move(scan), Cmp(CompareOp::kLt, Col("k"), Lit(s)));
  // a = (i * 13) % 500, so `a < 250` keeps ~half of the survivors.
  ExecRef filter2 = std::make_unique<FilterExecutor>(
      std::move(filter1), Cmp(CompareOp::kLt, Col("a"), Lit(int64_t{250})));
  std::vector<ExprRef> exprs = {Col("a"), Add(Col("k"), Col("b"))};
  return std::make_unique<ProjectExecutor>(
      std::move(filter2), std::move(exprs),
      Schema({{"p0", TypeId::kInt}, {"p1", TypeId::kInt}}));
}

/// Runs one prepared-plan execution, folding the output like the engine's
/// hot consumers do; returns rows produced.
int64_t DrainSelPlan(Executor* plan) {
  int64_t produced = 0;
  int64_t acc = 0;
  std::vector<Tuple> batch;
  while (plan->NextBatch(&batch)) {
    produced += static_cast<int64_t>(batch.size());
    for (const Tuple& t : batch) acc += t.value(1).AsInt();
  }
  benchmark::DoNotOptimize(acc);
  return produced;
}

void BM_FilterProjectSelectivity(benchmark::State& state) {
  auto rows = MakeSelRows(40000);
  const int64_t selectivity = state.range(0);
  SetSelVectorMinRows(state.range(1) == 0
                          ? 0
                          : std::numeric_limits<size_t>::max());
  ExecRef plan = MakeSelPlan(rows, selectivity);
  for (auto _ : state) {
    if (!plan->Init().ok()) state.SkipWithError("init failed");
    benchmark::DoNotOptimize(DrainSelPlan(plan.get()));
  }
  SetSelVectorMinRows(0);
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_FilterProjectSelectivity)
    ->ArgNames({"sel_pct", "compact"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({100, 0})
    ->Args({100, 1});

// ---------------------------------------------------------------------------
// Hash aggregation: the vectorized open-addressing build vs the classic
// row-at-a-time std::map probe it replaced. The map baseline reproduces
// the old executor's build loop exactly (per-row key vector, ordered map
// probe, scalar argument evaluation), so the gap is the probe + batch
// evaluation strategy, nothing else.
// ---------------------------------------------------------------------------

Schema AggSchema() {
  return Schema({{"g", TypeId::kInt}, {"v", TypeId::kInt}});
}

std::vector<Tuple> MakeAggRows(int64_t n, int64_t groups) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; i++) {
    rows.push_back(Tuple({Value((i * 7919) % groups), Value(i % 1000)}));
  }
  return rows;
}

std::vector<AggSpec> MakeAggSpecs() {
  return {{AggOp::kSum, Col("v"), "sm"},
          {AggOp::kMin, Col("v"), "mn"},
          {AggOp::kCount, nullptr, "cnt"}};
}

/// The pre-vectorization build: one ordered-map probe and one scalar
/// expression evaluation per row.
int64_t MapAggBaseline(const std::vector<Tuple>& rows) {
  const Schema schema = AggSchema();
  const std::vector<AggSpec> aggs = MakeAggSpecs();
  auto cmp = [](const std::vector<Value>& a, const std::vector<Value>& b) {
    for (size_t i = 0; i < a.size(); i++) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::map<std::vector<Value>, std::vector<AggState>, decltype(cmp)> groups(
      cmp);
  MaterializedExecutor child(rows, schema);
  if (!child.Init().ok()) return -1;
  std::vector<Tuple> batch;
  while (child.NextBatch(&batch)) {
    for (const Tuple& t : batch) {
      std::vector<Value> key = {t.value(0)};
      auto [it, inserted] =
          groups.try_emplace(std::move(key), std::vector<AggState>(aggs.size()));
      for (size_t k = 0; k < aggs.size(); k++) {
        AggState& s = it->second[k];
        if (aggs[k].expr == nullptr) {
          s.count++;
          continue;
        }
        Value v = aggs[k].expr->Evaluate(t, schema);
        if (v.IsNull()) continue;
        switch (aggs[k].op) {
          case AggOp::kSum:
            s.acc = s.acc.IsNull() ? v : s.acc.Add(v);
            break;
          case AggOp::kMin:
            if (s.acc.IsNull() || v.Compare(s.acc) < 0) s.acc = v;
            break;
          case AggOp::kMax:
            if (s.acc.IsNull() || v.Compare(s.acc) > 0) s.acc = v;
            break;
          case AggOp::kCount:
            s.count++;
            break;
        }
      }
    }
  }
  int64_t acc = 0;
  for (const auto& [key, states] : groups) {
    acc += states[2].count + states[0].acc.AsInt();
  }
  benchmark::DoNotOptimize(acc);
  return static_cast<int64_t>(groups.size());
}

int64_t VectorizedAgg(const std::vector<Tuple>& rows) {
  HashAggregateExecutor agg(
      std::make_unique<MaterializedExecutor>(rows, AggSchema()), {"g"},
      MakeAggSpecs());
  if (!agg.Init().ok()) return -1;
  int64_t produced = 0;
  int64_t acc = 0;
  std::vector<Tuple> batch;
  while (agg.NextBatch(&batch)) {
    produced += static_cast<int64_t>(batch.size());
    for (const Tuple& t : batch) acc += t.value(3).AsInt() + t.value(1).AsInt();
  }
  benchmark::DoNotOptimize(acc);
  return produced;
}

void BM_HashAggVectorized(benchmark::State& state) {
  auto rows = MakeAggRows(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(VectorizedAgg(rows));
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_HashAggVectorized)
    ->ArgNames({"rows", "groups"})
    ->Args({100000, 64})
    ->Args({100000, 4096})
    ->Args({100000, 65536});

void BM_HashAggMapBaseline(benchmark::State& state) {
  auto rows = MakeAggRows(state.range(0), state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapAggBaseline(rows));
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_HashAggMapBaseline)
    ->ArgNames({"rows", "groups"})
    ->Args({100000, 64})
    ->Args({100000, 4096})
    ->Args({100000, 65536});

// ---------------------------------------------------------------------------
// Deterministic JSON series for CI (RELGRAPH_JSON mode): the same two
// comparisons at fixed sizes, min-of-5 wall clocks, with output-row counts
// in the exact-gated `visited` field — any selection-vector or hash-table
// behaviour drift shows up as a counter diff, not just a timing blip.
// ---------------------------------------------------------------------------

double TimeSeconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void RunJsonSeries() {
  bench::Banner(
      "micro_exec",
      "executor micro series: selection-vector filter+project regimes and "
      "vectorized vs map hash aggregation",
      "selvec should widen its lead as selectivity drops; the vectorized "
      "aggregate should beat the map probe at every group count");
  constexpr int kReps = 5;

  const int64_t n = 40000;
  auto rows = MakeSelRows(n);
  bench::JsonContext("groups", 0);
  for (int64_t s : {int64_t{1}, int64_t{10}, int64_t{50}, int64_t{100}}) {
    bench::JsonContext("selectivity", static_cast<double>(s));
    const struct {
      const char* label;
      size_t knob;
    } regimes[] = {
        {"filter_project:selvec", 0},
        {"filter_project:compact", std::numeric_limits<size_t>::max()},
    };
    for (const auto& regime : regimes) {
      SetSelVectorMinRows(regime.knob);
      ExecRef plan = MakeSelPlan(rows, s);
      double best = std::numeric_limits<double>::max();
      int64_t produced = 0;
      for (int r = 0; r < kReps; r++) {
        best = std::min(best, TimeSeconds([&] {
                          bench::Check(plan->Init(), "sel plan init");
                          produced = DrainSelPlan(plan.get());
                        }));
      }
      SetSelVectorMinRows(0);
      bench::AvgResult avg;
      avg.time_s = best;
      avg.expansions = static_cast<double>(n);
      avg.visited = static_cast<double>(produced);
      avg.total = 1;
      bench::JsonRecord(regime.label, avg);
    }
  }

  bench::JsonContext("selectivity", 0);
  const int64_t agg_n = 100000;
  for (int64_t groups : {int64_t{64}, int64_t{65536}}) {
    bench::JsonContext("groups", static_cast<double>(groups));
    auto agg_rows = MakeAggRows(agg_n, groups);
    const struct {
      const char* label;
      int64_t (*run)(const std::vector<Tuple>&);
    } variants[] = {
        {"hash_agg:vectorized", &VectorizedAgg},
        {"hash_agg:map", &MapAggBaseline},
    };
    for (const auto& variant : variants) {
      double best = std::numeric_limits<double>::max();
      int64_t out_groups = 0;
      for (int r = 0; r < kReps; r++) {
        best = std::min(
            best, TimeSeconds([&] { out_groups = variant.run(agg_rows); }));
      }
      bench::AvgResult avg;
      avg.time_s = best;
      avg.expansions = static_cast<double>(agg_n);
      avg.visited = static_cast<double>(out_groups);
      avg.total = 1;
      bench::JsonRecord(variant.label, avg);
    }
  }
}

void BM_IndexNestedLoopJoin(benchmark::State& state) {
  // The E-operator join: a small frontier probing a large clustered edge
  // table.
  DiskManager dm;
  BufferPool pool(8192, &dm);
  std::unique_ptr<Table> edges;
  TableOptions topts;
  topts.storage = TableStorage::kClustered;
  topts.cluster_key = "fid";
  (void)Table::Create(&pool, "edges",
                      Schema({{"fid", TypeId::kInt},
                              {"tid", TypeId::kInt},
                              {"cost", TypeId::kInt}}),
                      topts, &edges);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; i++) {
    for (int64_t d = 0; d < 3; d++) {
      (void)edges->Insert(
          Tuple({Value(i), Value((i + d + 1) % n), Value(d + 1)}));
    }
  }
  std::vector<Tuple> frontier;
  for (int64_t i = 0; i < 64; i++) {
    frontier.push_back(Tuple({Value(i * 1000), Value(int64_t{7})}));
  }
  Schema fschema({{"nid", TypeId::kInt}, {"d2s", TypeId::kInt}});
  for (auto _ : state) {
    auto outer = std::make_unique<MaterializedExecutor>(frontier, fschema);
    IndexNestedLoopJoinExecutor join(std::move(outer), edges.get(), "fid",
                                     Col("nid"));
    std::vector<Tuple> out;
    (void)Collect(&join, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * frontier.size());
}
BENCHMARK(BM_IndexNestedLoopJoin);

}  // namespace
}  // namespace relgraph

int main(int argc, char** argv) {
  // JSON mode (CI): the deterministic series only — quick, and its records
  // ride the same diff_bench gate as the figure benches. Otherwise the
  // binary behaves like any google-benchmark executable.
  if (relgraph::bench::JsonEnabled()) {
    relgraph::RunJsonSeries();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
