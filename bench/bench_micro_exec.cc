// Micro-benchmarks (google-benchmark) for the executor layer: the window
// function and the MERGE statement — the two "new SQL features" whose cost
// profile §5.2 (Fig 6(d)) depends on — plus the E-operator's index join.
#include <benchmark/benchmark.h>

#include "src/catalog/table.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/window_executor.h"

namespace relgraph {
namespace {

Schema ExpSchema() {
  return Schema({{"nid", TypeId::kInt}, {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}

std::vector<Tuple> MakeExpansionRows(int64_t n, int64_t dups) {
  std::vector<Tuple> rows;
  rows.reserve(n * dups);
  for (int64_t i = 0; i < n; i++) {
    for (int64_t d = 0; d < dups; d++) {
      rows.push_back(
          Tuple({Value(i), Value((i * 31 + d * 17) % 1000), Value(d)}));
    }
  }
  return rows;
}

void BM_WindowRowNumberDedup(benchmark::State& state) {
  auto rows = MakeExpansionRows(state.range(0), 4);
  for (auto _ : state) {
    auto src = std::make_unique<MaterializedExecutor>(rows, ExpSchema());
    WindowRowNumberExecutor window(std::move(src), {"nid"},
                                   {{Col("cost"), true}});
    std::vector<Tuple> out;
    (void)Collect(&window, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_WindowRowNumberDedup)->Arg(1000)->Arg(10000);

void BM_MergeStatement(benchmark::State& state) {
  // MERGE of `n` source rows into a target holding half of them already.
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager dm;
    BufferPool pool(4096, &dm);
    std::unique_ptr<Table> table;
    (void)Table::Create(&pool, "t",
                        Schema({{"nid", TypeId::kInt},
                                {"d2s", TypeId::kInt},
                                {"p2s", TypeId::kInt}}),
                        TableOptions{}, &table);
    (void)table->CreateSecondaryIndex("nid", true);
    for (int64_t i = 0; i < n / 2; i++) {
      (void)table->Insert(Tuple({Value(i), Value(int64_t{500}), Value(i)}));
    }
    auto rows = MakeExpansionRows(n, 1);
    state.ResumeTiming();

    MaterializedExecutor source(rows, ExpSchema());
    MergeSpec spec;
    spec.target_key_column = "nid";
    spec.source_key_column = "nid";
    spec.matched_condition = Cmp(CompareOp::kGt, Col("t.d2s"), Col("s.cost"));
    spec.matched_sets = {{"d2s", Col("s.cost")}, {"p2s", Col("s.pid")}};
    spec.insert_values = {Col("nid"), Col("cost"), Col("pid")};
    int64_t affected;
    (void)MergeInto(table.get(), &source, spec, &affected);
    benchmark::DoNotOptimize(affected);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeStatement)->Arg(1000)->Arg(10000);

void BM_IndexNestedLoopJoin(benchmark::State& state) {
  // The E-operator join: a small frontier probing a large clustered edge
  // table.
  DiskManager dm;
  BufferPool pool(8192, &dm);
  std::unique_ptr<Table> edges;
  TableOptions topts;
  topts.storage = TableStorage::kClustered;
  topts.cluster_key = "fid";
  (void)Table::Create(&pool, "edges",
                      Schema({{"fid", TypeId::kInt},
                              {"tid", TypeId::kInt},
                              {"cost", TypeId::kInt}}),
                      topts, &edges);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; i++) {
    for (int64_t d = 0; d < 3; d++) {
      (void)edges->Insert(
          Tuple({Value(i), Value((i + d + 1) % n), Value(d + 1)}));
    }
  }
  std::vector<Tuple> frontier;
  for (int64_t i = 0; i < 64; i++) {
    frontier.push_back(Tuple({Value(i * 1000), Value(int64_t{7})}));
  }
  Schema fschema({{"nid", TypeId::kInt}, {"d2s", TypeId::kInt}});
  for (auto _ : state) {
    auto outer = std::make_unique<MaterializedExecutor>(frontier, fschema);
    IndexNestedLoopJoinExecutor join(std::move(outer), edges.get(), "fid",
                                     Col("nid"));
    std::vector<Tuple> out;
    (void)Collect(&join, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * frontier.size());
}
BENCHMARK(BM_IndexNestedLoopJoin);

}  // namespace
}  // namespace relgraph

BENCHMARK_MAIN();
