// Micro-benchmarks (google-benchmark) for the executor layer: the window
// function and the MERGE statement — the two "new SQL features" whose cost
// profile §5.2 (Fig 6(d)) depends on — plus the E-operator's index join and
// the row-at-a-time vs batched (EvalBatch) filter+project comparison that
// motivates defaulting everything to the batch path.
#include <benchmark/benchmark.h>

#include "src/catalog/table.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/window_executor.h"

namespace relgraph {
namespace {

Schema ExpSchema() {
  return Schema({{"nid", TypeId::kInt}, {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}

std::vector<Tuple> MakeExpansionRows(int64_t n, int64_t dups) {
  std::vector<Tuple> rows;
  rows.reserve(n * dups);
  for (int64_t i = 0; i < n; i++) {
    for (int64_t d = 0; d < dups; d++) {
      rows.push_back(
          Tuple({Value(i), Value((i * 31 + d * 17) % 1000), Value(d)}));
    }
  }
  return rows;
}

void BM_WindowRowNumberDedup(benchmark::State& state) {
  auto rows = MakeExpansionRows(state.range(0), 4);
  for (auto _ : state) {
    auto src = std::make_unique<MaterializedExecutor>(rows, ExpSchema());
    WindowRowNumberExecutor window(std::move(src), {"nid"},
                                   {{Col("cost"), true}});
    std::vector<Tuple> out;
    (void)Collect(&window, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_WindowRowNumberDedup)->Arg(1000)->Arg(10000);

void BM_MergeStatement(benchmark::State& state) {
  // MERGE of `n` source rows into a target holding half of them already.
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    DiskManager dm;
    BufferPool pool(4096, &dm);
    std::unique_ptr<Table> table;
    (void)Table::Create(&pool, "t",
                        Schema({{"nid", TypeId::kInt},
                                {"d2s", TypeId::kInt},
                                {"p2s", TypeId::kInt}}),
                        TableOptions{}, &table);
    (void)table->CreateSecondaryIndex("nid", true);
    for (int64_t i = 0; i < n / 2; i++) {
      (void)table->Insert(Tuple({Value(i), Value(int64_t{500}), Value(i)}));
    }
    auto rows = MakeExpansionRows(n, 1);
    state.ResumeTiming();

    MaterializedExecutor source(rows, ExpSchema());
    MergeSpec spec;
    spec.target_key_column = "nid";
    spec.source_key_column = "nid";
    spec.matched_condition = Cmp(CompareOp::kGt, Col("t.d2s"), Col("s.cost"));
    spec.matched_sets = {{"d2s", Col("s.cost")}, {"p2s", Col("s.pid")}};
    spec.insert_values = {Col("nid"), Col("cost"), Col("pid")};
    int64_t affected;
    (void)MergeInto(table.get(), &source, spec, &affected);
    benchmark::DoNotOptimize(affected);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MergeStatement)->Arg(1000)->Arg(10000);

/// The E-operator's post-join schema: frontier row joined with one edge.
Schema JoinedSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"dist", TypeId::kInt},
                 {"tid", TypeId::kInt},
                 {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}

std::vector<Tuple> MakeJoinedRows(int64_t n) {
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (int64_t i = 0; i < n; i++) {
    rows.push_back(Tuple({Value(i % 997), Value((i * 13) % 500),
                          Value((i * 7) % 997), Value(i % 100),
                          Value(i % 31)}));
  }
  return rows;
}

/// The classic Volcano-overhead pipeline, shaped like the E-operator's
/// expansion statement (Listing 4(2)): the Theorem-1 prune predicate
/// `dist + cost + lb < minCost AND flag-ish conjunct`, then the projection
/// to (nid, dist + cost, pid, aid). Both variants below build the identical
/// plan over the identical rows; only the pull style differs, so the gap is
/// pure per-row interpretation overhead (virtual dispatch, per-row column
/// name resolution, per-row Value boxing).
ExecRef MakeFilterProjectPlan(const std::vector<Tuple>& rows) {
  ExecRef scan = std::make_unique<MaterializedExecutor>(rows, JoinedSchema());
  ExecRef filter = std::make_unique<FilterExecutor>(
      std::move(scan),
      And(Cmp(CompareOp::kLt,
              Add(Add(Col("dist"), Col("cost")), Lit(int64_t{40})),
              Lit(int64_t{420})),
          Cmp(CompareOp::kNe, Col("pid"), Lit(int64_t{1}))));
  std::vector<ExprRef> exprs = {Col("tid"), Add(Col("dist"), Col("cost")),
                                Col("pid"), Col("nid")};
  return std::make_unique<ProjectExecutor>(
      std::move(filter), std::move(exprs),
      Schema({{"nid", TypeId::kInt},
              {"cost", TypeId::kInt},
              {"pid", TypeId::kInt},
              {"aid", TypeId::kInt}}));
}

/// Both drains *consume* the pipeline (fold one output column into a sum)
/// rather than retain the tuples — exactly what the engine's hot consumers
/// do: the MERGE probe loop reads each source row once, and the aggregate
/// executors fold batches into accumulators. Retaining consumers pay one
/// inherent allocation per kept row in either pull style, which only
/// dilutes the execution-path difference being measured.
void BM_FilterProjectRowAtATime(benchmark::State& state) {
  auto rows = MakeJoinedRows(state.range(0) * 4);
  // The plan is built once and re-Init()ed per iteration — the prepared-
  // statement pattern — so the timing covers execution, not the one-off
  // copy of the input into the materialized source.
  ExecRef plan = MakeFilterProjectPlan(rows);
  for (auto _ : state) {
    if (!plan->Init().ok()) state.SkipWithError("init failed");
    int64_t acc = 0;
    Tuple t;
    while (plan->Next(&t)) acc += t.value(1).AsInt();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_FilterProjectRowAtATime)->Arg(1000)->Arg(10000);

void BM_FilterProjectBatched(benchmark::State& state) {
  auto rows = MakeJoinedRows(state.range(0) * 4);
  // Second argument sweeps the batch size (0 keeps the default), so the
  // kExecBatchSize default in src/common/config.h can be revalidated here.
  SetExecBatchSize(static_cast<size_t>(state.range(1)));
  ExecRef plan = MakeFilterProjectPlan(rows);
  for (auto _ : state) {
    if (!plan->Init().ok()) state.SkipWithError("init failed");
    int64_t acc = 0;
    std::vector<Tuple> batch;
    while (plan->NextBatch(&batch)) {
      for (const Tuple& t : batch) acc += t.value(1).AsInt();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
  SetExecBatchSize(0);  // restore the default for later benchmarks
}
BENCHMARK(BM_FilterProjectBatched)
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({10000, 16})
    ->Args({10000, 64})
    ->Args({10000, 256})
    ->Args({10000, 1024})
    ->Args({10000, 4096});

void BM_IndexNestedLoopJoin(benchmark::State& state) {
  // The E-operator join: a small frontier probing a large clustered edge
  // table.
  DiskManager dm;
  BufferPool pool(8192, &dm);
  std::unique_ptr<Table> edges;
  TableOptions topts;
  topts.storage = TableStorage::kClustered;
  topts.cluster_key = "fid";
  (void)Table::Create(&pool, "edges",
                      Schema({{"fid", TypeId::kInt},
                              {"tid", TypeId::kInt},
                              {"cost", TypeId::kInt}}),
                      topts, &edges);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; i++) {
    for (int64_t d = 0; d < 3; d++) {
      (void)edges->Insert(
          Tuple({Value(i), Value((i + d + 1) % n), Value(d + 1)}));
    }
  }
  std::vector<Tuple> frontier;
  for (int64_t i = 0; i < 64; i++) {
    frontier.push_back(Tuple({Value(i * 1000), Value(int64_t{7})}));
  }
  Schema fschema({{"nid", TypeId::kInt}, {"d2s", TypeId::kInt}});
  for (auto _ : state) {
    auto outer = std::make_unique<MaterializedExecutor>(frontier, fschema);
    IndexNestedLoopJoinExecutor join(std::move(outer), edges.get(), "fid",
                                     Col("nid"));
    std::vector<Tuple> out;
    (void)Collect(&join, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * frontier.size());
}
BENCHMARK(BM_IndexNestedLoopJoin);

}  // namespace
}  // namespace relgraph

BENCHMARK_MAIN();
