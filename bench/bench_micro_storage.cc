// Micro-benchmarks (google-benchmark) for the storage substrate: buffer
// pool hit/miss paths and B+-tree operations. These quantify the constants
// behind every relational operator in the figure benches.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/index/btree.h"
#include "src/storage/buffer_pool.h"

namespace relgraph {
namespace {

void BM_BufferPoolHit(benchmark::State& state) {
  DiskManager dm;
  BufferPool pool(64, &dm);
  page_id_t id;
  Page* page;
  (void)pool.NewPage(&id, &page);
  (void)pool.UnpinPage(id, true);
  for (auto _ : state) {
    Page* p;
    benchmark::DoNotOptimize(pool.FetchPage(id, &p));
    (void)pool.UnpinPage(id, false);
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  DiskManager dm;
  BufferPool pool(2, &dm);  // every fetch beyond 2 pages evicts
  std::vector<page_id_t> ids(16);
  for (auto& id : ids) {
    Page* p;
    (void)pool.NewPage(&id, &p);
    (void)pool.UnpinPage(id, true);
  }
  size_t i = 0;
  for (auto _ : state) {
    Page* p;
    benchmark::DoNotOptimize(pool.FetchPage(ids[i++ % ids.size()], &p));
    (void)pool.UnpinPage(ids[(i - 1) % ids.size()], false);
  }
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_BTreeInsert(benchmark::State& state) {
  DiskManager dm;
  BufferPool pool(4096, &dm);
  BTree tree;
  (void)BTree::Create(&pool, 8, &tree);
  std::string payload(8, 'p');
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert({i++, 0}, payload, true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreePointLookup(benchmark::State& state) {
  DiskManager dm;
  BufferPool pool(4096, &dm);
  BTree tree;
  (void)BTree::Create(&pool, 8, &tree);
  std::string payload(8, 'p');
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; i++) (void)tree.Insert({i, 0}, payload, true);
  Rng rng(1);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.SearchExact({rng.NextInt(0, n - 1), 0}, &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointLookup)->Arg(1000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  DiskManager dm;
  BufferPool pool(4096, &dm);
  BTree tree;
  (void)BTree::Create(&pool, 8, &tree);
  std::string payload(8, 'p');
  // 10 duplicate entries per key — the adjacency-list access pattern.
  for (int64_t k = 0; k < 10000; k++) {
    for (int64_t t = 0; t < 10; t++) {
      (void)tree.Insert({k, t}, payload, false);
    }
  }
  Rng rng(2);
  for (auto _ : state) {
    auto it = tree.Scan(rng.NextInt(0, 9999), rng.NextInt(0, 9999));
    BtKey key;
    std::string out;
    int64_t count = 0;
    while (count < 10 && it.Next(&key, &out)) count++;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BTreeRangeScan);

}  // namespace
}  // namespace relgraph

BENCHMARK_MAIN();
