// Extension bench (no paper counterpart): the SQL-text client
// (SqlPathFinder: parse + plan every statement, the paper's literal JDBC
// regime) versus the native operator-level client (PathFinder) running the
// same BSDJ algorithm on the same graphs. The gap isolates what the text
// interface costs on an embedded engine — the overhead the paper's
// simulated_statement_latency_us knob models for a networked RDBMS.
#include "bench_common.h"
#include "src/core/sql_path_finder.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("SQL-client overhead (extension)",
         "BSDJ via SQL text vs native operator plans, Power graphs",
         "same expansions and distances; SQL adds parse/plan cost per "
         "statement");
  BenchEnv env = GetEnv();
  std::printf("%10s %12s %12s %8s %12s %12s\n", "nodes", "native_s", "sql_s",
              "ratio", "native_stmt", "sql_stmt");
  const int64_t bases[] = {2000, 4000, 8000};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 300 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9300 + i);
    SharedGraph sg = SharedGraph::Make(list);

    auto native = sg.Finder(Algorithm::kBSDJ);
    AvgResult rn = RunQueries(native.get(), pairs);

    SqlPathFinderOptions opts;
    opts.algorithm = Algorithm::kBSDJ;
    std::unique_ptr<SqlPathFinder> sql_finder;
    Check(SqlPathFinder::Create(sg.graph.get(), opts, &sql_finder),
          "SqlPathFinder::Create");
    AvgResult rs;
    for (const auto& [s, t] : pairs) {
      PathQueryResult r;
      Check(sql_finder->Find(s, t, &r), "SqlPathFinder::Find");
      rs.time_s += static_cast<double>(r.stats.total_us) / 1e6;
      rs.statements += static_cast<double>(r.stats.statements);
      rs.total++;
    }
    rs.time_s /= rs.total;
    rs.statements /= rs.total;

    std::printf("%10lld %12.4f %12.4f %8.2f %12.1f %12.1f\n",
                static_cast<long long>(n), rn.time_s, rs.time_s,
                rn.time_s > 0 ? rs.time_s / rn.time_s : 0.0, rn.statements,
                rs.statements);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
