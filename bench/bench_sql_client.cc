// Extension bench (no paper counterpart): the SQL-text client
// (SqlPathFinder) versus the native operator-level client (PathFinder)
// running the same BSDJ algorithm on the same graphs — in both SQL
// regimes:
//
//   sql_text     — every statement re-parses and re-plans (plan cache
//                  disabled), the paper's literal JDBC regime;
//   sql_prepared — all statement templates prepared once in Create(),
//                  each iteration only binds fresh parameters (the
//                  parse-once / bind-many API this engine now defaults to).
//
// The text-vs-prepared gap isolates exactly what parse+plan costs per
// statement; the prepared-vs-native gap is what remains of the SQL
// surface (result materialization, statement accounting). Statement
// counts are identical across all three by construction.
#include "bench_common.h"
#include "src/core/sql_path_finder.h"

namespace relgraph {
namespace bench {
namespace {

AvgResult RunSqlQueries(
    SqlPathFinder* finder,
    const std::vector<std::pair<node_id_t, node_id_t>>& pairs) {
  AvgResult avg;
  for (const auto& [s, t] : pairs) {
    PathQueryResult r;
    Check(finder->Find(s, t, &r), "SqlPathFinder::Find");
    avg.time_s += static_cast<double>(r.stats.total_us) / 1e6;
    avg.statements += static_cast<double>(r.stats.statements);
    avg.expansions += static_cast<double>(r.stats.expansions);
    if (r.found) avg.found++;
    avg.total++;
  }
  avg.time_s /= avg.total;
  avg.statements /= avg.total;
  avg.expansions /= avg.total;
  return avg;
}

void Run() {
  Banner("SQL-client overhead (extension)",
         "BSDJ: native plans vs prepared SQL vs re-parsed SQL text, "
         "Power graphs",
         "same expansions, distances, and statement counts; text adds "
         "parse+plan per statement, prepared adds only bind+execute");
  BenchEnv env = GetEnv();
  std::printf("%10s %12s %12s %12s %10s %10s %12s\n", "nodes", "native_s",
              "prepared_s", "text_s", "prep_x", "text_x", "stmt");
  const int64_t bases[] = {2000, 4000, 8000};
  for (size_t i = 0; i < 3; i++) {
    int64_t n = Scaled(bases[i]);
    JsonContext("nodes", static_cast<double>(n));
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 300 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9300 + i);
    SharedGraph sg = SharedGraph::Make(list);

    auto native = sg.Finder(Algorithm::kBSDJ);
    AvgResult rn = RunQueries(native.get(), pairs);

    auto make_sql = [&](bool prepared) {
      SqlPathFinderOptions opts;
      opts.algorithm = Algorithm::kBSDJ;
      opts.use_prepared = prepared;
      opts.visited_table = prepared ? "SqlTVisitedPrep" : "SqlTVisitedText";
      std::unique_ptr<SqlPathFinder> finder;
      Check(SqlPathFinder::Create(sg.graph.get(), opts, &finder),
            "SqlPathFinder::Create");
      return finder;
    };

    auto prepared_finder = make_sql(/*prepared=*/true);
    int64_t prepares_before = sg.graph->db()->stats().prepares;
    AvgResult rp = RunSqlQueries(prepared_finder.get(), pairs);
    int64_t prepares_during = sg.graph->db()->stats().prepares -
                              prepares_before;  // must be 0: bind-only

    auto text_finder = make_sql(/*prepared=*/false);
    AvgResult rt = RunSqlQueries(text_finder.get(), pairs);

    JsonRecord("sql_prepared", rp);
    JsonRecord("sql_text", rt);

    std::printf(
        "%10lld %12.4f %12.4f %12.4f %10.2f %10.2f %12.1f%s\n",
        static_cast<long long>(n), rn.time_s, rp.time_s, rt.time_s,
        rn.time_s > 0 ? rp.time_s / rn.time_s : 0.0,
        rn.time_s > 0 ? rt.time_s / rn.time_s : 0.0, rp.statements,
        prepares_during == 0 ? "" : "  [WARN: prepared mode re-planned!]");
    if (rp.statements != rt.statements) {
      std::printf("  WARN: statement counts diverge between modes "
                  "(%g vs %g)\n",
                  rp.statements, rt.statements);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
