// Table 2: number of expansions and time for DJ / BDJ / BSDJ on Power
// graphs. The paper runs 20k-100k nodes and reports DJ only at 20k (the
// larger runs exceeded its 600 s budget); we scale the series down (see
// EXPERIMENTS.md) and likewise run DJ only on the smallest graph.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Table 2",
         "Exps (# expansions) and Time per query, Power graphs, DJ/BDJ/BSDJ",
         "DJ exps ~50x BDJ, ~140x BSDJ; BSDJ time ~1/2-1/3 of BDJ; DJ "
         "orders of magnitude slower than both");
  BenchEnv env = GetEnv();
  std::printf("%10s %12s %10s %12s %10s %12s %10s\n", "nodes", "DJ_exps",
              "DJ_s", "BDJ_exps", "BDJ_s", "BSDJ_exps", "BSDJ_s");

  const int64_t bases[] = {2000, 4000, 6000, 8000, 10000};
  for (size_t i = 0; i < 5; i++) {
    int64_t n = Scaled(bases[i]);
    JsonContext("nodes", static_cast<double>(n));
    EdgeList list = GenerateBarabasiAlbert(n, 2, WeightRange{1, 100}, 100 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9000 + i);

    SharedGraph sg = SharedGraph::Make(list);
    double dj_exps = -1, dj_time = -1;
    if (i == 0) {  // DJ only on the smallest graph, as in the paper
      auto dj = sg.Finder(Algorithm::kDJ);
      auto pairs_dj = MakeQueryPairs(n, std::min(env.queries, 3), 9000 + i);
      AvgResult r = RunQueries(dj.get(), pairs_dj);
      dj_exps = r.expansions;
      dj_time = r.time_s;
    }
    auto bdj = sg.Finder(Algorithm::kBDJ);
    AvgResult rb = RunQueries(bdj.get(), pairs);
    auto bsdj = sg.Finder(Algorithm::kBSDJ);
    AvgResult rs = RunQueries(bsdj.get(), pairs);

    if (dj_exps >= 0) {
      std::printf("%10lld %12.0f %10.3f %12.0f %10.3f %12.0f %10.3f\n",
                  static_cast<long long>(n), dj_exps, dj_time, rb.expansions,
                  rb.time_s, rs.expansions, rs.time_s);
    } else {
      std::printf("%10lld %12s %10s %12.0f %10.3f %12.0f %10.3f\n",
                  static_cast<long long>(n), ">budget", ">budget",
                  rb.expansions, rb.time_s, rs.expansions, rs.time_s);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
