// Table 3: Time, Exps (# expansions) and Vst (# visited nodes) for
// BSDJ / BBFS / BSEG(5) on Random graphs — the search-space vs
// set-at-a-time trade-off table.
#include "bench_common.h"

namespace relgraph {
namespace bench {
namespace {

void Run() {
  Banner("Table 3",
         "Time / Exps / Vst for BSDJ, BBFS, BSEG(5) on Random graphs",
         "BBFS: fewest exps but largest visited set; BSEG: ~1/3 the exps of "
         "BSDJ with slightly more visited nodes; BSEG fastest overall");
  BenchEnv env = GetEnv();
  std::printf("%10s | %8s %6s %8s | %8s %6s %8s | %8s %6s %8s\n", "nodes",
              "BSDJ_s", "exps", "vst", "BBFS_s", "exps", "vst", "BSEG5_s",
              "exps", "vst");
  const int64_t bases[] = {50000, 100000, 200000, 400000};
  for (size_t i = 0; i < 4; i++) {
    int64_t n = Scaled(bases[i]);
    EdgeList list =
        GenerateRandomGraph(n, 3 * n, WeightRange{1, 100}, 400 + i);
    auto pairs = MakeQueryPairs(n, env.queries, 9700 + i);
    SharedGraph sg = SharedGraph::Make(list);
    auto bsdj = sg.Finder(Algorithm::kBSDJ);
    AvgResult rs = RunQueries(bsdj.get(), pairs);
    auto bbfs = sg.Finder(Algorithm::kBBFS);
    AvgResult rf = RunQueries(bbfs.get(), pairs);
    auto bseg = sg.Finder(Algorithm::kBSEG, /*lthd=*/5);
    AvgResult rg = RunQueries(bseg.get(), pairs);
    std::printf(
        "%10lld | %8.3f %6.0f %8.0f | %8.3f %6.0f %8.0f | %8.3f %6.0f %8.0f\n",
        static_cast<long long>(n), rs.time_s, rs.expansions, rs.visited,
        rf.time_s, rf.expansions, rf.visited, rg.time_s, rg.expansions,
        rg.visited);
  }
}

}  // namespace
}  // namespace bench
}  // namespace relgraph

int main() { relgraph::bench::Run(); }
