#!/usr/bin/env python3
"""Perf regression gate: diff RELGRAPH_JSON bench runs against the
checked-in baseline and fail on latency regressions.

Usage:
    python3 bench/diff_bench.py --run build/smoke_1.json [smoke_2.json ...] \
        [--baseline BENCH_baseline.json] [--baseline-key ci_smoke] \
        [--tolerance 0.25] [--metric time_s]

The baseline file is BENCH_baseline.json at the repo root. The CI job runs
the smoke-scale bench_fig6a three times (RELGRAPH_QUERIES=4,
RELGRAPH_SCALE=0.2) and gates the per-record *minimum* wall-clock against
the `ci_smoke` record list, which was captured the same way (min of three
runs). Min-of-N is the noise treatment: scheduler interference only ever
adds time, so the minimum is the stable estimator a single run is not.

Records are matched on (experiment, label, context); a run record more
than `tolerance` (default 25%) slower than its baseline fails the job, as
does a baseline record missing from the run (a silently dropped benchmark
is a regression too). Counter metrics (statements, expansions, visited)
are compared exactly and across every run: they are deterministic, so
*any* drift is a behaviour change, not noise.

With --normalize (what CI uses), each record's latency is divided by the
total latency of its own run before comparison, so a uniformly faster or
slower machine cancels out: the gate then catches *structural* regressions
(one algorithm/graph-size cell slowing relative to the rest) across runner
classes, at the cost of missing a perfectly uniform slowdown. Without the
flag, absolute wall-clock is compared — the right mode when the run and
the baseline come from the same machine (local development).

The tolerance can also be set via RELGRAPH_BENCH_TOLERANCE. Absolute
wall-clock baselines are machine-specific — refresh the `ci_smoke` block
whenever the CI runner generation changes.

Rolling-window mode (--rolling-dir DIR [--window N] [--update-rolling]):
instead of the checked-in block, the baseline is built from the previous
runs stored in DIR (CI persists it in an actions cache keyed by runner
label, so the window always comes from the same runner class and never
needs the manual refresh the static baseline does). Record structure and
the deterministic counters come from the *newest* stored run; the gated
latency is the per-record minimum across the whole window (the same
noise treatment as min-of-N within one build, stretched across builds).
With --update-rolling, a PASSING comparison appends this build's merged
records as run-<epoch>.json and prunes the window to N entries — failing
runs never poison the baseline. When DIR is empty (first run on a fresh
cache) the comparison falls back to --baseline/--baseline-key and the
window is seeded. To reset after an intentional perf/counter change,
bump the cache key in the workflow.
"""

import argparse
import glob as globmod
import json
import os
import sys
import time

EXACT_METRICS = (
    "statements", "expansions", "visited", "found", "total",
    # Resilience counters: healthy bench fleets must not retry, trip
    # breakers, fail over, hedge, or shed — a nonzero value (or any drift
    # from the checked-in baseline) is a robustness regression.
    "retries", "failures", "breaker_opens", "failovers", "hedges", "sheds",
)


def record_key(rec):
    ctx = rec.get("context", {})
    ctx_key = tuple(sorted((k, v) for k, v in ctx.items()))
    return (rec.get("experiment", "?"), rec.get("label", "?"), ctx_key)


def fmt_key(key):
    experiment, label, ctx = key
    ctx_s = ", ".join(f"{k}={v:g}" for k, v in ctx)
    return f"{experiment} / {label} ({ctx_s})"


def merge_runs(run_files, metric, failures):
    """Per-record min of `metric` across runs; exact metrics must agree."""
    merged = {}
    for path in run_files:
        with open(path) as f:
            run = json.load(f)
        for rec in run:
            key = record_key(rec)
            metrics = rec.get("metrics", {})
            if key not in merged:
                merged[key] = dict(metrics)
                continue
            best = merged[key]
            for m in EXACT_METRICS:
                if m in best and m in metrics and best[m] != metrics[m]:
                    failures.append(
                        f"{fmt_key(key)}: {m} differs between runs "
                        f"({best[m]:g} vs {metrics[m]:g}) — deterministic "
                        f"counters must not vary")
            if metric in metrics and metric in best:
                best[metric] = min(best[metric], metrics[metric])
    return merged


def rolling_run_files(rolling_dir):
    """Window files, oldest first (named run-<epoch>.json)."""
    files = globmod.glob(os.path.join(rolling_dir, "run-*.json"))
    return sorted(files, key=lambda p: os.path.basename(p))


def load_rolling_baseline(rolling_dir, metric):
    """Baseline record list from the stored window: the newest run gives
    the record set and the deterministic counters; `metric` is the
    per-record minimum across every run in the window."""
    files = rolling_run_files(rolling_dir)
    if not files:
        return None, 0
    with open(files[-1]) as f:
        newest = json.load(f)
    best = {}
    for path in files:
        with open(path) as f:
            for rec in json.load(f):
                key = record_key(rec)
                t = rec.get("metrics", {}).get(metric)
                if t is None:
                    continue
                best[key] = t if key not in best else min(best[key], t)
    for rec in newest:
        key = record_key(rec)
        if key in best and metric in rec.get("metrics", {}):
            rec["metrics"][metric] = best[key]
    return newest, len(files)


def update_rolling(rolling_dir, run_by_key, window):
    """Appends this build's merged records and prunes to `window` files."""
    os.makedirs(rolling_dir, exist_ok=True)
    records = []
    for (experiment, label, ctx), metrics in sorted(run_by_key.items()):
        records.append({"experiment": experiment, "label": label,
                        "context": dict(ctx), "metrics": metrics})
    name = os.path.join(rolling_dir, "run-%013d.json" % int(time.time() * 1e3))
    with open(name, "w") as f:
        json.dump(records, f, indent=1)
    files = rolling_run_files(rolling_dir)
    for stale in files[:-window] if window > 0 else []:
        os.remove(stale)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run", required=True, nargs="+",
                        help="bench JSON file(s) from this build; latency is "
                             "gated on the per-record minimum across them")
    parser.add_argument("--baseline", default="BENCH_baseline.json")
    parser.add_argument("--baseline-key", default="ci_smoke",
                        help="top-level key in the baseline file holding the "
                             "record list to diff against")
    parser.add_argument("--rolling-dir", default=None,
                        help="directory of previous runs (run-*.json); when "
                             "it holds any, they replace the checked-in "
                             "baseline (see module docstring)")
    parser.add_argument("--window", type=int, default=5,
                        help="rolling-window size kept by --update-rolling")
    parser.add_argument("--update-rolling", action="store_true",
                        help="on PASS, append this build's merged records to "
                             "--rolling-dir and prune to --window entries")
    parser.add_argument("--metric", default="time_s",
                        help="latency metric to gate on")
    parser.add_argument("--normalize", action="store_true",
                        help="compare per-record latency *shares* of the run "
                             "total instead of absolute seconds (machine-"
                             "independent; used by CI)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "RELGRAPH_BENCH_TOLERANCE", "0.25")),
                        help="allowed fractional latency regression")
    args = parser.parse_args()

    baseline = None
    from_rolling = False
    baseline_desc = f"checked-in '{args.baseline_key}'"
    if args.rolling_dir:
        baseline, window_runs = load_rolling_baseline(args.rolling_dir,
                                                      args.metric)
        if baseline is not None:
            from_rolling = True
            baseline_desc = (f"rolling window ({window_runs} prior run(s) in "
                             f"{args.rolling_dir})")
        else:
            print(f"diff_bench: rolling dir {args.rolling_dir} is empty — "
                  f"falling back to the checked-in baseline, then seeding "
                  f"the window")
    if baseline is None:
        with open(args.baseline) as f:
            baseline_doc = json.load(f)
        baseline = baseline_doc.get(args.baseline_key)
        if baseline is None:
            print(f"FAIL: baseline file has no '{args.baseline_key}' "
                  f"record list")
            return 1

    failures = []
    run_by_key = merge_runs(args.run, args.metric, failures)

    def normalizer(records):
        total = sum(m.get(args.metric, 0.0) for m in records)
        return total if total > 0 else 1.0

    run_norm = base_norm = 1.0
    unit = "s"
    if args.normalize:
        run_norm = normalizer(list(run_by_key.values()))
        base_norm = normalizer([r.get("metrics", {}) for r in baseline])
        unit = " (share)"
    lines = []
    for base_rec in baseline:
        key = record_key(base_rec)
        run_m = run_by_key.get(key)
        if run_m is None:
            failures.append(f"missing from run: {fmt_key(key)}")
            continue
        base_m = base_rec.get("metrics", {})

        for metric in EXACT_METRICS:
            if metric in base_m and metric in run_m:
                if base_m[metric] != run_m[metric]:
                    failures.append(
                        f"{fmt_key(key)}: {metric} changed "
                        f"{base_m[metric]:g} -> {run_m[metric]:g} "
                        f"(deterministic counter; must be identical)")

        base_t = base_m.get(args.metric)
        run_t = run_m.get(args.metric)
        if base_t is None or run_t is None:
            failures.append(f"{fmt_key(key)}: metric {args.metric} absent")
            continue
        base_v = base_t / base_norm
        run_v = run_t / run_norm
        ratio = run_v / base_v if base_v > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{fmt_key(key)}: {args.metric} {base_v:.6f}{unit} -> "
                f"{run_v:.6f}{unit} "
                f"({ratio:.2f}x, tolerance {1.0 + args.tolerance:.2f}x)")
        lines.append(f"  {fmt_key(key)}: {base_v:.6f}{unit} -> "
                     f"{run_v:.6f}{unit} ({ratio:.2f}x) {verdict}")

    # Symmetric coverage check: a run record the baseline does not know is
    # gated against nothing, and under --normalize it silently dilutes
    # every other record's share. Against the checked-in baseline that
    # fails the job until the block is refreshed. Against the rolling
    # window it is only a notice: on PASS the window absorbs the new
    # record (--update-rolling) and gates it from the next run onward —
    # newly added benchmarks self-seed instead of failing forever.
    base_keys = {record_key(r) for r in baseline}
    for key in run_by_key:
        if key not in base_keys:
            if from_rolling:
                print(f"  note: new record {fmt_key(key)} — ungated this "
                      f"run; the rolling window absorbs it on PASS")
            else:
                failures.append(
                    f"missing from baseline: {fmt_key(key)} (refresh the "
                    f"'{args.baseline_key}' block to cover it)")

    print(f"diff_bench: {len(baseline)} baseline record(s) from "
          f"{baseline_desc}, {len(args.run)} run file(s), tolerance "
          f"+{args.tolerance:.0%} on {args.metric} (min across runs"
          f"{', normalized to run totals' if args.normalize else ''})")
    for line in lines:
        print(line)
    if failures:
        print(f"\nFAIL ({len(failures)} issue(s)):")
        for f_line in failures:
            print(f"  {f_line}")
        return 1
    if args.update_rolling and args.rolling_dir:
        update_rolling(args.rolling_dir, run_by_key, args.window)
        print(f"rolling window updated "
              f"({len(rolling_run_files(args.rolling_dir))} run(s) kept)")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
