// Dynamic graph maintenance (the paper's §7 future work): a road-style
// network that keeps changing — roads close, detours open — while shortest
// -path queries keep running over the same SegTable index, maintained
// incrementally instead of rebuilt.
//
//   $ ./example_dynamic_graph
#include <cstdio>
#include <memory>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/core/path_finder.h"
#include "src/core/segtable.h"
#include "src/graph/generators.h"
#include "src/graph/graph_store.h"

using namespace relgraph;

namespace {

int Die(const Status& st, const char* what) {
  std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // A 60x60 road grid (3600 junctions), weights = travel minutes.
  EdgeList list = GenerateGridGraph(60, 60, WeightRange{1, 10}, 4);
  std::printf("road network: %lld junctions, %zu road segments\n",
              static_cast<long long>(list.num_nodes), list.edges.size());

  Database db{DatabaseOptions{}};
  std::unique_ptr<GraphStore> graph;
  if (Status st = GraphStore::Create(&db, list, GraphStoreOptions{}, &graph);
      !st.ok()) {
    return Die(st, "GraphStore::Create");
  }

  SegTableOptions sopts;
  sopts.lthd = 12;
  std::unique_ptr<SegTable> segtable;
  SegTableBuildStats build_stats;
  Timer build_timer;
  if (Status st = SegTable::Build(&db, graph.get(), sopts, &segtable,
                                  &build_stats);
      !st.ok()) {
    return Die(st, "SegTable::Build");
  }
  double full_build_s = build_timer.ElapsedSeconds();
  std::printf("SegTable(lthd=%lld) built in %.2fs: %lld out / %lld in "
              "segments\n\n",
              static_cast<long long>(sopts.lthd), full_build_s,
              static_cast<long long>(segtable->num_out_entries()),
              static_cast<long long>(segtable->num_in_entries()));

  PathFinderOptions popts;
  popts.algorithm = Algorithm::kBSEG;
  std::unique_ptr<PathFinder> finder;
  if (Status st = PathFinder::Create(graph.get(), popts, &finder,
                                     segtable.get());
      !st.ok()) {
    return Die(st, "PathFinder::Create");
  }

  const node_id_t depot = 0;
  const node_id_t customer = list.num_nodes - 1;
  auto query = [&](const char* when) {
    PathQueryResult r;
    if (Status st = finder->Find(depot, customer, &r); !st.ok()) {
      std::exit(Die(st, "Find"));
    }
    std::printf("%-28s distance=%4lld  hops=%3zu  expansions=%lld\n", when,
                static_cast<long long>(r.distance), r.path.size(),
                static_cast<long long>(r.stats.expansions));
    return r;
  };

  PathQueryResult before = query("before any road works:");

  // Close five roads along the current best route (the classic worst case
  // for a precomputed index), maintaining the SegTable after each closure.
  Rng rng(99);
  int closed = 0;
  Timer maint_timer;
  int64_t maintained_rows = 0;
  for (size_t i = 1; i + 1 < before.path.size() && closed < 5; i += 2) {
    node_id_t a = before.path[i], b = before.path[i + 1];
    // Find the stored weight of edge a->b to delete precisely.
    for (const Edge& e : list.edges) {
      if (e.from == a && e.to == b) {
        if (Status st = graph->RemoveEdge(e); !st.ok()) continue;
        int64_t changed = 0;
        if (Status st = segtable->ApplyEdgeDeletion(graph.get(), e, &changed);
            !st.ok()) {
          return Die(st, "ApplyEdgeDeletion");
        }
        maintained_rows += changed;
        closed++;
        break;
      }
    }
  }
  std::printf("\nclosed %d roads on the best route; incremental maintenance "
              "touched %lld index rows in %.3fs (full rebuild took %.2fs)\n",
              closed, static_cast<long long>(maintained_rows),
              maint_timer.ElapsedSeconds(), full_build_s);

  PathQueryResult detour = query("after closures (detour):");

  // A new bypass opens, short-cutting three hops in the middle of the
  // current best route.
  size_t cut = detour.path.size() / 2;
  Edge bypass{detour.path[cut], detour.path[cut + 3], 1};
  if (Status st = graph->AddEdge(bypass); !st.ok()) {
    return Die(st, "AddEdge");
  }
  int64_t changed = 0;
  if (Status st = segtable->ApplyEdgeInsertion(bypass, &changed); !st.ok()) {
    return Die(st, "ApplyEdgeInsertion");
  }
  std::printf("\nopened a bypass %lld -> %lld (weight 1); maintenance "
              "touched %lld index rows\n",
              static_cast<long long>(bypass.from),
              static_cast<long long>(bypass.to),
              static_cast<long long>(changed));
  query("after the bypass opens:");
  return 0;
}
