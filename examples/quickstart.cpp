// Quickstart: store a small weighted graph in the relational engine and
// answer a shortest-path query with the bi-directional set Dijkstra
// algorithm (BSDJ) — the minimal end-to-end use of the public API.
//
//   $ ./example_quickstart
#include <cstdio>

#include "src/core/path_finder.h"
#include "src/graph/graph_store.h"

using namespace relgraph;

int main() {
  // The running example of the paper's Figure 1 (s=0, ..., t=10).
  EdgeList list;
  list.num_nodes = 11;
  auto add = [&](node_id_t u, node_id_t v, weight_t w) {
    list.edges.push_back({u, v, w});
    list.edges.push_back({v, u, w});  // undirected
  };
  add(0, 3, 6);  add(0, 2, 1);  add(0, 1, 2);   // s-d, s-c, s-b
  add(3, 2, 1);  add(2, 4, 3);  add(1, 4, 2);   // d-c, c-e, b-e
  add(4, 5, 7);  add(4, 6, 3);  add(4, 7, 8);   // e-f, e-g, e-h
  add(5, 7, 4);  add(6, 7, 9);  add(7, 10, 3);  // f-h, g-h, h-t
  add(3, 8, 7);  add(8, 9, 2);  add(9, 10, 8);  // d-i, i-j, j-t

  // 1. Open an embedded database (in-memory here; pass in_memory=false and
  //    a buffer size for the disk-backed configuration).
  Database db{DatabaseOptions{}};

  // 2. Load the graph into relational tables (TNodes + clustered TEdges).
  std::unique_ptr<GraphStore> graph;
  Status st = GraphStore::Create(&db, list, GraphStoreOptions{}, &graph);
  if (!st.ok()) {
    std::fprintf(stderr, "graph load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Create a path finder and run a query.
  PathFinderOptions options;
  options.algorithm = Algorithm::kBSDJ;
  std::unique_ptr<PathFinder> finder;
  st = PathFinder::Create(graph.get(), options, &finder);
  if (!st.ok()) {
    std::fprintf(stderr, "finder failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Optional: trace the SQL statements the search issues (the paper's
  // Listings 2-4 rendered against live loop variables).
  db.EnableStatementLog();

  PathQueryResult result;
  st = finder->Find(/*s=*/0, /*t=*/10, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!result.found) {
    std::printf("no path from 0 to 10\n");
    return 0;
  }

  std::printf("shortest distance 0 -> 10: %lld\n",
              static_cast<long long>(result.distance));
  std::printf("path:");
  for (node_id_t v : result.path) {
    std::printf(" %lld", static_cast<long long>(v));
  }
  std::printf("\n");
  std::printf(
      "stats: %lld expansions, %lld SQL statements, %lld visited rows, "
      "%.3f ms\n",
      static_cast<long long>(result.stats.expansions),
      static_cast<long long>(result.stats.statements),
      static_cast<long long>(result.stats.visited_rows),
      result.stats.total_us / 1000.0);

  std::printf("\nfirst statements of the search, as SQL:\n");
  const auto& log = db.statement_log();
  for (size_t i = 0; i < log.size() && i < 6; i++) {
    std::printf("  %zu: %.120s%s\n", i + 1, log[i].c_str(),
                log[i].size() > 120 ? "..." : "");
  }
  return 0;
}
