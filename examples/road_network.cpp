// Road-network routing: a grid-shaped road graph (the classic disk-based
// shortest-path setting) stored in the relational engine with a
// deliberately small buffer pool, demonstrating the paper's core premise —
// the graph does NOT fit in memory and the RDB machinery handles paging.
//
// Also shows the SegTable trade-off on repeated routing queries and prints
// buffer hit rates per query.
//
//   $ ./example_road_network [grid_side]
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/path_finder.h"
#include "src/core/segtable.h"
#include "src/graph/generators.h"

using namespace relgraph;

namespace {
void Fatal(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  int64_t side = argc > 1 ? std::atoll(argv[1]) : 120;
  if (side < 8 || side > 2000) {  // rejects garbage like flags or 0
    std::fprintf(stderr, "usage: %s [grid-side, 8..2000]\n", argv[0]);
    return 2;
  }
  std::printf("building a %lldx%lld road grid (%lld junctions)...\n",
              static_cast<long long>(side), static_cast<long long>(side),
              static_cast<long long>(side * side));
  // Edge weight = road segment travel time.
  EdgeList roads = GenerateGridGraph(side, side, WeightRange{3, 30}, 99);

  // Disk-backed database with a buffer pool far smaller than the graph:
  // the paper's "graph cannot fit into memory" regime.
  DatabaseOptions dopts;
  dopts.in_memory = false;
  dopts.buffer_pool_pages = 256;  // 1 MiB of cache
  Database db(dopts);
  std::unique_ptr<GraphStore> graph;
  Fatal(GraphStore::Create(&db, roads, GraphStoreOptions{}, &graph),
        "store graph");

  std::printf("precomputing SegTable (lthd=30) for the dispatch server...\n");
  SegTableOptions sopts;
  sopts.lthd = 30;
  std::unique_ptr<SegTable> segtable;
  Fatal(SegTable::Build(&db, graph.get(), sopts, &segtable), "segtable");

  std::unique_ptr<PathFinder> router;
  PathFinderOptions popts;
  popts.algorithm = Algorithm::kBSEG;
  Fatal(PathFinder::Create(graph.get(), popts, &router, segtable.get()),
        "router");

  auto junction = [&](int64_t r, int64_t c) { return r * side + c; };
  struct Trip {
    const char* name;
    node_id_t from, to;
  };
  Trip trips[] = {
      {"corner to corner", junction(0, 0), junction(side - 1, side - 1)},
      {"center to east edge", junction(side / 2, side / 2),
       junction(side / 2, side - 1)},
      {"north to south", junction(0, side / 2), junction(side - 1, side / 2)},
  };
  for (const Trip& trip : trips) {
    PathQueryResult r;
    Fatal(router->Find(trip.from, trip.to, &r), "route");
    double hit_rate =
        (r.stats.buffer_hits + r.stats.buffer_misses) > 0
            ? 100.0 * r.stats.buffer_hits /
                  (r.stats.buffer_hits + r.stats.buffer_misses)
            : 0.0;
    std::printf(
        "%-22s: travel time %5lld, %4zu segments, %4lld expansions, "
        "%7.2f ms, buffer hit rate %5.1f%%\n",
        trip.name, static_cast<long long>(r.distance), r.path.size() - 1,
        static_cast<long long>(r.stats.expansions), r.stats.total_us / 1000.0,
        hit_rate);
  }

  // Dynamic update: close a road (double its weight by adding a detour
  // penalty edge) and re-route — the RDB advantage the paper claims over
  // static index structures.
  std::printf("\nadding a new expressway across the middle...\n");
  Fatal(graph->AddEdge({junction(side / 2, 0), junction(side / 2, side - 1),
                        5}),
        "add edge");
  Fatal(graph->AddEdge({junction(side / 2, side - 1), junction(side / 2, 0),
                        5}),
        "add edge");
  // Note: SegTable is a precomputed index; after base-graph updates it
  // must be rebuilt to see the new road (paper §7 lists incremental
  // maintenance as future work). BSDJ reads the live tables directly:
  std::unique_ptr<PathFinder> live;
  PathFinderOptions lopts;
  lopts.algorithm = Algorithm::kBSDJ;
  Fatal(PathFinder::Create(graph.get(), lopts, &live), "live router");
  PathQueryResult r;
  Fatal(live->Find(junction(side / 2, 2), junction(side / 2, side - 3), &r),
        "route after update");
  std::printf("west-east trip on the updated network: travel time %lld over "
              "%zu segments (uses the new expressway: %s)\n",
              static_cast<long long>(r.distance), r.path.size() - 1,
              r.path.size() - 1 <= 6 ? "yes" : "no");
  return 0;
}
