// SegTable tuning tool: sweeps the index threshold lthd on a user-chosen
// graph and reports construction cost, index size, and query latency —
// the workflow §5.2 / Figure 7(c,d) implies a DBA would follow (the paper
// leaves "how to find an optimal lthd" as future work; this tool measures
// it empirically).
//
//   $ ./example_segtable_tuning [nodes] [lthd1 lthd2 ...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/rng.h"
#include "src/core/path_finder.h"
#include "src/core/segtable.h"
#include "src/graph/generators.h"

using namespace relgraph;

namespace {
void Fatal(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  int64_t nodes = argc > 1 ? std::atoll(argv[1]) : 20000;
  if (nodes < 100 || nodes > 5000000) {
    std::fprintf(stderr, "usage: %s [node count, 100..5000000]\n", argv[0]);
    return 2;
  }
  std::vector<weight_t> lthds;
  for (int i = 2; i < argc; i++) lthds.push_back(std::atoll(argv[i]));
  if (lthds.empty()) lthds = {5, 10, 20, 40};

  EdgeList list = GenerateBarabasiAlbert(nodes, 3, WeightRange{1, 100}, 1);
  Database db{DatabaseOptions{}};
  std::unique_ptr<GraphStore> graph;
  Fatal(GraphStore::Create(&db, list, GraphStoreOptions{}, &graph), "graph");

  // Fixed query mix shared across thresholds.
  Rng rng(42);
  std::vector<std::pair<node_id_t, node_id_t>> queries;
  for (int i = 0; i < 10; i++) {
    queries.emplace_back(rng.NextInt(0, nodes - 1), rng.NextInt(0, nodes - 1));
  }

  // Baseline: BSDJ without any index.
  double bsdj_ms = 0;
  {
    std::unique_ptr<PathFinder> finder;
    PathFinderOptions opts;
    opts.algorithm = Algorithm::kBSDJ;
    Fatal(PathFinder::Create(graph.get(), opts, &finder), "bsdj");
    for (auto [s, t] : queries) {
      PathQueryResult r;
      Fatal(finder->Find(s, t, &r), "query");
      bsdj_ms += r.stats.total_us / 1000.0;
    }
    bsdj_ms /= queries.size();
  }
  std::printf("%8s %12s %12s %12s %12s\n", "lthd", "build_s", "entries",
              "query_ms", "vs_BSDJ");
  std::printf("%8s %12s %12s %12.2f %12s\n", "(none)", "-", "-", bsdj_ms,
              "1.00x");

  int idx = 0;
  for (weight_t lthd : lthds) {
    SegTableOptions sopts;
    sopts.lthd = lthd;
    sopts.prefix = "seg" + std::to_string(idx++) + "_";
    std::unique_ptr<SegTable> segtable;
    SegTableBuildStats stats;
    Fatal(SegTable::Build(&db, graph.get(), sopts, &segtable, &stats),
          "segtable");
    std::unique_ptr<PathFinder> finder;
    PathFinderOptions opts;
    opts.algorithm = Algorithm::kBSEG;
    Fatal(PathFinder::Create(graph.get(), opts, &finder, segtable.get()),
          "bseg");
    double ms = 0;
    for (auto [s, t] : queries) {
      PathQueryResult r;
      Fatal(finder->Find(s, t, &r), "query");
      ms += r.stats.total_us / 1000.0;
    }
    ms /= queries.size();
    std::printf("%8lld %12.2f %12lld %12.2f %11.2fx\n",
                static_cast<long long>(lthd), stats.build_us / 1e6,
                static_cast<long long>(stats.out_entries + stats.in_entries),
                ms, bsdj_ms / ms);
  }
  std::printf(
      "\npick the lthd with the best query speedup the index budget "
      "allows. The optimum depends on per-statement overhead (paper Fig "
      "7(c) and EXPERIMENTS.md): embedded engines favour small lthd, "
      "client/server deployments mid-range lthd.\n");
  return 0;
}
