// Social-network degrees-of-separation — the paper's motivating workload
// ("the shortest path discovery in a social network between two
// individuals reveals how their relationship is built", §1).
//
// Builds a LiveJournal-like power-law friendship graph, stores it
// relationally, and answers a batch of "how are A and B connected?"
// queries with BSDJ and BSEG, printing the chain of intermediaries and
// comparing the two algorithms' work.
//
//   $ ./example_social_network [num_members]
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/core/path_finder.h"
#include "src/core/segtable.h"
#include "src/graph/generators.h"

using namespace relgraph;

namespace {
void Fatal(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  int64_t members = argc > 1 ? std::atoll(argv[1]) : 20000;
  if (members < 100 || members > 5000000) {
    std::fprintf(stderr, "usage: %s [member count, 100..5000000]\n", argv[0]);
    return 2;
  }
  std::printf("building a %lld-member friendship network...\n",
              static_cast<long long>(members));
  // Power-law degrees like a real social graph; weight models interaction
  // distance (1 = close friends, 100 = barely acquainted).
  EdgeList network =
      GenerateBarabasiAlbert(members, 4, WeightRange{1, 100}, 2024);

  Database db{DatabaseOptions{}};
  std::unique_ptr<GraphStore> graph;
  Fatal(GraphStore::Create(&db, network, GraphStoreOptions{}, &graph),
        "store graph");

  // Precompute a SegTable so repeated queries are cheap (Algorithm 2).
  std::printf("precomputing SegTable (lthd=5)...\n");
  SegTableOptions sopts;
  sopts.lthd = 5;
  std::unique_ptr<SegTable> segtable;
  SegTableBuildStats build;
  Fatal(SegTable::Build(&db, graph.get(), sopts, &segtable, &build),
        "build segtable");
  std::printf("  %lld out-segments, %lld in-segments, built in %.2fs\n",
              static_cast<long long>(build.out_entries),
              static_cast<long long>(build.in_entries),
              build.build_us / 1e6);

  std::unique_ptr<PathFinder> bsdj, bseg;
  PathFinderOptions o1;
  o1.algorithm = Algorithm::kBSDJ;
  Fatal(PathFinder::Create(graph.get(), o1, &bsdj), "bsdj");
  PathFinderOptions o2;
  o2.algorithm = Algorithm::kBSEG;
  Fatal(PathFinder::Create(graph.get(), o2, &bseg, segtable.get()), "bseg");

  Rng rng(7);
  for (int q = 0; q < 5; q++) {
    node_id_t a = rng.NextInt(0, members - 1);
    node_id_t b = rng.NextInt(0, members - 1);
    PathQueryResult r1, r2;
    Fatal(bsdj->Find(a, b, &r1), "bsdj query");
    Fatal(bseg->Find(a, b, &r2), "bseg query");
    std::printf("\nmember %lld -> member %lld: ", static_cast<long long>(a),
                static_cast<long long>(b));
    if (!r1.found) {
      std::printf("not connected\n");
      continue;
    }
    std::printf("connected at distance %lld via %zu hops\n",
                static_cast<long long>(r1.distance), r1.path.size() - 1);
    std::printf("  chain:");
    for (node_id_t v : r1.path) std::printf(" %lld", static_cast<long long>(v));
    std::printf("\n");
    std::printf(
        "  BSDJ: %5lld expansions %7.2f ms | BSEG(5): %5lld expansions "
        "%7.2f ms (same distance: %s)\n",
        static_cast<long long>(r1.stats.expansions),
        r1.stats.total_us / 1000.0,
        static_cast<long long>(r2.stats.expansions),
        r2.stats.total_us / 1000.0,
        r1.distance == r2.distance ? "yes" : "NO — BUG");
  }
  return 0;
}
