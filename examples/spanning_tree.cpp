// FEM generality: Prim's minimal spanning tree and label-path pattern
// matching through the same relational framework (paper §3.1). The MST
// models a cable-layout problem; the pattern query a metadata search.
//
//   $ ./example_spanning_tree [num_sites]
#include <cstdio>
#include <cstdlib>

#include "src/core/pattern_match.h"
#include "src/core/prim_mst.h"
#include "src/graph/generators.h"

using namespace relgraph;

namespace {
void Fatal(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main(int argc, char** argv) {
  int64_t sites = argc > 1 ? std::atoll(argv[1]) : 500;
  if (sites < 4 || sites > 1000000) {
    std::fprintf(stderr, "usage: %s [site count, 4..1000000]\n", argv[0]);
    return 2;
  }
  // A community-clustered set of sites; weight = cable cost between sites.
  EdgeList network =
      GenerateCommunityGraph(sites, 6, sites / 25, 0.7, WeightRange{1, 100},
                             77);
  Database db{DatabaseOptions{}};
  std::unique_ptr<GraphStore> graph;
  Fatal(GraphStore::Create(&db, network, GraphStoreOptions{}, &graph),
        "store graph");

  std::printf("connecting %lld sites with minimal cable...\n",
              static_cast<long long>(sites));
  MstResult mst;
  Fatal(PrimMst::Run(graph.get(), SqlMode::kNsql, /*root=*/0, &mst), "prim");
  std::printf("  %s spanning tree: %zu cables, total cost %lld "
              "(%lld FEM iterations, %lld SQL statements)\n",
              mst.connected ? "full" : "partial (graph disconnected)",
              mst.tree_edges.size(),
              static_cast<long long>(mst.total_weight),
              static_cast<long long>(mst.iterations),
              static_cast<long long>(mst.statements));
  std::printf("  first cables:");
  for (size_t i = 0; i < mst.tree_edges.size() && i < 5; i++) {
    std::printf(" (%lld-%lld:%lld)",
                static_cast<long long>(mst.tree_edges[i].from),
                static_cast<long long>(mst.tree_edges[i].to),
                static_cast<long long>(mst.tree_edges[i].weight));
  }
  std::printf("\n");

  // Pattern matching: find chains of sites whose labels (hash buckets,
  // standing in for node types) follow a required sequence.
  std::vector<int64_t> pattern = {1, 5, 9};
  PatternMatchResult pm;
  Fatal(LabelPathMatcher::Run(graph.get(), pattern, /*limit=*/3, &pm),
        "pattern");
  std::printf("\nlabel-path pattern 1->5->9: %lld matches "
              "(%lld iterations)\n",
              static_cast<long long>(pm.count),
              static_cast<long long>(pm.iterations));
  for (const auto& match : pm.matches) {
    std::printf("  match:");
    for (node_id_t v : match) std::printf(" %lld", static_cast<long long>(v));
    std::printf("\n");
  }
  return 0;
}
