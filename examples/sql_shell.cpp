// Interactive SQL shell over the embedded engine, pre-loaded with the
// paper's Figure-1 graph in TNodes/TEdges. Run it interactively:
//
//   $ ./example_sql_shell
//   sql> select count(*) from TEdges;
//   sql> select top 1 nid from TVisited where f = 0 and
//        d2s = (select min(d2s) from TVisited where f = 0);
//
// or let it demo the paper's Listing 2 statement sequence end to end
// (finding the s~t shortest path purely through SQL text):
//
//   $ ./example_sql_shell --demo
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/sql_path_finder.h"
#include "src/graph/graph_store.h"
#include "src/labels/label_builder.h"
#include "src/labels/labeled_path_finder.h"
#include "src/sql/sql_engine.h"

using namespace relgraph;

namespace {

EdgeList Figure1Graph() {
  EdgeList list;
  list.num_nodes = 11;
  auto add = [&](node_id_t u, node_id_t v, weight_t w) {
    list.edges.push_back({u, v, w});
    list.edges.push_back({v, u, w});
  };
  add(0, 3, 6);  add(0, 2, 1);  add(0, 1, 2);
  add(3, 2, 1);  add(2, 4, 3);  add(1, 4, 2);
  add(4, 5, 7);  add(4, 6, 3);  add(4, 7, 8);
  add(5, 7, 4);  add(6, 7, 9);  add(7, 10, 3);
  add(3, 8, 7);  add(8, 9, 2);  add(9, 10, 8);
  return list;
}

void PrintResult(const sql::SqlResult& r) {
  if (r.schema.NumColumns() == 0) {
    std::printf("ok (%lld row%s affected)\n",
                static_cast<long long>(r.affected),
                r.affected == 1 ? "" : "s");
    return;
  }
  for (size_t i = 0; i < r.schema.NumColumns(); i++) {
    std::printf("%s%s", i ? " | " : "", r.schema.column(i).name.c_str());
  }
  std::printf("\n");
  for (const Tuple& t : r.rows) {
    for (size_t i = 0; i < t.NumValues(); i++) {
      std::printf("%s%s", i ? " | " : "", t.value(i).ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu row%s)\n", r.rows.size(), r.rows.size() == 1 ? "" : "s");
}

int RunDemo(Database* db, GraphStore* graph) {
  std::printf("== demo: the paper's SQL client finding the shortest path "
              "0 ~> 10 on the Figure-1 graph ==\n\n");
  db->EnableStatementLog(64);

  std::unique_ptr<SqlPathFinder> finder;
  SqlPathFinderOptions opts;
  opts.algorithm = Algorithm::kBSDJ;
  Status st = SqlPathFinder::Create(graph, opts, &finder);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("expansion statement issued per forward round "
              "(Listing 4(2)):\n%s\n\n",
              finder->statements().expand_forward.c_str());

  PathQueryResult result;
  st = finder->Find(0, 10, &result);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("distance = %lld, path =",
              static_cast<long long>(result.distance));
  for (node_id_t n : result.path) {
    std::printf(" %lld", static_cast<long long>(n));
  }
  std::printf("\nexpansions = %lld, SQL statements issued = %lld\n",
              static_cast<long long>(result.stats.expansions),
              static_cast<long long>(result.stats.statements));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Database db{DatabaseOptions{}};
  std::unique_ptr<GraphStore> graph;
  Status st = GraphStore::Create(&db, Figure1Graph(), GraphStoreOptions{},
                                 &graph);
  if (!st.ok()) {
    std::fprintf(stderr, "graph load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  if (argc > 1 && std::strcmp(argv[1], "--demo") == 0) {
    return RunDemo(&db, graph.get());
  }

  sql::SqlEngine conn(&db);
  std::printf(
      "relgraph sql shell — tables: TNodes(nid), TEdges(fid, tid, cost).\n"
      "  \\q quits, --demo runs the paper's statement sequence.\n"
      "  \\prepare <sql>      parse+plan once, keep the handle\n"
      "  \\exec [k=v ...]     bind :params and run the prepared handle\n"
      "  \\stats              statement / prepare / plan-cache counters\n"
      "  \\labels <s> <t>     distance from the hub-label index (built on\n"
      "                      first use; exact FEM fallback when it cannot\n"
      "                      certify), \\labels alone prints hit/fallback\n"
      "                      counters\n");
  std::shared_ptr<sql::PreparedStatement> prepared;
  std::unique_ptr<LabelIndex> label_index;
  std::unique_ptr<LabeledPathFinder> labeled;
  std::string line, statement;
  while (true) {
    std::printf(statement.empty() ? "sql> " : "  -> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "\\q" || line == "quit" || line == "exit") break;
    statement += line;
    // `\`-commands are one-liners; SQL statements end with ';' (or a bare
    // newline flushes one-liners).
    size_t first = statement.find_first_not_of(" \t");
    const bool meta = first != std::string::npos && statement[first] == '\\';
    if (!meta && statement.find(';') == std::string::npos && !line.empty()) {
      statement += " ";
      continue;
    }
    if (statement.find_first_not_of(" ;\t") == std::string::npos) {
      statement.clear();
      continue;
    }
    size_t start0 = statement.find_first_not_of(" \t");
    // `\prepare <sql>` compiles once; `\exec k=v ...` re-binds and runs
    // the handle — the parse-once / bind-many loop the paper's client
    // assumes of its JDBC PreparedStatements. The command is the whole
    // first word, so typos and bare commands report usage instead of
    // falling through to the SQL parser.
    std::string meta_cmd;
    size_t meta_end = start0;
    if (start0 != std::string::npos && statement[start0] == '\\') {
      meta_end = statement.find_first_of(" \t", start0);
      if (meta_end == std::string::npos) meta_end = statement.size();
      meta_cmd = statement.substr(start0 + 1, meta_end - start0 - 1);
    }
    if (meta_cmd == "prepare") {
      std::string sql = statement.substr(meta_end);
      if (size_t semi = sql.find(';'); semi != std::string::npos) {
        sql.resize(semi);
      }
      if (sql.find_first_not_of(" \t") == std::string::npos) {
        std::printf("usage: \\prepare <sql>\n");
        statement.clear();
        continue;
      }
      Status s = conn.Prepare(sql, &prepared);
      if (s.ok()) {
        std::printf("prepared (total prepares: %lld). \\exec [k=v ...] runs "
                    "it without re-planning.\n",
                    static_cast<long long>(db.stats().prepares));
      } else {
        std::printf("error: %s\n", s.ToString().c_str());
      }
      statement.clear();
      continue;
    }
    if (meta_cmd == "exec") {
      if (prepared == nullptr) {
        std::printf("nothing prepared — use \\prepare <sql> first\n");
        statement.clear();
        continue;
      }
      sql::SqlParams params;
      size_t pos = meta_end;
      while (pos < statement.size()) {  // parse `name=int` bindings
        size_t eq = statement.find('=', pos);
        if (eq == std::string::npos) break;
        size_t key_start = statement.find_first_not_of(" \t,;", pos);
        std::string key = statement.substr(key_start, eq - key_start);
        size_t val_end = statement.find_first_of(" \t,;", eq + 1);
        if (val_end == std::string::npos) val_end = statement.size();
        params[key] =
            Value(static_cast<int64_t>(
                std::atoll(statement.substr(eq + 1, val_end - eq - 1).c_str())));
        pos = val_end;
      }
      sql::SqlResult r;
      Status s = prepared->Execute(params, &r);
      if (s.ok()) {
        PrintResult(r);
      } else {
        std::printf("error: %s\n", s.ToString().c_str());
      }
      statement.clear();
      continue;
    }
    if (meta_cmd == "labels") {
      std::string rest = statement.substr(meta_end);
      if (size_t semi = rest.find(';'); semi != std::string::npos) {
        rest.resize(semi);
      }
      long long qs = -1, qt = -1;
      const int parsed = std::sscanf(rest.c_str(), " %lld %lld", &qs, &qt);
      if (parsed > 0 && parsed < 2) {
        std::printf("usage: \\labels <s> <t>  (or bare \\labels for "
                    "counters)\n");
        statement.clear();
        continue;
      }
      if (labeled == nullptr && parsed == 2) {
        // Build lazily on the first query: a complete pruned-landmark
        // index over the current graph, FEM as the exact fallback.
        LabelBuildStats bstats;
        Status s2 = LabelBuilder::Build(graph.get(), "", LabelBuildOptions{},
                                        &label_index, &bstats);
        if (s2.ok()) {
          s2 = LabeledPathFinder::Create(graph.get(), label_index.get(),
                                         LabeledPathFinderOptions{}, &labeled);
        }
        if (!s2.ok()) {
          std::printf("label build failed: %s\n", s2.ToString().c_str());
          statement.clear();
          continue;
        }
        std::printf("built hub labels: %lld hubs, %lld label rows, %lld SQL "
                    "statements, %.1f ms\n",
                    static_cast<long long>(bstats.hubs),
                    static_cast<long long>(bstats.entries),
                    static_cast<long long>(bstats.statements),
                    bstats.build_us / 1e3);
      }
      if (parsed == 2) {
        PathQueryResult r;
        bool served = false;
        Status s2 = labeled->Distance(static_cast<node_id_t>(qs),
                                      static_cast<node_id_t>(qt), &r, &served);
        if (!s2.ok()) {
          std::printf("error: %s\n", s2.ToString().c_str());
        } else if (!r.found) {
          std::printf("no path (%s)\n",
                      served ? "served from labels" : "FEM fallback");
        } else {
          std::printf("distance = %lld (%s, %lld statement%s, %lld us)\n",
                      static_cast<long long>(r.distance),
                      served ? "served from labels" : "FEM fallback",
                      static_cast<long long>(r.stats.statements),
                      r.stats.statements == 1 ? "" : "s",
                      static_cast<long long>(r.stats.total_us));
        }
      } else if (labeled == nullptr) {
        std::printf("no label index yet — \\labels <s> <t> builds it on "
                    "first use\n");
      } else {
        const LabelServeCounters& c = labeled->counters();
        std::printf("label_hits=%lld fallbacks=%lld stale=%lld inexact=%lld "
                    "path=%lld\n",
                    static_cast<long long>(c.label_hits),
                    static_cast<long long>(c.fallbacks),
                    static_cast<long long>(c.stale_fallbacks),
                    static_cast<long long>(c.inexact_fallbacks),
                    static_cast<long long>(c.path_fallbacks));
      }
      statement.clear();
      continue;
    }
    if (meta_cmd == "stats") {
      const DatabaseStats& st = db.stats();
      std::printf("statements=%lld prepares=%lld plan_cache_hits=%lld\n",
                  static_cast<long long>(st.statements),
                  static_cast<long long>(st.prepares),
                  static_cast<long long>(st.plan_cache_hits));
      statement.clear();
      continue;
    }
    if (meta_cmd == "q") break;
    if (!meta_cmd.empty()) {
      std::printf("unknown command \\%s (try \\prepare, \\exec, \\stats, "
                  "\\labels, \\q)\n",
                  meta_cmd.c_str());
      statement.clear();
      continue;
    }
    // `explain <select>` prints the physical plan instead of running it.
    size_t start = statement.find_first_not_of(" \t");
    if (statement.compare(start, 8, "explain ") == 0 ||
        statement.compare(start, 8, "EXPLAIN ") == 0) {
      std::string plan;
      Status s = conn.Explain(statement.substr(start + 8), &plan);
      std::printf("%s", s.ok() ? plan.c_str()
                               : ("error: " + s.ToString() + "\n").c_str());
      statement.clear();
      continue;
    }
    sql::SqlResult r;
    Status s = conn.Execute(statement, &r);
    if (s.ok()) {
      PrintResult(r);
    } else {
      std::printf("error: %s\n", s.ToString().c_str());
    }
    statement.clear();
  }
  return 0;
}
