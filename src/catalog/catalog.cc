#include "src/catalog/catalog.h"

namespace relgraph {

Status Catalog::CreateTable(const std::string& name, Schema schema,
                            TableOptions options, Table** out) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  std::unique_ptr<Table> table;
  RELGRAPH_RETURN_IF_ERROR(
      Table::Create(pool_, name, std::move(schema), std::move(options),
                    &table));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  version_++;
  if (out != nullptr) *out = raw;
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table " + name + " does not exist");
  }
  version_++;
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace relgraph
