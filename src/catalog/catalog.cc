#include "src/catalog/catalog.h"

namespace relgraph {

Status Catalog::CreateTable(const std::string& name, Schema schema,
                            TableOptions options, Table** out) {
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  std::unique_ptr<Table> table;
  RELGRAPH_RETURN_IF_ERROR(
      Table::Create(pool_, name, std::move(schema), std::move(options),
                    &table));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  BumpVersion();
  if (out != nullptr) *out = raw;
  return Status::OK();
}

Status Catalog::AttachTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  tables_[name] = std::move(table);
  BumpVersion();
  return Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table " + name + " does not exist");
  }
  BumpVersion();
  return Status::OK();
}

Status Catalog::CreateSecondaryIndex(Table* table, const std::string& column,
                                     bool unique, const std::string& name) {
  RELGRAPH_RETURN_IF_ERROR(table->CreateSecondaryIndex(column, unique, name));
  // New access path: cached plans must get a chance to pick it up.
  BumpVersion();
  return Status::OK();
}

Status Catalog::DropSecondaryIndex(Table* table, const std::string& name) {
  RELGRAPH_RETURN_IF_ERROR(table->DropSecondaryIndex(name));
  // Plans probing the dropped index would fail at open; invalidate them.
  BumpVersion();
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace relgraph
