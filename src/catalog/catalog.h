#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/table.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"

namespace relgraph {

/// Name -> Table directory for one database instance. (The engine is
/// embedded; DDL is a single-threaded setup operation, while the version
/// below is read by every prepared-statement execution on any thread.)
///
/// The catalog carries a monotonically increasing *version*, bumped on
/// every schema change (table create/drop, index create/drop). Prepared
/// statements stamp the version they were planned against and re-plan when
/// it moves — the invalidation protocol behind the engine's plan cache.
/// Index DDL — whether it arrives as a SQL CREATE/DROP INDEX statement or
/// as a native call during GraphStore/VisitedTable setup — goes through
/// the CreateSecondaryIndex/DropSecondaryIndex methods below, so *every*
/// access-path change invalidates, not just the SQL-surface ones.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }

  /// Creates a table; fails with AlreadyExists on a name clash.
  Status CreateTable(const std::string& name, Schema schema,
                     TableOptions options, Table** out);

  /// Adopts an already-constructed table (snapshot attach path: the table
  /// was rebuilt over existing pages with Table::Attach, not created).
  /// Fails with AlreadyExists on a name clash; bumps the catalog version.
  Status AttachTable(std::unique_ptr<Table> table);

  /// Returns nullptr when absent.
  Table* GetTable(const std::string& name);

  /// Drops a table definition (its pages are not reclaimed; the engine has
  /// no free-space map, matching its append-only disk manager).
  Status DropTable(const std::string& name);

  /// Catalog-owned index DDL: delegates to the table and bumps the catalog
  /// version so prepared handles re-plan against the new access paths.
  /// `table` may also be a table this catalog does not own (tests build
  /// bare Tables); the version bump is what matters for the handles
  /// planned against this database. See Table::CreateSecondaryIndex for
  /// the index semantics and `name`.
  Status CreateSecondaryIndex(Table* table, const std::string& column,
                              bool unique,
                              const std::string& name = std::string());
  Status DropSecondaryIndex(Table* table, const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::atomic<uint64_t> version_{1};
};

}  // namespace relgraph
