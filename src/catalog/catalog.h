#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/table.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"

namespace relgraph {

/// Name -> Table directory for one database instance. (The engine is
/// embedded and single-session; the catalog is the only metadata store.)
///
/// The catalog carries a monotonically increasing *version*, bumped on
/// every schema change (table create/drop, index create/drop via the SQL
/// layer). Prepared statements stamp the version they were planned
/// against and re-plan when it moves — the invalidation protocol behind
/// the engine's plan cache. Index changes made by calling
/// Table::CreateSecondaryIndex directly (outside SQL DDL) do not bump the
/// version; the SQL layer is the invalidation boundary.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  uint64_t version() const { return version_; }
  void BumpVersion() { version_++; }

  /// Creates a table; fails with AlreadyExists on a name clash.
  Status CreateTable(const std::string& name, Schema schema,
                     TableOptions options, Table** out);

  /// Returns nullptr when absent.
  Table* GetTable(const std::string& name);

  /// Drops a table definition (its pages are not reclaimed; the engine has
  /// no free-space map, matching its append-only disk manager).
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t version_ = 1;
};

}  // namespace relgraph
