#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/table.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"

namespace relgraph {

/// Name -> Table directory for one database instance. (The engine is
/// embedded and single-session; the catalog is the only metadata store.)
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Creates a table; fails with AlreadyExists on a name clash.
  Status CreateTable(const std::string& name, Schema schema,
                     TableOptions options, Table** out);

  /// Returns nullptr when absent.
  Table* GetTable(const std::string& name);

  /// Drops a table definition (its pages are not reclaimed; the engine has
  /// no free-space map, matching its append-only disk manager).
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

 private:
  BufferPool* pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace relgraph
