#include "src/catalog/table.h"

#include <cassert>
#include <cstring>

namespace relgraph {

namespace {

/// 8-byte payload of a secondary index over a *clustered* table: the row's
/// (unique) cluster key value.
std::string EncodeClusterKey(int64_t key) {
  std::string out(sizeof(int64_t), '\0');
  std::memcpy(out.data(), &key, sizeof(int64_t));
  return out;
}

int64_t DecodeClusterKey(std::string_view payload) {
  int64_t key;
  std::memcpy(&key, payload.data(), sizeof(int64_t));
  return key;
}

}  // namespace

size_t Table::FixedWidth(const Schema& schema) {
  size_t n = schema.NumColumns();
  return (n + 7) / 8 + 8 * n;
}

Status Table::Create(BufferPool* pool, std::string name, Schema schema,
                     TableOptions options, std::unique_ptr<Table>* out) {
  auto table = std::unique_ptr<Table>(new Table());
  table->pool_ = pool;
  table->name_ = std::move(name);
  table->schema_ = std::move(schema);
  table->options_ = std::move(options);

  if (table->options_.storage == TableStorage::kClustered) {
    for (const auto& col : table->schema_.columns()) {
      if (col.type == TypeId::kVarchar) {
        return Status::NotSupported(
            "clustered storage requires a fixed-width schema");
      }
    }
    int idx = table->schema_.Find(table->options_.cluster_key);
    if (idx < 0) {
      return Status::InvalidArgument("cluster key column not in schema");
    }
    if (table->schema_.column(idx).type != TypeId::kInt) {
      return Status::NotSupported("cluster key must be INT");
    }
    table->cluster_key_idx_ = static_cast<size_t>(idx);
    table->fixed_width_ = FixedWidth(table->schema_);
    RELGRAPH_RETURN_IF_ERROR(
        BTree::Create(pool, static_cast<uint16_t>(table->fixed_width_),
                      &table->clustered_));
  } else {
    RELGRAPH_RETURN_IF_ERROR(HeapFile::Create(pool, &table->heap_));
  }
  *out = std::move(table);
  return Status::OK();
}

TablePersistentState Table::ExportState() const {
  TablePersistentState st;
  st.name = name_;
  st.schema = schema_;
  st.options = options_;
  st.num_rows = num_rows_;
  st.next_tie = next_tie_;
  if (options_.storage == TableStorage::kClustered) {
    st.clustered_root = clustered_.root();
    st.clustered_entries = clustered_.num_entries();
  } else {
    st.heap_first = heap_.first_page();
    st.heap_last = heap_.last_page();
  }
  for (const auto& idx : indexes_) {
    TablePersistentState::IndexState is;
    is.name = idx.name;
    is.column = idx.column;
    is.unique = idx.unique;
    is.root = idx.tree.root();
    is.entries = idx.tree.num_entries();
    st.indexes.push_back(std::move(is));
  }
  return st;
}

Status Table::Attach(BufferPool* pool, const TablePersistentState& state,
                     std::unique_ptr<Table>* out) {
  auto table = std::unique_ptr<Table>(new Table());
  table->pool_ = pool;
  table->name_ = state.name;
  table->schema_ = state.schema;
  table->options_ = state.options;
  table->num_rows_ = state.num_rows;
  table->next_tie_ = state.next_tie;

  if (table->options_.storage == TableStorage::kClustered) {
    int idx = table->schema_.Find(table->options_.cluster_key);
    if (idx < 0 || table->schema_.column(idx).type != TypeId::kInt) {
      return Status::Corruption("manifest cluster key '" +
                                table->options_.cluster_key +
                                "' is not an INT column of table " +
                                table->name_);
    }
    table->cluster_key_idx_ = static_cast<size_t>(idx);
    table->fixed_width_ = FixedWidth(table->schema_);
    table->clustered_ =
        BTree::Open(pool, state.clustered_root,
                    static_cast<uint16_t>(table->fixed_width_),
                    state.clustered_entries);
  } else {
    table->heap_ = HeapFile::Open(pool, state.heap_first, state.heap_last);
  }
  for (const auto& is : state.indexes) {
    int col = table->schema_.Find(is.column);
    if (col < 0 || table->schema_.column(col).type != TypeId::kInt) {
      return Status::Corruption("manifest index column '" + is.column +
                                "' is not an INT column of table " +
                                table->name_);
    }
    SecondaryIndex si;
    si.name = is.name;
    si.column = is.column;
    si.column_idx = static_cast<size_t>(col);
    si.unique = is.unique;
    si.tree = BTree::Open(pool, is.root, /*payload_size=*/8, is.entries);
    table->indexes_.push_back(std::move(si));
  }
  *out = std::move(table);
  return Status::OK();
}

Status Table::CheckConsistency() const {
  if (options_.storage == TableStorage::kClustered) {
    RELGRAPH_RETURN_IF_ERROR(clustered_.CheckIntegrity());
    if (clustered_.num_entries() != num_rows_) {
      return Status::Corruption(
          "table " + name_ + ": clustered tree has " +
          std::to_string(clustered_.num_entries()) + " entries, row count is " +
          std::to_string(num_rows_));
    }
  } else {
    int64_t live = 0;
    RELGRAPH_RETURN_IF_ERROR(heap_.CheckConsistency(&live));
    if (live != num_rows_) {
      return Status::Corruption("table " + name_ + ": heap holds " +
                                std::to_string(live) +
                                " live records, row count is " +
                                std::to_string(num_rows_));
    }
  }
  for (const auto& idx : indexes_) {
    RELGRAPH_RETURN_IF_ERROR(idx.tree.CheckIntegrity());
  }
  return Status::OK();
}

std::string Table::SerializeClustered(const Tuple& tuple) const {
  std::string bytes = tuple.Serialize(schema_);
  // NULL columns shrink the serialization below the fixed width; pad so the
  // tree's fixed-size payload contract holds (padding is ignored on read).
  bytes.resize(fixed_width_, 0);
  return bytes;
}

Status Table::Insert(const Tuple& tuple, RowRef* ref) {
  if (tuple.NumValues() != schema_.NumColumns()) {
    return Status::InvalidArgument("arity mismatch on insert into " + name_);
  }
  if (options_.storage == TableStorage::kClustered) {
    const Value& keyval = tuple.value(cluster_key_idx_);
    if (keyval.IsNull()) {
      return Status::InvalidArgument("NULL cluster key");
    }
    BtKey key{keyval.AsInt(), options_.cluster_unique ? 0 : next_tie_++};
    RELGRAPH_RETURN_IF_ERROR(clustered_.Insert(key, SerializeClustered(tuple),
                                               options_.cluster_unique));
    RELGRAPH_RETURN_IF_ERROR(InsertClusteredIndexEntriesFor(tuple, key));
    num_rows_++;
    if (ref != nullptr) ref->key = key;
    return Status::OK();
  }
  Rid rid;
  // Uniqueness must be checked before touching the heap so a duplicate key
  // does not leave an orphan row.
  for (auto& idx : indexes_) {
    if (!idx.unique) continue;
    const Value& v = tuple.value(idx.column_idx);
    if (v.IsNull()) continue;
    BtKey probe{v.AsInt(), 0};
    std::string ignored;
    if (idx.tree.SearchExact(probe, &ignored).ok()) {
      return Status::AlreadyExists("duplicate key on index " + idx.column);
    }
  }
  RELGRAPH_RETURN_IF_ERROR(heap_.Insert(tuple.Serialize(schema_), &rid));
  RELGRAPH_RETURN_IF_ERROR(InsertIndexEntriesFor(tuple, rid));
  num_rows_++;
  if (ref != nullptr) ref->rid = rid;
  return Status::OK();
}

Status Table::InsertIndexEntriesFor(const Tuple& tuple, const Rid& rid) {
  for (auto& idx : indexes_) {
    const Value& v = tuple.value(idx.column_idx);
    if (v.IsNull()) continue;  // NULLs are not indexed
    BtKey key{v.AsInt(), idx.unique ? 0 : RidTie(rid)};
    RELGRAPH_RETURN_IF_ERROR(idx.tree.Insert(key, EncodeRid(rid), idx.unique));
  }
  return Status::OK();
}

Status Table::DeleteIndexEntriesFor(const Tuple& tuple, const Rid& rid) {
  for (auto& idx : indexes_) {
    const Value& v = tuple.value(idx.column_idx);
    if (v.IsNull()) continue;
    BtKey key{v.AsInt(), idx.unique ? 0 : RidTie(rid)};
    RELGRAPH_RETURN_IF_ERROR(idx.tree.Delete(key));
  }
  return Status::OK();
}

// Secondary entries over a clustered table use the (unique) cluster key as
// both the duplicate tiebreaker and the payload.
Status Table::InsertClusteredIndexEntriesFor(const Tuple& tuple,
                                             const BtKey& key) {
  for (auto& idx : indexes_) {
    const Value& v = tuple.value(idx.column_idx);
    if (v.IsNull()) continue;
    BtKey entry{v.AsInt(), idx.unique ? 0 : key.key};
    RELGRAPH_RETURN_IF_ERROR(
        idx.tree.Insert(entry, EncodeClusterKey(key.key), idx.unique));
  }
  return Status::OK();
}

Status Table::DeleteClusteredIndexEntriesFor(const Tuple& tuple,
                                             const BtKey& key) {
  for (auto& idx : indexes_) {
    const Value& v = tuple.value(idx.column_idx);
    if (v.IsNull()) continue;
    BtKey entry{v.AsInt(), idx.unique ? 0 : key.key};
    RELGRAPH_RETURN_IF_ERROR(idx.tree.Delete(entry));
  }
  return Status::OK();
}

Status Table::CreateSecondaryIndex(const std::string& column, bool unique,
                                   const std::string& name) {
  if (options_.storage == TableStorage::kClustered &&
      !options_.cluster_unique) {
    return Status::NotSupported(
        "secondary indexes on clustered tables require a unique cluster key");
  }
  if (options_.storage == TableStorage::kClustered &&
      column == options_.cluster_key) {
    return Status::AlreadyExists("cluster key already indexes " + column);
  }
  int idx = schema_.Find(column);
  if (idx < 0) return Status::InvalidArgument("no column " + column);
  if (schema_.column(idx).type != TypeId::kInt) {
    return Status::NotSupported("only INT columns can be indexed");
  }
  for (const auto& existing : indexes_) {
    if (existing.column == column) {
      return Status::AlreadyExists("index on " + column + " already exists");
    }
  }
  SecondaryIndex si;
  si.name = name.empty() ? column : name;
  si.column = column;
  si.column_idx = static_cast<size_t>(idx);
  si.unique = unique;
  RELGRAPH_RETURN_IF_ERROR(BTree::Create(pool_, 8, &si.tree));
  // Backfill existing rows.
  if (options_.storage == TableStorage::kClustered) {
    BTree::Iterator it = clustered_.ScanAll();
    BtKey key;
    std::string record;
    while (it.Next(&key, &record)) {
      Tuple tuple;
      RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, record, &tuple));
      const Value& v = tuple.value(si.column_idx);
      if (v.IsNull()) continue;
      BtKey entry{v.AsInt(), si.unique ? 0 : key.key};
      RELGRAPH_RETURN_IF_ERROR(
          si.tree.Insert(entry, EncodeClusterKey(key.key), si.unique));
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  } else {
    HeapFile::Iterator it = heap_.Scan();
    Rid rid;
    std::string record;
    while (it.Next(&rid, &record)) {
      Tuple tuple;
      RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, record, &tuple));
      const Value& v = tuple.value(si.column_idx);
      if (v.IsNull()) continue;
      BtKey key{v.AsInt(), si.unique ? 0 : RidTie(rid)};
      RELGRAPH_RETURN_IF_ERROR(si.tree.Insert(key, EncodeRid(rid), si.unique));
    }
  }
  indexes_.push_back(std::move(si));
  return Status::OK();
}

Status Table::DropSecondaryIndex(const std::string& name) {
  for (int pass = 0; pass < 2; pass++) {  // by name first, then by column
    for (size_t i = 0; i < indexes_.size(); i++) {
      const std::string& key = pass == 0 ? indexes_[i].name
                                         : indexes_[i].column;
      if (key == name) {
        // The tree's pages are abandoned, not reclaimed — same policy as
        // DropTable (the engine's disk manager is append-only).
        indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(i));
        return Status::OK();
      }
    }
  }
  if (options_.storage == TableStorage::kClustered &&
      name == options_.cluster_key) {
    return Status::InvalidArgument("cannot drop the cluster key of " + name_);
  }
  return Status::NotFound("no index " + name + " on " + name_);
}

bool Table::HasIndexOn(const std::string& column) const {
  if (options_.storage == TableStorage::kClustered &&
      column == options_.cluster_key) {
    return true;
  }
  for (const auto& idx : indexes_) {
    if (idx.column == column) return true;
  }
  return false;
}

Status Table::LookupUnique(const std::string& column, int64_t key, Tuple* out,
                           RowRef* ref) {
  access_stats_.point_lookups.fetch_add(1, std::memory_order_relaxed);
  if (options_.storage == TableStorage::kClustered &&
      column == options_.cluster_key) {
    if (!options_.cluster_unique) {
      return Status::InvalidArgument("no unique access path on " + column);
    }
    BtKey k{key, 0};
    std::string payload;
    RELGRAPH_RETURN_IF_ERROR(clustered_.SearchExact(k, &payload));
    RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, payload, out));
    if (ref != nullptr) ref->key = k;
    return Status::OK();
  }
  for (auto& idx : indexes_) {
    if (idx.column != column) continue;
    if (!idx.unique) {
      return Status::InvalidArgument("index on " + column + " is not unique");
    }
    std::string payload;
    RELGRAPH_RETURN_IF_ERROR(idx.tree.SearchExact(BtKey{key, 0}, &payload));
    if (options_.storage == TableStorage::kClustered) {
      BtKey k{DecodeClusterKey(payload), 0};
      std::string record;
      RELGRAPH_RETURN_IF_ERROR(clustered_.SearchExact(k, &record));
      RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, record, out));
      if (ref != nullptr) ref->key = k;
      return Status::OK();
    }
    Rid rid = DecodeRid(payload);
    std::string record;
    RELGRAPH_RETURN_IF_ERROR(heap_.Get(rid, &record));
    RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, record, out));
    if (ref != nullptr) ref->rid = rid;
    return Status::OK();
  }
  return Status::InvalidArgument("no unique index on " + column);
}

Status Table::UpdateRow(const RowRef& ref, const Tuple& tuple) {
  if (tuple.NumValues() != schema_.NumColumns()) {
    return Status::InvalidArgument("arity mismatch on update of " + name_);
  }
  if (options_.storage == TableStorage::kClustered) {
    const Value& keyval = tuple.value(cluster_key_idx_);
    if (keyval.IsNull() || keyval.AsInt() != ref.key.key) {
      return Status::NotSupported("cluster key is immutable under update");
    }
    if (!indexes_.empty()) {
      // Read the old row so secondary entries whose key changed move.
      std::string old_payload;
      RELGRAPH_RETURN_IF_ERROR(clustered_.SearchExact(ref.key, &old_payload));
      Tuple old_tuple;
      RELGRAPH_RETURN_IF_ERROR(
          Tuple::Deserialize(schema_, old_payload, &old_tuple));
      RELGRAPH_RETURN_IF_ERROR(
          clustered_.UpdatePayload(ref.key, SerializeClustered(tuple)));
      for (auto& idx : indexes_) {
        const Value& oldv = old_tuple.value(idx.column_idx);
        const Value& newv = tuple.value(idx.column_idx);
        if (oldv.Compare(newv) == 0) continue;
        if (!oldv.IsNull()) {
          BtKey entry{oldv.AsInt(), idx.unique ? 0 : ref.key.key};
          RELGRAPH_RETURN_IF_ERROR(idx.tree.Delete(entry));
        }
        if (!newv.IsNull()) {
          BtKey entry{newv.AsInt(), idx.unique ? 0 : ref.key.key};
          RELGRAPH_RETURN_IF_ERROR(idx.tree.Insert(
              entry, EncodeClusterKey(ref.key.key), idx.unique));
        }
      }
      return Status::OK();
    }
    return clustered_.UpdatePayload(ref.key, SerializeClustered(tuple));
  }
  // Heap: read the old tuple first so index entries can be maintained.
  std::string old_bytes;
  RELGRAPH_RETURN_IF_ERROR(heap_.Get(ref.rid, &old_bytes));
  Tuple old_tuple;
  RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, old_bytes, &old_tuple));

  std::string new_bytes = tuple.Serialize(schema_);
  Status st = heap_.Update(ref.rid, new_bytes);
  Rid rid = ref.rid;
  if (st.IsResourceExhausted()) {
    // Row grew: relocate it. All index entries must follow the new RID.
    RELGRAPH_RETURN_IF_ERROR(DeleteIndexEntriesFor(old_tuple, ref.rid));
    RELGRAPH_RETURN_IF_ERROR(heap_.Delete(ref.rid));
    RELGRAPH_RETURN_IF_ERROR(heap_.Insert(new_bytes, &rid));
    RELGRAPH_RETURN_IF_ERROR(InsertIndexEntriesFor(tuple, rid));
    return Status::OK();
  }
  RELGRAPH_RETURN_IF_ERROR(st);
  // In-place update: refresh only the indexes whose key changed.
  for (auto& idx : indexes_) {
    const Value& oldv = old_tuple.value(idx.column_idx);
    const Value& newv = tuple.value(idx.column_idx);
    if (oldv.Compare(newv) == 0) continue;
    if (!oldv.IsNull()) {
      BtKey key{oldv.AsInt(), idx.unique ? 0 : RidTie(rid)};
      RELGRAPH_RETURN_IF_ERROR(idx.tree.Delete(key));
    }
    if (!newv.IsNull()) {
      BtKey key{newv.AsInt(), idx.unique ? 0 : RidTie(rid)};
      RELGRAPH_RETURN_IF_ERROR(idx.tree.Insert(key, EncodeRid(rid), idx.unique));
    }
  }
  return Status::OK();
}

Status Table::DeleteRow(const RowRef& ref) {
  if (options_.storage == TableStorage::kClustered) {
    if (!indexes_.empty()) {
      std::string payload;
      RELGRAPH_RETURN_IF_ERROR(clustered_.SearchExact(ref.key, &payload));
      Tuple tuple;
      RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, payload, &tuple));
      RELGRAPH_RETURN_IF_ERROR(
          DeleteClusteredIndexEntriesFor(tuple, ref.key));
    }
    RELGRAPH_RETURN_IF_ERROR(clustered_.Delete(ref.key));
    num_rows_--;
    return Status::OK();
  }
  std::string bytes;
  RELGRAPH_RETURN_IF_ERROR(heap_.Get(ref.rid, &bytes));
  Tuple tuple;
  RELGRAPH_RETURN_IF_ERROR(Tuple::Deserialize(schema_, bytes, &tuple));
  RELGRAPH_RETURN_IF_ERROR(DeleteIndexEntriesFor(tuple, ref.rid));
  RELGRAPH_RETURN_IF_ERROR(heap_.Delete(ref.rid));
  num_rows_--;
  return Status::OK();
}

Table::Iterator Table::Scan() {
  Iterator it;
  it.table_ = this;
  it.full_scan_ = true;
  if (options_.storage == TableStorage::kClustered) {
    it.kind_ = Iterator::Kind::kClustered;
    it.bt_it_ = clustered_.ScanAll();
  } else {
    it.kind_ = Iterator::Kind::kHeap;
    it.heap_it_ = heap_.Scan();
  }
  return it;
}

Status Table::ScanRange(const std::string& column, int64_t lo, int64_t hi,
                        Iterator* out) {
  out->table_ = this;
  out->full_scan_ = false;
  if (options_.storage == TableStorage::kClustered &&
      column == options_.cluster_key) {
    out->kind_ = Iterator::Kind::kClustered;
    out->bt_it_ = clustered_.Scan(lo, hi);
    return Status::OK();
  }
  for (auto& idx : indexes_) {
    if (idx.column != column) continue;
    out->kind_ = Iterator::Kind::kSecondary;
    out->bt_it_ = idx.tree.Scan(lo, hi);
    return Status::OK();
  }
  return Status::InvalidArgument("no index on " + column);
}

bool Table::Iterator::Next(Tuple* tuple, RowRef* ref) {
  switch (kind_) {
    case Kind::kHeap: {
      Rid rid;
      if (!heap_it_.Next(&rid, &buffer_)) {
        status_ = heap_it_.status();
        return false;
      }
      status_ = Tuple::Deserialize(table_->schema_, buffer_, tuple);
      if (!status_.ok()) return false;
      if (ref != nullptr) ref->rid = rid;
      table_->access_stats_.full_scan_rows.fetch_add(
          1, std::memory_order_relaxed);
      return true;
    }
    case Kind::kClustered: {
      BtKey key;
      if (!bt_it_.Next(&key, &buffer_)) {
        status_ = bt_it_.status();
        return false;
      }
      status_ = Tuple::Deserialize(table_->schema_, buffer_, tuple);
      if (!status_.ok()) return false;
      if (ref != nullptr) ref->key = key;
      (full_scan_ ? table_->access_stats_.full_scan_rows
                  : table_->access_stats_.index_scan_rows)
          .fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case Kind::kSecondary: {
      BtKey key;
      std::string payload;
      if (!bt_it_.Next(&key, &payload)) {
        status_ = bt_it_.status();
        return false;
      }
      if (table_->options_.storage == TableStorage::kClustered) {
        // Payload names the row's cluster key; fetch it from the base tree.
        BtKey base{DecodeClusterKey(payload), 0};
        status_ = table_->clustered_.SearchExact(base, &buffer_);
        if (!status_.ok()) return false;
        status_ = Tuple::Deserialize(table_->schema_, buffer_, tuple);
        if (!status_.ok()) return false;
        if (ref != nullptr) ref->key = base;
        table_->access_stats_.index_scan_rows.fetch_add(
            1, std::memory_order_relaxed);
        return true;
      }
      Rid rid = DecodeRid(payload);
      status_ = table_->heap_.Get(rid, &buffer_);
      if (!status_.ok()) return false;
      status_ = Tuple::Deserialize(table_->schema_, buffer_, tuple);
      if (!status_.ok()) return false;
      if (ref != nullptr) ref->rid = rid;
      table_->access_stats_.index_scan_rows.fetch_add(
          1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

Status Table::Truncate() {
  num_rows_ = 0;
  next_tie_ = 1;
  if (options_.storage == TableStorage::kClustered) {
    RELGRAPH_RETURN_IF_ERROR(BTree::Create(
        pool_, static_cast<uint16_t>(fixed_width_), &clustered_));
  } else {
    RELGRAPH_RETURN_IF_ERROR(HeapFile::Create(pool_, &heap_));
  }
  for (auto& idx : indexes_) {
    RELGRAPH_RETURN_IF_ERROR(BTree::Create(pool_, 8, &idx.tree));
  }
  return Status::OK();
}

}  // namespace relgraph
