#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/index/btree.h"
#include "src/storage/heap_file.h"
#include "src/types/tuple.h"

namespace relgraph {

/// Physical organization of a table — the paper's Figure 8(c) index
/// strategies map onto these:
///  - kHeap + no index        = "NoIndex"
///  - kHeap + secondary index = "Index" (non-clustered B+-tree -> RID)
///  - kClustered              = "CluIndex" (rows live in B+-tree leaves,
///                               ordered by the cluster key)
enum class TableStorage { kHeap, kClustered };

struct TableOptions {
  TableStorage storage = TableStorage::kHeap;
  /// Column the clustered tree is keyed on (kClustered only).
  std::string cluster_key;
  /// Reject duplicate cluster keys (e.g. TVisited clustered on nid).
  bool cluster_unique = false;
};

/// Stable reference to a row, valid until that row is deleted or moved by a
/// growing update. Heap rows are addressed by RID; clustered rows by their
/// B+-tree key.
struct RowRef {
  Rid rid;      // heap storage
  BtKey key;    // clustered storage
};

/// Row-access accounting, split by access path. The FEM hot-loop work is
/// asserted scan-free against these counters (no full-table row reads in the
/// auxiliary statements), and benches can report physical row traffic.
/// Atomic because shard-local tables serve concurrent reader connections
/// under the distributed coordinator; relaxed tallies, nothing orders on
/// them.
struct TableAccessStats {
  std::atomic<int64_t> full_scan_rows{0};   // rows produced by Scan()
  std::atomic<int64_t> index_scan_rows{0};  // rows produced by ScanRange()
  std::atomic<int64_t> point_lookups{0};    // LookupUnique() probes

  void Reset() {
    full_scan_rows.store(0, std::memory_order_relaxed);
    index_scan_rows.store(0, std::memory_order_relaxed);
    point_lookups.store(0, std::memory_order_relaxed);
  }
};

/// Persisted identity of a table: everything a snapshot manifest must
/// record to re-attach the table over an existing page file. Page ids here
/// refer to pages of the file the table lives in; payload widths are not
/// stored because they are derivable (secondary payloads are always 8
/// bytes, clustered payloads are FixedWidth(schema)).
struct TablePersistentState {
  std::string name;
  Schema schema;
  TableOptions options;
  int64_t num_rows = 0;
  int64_t next_tie = 1;
  page_id_t heap_first = kInvalidPageId;  // kHeap storage
  page_id_t heap_last = kInvalidPageId;
  page_id_t clustered_root = kInvalidPageId;  // kClustered storage
  int64_t clustered_entries = 0;
  struct IndexState {
    std::string name;
    std::string column;
    bool unique = false;
    page_id_t root = kInvalidPageId;
    int64_t entries = 0;
  };
  std::vector<IndexState> indexes;
};

/// A relational table: schema + physical storage + secondary indexes.
/// Indexed columns must be INT (node ids, distances, flags — everything the
/// graph workloads index). All mutations keep secondary indexes consistent.
class Table {
 public:
  /// Creating tables goes through Catalog; tests may call this directly.
  static Status Create(BufferPool* pool, std::string name, Schema schema,
                       TableOptions options, std::unique_ptr<Table>* out);

  /// Captures the table's persisted identity for a snapshot manifest.
  TablePersistentState ExportState() const;

  /// Reconstructs a table over `pool` from a previously exported state
  /// (the pages the state's ids reference must already exist in the
  /// pool's backing file). Validates the state against the schema —
  /// missing or non-INT cluster/index columns are Corruption, since they
  /// can only come from a damaged or forged manifest. Structural
  /// validation of the referenced pages is separate (CheckConsistency /
  /// CheckIntegrity); snapshot loading runs both.
  static Status Attach(BufferPool* pool, const TablePersistentState& state,
                       std::unique_ptr<Table>* out);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }
  int64_t num_rows() const { return num_rows_; }

  /// Inserts a row; `ref` (optional) receives its stable reference.
  Status Insert(const Tuple& tuple, RowRef* ref = nullptr);

  /// Builds a non-clustered B+-tree on `column` (must be INT). Existing rows
  /// are indexed immediately. `unique` rejects duplicates.
  ///
  /// Heap tables index `column -> RID`. Clustered tables (which must have a
  /// *unique* cluster key) index `column -> cluster key`, so an index probe
  /// costs one extra tree descent — the classic secondary-on-clustered
  /// layout. All mutations keep both kinds consistent.
  /// `name` is the SQL-level index name (CREATE INDEX <name> ...); it is
  /// only used to resolve DROP INDEX and defaults to the column name.
  Status CreateSecondaryIndex(const std::string& column, bool unique,
                              const std::string& name = std::string());

  /// Drops the secondary index named `name` (falling back to a column
  /// match, since the engine keys indexes by column). The cluster tree is
  /// the table's storage and cannot be dropped.
  Status DropSecondaryIndex(const std::string& name);

  /// True when lookups on `column` can use an index (secondary or cluster).
  bool HasIndexOn(const std::string& column) const;

  /// Point lookup through a *unique* access path on `column`.
  Status LookupUnique(const std::string& column, int64_t key, Tuple* out,
                      RowRef* ref);

  /// Overwrites the row at `ref`. The new tuple must keep the cluster key
  /// unchanged for clustered tables.
  Status UpdateRow(const RowRef& ref, const Tuple& tuple);

  Status DeleteRow(const RowRef& ref);

  /// Streaming reader. `Scan()` visits every row (cluster-key order for
  /// clustered tables, physical order for heaps). `ScanRange()` visits rows
  /// with lo <= column <= hi and requires an index on `column`.
  class Iterator {
   public:
    bool Next(Tuple* tuple, RowRef* ref);
    const Status& status() const { return status_; }

   private:
    friend class Table;
    enum class Kind { kHeap, kClustered, kSecondary };
    Table* table_ = nullptr;
    Kind kind_ = Kind::kHeap;
    bool full_scan_ = false;  // Scan() vs ScanRange(), for access stats
    HeapFile::Iterator heap_it_;
    BTree::Iterator bt_it_;
    Status status_;
    std::string buffer_;  // reused across rows (hot path of every scan)
  };

  Iterator Scan();
  Status ScanRange(const std::string& column, int64_t lo, int64_t hi,
                   Iterator* out);

  /// Removes every row but keeps schema and index definitions (the
  /// algorithms reset TVisited between queries with this).
  Status Truncate();

  /// Serialized width of this table's rows, if fixed (no VARCHAR columns).
  static size_t FixedWidth(const Schema& schema);

  /// Structural validation of the table's storage: heap chain or clustered
  /// tree invariants, secondary-index tree invariants, and the stored row
  /// count against the live-record count. Returns Status::Corruption on
  /// the first violation. Safe against corrupted pages (bounded walks,
  /// never out-of-bounds); the snapshot loader and relgraph_fsck run this.
  Status CheckConsistency() const;

  const TableAccessStats& access_stats() const { return access_stats_; }
  void ResetAccessStats() { access_stats_.Reset(); }

 private:
  Table() = default;

  struct SecondaryIndex {
    std::string name;  // SQL-level index name (DROP INDEX resolves on it)
    std::string column;
    size_t column_idx;
    bool unique;
    BTree tree;
  };

  Status InsertIndexEntriesFor(const Tuple& tuple, const Rid& rid);
  Status DeleteIndexEntriesFor(const Tuple& tuple, const Rid& rid);
  Status InsertClusteredIndexEntriesFor(const Tuple& tuple, const BtKey& key);
  Status DeleteClusteredIndexEntriesFor(const Tuple& tuple, const BtKey& key);
  std::string SerializeClustered(const Tuple& tuple) const;
  static int64_t RidTie(const Rid& rid) {
    return (static_cast<int64_t>(rid.page_id) << 16) |
           static_cast<int64_t>(rid.slot);
  }

  BufferPool* pool_ = nullptr;
  std::string name_;
  Schema schema_;
  TableOptions options_;
  size_t cluster_key_idx_ = 0;
  size_t fixed_width_ = 0;   // clustered payload width
  int64_t next_tie_ = 1;     // duplicate cluster keys get increasing ties
  HeapFile heap_;
  BTree clustered_;
  std::vector<SecondaryIndex> indexes_;
  int64_t num_rows_ = 0;
  TableAccessStats access_stats_;
};

}  // namespace relgraph
