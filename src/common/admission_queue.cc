#include "src/common/admission_queue.h"

#include <algorithm>
#include <string>

namespace relgraph {

AdmissionQueue::AdmissionQueue(int permits, int max_waiters)
    : permits_(std::max(1, permits)),
      max_waiters_(std::max(0, max_waiters)),
      free_(permits_) {}

int AdmissionQueue::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

void AdmissionQueue::GrantLocked() {
  // Rotate across sessions with waiters: each grant goes to the session at
  // the cursor, then the cursor advances — a session with 100 queued
  // requests gets exactly one grant per lap, same as a session with 1.
  while (free_ > 0 && !rr_.empty()) {
    if (rr_pos_ >= rr_.size()) rr_pos_ = 0;
    const uint64_t session = rr_[rr_pos_];
    auto it = queues_.find(session);
    Waiter* w = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
      queues_.erase(it);
      rr_.erase(rr_.begin() + static_cast<ptrdiff_t>(rr_pos_));
      // rr_pos_ now points at the next session already.
    } else {
      rr_pos_++;
    }
    free_--;
    waiting_--;
    w->granted = true;
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  // Waiters check their own `granted` flag; one broadcast wakes the lot.
  cv_.notify_all();
}

Status AdmissionQueue::Acquire(
    uint64_t session, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: free permit and nobody queued ahead (no barging past the
  // line — a free permit with waiters present cannot persist, but the
  // check keeps the invariant explicit).
  if (free_ > 0 && waiting_ == 0) {
    free_--;
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  if (waiting_ >= max_waiters_) {
    // Shed NOW: the queue is at capacity, so waiting out the deadline
    // cannot help — tell the caller while it can still react.
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_) + " waiting, " +
        std::to_string(permits_) + " permit(s) busy); shedding load");
  }
  Waiter w;
  auto [it, inserted] = queues_.try_emplace(session);
  if (inserted) rr_.push_back(session);
  it->second.push_back(&w);
  waiting_++;
  // A permit may have freed between our fast-path check and enqueue.
  GrantLocked();
  if (cv_.wait_until(lock, deadline, [&w] { return w.granted; })) {
    return Status::OK();
  }
  // Deadline passed while queued: remove ourselves. The grant may have
  // landed between the timeout and re-locking — wait_until re-checks the
  // predicate under the lock, so reaching here means not granted.
  auto qit = queues_.find(session);
  auto& dq = qit->second;
  dq.erase(std::find(dq.begin(), dq.end(), &w));
  if (dq.empty()) {
    queues_.erase(qit);
    auto rit = std::find(rr_.begin(), rr_.end(), session);
    const size_t idx = static_cast<size_t>(rit - rr_.begin());
    rr_.erase(rit);
    if (idx < rr_pos_) rr_pos_--;
  }
  waiting_--;
  timeouts_.fetch_add(1, std::memory_order_relaxed);
  return Status::Unavailable(
      "timed out in admission queue (" + std::to_string(permits_) +
      " permit(s) busy)");
}

void AdmissionQueue::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  free_++;
  GrantLocked();
}

}  // namespace relgraph
