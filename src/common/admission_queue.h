#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/status.h"

namespace relgraph {

/// Bounded, per-session-fair admission queue over a fixed set of permits —
/// the policy layer in front of every shard connection pool.
///
/// The PR-6 pools woke waiters in whatever order the condition variable
/// chose and let them queue until their deadline: one chatty session could
/// starve the rest, and under overload every request waited the full
/// deadline before failing. This queue fixes both:
///
///   * **Fairness**: waiters are queued per session and permits are granted
///     round-robin across the sessions that have waiters, so N sessions
///     hammering one pool each get ~1/N of the grants regardless of how
///     many requests any one of them has queued.
///   * **Bounded queueing with fast shedding**: at most `max_waiters`
///     requests may queue; one more is rejected *immediately* with
///     Status::ResourceExhausted (a load-shed the caller can act on now)
///     instead of burning its deadline in a line it will never clear.
///
/// A waiter whose deadline passes while queued degrades to the same typed
/// Status::Unavailable the pools always used — shedding is the "queue is
/// provably over capacity" signal, the deadline is the "capacity exists but
/// not for me in time" signal.
///
/// Thread-safe. Session ids are opaque; 0 is a fine default for callers
/// without session identity (all such callers then share one FIFO lane).
class AdmissionQueue {
 public:
  /// `permits`: concurrent holders allowed (the pool size). `max_waiters`:
  /// requests allowed to queue beyond the permits before shedding starts.
  AdmissionQueue(int permits, int max_waiters);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Acquires one permit as session `session`. OK => the caller holds a
  /// permit and must Release() it. ResourceExhausted => the queue was full
  /// (returns without waiting). Unavailable => queued but the deadline
  /// passed before a permit was granted.
  Status Acquire(uint64_t session, std::chrono::steady_clock::time_point deadline);

  /// Returns a permit; grants it to the next waiter (round-robin across
  /// sessions) if any.
  void Release();

  int permits() const { return permits_; }
  int max_waiters() const { return max_waiters_; }

  /// ----- observability ------------------------------------------------------
  int64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  int64_t sheds() const { return sheds_.load(std::memory_order_relaxed); }
  int64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  /// Requests currently queued (diagnostic snapshot).
  int waiting() const;

 private:
  struct Waiter {
    bool granted = false;
  };

  /// Grants free permits to queued waiters, rotating across sessions.
  /// Caller holds mu_.
  void GrantLocked();

  const int permits_;
  const int max_waiters_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int free_;
  int waiting_ = 0;
  /// Waiting requests, FIFO within a session.
  std::map<uint64_t, std::deque<Waiter*>> queues_;
  /// Sessions with waiters, in grant rotation order; rr_pos_ points at the
  /// session served next.
  std::vector<uint64_t> rr_;
  size_t rr_pos_ = 0;

  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> sheds_{0};
  std::atomic<int64_t> timeouts_{0};
};

}  // namespace relgraph
