#pragma once

#include <cstddef>
#include <cstdint>

namespace relgraph {

/// Size of one storage page in bytes. Everything the engine persists —
/// heap-file slotted pages and B+-tree nodes — is a multiple of this unit,
/// and the buffer pool caches whole pages.
constexpr size_t kPageSize = 4096;

using page_id_t = int32_t;
using frame_id_t = int32_t;
using slot_id_t = uint16_t;

constexpr page_id_t kInvalidPageId = -1;

/// Record id: physical address of a tuple inside a heap file.
struct Rid {
  page_id_t page_id = kInvalidPageId;
  slot_id_t slot = 0;

  bool operator==(const Rid& other) const = default;
  bool IsValid() const { return page_id != kInvalidPageId; }
};

/// Default rows moved per Executor::NextBatch() call and evaluated per
/// Expression::EvalBatch() column loop. Large enough to amortize per-batch
/// virtual dispatch and name resolution, small enough to stay
/// cache-resident. The effective size is runtime-tunable for benchmarks via
/// SetExecBatchSize() (src/exec/executor.h); everything else uses this.
constexpr size_t kExecBatchSize = 1024;

/// Minimum surviving rows for a filter to forward a selection vector over
/// its child's batch instead of compacting the survivors into a dense copy.
/// Below this, a compact copy is cheaper than making every downstream
/// operator gather through the indirection; above it, skipping the copy
/// wins. Runtime-tunable via SetSelVectorMinRows() (src/exec/executor.h)
/// so bench_micro_exec can sweep it; SIZE_MAX forces the always-compact
/// legacy path (the baseline the selection-vector series is diffed
/// against).
constexpr size_t kSelVectorMinRows = 8;

/// Node identifier in a graph (matches the paper's `nid`/`fid`/`tid`).
using node_id_t = int64_t;
/// Edge weight / path distance. The paper uses integer weights in [1,100];
/// int64 distances cannot overflow on any graph we can store.
using weight_t = int64_t;

constexpr node_id_t kInvalidNode = -1;
/// Stand-in for the SQL `Max` literal in Listing 4(2) (unknown distance).
constexpr weight_t kInfinity = INT64_MAX / 4;

}  // namespace relgraph
