#include "src/common/crc32c.h"

namespace relgraph {
namespace crc32c {

namespace {

/// 256-entry table for the reflected Castagnoli polynomial, built once at
/// first use (constant-initialized would also work, but the generator loop
/// is clearer than 256 literals and runs in nanoseconds).
struct Table {
  uint32_t entries[256];
  Table() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Table& GetTable() {
  static const Table table;
  return table;
}

}  // namespace

uint32_t Extend(uint32_t crc, const char* data, size_t n) {
  const Table& t = GetTable();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; i++) {
    c = t.entries[(c ^ static_cast<uint8_t>(data[i])) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t ExtendU32(uint32_t crc, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; i++) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  return Extend(crc, bytes, 4);
}

}  // namespace crc32c
}  // namespace relgraph
