#pragma once

#include <cstddef>
#include <cstdint>

namespace relgraph {
namespace crc32c {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum RocksDB/LevelDB and iSCSI use for on-disk block integrity.
/// Software table-driven implementation: no hardware intrinsics, so every
/// build (sanitizers included) computes the identical function. One CRC
/// guards each disk page, each snapshot section, and each wire frame
/// payload; the three layers share this module so a checksum computed by
/// one can be audited by the tools of another.

/// Extends `crc` (the running value over previously-hashed bytes) with
/// `data[0, n)`. Seed a fresh computation with crc = 0.
uint32_t Extend(uint32_t crc, const char* data, size_t n);

/// CRC of `data[0, n)` in one call.
inline uint32_t Value(const char* data, size_t n) {
  return Extend(0, data, n);
}

/// Convenience for hashing a little-endian u32 after a byte run (used to
/// bind a page's checksum to its page id so a misdirected-but-intact write
/// still fails verification).
uint32_t ExtendU32(uint32_t crc, uint32_t v);

}  // namespace crc32c
}  // namespace relgraph
