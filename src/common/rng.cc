#include "src/common/rng.h"

namespace relgraph {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift must not be seeded all-zero
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace relgraph
