#pragma once

#include <cstdint>

namespace relgraph {

/// Deterministic 64-bit RNG (xorshift128+). The generators and the query
/// workloads must be reproducible across runs and platforms, so we avoid
/// std::mt19937's unspecified distribution behaviour and keep our own.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform on [0, 2^64).
  uint64_t Next();

  /// Uniform on [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer on [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double on [0, 1).
  double NextDouble();

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace relgraph
