#include "src/common/status.h"

namespace relgraph {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace relgraph
