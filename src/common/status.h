#pragma once

#include <string>
#include <utility>

namespace relgraph {

/// Status reports the outcome of an operation that can fail, following the
/// RocksDB/LevelDB idiom: cheap to copy in the OK case, carries a code plus
/// a human-readable message otherwise. Library code returns Status (or
/// Result<T>) instead of throwing; exceptions are reserved for programmer
/// errors caught by assertions.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kIOError,
    kCorruption,
    kNotSupported,
    kOutOfRange,
    kResourceExhausted,
    kAlreadyExists,
    kInternal,
    kUnavailable,
    kDeadlineExceeded,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A dependency (a shard server, a pooled connection) cannot serve the
  /// request right now. Retryable by policy: the networked shard client
  /// retries with backoff and surfaces this — never a hang — when the
  /// budget is spent or its circuit breaker is open.
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  /// The per-request deadline expired before the operation completed
  /// (connect, send, or receive on the shard wire).
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "IOError: short read on page 17".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Result<T> couples a Status with a value; valid value only when ok().
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)), value_() {}       // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T ValueOr(T fallback) const { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define RELGRAPH_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::relgraph::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace relgraph
