#include "src/common/thread_pool.h"

#include <algorithm>

namespace relgraph {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // second caller: workers already joined/joining
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-before-stop: tasks enqueued before destruction still run, so
      // a future obtained from Submit() can always be waited on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace relgraph
