#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace relgraph {

/// Fixed-size worker pool with a FIFO task queue. The distributed
/// coordinator drives every expansion round as one task per owner shard and
/// joins the returned futures — the unit of parallelism the paper's §7
/// sketch assumes ("each partition is processed by its own RDBMS node").
/// Workers start in the constructor and live until destruction, so
/// steady-state rounds pay one enqueue + one future-join per shard, never a
/// thread spawn.
///
/// Thread-safety: Submit() may be called from any thread (concurrent query
/// sessions share one pool). Tasks must not Submit() and then block on the
/// resulting future from inside a worker (the classic pool deadlock); the
/// coordinator only submits from session threads.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();  // Shutdown(): drains the queue, then joins every worker

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Begins shutdown: no further Submit() is accepted, tasks already
  /// queued still run, and every worker is joined before this returns.
  /// Idempotent; the destructor calls it. Without the Submit()-side
  /// stopping_ check this was a race: a task enqueued concurrently with
  /// destruction could land *after* a drained worker's queue-empty exit
  /// check, and its future would block forever with nobody left to run it.
  void Shutdown();

  /// Enqueues `fn` and returns a future for its result. The future's
  /// get()/wait() is the only completion signal; exceptions propagate
  /// through it (the engine's own tasks return Status instead of throwing).
  ///
  /// Submitting after Shutdown() has begun is refused: the task is
  /// dropped (never run) and the returned future holds a
  /// std::runtime_error("ThreadPool is shut down") instead of blocking on
  /// a result no worker will ever produce.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        std::promise<R> refused;
        refused.set_exception(std::make_exception_ptr(
            std::runtime_error("ThreadPool is shut down")));
        return refused.get_future();
      }
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace relgraph
