#pragma once

#include <chrono>
#include <cstdint>

namespace relgraph {

/// Wall-clock stopwatch used by the statistics collectors (per-phase and
/// per-operator timings reported in the paper's Figures 6(b) and 6(c)).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's duration (µs) to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedMicros(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  Timer timer_;
};

}  // namespace relgraph
