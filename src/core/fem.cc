#include "src/core/fem.h"

#include <map>
#include <unordered_map>

#include "src/common/timer.h"
#include "src/exec/agg_executors.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/window_executor.h"

namespace relgraph {

const char* SqlModeName(SqlMode m) {
  return m == SqlMode::kNsql ? "NSQL" : "TSQL";
}

Schema ExpansionSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt},
                 {"aid", TypeId::kInt}});
}

FemEngine::FemEngine(Database* db, VisitedTable* visited, SqlMode mode)
    : db_(db), visited_(visited), mode_(mode) {
  // MERGE is an NSQL-mode feature; an engine without it (PostgreSQL 9.0
  // profile) degrades the M-operator to update+insert automatically, which
  // is what the paper does in §5.2 "Extensive Studies".
}

// --------------------------------------------------------------- F-operator

Status FemEngine::MarkFrontier(const DirCols& dir, const FrontierSpec& spec,
                               int64_t* marked) {
  ScopedTimer timer(&stats_.f_operator_us);
  ExprRef frontier_pred = spec.ToPredicate(dir);
  db_->RecordStatement("UPDATE " + visited_->table()->name() + " SET " +
                       dir.flag + "=2 WHERE " + dir.flag + "=0 AND " +
                       dir.dist + "<Max" +
                       (frontier_pred != nullptr
                            ? " AND " + frontier_pred->ToString()
                            : std::string()));
  // flag=0 AND dist < infinity AND <spec>. The reachability conjunct keeps
  // rows seeded by the opposite direction (dist = infinity) out of this
  // direction's frontier. VisitedTable routes the update through the nid or
  // dist index when the strategy provides one.
  return visited_->MarkFrontier(dir, spec, marked);
}

Status FemEngine::FinalizeFrontier(const DirCols& dir) {
  ScopedTimer timer(&stats_.f_operator_us);
  db_->RecordStatement("UPDATE " + visited_->table()->name() + " SET " +
                       dir.flag + "=1 WHERE " + dir.flag + "=2");
  int64_t affected;
  return visited_->FinalizeFrontier(dir, &affected);
}

// ----------------------------------------------------- auxiliary statements
// The statements' SQL text is unchanged; their results now come from
// VisitedTable's incremental aggregates (plus, for the TOP-1 row fetch, a
// dist-index probe), so none of them scans TVisited any more.

Status FemEngine::PickMid(const DirCols& dir, node_id_t* mid, bool* found) {
  ScopedTimer timer(&stats_.aux_us);
  db_->RecordStatement("SELECT TOP 1 nid FROM " + visited_->table()->name() +
                       " WHERE " + dir.flag + "=0 AND " + dir.dist +
                       "=(SELECT MIN(" + dir.dist + ") FROM " +
                       visited_->table()->name() + " WHERE " + dir.flag +
                       "=0)");
  *found = false;
  // Inner subquery: SELECT MIN(dist) WHERE f=0.
  weight_t min_dist = visited_->MinOpenDist(dir);
  if (min_dist >= kInfinity) return Status::OK();
  // Outer query: SELECT TOP 1 nid WHERE f=0 AND dist = :min.
  return visited_->FirstOpenAt(dir, min_dist, mid, found);
}

Status FemEngine::MinOpenDistance(const DirCols& dir, weight_t* out) {
  ScopedTimer timer(&stats_.aux_us);
  db_->RecordStatement("SELECT MIN(" + dir.dist + ") FROM " +
                       visited_->table()->name() + " WHERE " + dir.flag +
                       "=0");
  *out = visited_->MinOpenDist(dir);
  return Status::OK();
}

Status FemEngine::MinCost(weight_t* out) {
  ScopedTimer timer(&stats_.aux_us);
  db_->RecordStatement("SELECT MIN(d2s+d2t) FROM " +
                       visited_->table()->name());
  *out = visited_->MinPathCost();
  return Status::OK();
}

Status FemEngine::MeetingNode(weight_t min_cost, node_id_t* out) {
  ScopedTimer timer(&stats_.aux_us);
  db_->RecordStatement("SELECT nid FROM " + visited_->table()->name() +
                       " WHERE d2s+d2t=" + std::to_string(min_cost));
  FilterExecutor plan(std::make_unique<SeqScanExecutor>(visited_->table()),
                      Cmp(CompareOp::kEq, Add(Col("d2s"), Col("d2t")),
                          Lit(min_cost)));
  RELGRAPH_RETURN_IF_ERROR(plan.Init());
  Tuple t;
  if (plan.Next(&t)) {
    *out = t.value(visited_->table()->schema().IndexOf("nid")).AsInt();
    return Status::OK();
  }
  RELGRAPH_RETURN_IF_ERROR(plan.status());
  return Status::NotFound("no node on a path of length " +
                          std::to_string(min_cost));
}

Status FemEngine::CountOpen(const DirCols& dir, int64_t* out) {
  ScopedTimer timer(&stats_.aux_us);
  db_->RecordStatement("SELECT COUNT(*) FROM " + visited_->table()->name() +
                       " WHERE " + dir.flag + "=0");
  *out = visited_->OpenCount(dir);
  return Status::OK();
}

// -------------------------------------------------------------- E-operator

ExecRef FemEngine::BuildJoinProject(const DirCols& dir, const EdgeRelation& rel,
                                    weight_t opposite_l, weight_t min_cost) {
  // Frontier: SELECT * FROM TVisited WHERE flag = 2 — an index range probe
  // on the flag column under Index/CluIndex, a filtered scan under NoIndex.
  ExecRef frontier = visited_->FrontierScan(dir);

  // Theorem-1 pruning: dist + cost + l_opposite < minCost. Inactive while
  // no s-t path is known (min_cost = kInfinity dwarfs any real sum).
  ExprRef prune = Cmp(
      CompareOp::kLt,
      Add(Add(Col(dir.dist), Col(rel.cost_column)), Lit(opposite_l)),
      Lit(min_cost));

  ExecRef joined;
  if (rel.table->HasIndexOn(rel.join_column)) {
    joined = std::make_unique<IndexNestedLoopJoinExecutor>(
        std::move(frontier), rel.table, rel.join_column, Col("nid"), prune);
  } else {
    // NoIndex strategy: the only plan is a nested-loop join against a full
    // scan of the edge table.
    ExprRef on = Cmp(CompareOp::kEq, Col("nid"), Col(rel.join_column));
    joined = std::make_unique<NestedLoopJoinExecutor>(
        std::move(frontier), std::make_unique<SeqScanExecutor>(rel.table),
        And(on, prune));
  }

  // Project to (nid, cost, pid, aid): the expanded node, its tentative
  // distance, its on-graph parent, and the frontier anchor it came from.
  std::vector<ExprRef> exprs = {
      Col(rel.emit_column), Add(Col(dir.dist), Col(rel.cost_column)),
      Col(rel.parent_column), Col("nid")};
  return std::make_unique<ProjectExecutor>(std::move(joined), std::move(exprs),
                                           ExpansionSchema());
}

Status FemEngine::BuildExpansionNsql(const DirCols& dir,
                                     const EdgeRelation& rel,
                                     weight_t opposite_l, weight_t min_cost,
                                     std::vector<Tuple>* rows) {
  // row_number() OVER (PARTITION BY nid ORDER BY cost) ... WHERE rownum = 1.
  ExecRef window = std::make_unique<WindowRowNumberExecutor>(
      BuildJoinProject(dir, rel, opposite_l, min_cost),
      std::vector<std::string>{"nid"},
      std::vector<SortKey>{{Col("cost"), true}, {Col("pid"), true}});
  ExecRef dedup = std::make_unique<FilterExecutor>(std::move(window),
                                                   ColEq("rownum", 1));
  ExecRef project = std::make_unique<ProjectExecutor>(
      std::move(dedup),
      std::vector<ExprRef>{Col("nid"), Col("cost"), Col("pid"), Col("aid")},
      ExpansionSchema());
  return Collect(project.get(), rows);
}

Status FemEngine::BuildExpansionTsql(const DirCols& dir,
                                     const EdgeRelation& rel,
                                     weight_t opposite_l, weight_t min_cost,
                                     std::vector<Tuple>* rows) {
  // First pass — Definition 2(1): minCost(x, c) via GROUP BY + MIN.
  std::unordered_map<int64_t, weight_t> min_by_node;
  {
    ExecRef agg = std::make_unique<HashAggregateExecutor>(
        BuildJoinProject(dir, rel, opposite_l, min_cost),
        std::vector<std::string>{"nid"},
        std::vector<AggSpec>{{AggOp::kMin, Col("cost"), "mincost"}});
    std::vector<Tuple> agg_rows;
    RELGRAPH_RETURN_IF_ERROR(Collect(agg.get(), &agg_rows));
    for (const auto& t : agg_rows) {
      min_by_node[t.value(0).AsInt()] = t.value(1).AsInt();
    }
  }
  // Second pass — Definition 2(2): re-join to recover the parent column the
  // aggregate dropped, keeping rows whose cost equals the group minimum.
  // Ties on cost are broken by the smallest pid (the "primary key
  // constraint" dedup the paper mentions in §3.3).
  ExecRef again = BuildJoinProject(dir, rel, opposite_l, min_cost);
  RELGRAPH_RETURN_IF_ERROR(again->Init());
  std::map<int64_t, Tuple> best;
  std::vector<Tuple> batch;
  while (again->NextBatch(&batch)) {
    for (Tuple& t : batch) {
      int64_t nid = t.value(0).AsInt();
      weight_t cost = t.value(1).AsInt();
      auto it = min_by_node.find(nid);
      if (it == min_by_node.end() || cost != it->second) continue;
      auto [pos, inserted] = best.try_emplace(nid, t);
      if (!inserted && t.value(2).AsInt() < pos->second.value(2).AsInt()) {
        pos->second = std::move(t);
      }
    }
  }
  RELGRAPH_RETURN_IF_ERROR(again->status());
  rows->reserve(best.size());
  for (auto& [nid, tuple] : best) rows->push_back(std::move(tuple));
  return Status::OK();
}

// -------------------------------------------------------------- M-operator

Status FemEngine::MergeNsql(const DirCols& dir, std::vector<Tuple> rows,
                            int64_t* affected) {
  MaterializedExecutor source(std::move(rows), ExpansionSchema());
  MergeSpec spec;
  spec.target_key_column = "nid";
  spec.source_key_column = "nid";
  spec.observer = visited_->ChangeObserver();
  spec.matched_condition =
      Cmp(CompareOp::kGt, Col("t." + dir.dist), Col("s.cost"));
  spec.matched_sets = {{dir.dist, Col("s.cost")},
                       {dir.pred, Col("s.pid")},
                       {dir.anchor, Col("s.aid")},
                       {dir.flag, Lit(int64_t{0})}};
  if (dir.forward) {
    spec.insert_values = {Col("nid"),        Col("cost"),
                          Col("pid"),        Col("aid"),
                          Lit(int64_t{0}),   Lit(kInfinity),
                          Lit(kInvalidNode), Lit(kInvalidNode),
                          Lit(int64_t{0})};
  } else {
    spec.insert_values = {Col("nid"),        Lit(kInfinity),
                          Lit(kInvalidNode), Lit(kInvalidNode),
                          Lit(int64_t{0}),   Col("cost"),
                          Col("pid"),        Col("aid"),
                          Lit(int64_t{0})};
  }
  return MergeInto(visited_->table(), &source, spec, affected);
}

Status FemEngine::MergeTsql(const DirCols& dir, std::vector<Tuple> rows,
                            int64_t* affected) {
  // Statement 1: UPDATE TVisited ... FROM ek WHERE TVisited.nid = ek.nid
  // AND TVisited.dist > ek.cost (a MERGE with no insert branch is exactly
  // this plan: probe + conditional update).
  int64_t updated = 0;
  {
    MaterializedExecutor source(rows, ExpansionSchema());
    MergeSpec spec;
    spec.target_key_column = "nid";
    spec.source_key_column = "nid";
    spec.observer = visited_->ChangeObserver();
    spec.matched_condition =
        Cmp(CompareOp::kGt, Col("t." + dir.dist), Col("s.cost"));
    spec.matched_sets = {{dir.dist, Col("s.cost")},
                         {dir.pred, Col("s.pid")},
                         {dir.anchor, Col("s.aid")},
                         {dir.flag, Lit(int64_t{0})}};
    RELGRAPH_RETURN_IF_ERROR(
        MergeInto(visited_->table(), &source, spec, &updated));
  }
  db_->RecordStatement();  // the INSERT below is the second statement
  // Statement 2: INSERT INTO TVisited SELECT ... FROM ek WHERE NOT EXISTS
  // (SELECT 1 FROM TVisited v WHERE v.nid = ek.nid).
  int64_t inserted = 0;
  {
    MaterializedExecutor source(std::move(rows), ExpansionSchema());
    MergeSpec spec;
    spec.target_key_column = "nid";
    spec.source_key_column = "nid";
    spec.observer = visited_->ChangeObserver();
    if (dir.forward) {
      spec.insert_values = {Col("nid"),        Col("cost"),
                            Col("pid"),        Col("aid"),
                            Lit(int64_t{0}),   Lit(kInfinity),
                            Lit(kInvalidNode), Lit(kInvalidNode),
                            Lit(int64_t{0})};
    } else {
      spec.insert_values = {Col("nid"),        Lit(kInfinity),
                            Lit(kInvalidNode), Lit(kInvalidNode),
                            Lit(int64_t{0}),   Col("cost"),
                            Col("pid"),        Col("aid"),
                            Lit(int64_t{0})};
    }
    RELGRAPH_RETURN_IF_ERROR(
        MergeInto(visited_->table(), &source, spec, &inserted));
  }
  *affected = updated + inserted;
  return Status::OK();
}

Status FemEngine::ExpandAndMerge(const DirCols& dir, const EdgeRelation& rel,
                                 weight_t opposite_l, weight_t min_cost,
                                 int64_t* affected) {
  stats_.expansions++;
  // The combined expansion statement — Listing 4(2) shape.
  db_->RecordStatement(
      "MERGE " + visited_->table()->name() +
      " AS target USING (SELECT nid,pid,cost FROM (SELECT out." +
      rel.emit_column + ", out." + rel.parent_column + ", out." +
      rel.cost_column + "+q." + dir.dist +
      ", row_number() OVER (PARTITION BY out." + rel.emit_column +
      " ORDER BY out." + rel.cost_column + "+q." + dir.dist +
      ") AS rownum FROM " + visited_->table()->name() + " q, " +
      rel.table->name() + " out WHERE q.nid=out." + rel.join_column +
      " AND q." + dir.flag + "=2 AND out." + rel.cost_column + "+q." +
      dir.dist + "+" + std::to_string(opposite_l) + "<" +
      std::to_string(min_cost) +
      ") tmp WHERE rownum=1) AS source ON source.nid=target.nid WHEN "
      "MATCHED AND target." + dir.dist + ">source.cost THEN UPDATE SET " +
      dir.dist + "=source.cost," + dir.pred + "=source.pid," + dir.flag +
      "=0 WHEN NOT MATCHED THEN INSERT ...");
  // The two new SQL features degrade independently: PostgreSQL 9.0 has the
  // window function but not MERGE, so its NSQL plan still window-dedups but
  // merges via update+insert (§5.2).
  const bool window_e = mode_ == SqlMode::kNsql;
  const bool merge_m = mode_ == SqlMode::kNsql && db_->SupportsMerge();

  std::vector<Tuple> rows;
  {
    ScopedTimer timer(&stats_.e_operator_us);
    if (window_e) {
      RELGRAPH_RETURN_IF_ERROR(
          BuildExpansionNsql(dir, rel, opposite_l, min_cost, &rows));
    } else {
      RELGRAPH_RETURN_IF_ERROR(
          BuildExpansionTsql(dir, rel, opposite_l, min_cost, &rows));
    }
  }
  ScopedTimer timer(&stats_.m_operator_us);
  if (merge_m) {
    return MergeNsql(dir, std::move(rows), affected);
  }
  return MergeTsql(dir, std::move(rows), affected);
}

Status FemEngine::MergeExpansion(const DirCols& dir, std::vector<Tuple> rows,
                                 int64_t* affected) {
  db_->RecordStatement(
      "MERGE " + visited_->table()->name() +
      " AS target USING ek AS source ON source.nid=target.nid WHEN MATCHED "
      "AND target." + dir.dist + ">source.cost THEN UPDATE SET " + dir.dist +
      "=source.cost," + dir.pred + "=source.pid," + dir.flag +
      "=0 WHEN NOT MATCHED THEN INSERT ...");
  ScopedTimer timer(&stats_.m_operator_us);
  if (mode_ == SqlMode::kNsql && db_->SupportsMerge()) {
    return MergeNsql(dir, std::move(rows), affected);
  }
  return MergeTsql(dir, std::move(rows), affected);
}

}  // namespace relgraph
