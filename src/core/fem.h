#pragma once

#include <memory>
#include <string>

#include "src/core/visited_table.h"
#include "src/db/database.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"
#include "src/graph/graph_store.h"

namespace relgraph {

/// Which SQL dialect generation the operator plans use (paper Figure 6(d)):
///  - kNsql: the SQL:2003/2008 features — row_number() window dedup in the
///    E-operator and one MERGE statement for the M-operator;
///  - kTsql: "traditional" SQL — aggregate + re-join in the E-operator and
///    an UPDATE statement followed by an INSERT for the M-operator.
enum class SqlMode { kNsql, kTsql };

const char* SqlModeName(SqlMode m);

/// Per-query operator/phase accounting, feeding Figures 6(b) and 6(c).
struct FemStats {
  int64_t expansions = 0;       // E-operator invocations ("Exps")
  int64_t f_operator_us = 0;
  int64_t e_operator_us = 0;
  int64_t m_operator_us = 0;
  int64_t aux_us = 0;           // statistics collection (mid/min/minCost)

  void Reset() { *this = FemStats{}; }
};

/// The three relational operators of the paper's FEM framework (§3.2),
/// bound to one TVisited table. Each public method corresponds to one (or,
/// for ExpandAndMerge in NSQL mode, one combined) SQL statement from
/// Listings 2-4; Database::stats().statements counts them.
class FemEngine {
 public:
  FemEngine(Database* db, VisitedTable* visited, SqlMode mode);

  Database* db() { return db_; }
  VisitedTable* visited() { return visited_; }
  SqlMode mode() const { return mode_; }
  FemStats& stats() { return stats_; }

  // ----- F-operator and its auxiliary statements -------------------------
  // Each method records the same SQL statement text as ever (the Listings);
  // what changed is the physical plan behind it: frontier updates run
  // through VisitedTable's indexed access paths, and the scalar probes read
  // VisitedTable's incrementally-maintained aggregates instead of scanning.

  /// Listing 4(1) generalized: UPDATE TVisited SET flag=2 WHERE flag=0 AND
  /// dist<Max AND `spec`. Returns the number of frontier nodes marked.
  Status MarkFrontier(const DirCols& dir, const FrontierSpec& spec,
                      int64_t* marked);

  /// Listing 4(3): UPDATE TVisited SET flag=1 WHERE flag=2.
  Status FinalizeFrontier(const DirCols& dir);

  /// Listing 2(2): SELECT TOP 1 nid FROM TVisited WHERE flag=0 AND
  /// dist=(SELECT MIN(dist) ... WHERE flag=0). `found`=false when no
  /// candidate remains.
  Status PickMid(const DirCols& dir, node_id_t* mid, bool* found);

  /// Listing 4(4): SELECT MIN(dist) FROM TVisited WHERE flag=0.
  /// Returns kInfinity when no candidate remains. O(1).
  Status MinOpenDistance(const DirCols& dir, weight_t* out);

  /// Listing 4(5): SELECT MIN(d2s+d2t) FROM TVisited. O(1).
  Status MinCost(weight_t* out);

  /// Listing 4(6): SELECT nid FROM TVisited WHERE d2s+d2t = :min_cost.
  Status MeetingNode(weight_t min_cost, node_id_t* out);

  /// SELECT COUNT(*) FROM TVisited WHERE flag=0 (direction-choice probe).
  /// O(1).
  Status CountOpen(const DirCols& dir, int64_t* out);

  // ----- E + M ------------------------------------------------------------

  /// The paper's path-expansion statement (Listing 2(3,4) / Listing 4(2)):
  /// joins the frontier (flag=2) with `rel`, keeps per expanded node the
  /// minimal-distance occurrence, applies the Theorem-1 pruning rule
  /// `dist + cost + opposite_l >= min_cost` (pass opposite_l=0 and
  /// min_cost=kInfinity to disable), and merges the result into TVisited.
  /// `affected` reports inserted+updated rows (the SQLCA read).
  ///
  /// NSQL: window-function dedup, single MERGE (one statement).
  /// TSQL: aggregate+re-join dedup, UPDATE then INSERT (two statements) —
  /// also the automatic fallback when the engine profile lacks MERGE.
  Status ExpandAndMerge(const DirCols& dir, const EdgeRelation& rel,
                        weight_t opposite_l, weight_t min_cost,
                        int64_t* affected);

  /// M-operator alone: merges pre-built expansion rows (ExpansionSchema)
  /// into TVisited, honoring the mode/profile plan choice. The distributed
  /// coordinator uses this — its E-operator join runs remotely on the
  /// shards, which ship back the expansion rows.
  Status MergeExpansion(const DirCols& dir, std::vector<Tuple> rows,
                        int64_t* affected);

 private:
  /// Builds the E-operator source rows (nid, cost, pid, aid).
  Status BuildExpansionNsql(const DirCols& dir, const EdgeRelation& rel,
                            weight_t opposite_l, weight_t min_cost,
                            std::vector<Tuple>* rows);
  Status BuildExpansionTsql(const DirCols& dir, const EdgeRelation& rel,
                            weight_t opposite_l, weight_t min_cost,
                            std::vector<Tuple>* rows);
  /// Joins frontier rows with `rel` and projects (nid, cost, pid, aid),
  /// without dedup — shared by both modes.
  ExecRef BuildJoinProject(const DirCols& dir, const EdgeRelation& rel,
                           weight_t opposite_l, weight_t min_cost);
  Status MergeNsql(const DirCols& dir, std::vector<Tuple> rows,
                   int64_t* affected);
  Status MergeTsql(const DirCols& dir, std::vector<Tuple> rows,
                   int64_t* affected);

  Database* db_;
  VisitedTable* visited_;
  SqlMode mode_;
  FemStats stats_;
};

/// Schema of the materialized E-operator output ("create view ek ...").
Schema ExpansionSchema();

}  // namespace relgraph
