#include "src/core/path_finder.h"

#include <algorithm>
#include <atomic>

#include "src/common/timer.h"
#include "src/core/segtable.h"
#include "src/exec/scan_executors.h"

namespace relgraph {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kDJ:
      return "DJ";
    case Algorithm::kBDJ:
      return "BDJ";
    case Algorithm::kBSDJ:
      return "BSDJ";
    case Algorithm::kBBFS:
      return "BBFS";
    case Algorithm::kBSEG:
      return "BSEG";
  }
  return "?";
}

Status PathFinder::Create(GraphStore* graph, PathFinderOptions options,
                          std::unique_ptr<PathFinder>* out,
                          const SegTable* segtable) {
  if (options.algorithm == Algorithm::kBSEG && segtable == nullptr) {
    return Status::InvalidArgument("BSEG requires a SegTable");
  }
  static std::atomic<int> counter{0};
  auto pf = std::unique_ptr<PathFinder>(new PathFinder());
  pf->graph_ = graph;
  pf->segtable_ = segtable;
  pf->options_ = options;
  std::string name = "TVisited_" + std::string(AlgorithmName(options.algorithm)) +
                     "_" + std::to_string(counter.fetch_add(1));
  RELGRAPH_RETURN_IF_ERROR(VisitedTable::Create(
      graph->db(), graph->strategy(), std::move(name), &pf->visited_));
  pf->fem_ = std::make_unique<FemEngine>(graph->db(), pf->visited_.get(),
                                         options.sql_mode);
  *out = std::move(pf);
  return Status::OK();
}

EdgeRelation PathFinder::RelFor(const DirCols& dir) const {
  if (options_.algorithm == Algorithm::kBSEG) {
    return dir.forward ? segtable_->Forward() : segtable_->Backward();
  }
  return dir.forward ? graph_->Forward() : graph_->Backward();
}

Status PathFinder::Find(node_id_t s, node_id_t t, PathQueryResult* result) {
  *result = PathQueryResult{};
  Database* db = graph_->db();
  Timer total;
  const int64_t stmt0 = db->stats().statements;
  const auto bp0 = db->buffer_pool()->stats();
  const auto disk0 = db->disk()->stats();
  fem_->stats().Reset();
  RELGRAPH_RETURN_IF_ERROR(visited_->Reset());

  Status st;
  if (s == t) {
    result->found = true;
    result->distance = 0;
    result->path = {s};
  } else {
    node_id_t meet = kInvalidNode;
    switch (options_.algorithm) {
      case Algorithm::kDJ:
        st = RunDj(s, t, result);
        meet = t;
        break;
      case Algorithm::kBDJ:
        st = RunBdj(s, t, result);
        break;
      case Algorithm::kBSDJ:
      case Algorithm::kBBFS:
      case Algorithm::kBSEG:
        st = RunSetBidirectional(s, t, result);
        break;
    }
    if (st.ok() && result->found) {
      Timer recovery;
      if (options_.algorithm != Algorithm::kDJ) {
        st = fem_->MeetingNode(result->distance, &meet);
      }
      if (st.ok()) st = RecoverPath(s, t, meet, result);
      result->stats.path_recovery_us = recovery.ElapsedMicros();
    }
  }

  const FemStats& fs = fem_->stats();
  QueryStats& qs = result->stats;
  qs.expansions = fs.expansions;
  qs.f_operator_us = fs.f_operator_us;
  qs.e_operator_us = fs.e_operator_us;
  qs.m_operator_us = fs.m_operator_us;
  qs.path_expansion_us =
      fs.f_operator_us + fs.e_operator_us + fs.m_operator_us;
  qs.stat_collection_us = fs.aux_us;
  qs.statements = db->stats().statements - stmt0;
  qs.visited_rows = visited_->num_rows();
  qs.total_us = total.ElapsedMicros();
  const auto& bp1 = db->buffer_pool()->stats();
  const auto& disk1 = db->disk()->stats();
  qs.buffer_hits = bp1.hits - bp0.hits;
  qs.buffer_misses = bp1.misses - bp0.misses;
  qs.disk_reads = disk1.reads - disk0.reads;
  qs.disk_writes = disk1.writes - disk0.writes;
  return st;
}

// ------------------------------------------------------------ Algorithm 1

Status PathFinder::RunDj(node_id_t s, node_id_t t, PathQueryResult* result) {
  RELGRAPH_RETURN_IF_ERROR(visited_->InsertSource(s));
  const DirCols fwd = VisitedTable::ForwardCols();
  const size_t f_idx = visited_->table()->schema().IndexOf("f");
  const size_t d2s_idx = visited_->table()->schema().IndexOf("d2s");

  for (int64_t iter = 0; iter < options_.max_iterations; iter++) {
    node_id_t mid;
    bool have_mid;
    RELGRAPH_RETURN_IF_ERROR(fem_->PickMid(fwd, &mid, &have_mid));
    if (!have_mid) return Status::OK();  // search space exhausted: no path

    int64_t marked, affected;
    RELGRAPH_RETURN_IF_ERROR(
        fem_->MarkFrontier(fwd, FrontierSpec::Node(mid), &marked));
    RELGRAPH_RETURN_IF_ERROR(fem_->ExpandAndMerge(fwd, RelFor(fwd),
                                                  /*opposite_l=*/0, kInfinity,
                                                  &affected));
    RELGRAPH_RETURN_IF_ERROR(fem_->FinalizeFrontier(fwd));

    // Listing 3(1): SELECT * FROM TVisited WHERE f=1 AND nid=t.
    ScopedTimer probe_timer(&fem_->stats().aux_us);
    Tuple row;
    Status probe = visited_->GetRow(t, &row);
    if (probe.ok() && row.value(f_idx).AsInt() == 1) {
      result->found = true;
      result->distance = row.value(d2s_idx).AsInt();
      return Status::OK();
    }
    if (!probe.ok() && !probe.IsNotFound()) return probe;
  }
  return Status::Internal("DJ exceeded max_iterations");
}

// ------------------------------------------------ bi-directional Dijkstra

Status PathFinder::RunBdj(node_id_t s, node_id_t t, PathQueryResult* result) {
  RELGRAPH_RETURN_IF_ERROR(visited_->InsertSourceAndTarget(s, t));
  const DirCols fwd = VisitedTable::ForwardCols();
  const DirCols bwd = VisitedTable::BackwardCols();
  weight_t lf = 0, lb = 0;

  for (int64_t iter = 0; iter < options_.max_iterations; iter++) {
    weight_t min_cost;
    RELGRAPH_RETURN_IF_ERROR(fem_->MinCost(&min_cost));
    if (lf + lb >= min_cost) {
      result->found = min_cost < kInfinity;
      result->distance = min_cost;
      return Status::OK();
    }
    weight_t mf, mb;
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(fwd, &mf));
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(bwd, &mb));
    if (mf >= kInfinity || mb >= kInfinity) {
      // One side fully settled: every distance on that side is exact, so
      // the best meeting seen so far is the true shortest distance.
      result->found = min_cost < kInfinity;
      result->distance = min_cost;
      return Status::OK();
    }
    const bool go_forward = mf <= mb;
    const DirCols& dir = go_forward ? fwd : bwd;

    node_id_t mid;
    bool have_mid;
    RELGRAPH_RETURN_IF_ERROR(fem_->PickMid(dir, &mid, &have_mid));
    if (!have_mid) {
      result->found = min_cost < kInfinity;
      result->distance = min_cost;
      return Status::OK();
    }
    int64_t marked, affected;
    RELGRAPH_RETURN_IF_ERROR(
        fem_->MarkFrontier(dir, FrontierSpec::Node(mid), &marked));
    RELGRAPH_RETURN_IF_ERROR(fem_->ExpandAndMerge(
        dir, RelFor(dir), options_.disable_pruning ? 0 : (go_forward ? lb : lf),
        options_.disable_pruning ? kInfinity : min_cost, &affected));
    RELGRAPH_RETURN_IF_ERROR(fem_->FinalizeFrontier(dir));
    if (go_forward) {
      lf = mf;
    } else {
      lb = mb;
    }
  }
  return Status::Internal("BDJ exceeded max_iterations");
}

// ------------------------------ set-at-a-time loop (BSDJ / BBFS / BSEG)

Status PathFinder::RunSetBidirectional(node_id_t s, node_id_t t,
                                       PathQueryResult* result) {
  RELGRAPH_RETURN_IF_ERROR(visited_->InsertSourceAndTarget(s, t));
  const DirCols fwd = VisitedTable::ForwardCols();
  const DirCols bwd = VisitedTable::BackwardCols();
  weight_t lf = 0, lb = 0;
  int64_t nf = 1, nb = 1;          // frontier sizes (direction choice)
  int64_t fwd_round = 1, bwd_round = 1;  // BSEG expansion counters
  const weight_t lthd =
      options_.algorithm == Algorithm::kBSEG ? segtable_->lthd() : 0;

  for (int64_t iter = 0; iter < options_.max_iterations; iter++) {
    weight_t min_cost;
    RELGRAPH_RETURN_IF_ERROR(fem_->MinCost(&min_cost));
    if (lf + lb >= min_cost) {
      result->found = min_cost < kInfinity;
      result->distance = min_cost;
      return Status::OK();
    }
    const bool go_forward = nf <= nb;
    const DirCols& dir = go_forward ? fwd : bwd;
    int64_t round = go_forward ? fwd_round : bwd_round;

    weight_t m;
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(dir, &m));
    if (m >= kInfinity) {
      // This direction is exhausted; its distances are exact, so minCost is
      // already the answer (or there is no path).
      result->found = min_cost < kInfinity;
      result->distance = min_cost;
      return Status::OK();
    }

    FrontierSpec frontier_spec;
    switch (options_.algorithm) {
      case Algorithm::kBSDJ:
        frontier_spec = FrontierSpec::DistEq(m);
        break;
      case Algorithm::kBBFS:
        frontier_spec = FrontierSpec::All();  // every candidate expands
        break;
      case Algorithm::kBSEG:
        frontier_spec = FrontierSpec::DistOr(round * lthd, m);
        break;
      default:
        return Status::Internal("unexpected algorithm in set loop");
    }

    int64_t marked, affected;
    RELGRAPH_RETURN_IF_ERROR(fem_->MarkFrontier(dir, frontier_spec, &marked));
    if (marked == 0) {
      result->found = min_cost < kInfinity;
      result->distance = min_cost;
      return Status::OK();
    }
    RELGRAPH_RETURN_IF_ERROR(fem_->ExpandAndMerge(
        dir, RelFor(dir), options_.disable_pruning ? 0 : (go_forward ? lb : lf),
        options_.disable_pruning ? kInfinity : min_cost, &affected));
    RELGRAPH_RETURN_IF_ERROR(fem_->FinalizeFrontier(dir));

    if (go_forward) {
      lf = m;
      nf = marked;
      fwd_round++;
    } else {
      lb = m;
      nb = marked;
      bwd_round++;
    }
  }
  return Status::Internal("set search exceeded max_iterations");
}

// -------------------------------------------------------- path recovery

Status PathFinder::SegmentStep(const DirCols& dir, node_id_t anchor,
                               node_id_t y, node_id_t first_parent,
                               node_id_t* prev) {
  if (first_parent != kInvalidNode) {
    *prev = first_parent;
    return Status::OK();
  }
  // Interior hop: the pre-computed segment rows for this anchor give y's
  // parent. One indexed range scan per hop (Listing 3(3) analogue).
  EdgeRelation rel = RelFor(dir);
  graph_->db()->RecordStatement();
  ExecRef scan;
  if (rel.table->HasIndexOn(rel.join_column)) {
    scan = std::make_unique<IndexRangeScanExecutor>(rel.table, rel.join_column,
                                                    anchor, anchor);
  } else {
    scan = std::make_unique<FilterExecutor>(
        std::make_unique<SeqScanExecutor>(rel.table),
        ColEq(rel.join_column, anchor));
  }
  FilterExecutor plan(std::move(scan), ColEq(rel.emit_column, y));
  RELGRAPH_RETURN_IF_ERROR(plan.Init());
  Tuple row;
  if (!plan.Next(&row)) {
    RELGRAPH_RETURN_IF_ERROR(plan.status());
    return Status::Corruption("segment interior missing for anchor " +
                              std::to_string(anchor) + " node " +
                              std::to_string(y));
  }
  *prev =
      row.value(plan.OutputSchema().IndexOf(rel.parent_column)).AsInt();
  return Status::OK();
}

Status PathFinder::WalkDirection(const DirCols& dir, node_id_t from,
                                 node_id_t origin,
                                 std::vector<node_id_t>* out) {
  const Schema& schema = visited_->table()->schema();
  const size_t pred_idx = schema.IndexOf(dir.pred);
  const size_t anchor_idx = schema.IndexOf(dir.anchor);
  out->push_back(from);
  node_id_t x = from;
  int64_t guard = 0;
  while (x != origin) {
    if (++guard > graph_->num_nodes() + 8) {
      return Status::Corruption("cycle while recovering path");
    }
    Tuple row;
    RELGRAPH_RETURN_IF_ERROR(visited_->GetRow(x, &row));
    node_id_t anchor = row.value(anchor_idx).AsInt();
    node_id_t parent = row.value(pred_idx).AsInt();
    // Unroll the segment interior from x back to its anchor.
    node_id_t y = x;
    node_id_t prev = kInvalidNode;
    for (;;) {
      RELGRAPH_RETURN_IF_ERROR(
          SegmentStep(dir, anchor, y, y == x ? parent : kInvalidNode, &prev));
      out->push_back(prev);
      if (prev == anchor) break;
      if (++guard > graph_->num_nodes() + 8) {
        return Status::Corruption("cycle inside segment recovery");
      }
      y = prev;
    }
    x = anchor;
  }
  return Status::OK();
}

Status PathFinder::RecoverPath(node_id_t s, node_id_t t, node_id_t meet,
                               PathQueryResult* result) {
  std::vector<node_id_t> forward_half;  // meet ... s
  RELGRAPH_RETURN_IF_ERROR(WalkDirection(VisitedTable::ForwardCols(), meet, s,
                                         &forward_half));
  std::vector<node_id_t> backward_half;  // meet ... t
  RELGRAPH_RETURN_IF_ERROR(WalkDirection(VisitedTable::BackwardCols(), meet, t,
                                         &backward_half));
  std::reverse(forward_half.begin(), forward_half.end());
  result->path = std::move(forward_half);
  result->path.insert(result->path.end(), backward_half.begin() + 1,
                      backward_half.end());
  return Status::OK();
}

}  // namespace relgraph
