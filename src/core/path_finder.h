#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/fem.h"
#include "src/core/segtable_fwd.h"
#include "src/core/visited_table.h"
#include "src/graph/graph_store.h"

namespace relgraph {

/// The five relational shortest-path algorithms of §5.1. (The in-memory
/// competitors MDJ/MBDJ live on MemGraph.)
enum class Algorithm {
  kDJ,    // Algorithm 1: single-direction, node-at-a-time Dijkstra
  kBDJ,   // bi-directional, node-at-a-time Dijkstra
  kBSDJ,  // §4.1: bi-directional *set* Dijkstra
  kBBFS,  // bi-directional BFS (expand every candidate each round)
  kBSEG,  // Algorithm 2: bi-directional selective expansion on SegTable
};

const char* AlgorithmName(Algorithm a);

struct PathFinderOptions {
  Algorithm algorithm = Algorithm::kBSDJ;
  SqlMode sql_mode = SqlMode::kNsql;
  /// Ablation switch: drop the Theorem-1 pruning predicate from the
  /// E-operator (results stay correct; search space grows).
  bool disable_pruning = false;
  /// Safety valve; a correct run never reaches it (Theorem 2 bounds).
  int64_t max_iterations = 10'000'000;
};

/// Everything the paper reports per query: wall-clock by phase (Fig 6(b):
/// PE = path expansion, SC = statistics collection, FPR = full path
/// recovery), by operator (Fig 6(c)), expansion counts (Tables 2-3 "Exps"),
/// visited-set size ("Vst"), SQL statements issued, and buffer/disk I/O.
struct QueryStats {
  int64_t expansions = 0;
  int64_t statements = 0;
  int64_t visited_rows = 0;
  int64_t path_expansion_us = 0;
  int64_t stat_collection_us = 0;
  int64_t path_recovery_us = 0;
  int64_t total_us = 0;
  int64_t f_operator_us = 0;
  int64_t e_operator_us = 0;
  int64_t m_operator_us = 0;
  int64_t buffer_hits = 0;
  int64_t buffer_misses = 0;
  int64_t disk_reads = 0;
  int64_t disk_writes = 0;
};

struct PathQueryResult {
  bool found = false;
  weight_t distance = kInfinity;
  std::vector<node_id_t> path;  // s ... t on the *original* graph
  QueryStats stats;
};

/// Client-side driver (the paper's Java/JDBC client): owns one TVisited
/// table and one FemEngine, issues the statement sequence of Algorithm 1 /
/// Algorithm 2, and keeps only scalar loop variables (mid, lf, lb, minCost,
/// nf, nb) outside the database — "in the running time, only few variables
/// are kept on the client side" (§3.4).
class PathFinder {
 public:
  /// `segtable` is required for (and only used by) Algorithm::kBSEG.
  static Status Create(GraphStore* graph, PathFinderOptions options,
                       std::unique_ptr<PathFinder>* out,
                       const SegTable* segtable = nullptr);

  /// Finds the shortest path from s to t. Not-found is reported through
  /// `result->found`, not the Status (which covers engine errors only).
  Status Find(node_id_t s, node_id_t t, PathQueryResult* result);

  const PathFinderOptions& options() const { return options_; }
  VisitedTable* visited() { return visited_.get(); }

 private:
  PathFinder() = default;

  Status RunDj(node_id_t s, node_id_t t, PathQueryResult* result);
  Status RunBdj(node_id_t s, node_id_t t, PathQueryResult* result);
  /// Shared driver for the three set-at-a-time algorithms; they differ only
  /// in the frontier predicate (BSDJ: dist = min; BBFS: all candidates;
  /// BSEG: dist <= round*lthd or dist = min) and the edge relations used.
  Status RunSetBidirectional(node_id_t s, node_id_t t,
                             PathQueryResult* result);

  EdgeRelation RelFor(const DirCols& dir) const;

  /// Full-path recovery (Listing 3(3) + §4.3 lines 17-20): walks anchor
  /// links in TVisited and re-expands each SegTable segment through the
  /// pre-computed pid chains, yielding the original-graph path.
  Status RecoverPath(node_id_t s, node_id_t t, node_id_t meet,
                     PathQueryResult* result);
  Status WalkDirection(const DirCols& dir, node_id_t from, node_id_t origin,
                       std::vector<node_id_t>* out);
  Status SegmentStep(const DirCols& dir, node_id_t anchor, node_id_t y,
                     node_id_t first_parent, node_id_t* prev);

  GraphStore* graph_ = nullptr;
  const SegTable* segtable_ = nullptr;
  PathFinderOptions options_;
  std::unique_ptr<VisitedTable> visited_;
  std::unique_ptr<FemEngine> fem_;
};

}  // namespace relgraph
