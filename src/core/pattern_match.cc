#include "src/core/pattern_match.h"

#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"

namespace relgraph {

Status LabelPathMatcher::Run(GraphStore* graph,
                             const std::vector<int64_t>& labels, int64_t limit,
                             PatternMatchResult* out) {
  *out = PatternMatchResult{};
  if (labels.empty()) return Status::InvalidArgument("empty label pattern");
  Database* db = graph->db();
  const int64_t stmt0 = db->stats().statements;
  const EdgeRelation rel = graph->Forward();

  // Visited relation: one row per partial match, one column per matched
  // pattern position. Kept materialized between iterations (the "view" an
  // RDBMS would pipeline); columns are named c0..ck.
  auto col_name = [](size_t i) { return "c" + std::to_string(i); };

  std::vector<Tuple> visited;
  Schema visited_schema({{col_name(0), TypeId::kInt}});
  {
    // Initialization: data nodes carrying the first label.
    db->RecordStatement();
    ExecRef scan = std::make_unique<FilterExecutor>(
        std::make_unique<SeqScanExecutor>(graph->nodes()),
        ColEq("label", labels[0]));
    ExecRef project = std::make_unique<ProjectExecutor>(
        std::move(scan), std::vector<ExprRef>{Col("nid")}, visited_schema);
    RELGRAPH_RETURN_IF_ERROR(Collect(project.get(), &visited));
  }

  for (size_t k = 1; k < labels.size(); k++) {
    out->iterations++;
    db->RecordStatement();
    // Expand: visited ⋈ TEdges on c_{k-1} = fid, then label-check the new
    // endpoint against TNodes (an index join when the node table allows).
    ExecRef frontier =
        std::make_unique<MaterializedExecutor>(std::move(visited),
                                               visited_schema);
    ExecRef with_edge;
    if (rel.table->HasIndexOn(rel.join_column)) {
      with_edge = std::make_unique<IndexNestedLoopJoinExecutor>(
          std::move(frontier), rel.table, rel.join_column,
          Col(col_name(k - 1)), nullptr);
    } else {
      with_edge = std::make_unique<NestedLoopJoinExecutor>(
          std::move(frontier), std::make_unique<SeqScanExecutor>(rel.table),
          Cmp(CompareOp::kEq, Col(col_name(k - 1)), Col(rel.join_column)));
    }
    ExecRef with_label;
    if (graph->nodes()->HasIndexOn("nid")) {
      with_label = std::make_unique<IndexNestedLoopJoinExecutor>(
          std::move(with_edge), graph->nodes(), "nid", Col(rel.emit_column),
          ColEq("label", labels[k]));
    } else {
      with_label = std::make_unique<NestedLoopJoinExecutor>(
          std::move(with_edge), std::make_unique<SeqScanExecutor>(graph->nodes()),
          And(Cmp(CompareOp::kEq, Col(rel.emit_column), Col("nid")),
              ColEq("label", labels[k])));
    }
    // Merge: the widened tuple set becomes the next visited relation.
    std::vector<Column> cols = visited_schema.columns();
    cols.push_back({col_name(k), TypeId::kInt});
    Schema next_schema(std::move(cols));
    std::vector<ExprRef> exprs;
    for (size_t i = 0; i < k; i++) exprs.push_back(Col(col_name(i)));
    exprs.push_back(Col(rel.emit_column));
    ExecRef project = std::make_unique<ProjectExecutor>(
        std::move(with_label), std::move(exprs), next_schema);
    std::vector<Tuple> next;
    RELGRAPH_RETURN_IF_ERROR(Collect(project.get(), &next));
    visited = std::move(next);
    visited_schema = std::move(next_schema);
    if (visited.empty()) break;
  }

  out->count = static_cast<int64_t>(visited.size());
  for (const auto& t : visited) {
    if (static_cast<int64_t>(out->matches.size()) >= limit) break;
    std::vector<node_id_t> match;
    match.reserve(t.NumValues());
    for (size_t i = 0; i < t.NumValues(); i++) {
      match.push_back(t.value(i).AsInt());
    }
    out->matches.push_back(std::move(match));
  }
  out->statements = db->stats().statements - stmt0;
  return Status::OK();
}

}  // namespace relgraph
