#pragma once

#include <vector>

#include "src/core/fem.h"
#include "src/graph/graph_store.h"

namespace relgraph {

struct PatternMatchResult {
  /// Matched node sequences (d0, ..., dk), capped at `limit`.
  std::vector<std::vector<node_id_t>> matches;
  /// Total number of matches (uncapped).
  int64_t count = 0;
  int64_t iterations = 0;
  int64_t statements = 0;
};

/// Label-path pattern matching in the FEM framework (paper §3.1's third
/// showcase, specialized to path-shaped patterns): finds every node
/// sequence (d0, ..., dk) with label(di) = labels[i] and an edge di→di+1.
/// Iteration i grows the visited relation by one column via a join with
/// TEdges and a label filter on TNodes — the expand step of FEM with tuple
/// concatenation as the merge.
class LabelPathMatcher {
 public:
  static Status Run(GraphStore* graph, const std::vector<int64_t>& labels,
                    int64_t limit, PatternMatchResult* out);
};

}  // namespace relgraph
