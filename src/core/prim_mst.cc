#include "src/core/prim_mst.h"

#include <atomic>
#include <map>

#include "src/exec/agg_executors.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/window_executor.h"

namespace relgraph {

namespace {
Schema MstSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"w", TypeId::kInt},
                 {"p2s", TypeId::kInt},
                 {"f", TypeId::kInt}});
}

Schema CandidateSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"cost", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}
}  // namespace

Status PrimMst::Run(GraphStore* graph, SqlMode mode, node_id_t root,
                    MstResult* out) {
  *out = MstResult{};
  Database* db = graph->db();
  const int64_t stmt0 = db->stats().statements;
  static std::atomic<int> counter{0};
  const std::string name = "TMst_" + std::to_string(counter.fetch_add(1));

  Table* tree = nullptr;
  TableOptions topts;
  if (graph->strategy() == IndexStrategy::kCluIndex) {
    topts.storage = TableStorage::kClustered;
    topts.cluster_key = "nid";
    topts.cluster_unique = true;
  }
  RELGRAPH_RETURN_IF_ERROR(
      db->catalog()->CreateTable(name, MstSchema(), topts, &tree));
  if (graph->strategy() != IndexStrategy::kCluIndex) {
    RELGRAPH_RETURN_IF_ERROR(
        db->catalog()->CreateSecondaryIndex(tree, "nid", true));
  }

  db->RecordStatement();
  RELGRAPH_RETURN_IF_ERROR(tree->Insert(
      Tuple({Value(root), Value(int64_t{0}), Value(root), Value(int64_t{0})})));

  const EdgeRelation rel = graph->Forward();
  for (;;) {
    // F: the single cheapest candidate (f=0, minimal w). Prim must stay
    // node-at-a-time (§3.1): taking every minimum-cost candidate in one
    // batch can miss a cheaper edge between two candidates admitted
    // together, losing optimality.
    db->RecordStatement();
    Value min_w;
    {
      FilterExecutor open(std::make_unique<SeqScanExecutor>(tree),
                          ColEq("f", 0));
      RELGRAPH_RETURN_IF_ERROR(
          EvalScalarAggregate(&open, AggOp::kMin, Col("w"), &min_w));
    }
    if (min_w.IsNull()) break;  // every reached node is in the tree

    node_id_t mid;
    {
      // SELECT TOP 1 nid FROM tree WHERE f=0 AND w = :min.
      FilterExecutor plan(
          std::make_unique<SeqScanExecutor>(tree),
          And(ColEq("f", 0),
              Cmp(CompareOp::kEq, Col("w"), Lit(min_w.AsInt()))));
      RELGRAPH_RETURN_IF_ERROR(plan.Init());
      Tuple t;
      if (!plan.Next(&t)) break;
      mid = t.value(0).AsInt();
    }

    db->RecordStatement();
    int64_t marked;
    RELGRAPH_RETURN_IF_ERROR(UpdateWhere(tree, ColEq("nid", mid),
                                         {{"f", Lit(int64_t{2})}}, &marked));
    if (marked == 0) break;
    out->iterations++;

    // E: neighbours of the frontier with the edge weight as the candidate
    // attachment cost (not accumulated — the Prim variation of §3.1).
    db->RecordStatement();
    std::vector<Tuple> rows;
    {
      ExecRef frontier = std::make_unique<FilterExecutor>(
          std::make_unique<SeqScanExecutor>(tree), ColEq("f", 2));
      ExecRef joined;
      if (rel.table->HasIndexOn(rel.join_column)) {
        joined = std::make_unique<IndexNestedLoopJoinExecutor>(
            std::move(frontier), rel.table, rel.join_column, Col("nid"),
            nullptr);
      } else {
        joined = std::make_unique<NestedLoopJoinExecutor>(
            std::move(frontier), std::make_unique<SeqScanExecutor>(rel.table),
            Cmp(CompareOp::kEq, Col("nid"), Col(rel.join_column)));
      }
      ExecRef projected = std::make_unique<ProjectExecutor>(
          std::move(joined),
          std::vector<ExprRef>{Col(rel.emit_column), Col(rel.cost_column),
                               Col("nid")},
          CandidateSchema());
      if (mode == SqlMode::kNsql) {
        ExecRef window = std::make_unique<WindowRowNumberExecutor>(
            std::move(projected), std::vector<std::string>{"nid"},
            std::vector<SortKey>{{Col("cost"), true}, {Col("pid"), true}});
        ExecRef dedup = std::make_unique<FilterExecutor>(std::move(window),
                                                         ColEq("rownum", 1));
        ExecRef back = std::make_unique<ProjectExecutor>(
            std::move(dedup),
            std::vector<ExprRef>{Col("nid"), Col("cost"), Col("pid")},
            CandidateSchema());
        RELGRAPH_RETURN_IF_ERROR(Collect(back.get(), &rows));
      } else {
        // TSQL: collect everything, keep the per-node minimum client-side
        // aggregate semantics via a second pass (as in the E-operator).
        std::vector<Tuple> all;
        RELGRAPH_RETURN_IF_ERROR(Collect(projected.get(), &all));
        std::map<int64_t, Tuple> best;
        for (const auto& t : all) {
          auto [pos, inserted] = best.try_emplace(t.value(0).AsInt(), t);
          if (!inserted &&
              (t.value(1).AsInt() < pos->second.value(1).AsInt() ||
               (t.value(1).AsInt() == pos->second.value(1).AsInt() &&
                t.value(2).AsInt() < pos->second.value(2).AsInt()))) {
            pos->second = t;
          }
        }
        for (auto& [nid, t] : best) rows.push_back(std::move(t));
      }
    }

    // M: nodes already in the tree (f=1 or f=2) are discarded; candidates
    // keep their cheaper attachment.
    {
      if (mode == SqlMode::kTsql || !db->SupportsMerge()) db->RecordStatement();
      MaterializedExecutor source(std::move(rows), CandidateSchema());
      MergeSpec spec;
      spec.target_key_column = "nid";
      spec.source_key_column = "nid";
      spec.matched_condition =
          And(ColEq("t.f", 0),
              Cmp(CompareOp::kGt, Col("t.w"), Col("s.cost")));
      spec.matched_sets = {{"w", Col("s.cost")}, {"p2s", Col("s.pid")}};
      spec.insert_values = {Col("nid"), Col("cost"), Col("pid"),
                            Lit(int64_t{0})};
      int64_t affected;
      RELGRAPH_RETURN_IF_ERROR(MergeInto(tree, &source, spec, &affected));
    }

    db->RecordStatement();
    int64_t reset;
    RELGRAPH_RETURN_IF_ERROR(
        UpdateWhere(tree, ColEq("f", 2), {{"f", Lit(int64_t{1})}}, &reset));
  }

  // Harvest the tree.
  db->RecordStatement();
  {
    SeqScanExecutor scan(tree);
    RELGRAPH_RETURN_IF_ERROR(scan.Init());
    Tuple t;
    while (scan.Next(&t)) {
      node_id_t nid = t.value(0).AsInt();
      weight_t w = t.value(1).AsInt();
      node_id_t parent = t.value(2).AsInt();
      out->total_weight += w;
      if (nid != root) out->tree_edges.push_back({parent, nid, w});
    }
    RELGRAPH_RETURN_IF_ERROR(scan.status());
  }
  out->connected =
      static_cast<int64_t>(out->tree_edges.size()) + 1 == graph->num_nodes();
  out->statements = db->stats().statements - stmt0;
  return db->catalog()->DropTable(name);
}

}  // namespace relgraph
