#pragma once

#include <vector>

#include "src/core/fem.h"
#include "src/graph/graph_store.h"

namespace relgraph {

struct MstResult {
  /// True when every node was reached (single connected component).
  bool connected = false;
  weight_t total_weight = 0;
  /// Tree edges as (parent=p2s, child=nid, weight).
  std::vector<Edge> tree_edges;
  int64_t iterations = 0;
  int64_t statements = 0;
};

/// Prim's minimal-spanning-tree algorithm expressed in the FEM framework
/// (paper §3.1's second showcase): each node u carries (p2s, w, f); the
/// F-operator picks the cheapest non-tree candidate, the E-operator joins
/// it with TEdges, and the M-operator keeps the cheaper attachment cost —
/// the same select/expand/merge skeleton as shortest paths, with edge
/// weight in place of accumulated distance.
///
/// Runs on the undirected interpretation of the stored graph (the paper's
/// MST case); the graph should contain both edge directions.
class PrimMst {
 public:
  static Status Run(GraphStore* graph, SqlMode mode, node_id_t root,
                    MstResult* out);
};

}  // namespace relgraph
