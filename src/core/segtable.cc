#include "src/core/segtable.h"

#include <map>
#include <unordered_map>

#include "src/common/timer.h"
#include "src/exec/agg_executors.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/window_executor.h"

namespace relgraph {

namespace {

/// Composite (src, node) key packed into one INT so the working table can
/// carry a single-column unique index: src < 2^31 node ids are required,
/// which Table/GraphStore already guarantee for graphs this engine stores.
constexpr int64_t kSrcShift = int64_t{1} << 32;

Schema WorkSchema() {
  return Schema({{"skey", TypeId::kInt},
                 {"src", TypeId::kInt},
                 {"nid", TypeId::kInt},
                 {"dist", TypeId::kInt},
                 {"pid", TypeId::kInt},
                 {"f", TypeId::kInt}});
}

Schema SegsSchema() {
  return Schema({{"fid", TypeId::kInt},
                 {"tid", TypeId::kInt},
                 {"pid", TypeId::kInt},
                 {"cost", TypeId::kInt}});
}

Schema ExpandedSchema() {
  return Schema({{"skey", TypeId::kInt},
                 {"src", TypeId::kInt},
                 {"nid", TypeId::kInt},
                 {"dist", TypeId::kInt},
                 {"pid", TypeId::kInt}});
}

/// Frontier ⋈ edges, pruned at lthd, projected to the expanded-row shape.
ExecRef BuildSegJoin(Table* work, const EdgeRelation& rel, weight_t lthd) {
  ExecRef frontier = std::make_unique<FilterExecutor>(
      std::make_unique<SeqScanExecutor>(work), ColEq("f", 2));
  ExprRef prune = Cmp(CompareOp::kLe, Add(Col("dist"), Col(rel.cost_column)),
                      Lit(lthd));
  ExecRef joined;
  if (rel.table->HasIndexOn(rel.join_column)) {
    joined = std::make_unique<IndexNestedLoopJoinExecutor>(
        std::move(frontier), rel.table, rel.join_column, Col("nid"), prune);
  } else {
    ExprRef on = Cmp(CompareOp::kEq, Col("nid"), Col(rel.join_column));
    joined = std::make_unique<NestedLoopJoinExecutor>(
        std::move(frontier), std::make_unique<SeqScanExecutor>(rel.table),
        And(on, prune));
  }
  std::vector<ExprRef> exprs = {
      Add(Mul(Col("src"), Lit(kSrcShift)), Col(rel.emit_column)),
      Col("src"),
      Col(rel.emit_column),
      Add(Col("dist"), Col(rel.cost_column)),
      Col(rel.parent_column)};
  return std::make_unique<ProjectExecutor>(std::move(joined), std::move(exprs),
                                           ExpandedSchema());
}

/// Deduplicates expanded rows to one minimal-distance row per skey, in
/// either SQL-feature mode (same trade-off as FemEngine's E-operator).
Status DedupExpansion(Table* work, const EdgeRelation& rel, weight_t lthd,
                      SqlMode mode, std::vector<Tuple>* rows) {
  if (mode == SqlMode::kNsql) {
    ExecRef window = std::make_unique<WindowRowNumberExecutor>(
        BuildSegJoin(work, rel, lthd), std::vector<std::string>{"skey"},
        std::vector<SortKey>{{Col("dist"), true}, {Col("pid"), true}});
    ExecRef dedup = std::make_unique<FilterExecutor>(std::move(window),
                                                     ColEq("rownum", 1));
    ExecRef project = std::make_unique<ProjectExecutor>(
        std::move(dedup),
        std::vector<ExprRef>{Col("skey"), Col("src"), Col("nid"), Col("dist"),
                             Col("pid")},
        ExpandedSchema());
    return Collect(project.get(), rows);
  }
  // TSQL: GROUP BY + MIN, then a second join pass to recover pid.
  std::unordered_map<int64_t, weight_t> min_by_key;
  {
    ExecRef agg = std::make_unique<HashAggregateExecutor>(
        BuildSegJoin(work, rel, lthd), std::vector<std::string>{"skey"},
        std::vector<AggSpec>{{AggOp::kMin, Col("dist"), "mindist"}});
    std::vector<Tuple> agg_rows;
    RELGRAPH_RETURN_IF_ERROR(Collect(agg.get(), &agg_rows));
    for (const auto& t : agg_rows) {
      min_by_key[t.value(0).AsInt()] = t.value(1).AsInt();
    }
  }
  ExecRef again = BuildSegJoin(work, rel, lthd);
  RELGRAPH_RETURN_IF_ERROR(again->Init());
  std::map<int64_t, Tuple> best;
  Tuple t;
  while (again->Next(&t)) {
    int64_t skey = t.value(0).AsInt();
    auto it = min_by_key.find(skey);
    if (it == min_by_key.end() || t.value(3).AsInt() != it->second) continue;
    auto [pos, inserted] = best.try_emplace(skey, t);
    if (!inserted && t.value(4).AsInt() < pos->second.value(4).AsInt()) {
      pos->second = t;
    }
  }
  RELGRAPH_RETURN_IF_ERROR(again->status());
  rows->reserve(best.size());
  for (auto& [skey, tuple] : best) rows->push_back(std::move(tuple));
  return Status::OK();
}

}  // namespace

Status SegTable::BuildDirection(Database* db, GraphStore* graph,
                                const SegTableOptions& options,
                                const EdgeRelation& rel, bool forward,
                                Table* final_table,
                                SegTableBuildStats* stats) {
  Catalog* catalog = db->catalog();
  const std::string work_name =
      options.prefix + (forward ? "work_out" : "work_in");

  Table* work = nullptr;
  {
    TableOptions topts;
    if (options.strategy == IndexStrategy::kCluIndex) {
      topts.storage = TableStorage::kClustered;
      topts.cluster_key = "skey";
      topts.cluster_unique = true;
    }
    RELGRAPH_RETURN_IF_ERROR(
        catalog->CreateTable(work_name, WorkSchema(), topts, &work));
    if (options.strategy != IndexStrategy::kCluIndex) {
      // Even the NoIndex study keeps the working table probe-able: the
      // paper's Fig 8(c) varies the *SegTable and TVisited* indexes; the
      // construction-internal table is an implementation detail.
      RELGRAPH_RETURN_IF_ERROR(
          catalog->CreateSecondaryIndex(work, "skey", /*unique=*/true));
    }
  }

  // Seed: every node starts as the source of its own search (§4.2 "we can
  // put all nodes in G into a visited node set initially").
  {
    db->RecordStatement();
    std::vector<ExprRef> exprs = {
        Add(Mul(Col("nid"), Lit(kSrcShift)), Col("nid")),
        Col("nid"),
        Col("nid"),
        Lit(int64_t{0}),
        Col("nid"),
        Lit(int64_t{0})};
    ProjectExecutor seed(std::make_unique<SeqScanExecutor>(graph->nodes()),
                         std::move(exprs), WorkSchema());
    int64_t inserted;
    RELGRAPH_RETURN_IF_ERROR(InsertFromExecutor(work, &seed, &inserted));
  }

  const weight_t wmin = graph->min_weight();
  const weight_t lthd = options.lthd;
  for (int64_t round = 1;; round++) {
    // Frontier rule: f=0 AND (dist < round*wmin OR dist = min open dist).
    db->RecordStatement();
    Value min_open;
    {
      FilterExecutor open(std::make_unique<SeqScanExecutor>(work),
                          ColEq("f", 0));
      RELGRAPH_RETURN_IF_ERROR(
          EvalScalarAggregate(&open, AggOp::kMin, Col("dist"), &min_open));
    }
    if (min_open.IsNull()) break;  // no candidates remain

    db->RecordStatement();
    int64_t marked = 0;
    {
      ExprRef pred = And(
          ColEq("f", 0),
          Or(Cmp(CompareOp::kLt, Col("dist"), Lit(round * wmin)),
             Cmp(CompareOp::kEq, Col("dist"), Lit(min_open.AsInt()))));
      RELGRAPH_RETURN_IF_ERROR(
          UpdateWhere(work, pred, {{"f", Lit(int64_t{2})}}, &marked));
    }
    if (marked == 0) break;
    if (stats != nullptr) stats->iterations++;

    // E: expand + dedup; M: merge on skey.
    db->RecordStatement();
    std::vector<Tuple> rows;
    RELGRAPH_RETURN_IF_ERROR(
        DedupExpansion(work, rel, lthd, options.sql_mode, &rows));
    {
      if (options.sql_mode == SqlMode::kTsql || !db->SupportsMerge()) {
        db->RecordStatement();  // update+insert pair costs a second statement
      }
      MaterializedExecutor source(std::move(rows), ExpandedSchema());
      MergeSpec spec;
      spec.target_key_column = "skey";
      spec.source_key_column = "skey";
      spec.matched_condition =
          Cmp(CompareOp::kGt, Col("t.dist"), Col("s.dist"));
      spec.matched_sets = {{"dist", Col("s.dist")},
                           {"pid", Col("s.pid")},
                           {"f", Lit(int64_t{0})}};
      spec.insert_values = {Col("skey"), Col("src"),          Col("nid"),
                            Col("dist"), Col("pid"),          Lit(int64_t{0})};
      int64_t affected;
      RELGRAPH_RETURN_IF_ERROR(MergeInto(work, &source, spec, &affected));
    }

    // Reset signs f=2 -> 1.
    db->RecordStatement();
    int64_t reset;
    RELGRAPH_RETURN_IF_ERROR(
        UpdateWhere(work, ColEq("f", 2), {{"f", Lit(int64_t{1})}}, &reset));
  }

  // Second step (§4.2): fold in the original edges not dominated by a
  // pre-computed segment.
  {
    db->RecordStatement();
    std::vector<ExprRef> exprs = {
        Add(Mul(Col(rel.join_column), Lit(kSrcShift)), Col(rel.emit_column)),
        Col(rel.join_column),
        Col(rel.emit_column),
        Col(rel.cost_column),
        Col(rel.parent_column)};
    ProjectExecutor source(std::make_unique<SeqScanExecutor>(rel.table),
                           std::move(exprs), ExpandedSchema());
    MergeSpec spec;
    spec.target_key_column = "skey";
    spec.source_key_column = "skey";
    // A multi-edge can undercut a previous residual edge but never a true
    // shortest segment (δ <= w by definition).
    spec.matched_condition = Cmp(CompareOp::kGt, Col("t.dist"), Col("s.dist"));
    spec.matched_sets = {{"dist", Col("s.dist")}, {"pid", Col("s.pid")}};
    spec.insert_values = {Col("skey"), Col("src"),          Col("nid"),
                          Col("dist"), Col("pid"),          Lit(int64_t{1})};
    int64_t affected;
    RELGRAPH_RETURN_IF_ERROR(MergeInto(work, &source, spec, &affected));
  }

  // Publish: copy into the final segs table, dropping trivial (u,u) rows.
  // The work table scans in skey order, so a clustered final table loads
  // packed and in key order.
  {
    db->RecordStatement();
    ExecRef nontrivial = std::make_unique<FilterExecutor>(
        std::make_unique<SeqScanExecutor>(work),
        Cmp(CompareOp::kNe, Col("src"), Col("nid")));
    std::vector<ExprRef> exprs;
    if (forward) {
      // TOutSegs(fid=src, tid=nid, pid, cost=dist)
      exprs = {Col("src"), Col("nid"), Col("pid"), Col("dist")};
    } else {
      // TInSegs(fid=nid, tid=src, pid, cost=dist)
      exprs = {Col("nid"), Col("src"), Col("pid"), Col("dist")};
    }
    ProjectExecutor source(std::move(nontrivial), std::move(exprs),
                           SegsSchema());
    int64_t inserted;
    RELGRAPH_RETURN_IF_ERROR(
        InsertFromExecutor(final_table, &source, &inserted));
  }

  return catalog->DropTable(work_name);
}

Status SegTable::Build(Database* db, GraphStore* graph,
                       SegTableOptions options, std::unique_ptr<SegTable>* out,
                       SegTableBuildStats* stats) {
  Timer timer;
  int64_t statements_before = db->stats().statements;
  int64_t misses_before = db->buffer_pool()->stats().misses;
  int64_t reads_before = db->disk()->stats().reads;

  auto st = std::unique_ptr<SegTable>(new SegTable());
  st->db_ = db;
  st->options_ = options;
  Catalog* catalog = db->catalog();

  auto make_final = [&](const std::string& name, const std::string& key,
                        Table** table) -> Status {
    TableOptions topts;
    if (options.strategy == IndexStrategy::kCluIndex) {
      topts.storage = TableStorage::kClustered;
      topts.cluster_key = key;
      topts.cluster_unique = false;
    }
    RELGRAPH_RETURN_IF_ERROR(
        catalog->CreateTable(name, SegsSchema(), topts, table));
    if (options.strategy == IndexStrategy::kIndex) {
      RELGRAPH_RETURN_IF_ERROR(
          catalog->CreateSecondaryIndex(*table, key, false));
    }
    return Status::OK();
  };
  RELGRAPH_RETURN_IF_ERROR(
      make_final(options.prefix + "TOutSegs", "fid", &st->out_segs_));
  RELGRAPH_RETURN_IF_ERROR(
      make_final(options.prefix + "TInSegs", "tid", &st->in_segs_));

  SegTableBuildStats local;
  RELGRAPH_RETURN_IF_ERROR(BuildDirection(db, graph, options, graph->Forward(),
                                          /*forward=*/true, st->out_segs_,
                                          &local));
  RELGRAPH_RETURN_IF_ERROR(BuildDirection(db, graph, options,
                                          graph->Backward(),
                                          /*forward=*/false, st->in_segs_,
                                          &local));
  if (stats != nullptr) {
    *stats = local;
    stats->out_entries = st->out_segs_->num_rows();
    stats->in_entries = st->in_segs_->num_rows();
    stats->build_us = timer.ElapsedMicros();
    stats->statements = db->stats().statements - statements_before;
    stats->buffer_misses = db->buffer_pool()->stats().misses - misses_before;
    stats->disk_reads = db->disk()->stats().reads - reads_before;
  }
  *out = std::move(st);
  return Status::OK();
}

namespace {

/// One half-segment reaching (or leaving) an endpoint of the new edge.
struct Half {
  node_id_t node;  // x (into u) or y (out of v)
  node_id_t pid;   // stored pid of that segment row
  weight_t dist;
};

/// Upserts segment (fid=x, tid=y, pid, dist) into a segs table keyed by
/// `key_col` ("fid" for TOutSegs, "tid" for TInSegs). The segs tables are
/// non-unique clustered relations, so the plan is an indexed range probe
/// followed by UPDATE-or-INSERT; each upsert is one statement.
Status UpsertSegment(Database* db, Table* table, const std::string& key_col,
                     node_id_t fid, node_id_t tid, node_id_t pid,
                     weight_t dist, int64_t* changed) {
  db->RecordStatement("MERGE " + table->name() + " ON (fid,tid)=(" +
                      std::to_string(fid) + "," + std::to_string(tid) + ")");
  const int64_t key = key_col == "fid" ? fid : tid;
  Table::Iterator it;
  RELGRAPH_RETURN_IF_ERROR(table->ScanRange(key_col, key, key, &it));
  Tuple row;
  RowRef ref;
  while (it.Next(&row, &ref)) {
    if (row.value(0).AsInt() != fid || row.value(1).AsInt() != tid) continue;
    if (row.value(3).AsInt() <= dist) return Status::OK();  // dominated
    Tuple updated({Value(fid), Value(tid), Value(pid), Value(dist)});
    RELGRAPH_RETURN_IF_ERROR(table->UpdateRow(ref, updated));
    (*changed)++;
    return Status::OK();
  }
  RELGRAPH_RETURN_IF_ERROR(it.status());
  RELGRAPH_RETURN_IF_ERROR(
      table->Insert(Tuple({Value(fid), Value(tid), Value(pid), Value(dist)})));
  (*changed)++;
  return Status::OK();
}

}  // namespace

Status SegTable::ApplyEdgeInsertion(const Edge& edge, int64_t* changed) {
  int64_t local_changed = 0;
  const node_id_t u = edge.from, v = edge.to;
  const weight_t w = edge.weight;
  const weight_t lthd = options_.lthd;

  if (w > lthd) {
    // The edge exceeds the threshold: it participates in no pre-computed
    // segment; only the raw-edge rows (Definition 4 case 2) are needed.
    // pid conventions follow BuildDirection's raw-edge fold: pre(v)=u in
    // the outgoing table, succ(u)=v in the incoming one.
    RELGRAPH_RETURN_IF_ERROR(
        UpsertSegment(db_, out_segs_, "fid", u, v, u, w, &local_changed));
    RELGRAPH_RETURN_IF_ERROR(
        UpsertSegment(db_, in_segs_, "tid", u, v, v, w, &local_changed));
    if (changed != nullptr) *changed = local_changed;
    return Status::OK();
  }

  // Left halves: every x with δ(x,u) <= lthd (rows of TInSegs at tid=u),
  // plus the trivial x=u. The new edge cannot shorten these: any path
  // x ~> u through u->v must return to u, which non-negative weights make
  // no cheaper.
  std::vector<Half> into_u = {{u, v, 0}};  // succ(u) on u->...->y is v
  {
    db_->RecordStatement("SELECT fid,pid,cost FROM " + in_segs_->name() +
                         " WHERE tid=" + std::to_string(u));
    Table::Iterator it;
    RELGRAPH_RETURN_IF_ERROR(in_segs_->ScanRange("tid", u, u, &it));
    Tuple row;
    while (it.Next(&row, nullptr)) {
      if (row.value(1).AsInt() != u) continue;
      into_u.push_back(
          {row.value(0).AsInt(), row.value(2).AsInt(), row.value(3).AsInt()});
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  }
  // Right halves: every y with δ(v,y) <= lthd (rows of TOutSegs at fid=v),
  // plus the trivial y=v.
  std::vector<Half> out_of_v = {{v, u, 0}};  // pre(v) on x->...->v is u
  {
    db_->RecordStatement("SELECT tid,pid,cost FROM " + out_segs_->name() +
                         " WHERE fid=" + std::to_string(v));
    Table::Iterator it;
    RELGRAPH_RETURN_IF_ERROR(out_segs_->ScanRange("fid", v, v, &it));
    Tuple row;
    while (it.Next(&row, nullptr)) {
      if (row.value(0).AsInt() != v) continue;
      out_of_v.push_back(
          {row.value(1).AsInt(), row.value(2).AsInt(), row.value(3).AsInt()});
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  }

  for (const Half& left : into_u) {
    if (left.dist + w > lthd) continue;
    for (const Half& right : out_of_v) {
      weight_t dist = left.dist + w + right.dist;
      if (dist > lthd) continue;
      node_id_t x = left.node, y = right.node;
      if (x == y) continue;
      // pre(y) on the combined path: from the right half (u when y==v);
      // succ(x): from the left half (v when x==u).
      RELGRAPH_RETURN_IF_ERROR(UpsertSegment(db_, out_segs_, "fid", x, y,
                                             right.pid, dist,
                                             &local_changed));
      RELGRAPH_RETURN_IF_ERROR(UpsertSegment(db_, in_segs_, "tid", x, y,
                                             left.pid, dist, &local_changed));
    }
  }
  if (changed != nullptr) *changed = local_changed;
  return Status::OK();
}

namespace {

/// One settled node of a bounded single-source search.
struct BallEntry {
  weight_t dist;
  node_id_t pid;  // predecessor (forward search) / successor (backward)
};

/// Bounded Dijkstra from `src` over `rel`, settling every node within
/// `lthd`. Neighbor access goes through the relational table (index probe
/// when available, full scan otherwise), so the maintenance path touches
/// the graph exactly the way the rest of the client does.
Status BoundedBall(Database* db, const EdgeRelation& rel, node_id_t src,
                   weight_t lthd, std::map<node_id_t, BallEntry>* ball) {
  ball->clear();
  (*ball)[src] = {0, src};
  // (dist, node, pid); ordered set as a small priority queue with
  // deterministic tie-breaking on (dist, node).
  std::map<std::pair<weight_t, node_id_t>, node_id_t> open;
  open[{0, src}] = src;
  std::map<node_id_t, bool> settled;

  while (!open.empty()) {
    auto [key, pid] = *open.begin();
    open.erase(open.begin());
    auto [dist, node] = key;
    if (settled[node]) continue;
    settled[node] = true;

    db->RecordStatement("SELECT * FROM " + rel.table->name() + " WHERE " +
                        rel.join_column + "=" + std::to_string(node));
    Table::Iterator it;
    if (rel.table->HasIndexOn(rel.join_column)) {
      RELGRAPH_RETURN_IF_ERROR(
          rel.table->ScanRange(rel.join_column, node, node, &it));
    } else {
      it = rel.table->Scan();
    }
    const Schema& schema = rel.table->schema();
    const size_t join_idx = schema.IndexOf(rel.join_column);
    const size_t emit_idx = schema.IndexOf(rel.emit_column);
    const size_t cost_idx = schema.IndexOf(rel.cost_column);
    Tuple row;
    while (it.Next(&row, nullptr)) {
      if (row.value(join_idx).AsInt() != node) continue;
      node_id_t next = row.value(emit_idx).AsInt();
      weight_t cand = dist + row.value(cost_idx).AsInt();
      if (cand > lthd) continue;
      auto pos = ball->find(next);
      if (pos != ball->end() && pos->second.dist <= cand) continue;
      if (pos != ball->end()) {
        open.erase({pos->second.dist, next});
      }
      (*ball)[next] = {cand, node};
      open[{cand, next}] = node;
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  }
  return Status::OK();
}

/// Opens an iterator over rows with `key_col` == key: an index probe when
/// one exists, otherwise a full scan (the NoIndex configuration). Callers
/// must still re-check the key column per row.
Status OpenKeyScan(Table* table, const std::string& key_col, int64_t key,
                   Table::Iterator* it) {
  if (table->HasIndexOn(key_col)) {
    return table->ScanRange(key_col, key, key, it);
  }
  *it = table->Scan();
  return Status::OK();
}

/// Replaces every row of `segs` whose `key_col` equals `key` with `fresh`.
Status ReplaceRowsFor(Database* db, Table* segs, const std::string& key_col,
                      node_id_t key, const std::vector<Tuple>& fresh,
                      int64_t* changed) {
  db->RecordStatement("DELETE FROM " + segs->name() + " WHERE " + key_col +
                      "=" + std::to_string(key));
  std::vector<RowRef> victims;
  {
    Table::Iterator it;
    RELGRAPH_RETURN_IF_ERROR(OpenKeyScan(segs, key_col, key, &it));
    Tuple row;
    RowRef ref;
    const size_t key_idx = segs->schema().IndexOf(key_col);
    while (it.Next(&row, &ref)) {
      if (row.value(key_idx).AsInt() == key) victims.push_back(ref);
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  }
  for (const RowRef& ref : victims) {
    RELGRAPH_RETURN_IF_ERROR(segs->DeleteRow(ref));
  }
  db->RecordStatement("INSERT INTO " + segs->name() + " (recomputed rows)");
  for (const Tuple& t : fresh) {
    RELGRAPH_RETURN_IF_ERROR(segs->Insert(t));
  }
  *changed += static_cast<int64_t>(victims.size() + fresh.size());
  return Status::OK();
}

}  // namespace

Status SegTable::ApplyEdgeDeletion(GraphStore* graph, const Edge& edge,
                                   int64_t* changed) {
  int64_t local_changed = 0;
  const node_id_t u = edge.from, v = edge.to;
  const weight_t w = edge.weight;
  const weight_t lthd = options_.lthd;

  // Affected forward sources: x can lose a segment only if a <= lthd path
  // from x ran through (u,v), which needs δ_old(x,u) + w <= lthd. Those x
  // are exactly the TInSegs rows at tid=u with cost <= lthd - w (plus u
  // itself). An over-threshold edge affects only its own endpoints' rows.
  std::vector<node_id_t> sources = {u};
  std::vector<node_id_t> sinks = {v};
  if (w <= lthd) {
    db_->RecordStatement("SELECT fid FROM " + in_segs_->name() +
                         " WHERE tid=" + std::to_string(u));
    Table::Iterator it;
    RELGRAPH_RETURN_IF_ERROR(OpenKeyScan(in_segs_, "tid", u, &it));
    Tuple row;
    while (it.Next(&row, nullptr)) {
      if (row.value(1).AsInt() != u) continue;
      if (row.value(3).AsInt() + w > lthd) continue;
      sources.push_back(row.value(0).AsInt());
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());

    db_->RecordStatement("SELECT tid FROM " + out_segs_->name() +
                         " WHERE fid=" + std::to_string(v));
    RELGRAPH_RETURN_IF_ERROR(OpenKeyScan(out_segs_, "fid", v, &it));
    while (it.Next(&row, nullptr)) {
      if (row.value(0).AsInt() != v) continue;
      if (row.value(3).AsInt() + w > lthd) continue;
      sinks.push_back(row.value(1).AsInt());
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  }

  // Recompute each affected source's TOutSegs rows on the updated graph:
  // segments for δ <= lthd (Definition 4 case 1), residual raw edges
  // otherwise (case 2; parallel edges keep the minimum weight).
  for (node_id_t x : sources) {
    std::map<node_id_t, BallEntry> ball;
    RELGRAPH_RETURN_IF_ERROR(
        BoundedBall(db_, graph->Forward(), x, lthd, &ball));
    std::vector<Tuple> fresh;
    for (const auto& [y, entry] : ball) {
      if (y == x) continue;
      fresh.push_back(
          Tuple({Value(x), Value(y), Value(entry.pid), Value(entry.dist)}));
    }
    std::map<node_id_t, weight_t> raw;
    {
      Table::Iterator it;
      RELGRAPH_RETURN_IF_ERROR(
          OpenKeyScan(graph->Forward().table, "fid", x, &it));
      Tuple row;
      while (it.Next(&row, nullptr)) {
        if (row.value(0).AsInt() != x) continue;
        node_id_t z = row.value(1).AsInt();
        weight_t wz = row.value(2).AsInt();
        if (ball.count(z) != 0) continue;  // dominated by a segment
        auto [pos, inserted] = raw.try_emplace(z, wz);
        if (!inserted && wz < pos->second) pos->second = wz;
      }
      RELGRAPH_RETURN_IF_ERROR(it.status());
    }
    for (const auto& [z, wz] : raw) {
      fresh.push_back(Tuple({Value(x), Value(z), Value(x), Value(wz)}));
    }
    RELGRAPH_RETURN_IF_ERROR(
        ReplaceRowsFor(db_, out_segs_, "fid", x, fresh, &local_changed));
  }

  // Symmetric for the affected sinks on TInSegs; the backward ball's pid is
  // the successor toward the sink, matching BuildDirection's convention.
  for (node_id_t y : sinks) {
    std::map<node_id_t, BallEntry> ball;
    RELGRAPH_RETURN_IF_ERROR(
        BoundedBall(db_, graph->Backward(), y, lthd, &ball));
    std::vector<Tuple> fresh;
    for (const auto& [x, entry] : ball) {
      if (x == y) continue;
      fresh.push_back(
          Tuple({Value(x), Value(y), Value(entry.pid), Value(entry.dist)}));
    }
    std::map<node_id_t, weight_t> raw;
    {
      Table::Iterator it;
      RELGRAPH_RETURN_IF_ERROR(
          OpenKeyScan(graph->Backward().table, "tid", y, &it));
      Tuple row;
      while (it.Next(&row, nullptr)) {
        if (row.value(1).AsInt() != y) continue;
        node_id_t z = row.value(0).AsInt();
        weight_t wz = row.value(2).AsInt();
        if (ball.count(z) != 0) continue;
        auto [pos, inserted] = raw.try_emplace(z, wz);
        if (!inserted && wz < pos->second) pos->second = wz;
      }
      RELGRAPH_RETURN_IF_ERROR(it.status());
    }
    for (const auto& [z, wz] : raw) {
      fresh.push_back(Tuple({Value(z), Value(y), Value(y), Value(wz)}));
    }
    RELGRAPH_RETURN_IF_ERROR(
        ReplaceRowsFor(db_, in_segs_, "tid", y, fresh, &local_changed));
  }

  if (changed != nullptr) *changed = local_changed;
  return Status::OK();
}

EdgeRelation SegTable::Forward() const {
  return EdgeRelation{out_segs_, "fid", "tid", "pid", "cost"};
}

EdgeRelation SegTable::Backward() const {
  return EdgeRelation{in_segs_, "tid", "fid", "pid", "cost"};
}

}  // namespace relgraph
