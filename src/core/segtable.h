#pragma once

#include <memory>
#include <string>

#include "src/core/fem.h"
#include "src/db/database.h"
#include "src/graph/graph_store.h"

namespace relgraph {

struct SegTableOptions {
  /// The index threshold l_thd (§4.2): every shortest segment with
  /// distance <= lthd is pre-computed.
  weight_t lthd = 5;
  SqlMode sql_mode = SqlMode::kNsql;
  IndexStrategy strategy = IndexStrategy::kCluIndex;
  /// Table-name prefix ("<prefix>TOutSegs", "<prefix>TInSegs", working
  /// tables). Must be unique per SegTable within one database.
  std::string prefix = "seg_";
};

/// Construction metrics reported by Figure 9: entry counts ("encoding
/// number"), wall-clock, iterations, statements, I/O.
struct SegTableBuildStats {
  int64_t out_entries = 0;
  int64_t in_entries = 0;
  int64_t iterations = 0;
  int64_t statements = 0;
  int64_t build_us = 0;
  int64_t buffer_misses = 0;
  int64_t disk_reads = 0;
};

/// The SegTable index (Definition 4): TOutSegs holds, for every node pair
/// (u,v) with shortest distance <= lthd, the tuple (u, v, pre(v), δ(u,v)),
/// plus every original edge (u,v,u,w) whose pair is not covered; TInSegs is
/// the symmetric incoming-direction copy. Both are built *through the FEM
/// framework itself* (§4.2 — construction is the paper's second showcase of
/// the framework) and stored under the same index-strategy knobs as the
/// base graph.
class SegTable {
 public:
  static Status Build(Database* db, GraphStore* graph, SegTableOptions options,
                      std::unique_ptr<SegTable>* out,
                      SegTableBuildStats* stats = nullptr);

  /// Adjacency views for the BSEG path finder: forward joins TOutSegs on
  /// fid and emits (tid, pid); backward joins TInSegs on tid and emits
  /// (fid, pid).
  EdgeRelation Forward() const;
  EdgeRelation Backward() const;

  /// Incremental maintenance under edge insertion — the paper's §7 future
  /// work ("the pre-computed results, such as SegTable, should be
  /// maintained incrementally"). A new edge (u,v,w) can only create or
  /// improve segments of the form x ~> u -> v ~> y, and both halves'
  /// distances are existing SegTable entries (the edge cannot shorten
  /// them), so the delta is the join TInSegs(tid=u) x TOutSegs(fid=v)
  /// filtered to δ(x,u)+w+δ(v,y) <= lthd, merged into both tables. Call
  /// after GraphStore::AddEdge with the same edge. `changed` (optional)
  /// reports inserted+updated segment rows across both tables.
  Status ApplyEdgeInsertion(const Edge& edge, int64_t* changed = nullptr);

  /// Incremental maintenance under edge *deletion* (the other half of §7's
  /// future work). Call after GraphStore::RemoveEdge with the same edge.
  ///
  /// Only sources x that could route a <= lthd segment through (u,v) —
  /// i.e. δ_old(x,u) + w <= lthd, read straight off TInSegs at tid=u —
  /// can lose forward segments, so exactly those sources (plus u itself)
  /// get their TOutSegs rows recomputed by a bounded search on the updated
  /// base graph; sinks are handled symmetrically on TInSegs. `changed`
  /// (optional) reports rows deleted + inserted across both tables.
  Status ApplyEdgeDeletion(GraphStore* graph, const Edge& edge,
                           int64_t* changed = nullptr);

  weight_t lthd() const { return options_.lthd; }
  int64_t num_out_entries() const { return out_segs_->num_rows(); }
  int64_t num_in_entries() const { return in_segs_->num_rows(); }
  Table* out_segs() const { return out_segs_; }
  Table* in_segs() const { return in_segs_; }

 private:
  SegTable() = default;

  /// Runs the bounded multi-source FEM expansion for one direction and
  /// fills the final segs table. `rel` is the base graph's adjacency for
  /// that direction.
  static Status BuildDirection(Database* db, GraphStore* graph,
                               const SegTableOptions& options,
                               const EdgeRelation& rel, bool forward,
                               Table* final_table, SegTableBuildStats* stats);

  Database* db_ = nullptr;
  SegTableOptions options_;
  Table* out_segs_ = nullptr;
  Table* in_segs_ = nullptr;
};

}  // namespace relgraph
