#pragma once

namespace relgraph {

/// Forward declaration only: PathFinder's interface mentions SegTable but
/// its full definition (src/core/segtable.h) is needed just by BSEG users.
class SegTable;

}  // namespace relgraph
