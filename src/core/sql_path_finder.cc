#include "src/core/sql_path_finder.h"

#include <algorithm>

#include "src/common/timer.h"

namespace relgraph {

namespace {

/// SQL integer literal for a Value-bound parameter map.
sql::SqlParams P(std::initializer_list<std::pair<const char*, int64_t>> kv) {
  sql::SqlParams params;
  for (const auto& [k, v] : kv) params.emplace(k, Value(v));
  return params;
}

}  // namespace

Status SqlPathFinder::Create(GraphStore* graph, SqlPathFinderOptions options,
                             std::unique_ptr<SqlPathFinder>* out) {
  if (options.algorithm != Algorithm::kDJ &&
      options.algorithm != Algorithm::kBSDJ &&
      options.algorithm != Algorithm::kBBFS) {
    return Status::NotSupported(
        "SqlPathFinder supports DJ, BSDJ, and BBFS (BSEG path recovery "
        "needs the native finder's segment anchors)");
  }
  auto finder = std::unique_ptr<SqlPathFinder>(new SqlPathFinder());
  finder->graph_ = graph;
  finder->options_ = std::move(options);
  finder->conn_ = std::make_unique<sql::SqlEngine>(graph->db());

  const std::string& v = finder->options_.visited_table;
  const bool dj = finder->options_.algorithm == Algorithm::kDJ;

  // Working-table DDL. DJ uses the paper's §3.3 schema; the bi-directional
  // algorithms extend it with the §4.1 backward columns. A leftover table
  // from a previous finder with the same name is dropped.
  Status dropped = finder->conn_->Execute("drop table " + v);
  (void)dropped;  // NotFound on first use is expected
  RELGRAPH_RETURN_IF_ERROR(finder->conn_->Execute(
      dj ? "create table " + v +
               " (nid int, d2s int, p2s int, f int) cluster by (nid) unique"
         : "create table " + v +
               " (nid int, d2s int, p2s int, f int, d2t int, p2t int, b int) "
               "cluster by (nid) unique"));
  // Physical tuning, once per working table: index the sign and distance
  // columns so the frontier UPDATEs (`... where f = 2`, `... and d2s =
  // (select min(d2s) ...)`) run as index probes — the planner's sargable
  // conjunct extraction turns them into UpdateWhereIndexed plans.
  {
    std::vector<const char*> indexed = dj
                                           ? std::vector<const char*>{"f",
                                                                      "d2s"}
                                           : std::vector<const char*>{
                                                 "f", "b", "d2s", "d2t"};
    for (const char* col : indexed) {
      RELGRAPH_RETURN_IF_ERROR(finder->conn_->Execute(
          "create index ix_" + v + "_" + col + " on " + v + " (" + col +
          ")"));
    }
  }

  // Statement templates (the Listings, with :parameters where the paper has
  // client-side variables).
  Statements& s = finder->stmts_;
  if (dj) {
    s.seed = "insert into " + v + " (nid, d2s, p2s, f) values (:s, 0, :s, 0)";
  } else {
    s.seed = "insert into " + v +
             " values (:s, 0, :s, 0, :inf, 0 - 1, 0), "
             "(:t, :inf, 0 - 1, 0, 0, :t, 0)";
  }
  s.pick_mid = "select top 1 nid from " + v +
               " where f = 0 and d2s = (select min(d2s) from " + v +
               " where f = 0)";
  s.expand_forward =
      finder->BuildExpandSql(graph->Forward(), /*forward=*/true,
                             /*set_frontier=*/!dj);
  s.expand_backward = finder->BuildExpandSql(graph->Backward(),
                                             /*forward=*/false,
                                             /*set_frontier=*/true);
  s.finalize_mid = "update " + v + " set f = 1 where nid = :mid";
  s.target_reached = "select nid from " + v + " where f = 1 and nid = :t";
  // Set-at-a-time frontier control (Listing 4(1,3)). The `d2s < :inf`
  // guards keep rows discovered only by the opposite direction out of this
  // direction's frontier.
  s.mark_frontier_fwd =
      "update " + v +
      " set f = 2 where f = 0 and d2s < :inf and d2s = (select min(d2s) from " +
      v + " where f = 0 and d2s < :inf)";
  s.mark_frontier_bwd =
      "update " + v +
      " set b = 2 where b = 0 and d2t < :inf and d2t = (select min(d2t) from " +
      v + " where b = 0 and d2t < :inf)";
  if (finder->options_.algorithm == Algorithm::kBBFS) {
    s.mark_frontier_fwd =
        "update " + v + " set f = 2 where f = 0 and d2s < :inf";
    s.mark_frontier_bwd =
        "update " + v + " set b = 2 where b = 0 and d2t < :inf";
  }
  s.finalize_frontier_fwd = "update " + v + " set f = 1 where f = 2";
  s.finalize_frontier_bwd = "update " + v + " set b = 1 where b = 2";
  s.min_open_fwd =
      "select min(d2s) from " + v + " where f = 0 and d2s < :inf";
  s.min_open_bwd =
      "select min(d2t) from " + v + " where b = 0 and d2t < :inf";
  s.count_open_fwd =
      "select count(*) from " + v + " where f = 0 and d2s < :inf";
  s.count_open_bwd =
      "select count(*) from " + v + " where b = 0 and d2t < :inf";
  s.min_cost = "select min(d2s + d2t) from " + v;  // Listing 4(5)
  s.meet_node =
      "select top 1 nid from " + v + " where d2s + d2t = :minCost";
  s.pred_fwd = "select p2s from " + v + " where nid = :x";  // Listing 3(3)
  s.pred_bwd = "select p2t from " + v + " where nid = :x";

  // Statement templates -> Template slots (the Listing texts plus the
  // bookkeeping statements Find() issues around them). In prepared mode
  // each template is parsed and planned exactly once, here; a full
  // Find() afterwards performs zero parses/plans — only binds. In text
  // mode the plan cache is disabled so every execution pays the paper's
  // literal parse+plan cost.
  SqlPathFinder* f = finder.get();
  f->t_truncate_ = {"truncate " + v, nullptr};
  f->t_seed_ = {s.seed, nullptr};
  f->t_pick_mid_ = {s.pick_mid, nullptr};
  f->t_expand_fwd_ = {s.expand_forward, nullptr};
  f->t_expand_bwd_ = {s.expand_backward, nullptr};
  f->t_finalize_mid_ = {s.finalize_mid, nullptr};
  f->t_mark_fwd_ = {s.mark_frontier_fwd, nullptr};
  f->t_mark_bwd_ = {s.mark_frontier_bwd, nullptr};
  f->t_fin_fwd_ = {s.finalize_frontier_fwd, nullptr};
  f->t_fin_bwd_ = {s.finalize_frontier_bwd, nullptr};
  f->t_min_open_fwd_ = {s.min_open_fwd, nullptr};
  f->t_min_open_bwd_ = {s.min_open_bwd, nullptr};
  f->t_count_open_fwd_ = {s.count_open_fwd, nullptr};
  f->t_count_open_bwd_ = {s.count_open_bwd, nullptr};
  f->t_min_cost_ = {s.min_cost, nullptr};
  f->t_meet_ = {s.meet_node, nullptr};
  f->t_pred_fwd_ = {s.pred_fwd, nullptr};
  f->t_pred_bwd_ = {s.pred_bwd, nullptr};
  f->t_dist_at_ = {"select d2s from " + v + " where nid = :x", nullptr};
  f->t_count_all_ = {"select count(*) from " + v, nullptr};

  if (f->options_.use_prepared) {
    // Prepare exactly the statements each algorithm issues: DJ's working
    // table lacks the §4.1 backward columns, so the bidirectional
    // templates don't even compile against it (and vice versa, DJ's
    // node-at-a-time statements are dead weight for the set algorithms).
    std::vector<Template*> used = {&f->t_truncate_, &f->t_seed_,
                                   &f->t_expand_fwd_, &f->t_pred_fwd_,
                                   &f->t_count_all_};
    if (dj) {
      used.insert(used.end(), {&f->t_pick_mid_, &f->t_finalize_mid_,
                               &f->t_dist_at_});
    } else {
      used.insert(used.end(),
                  {&f->t_expand_bwd_, &f->t_mark_fwd_, &f->t_mark_bwd_,
                   &f->t_fin_fwd_, &f->t_fin_bwd_, &f->t_min_open_fwd_,
                   &f->t_min_open_bwd_, &f->t_count_open_fwd_,
                   &f->t_count_open_bwd_, &f->t_min_cost_, &f->t_meet_,
                   &f->t_pred_bwd_});
    }
    for (Template* t : used) {
      RELGRAPH_RETURN_IF_ERROR(f->conn_->Prepare(t->text, &t->handle));
    }
  } else {
    f->conn_->SetPlanCacheCapacity(0);
  }

  *out = std::move(finder);
  return Status::OK();
}

Status SqlPathFinder::Exec(Template& t, sql::SqlResult* result,
                           const sql::SqlParams& params) {
  if (t.handle != nullptr) return t.handle->Execute(params, result);
  return conn_->Execute(t.text, result, params);
}

Status SqlPathFinder::Scalar(Template& t, Value* out,
                             const sql::SqlParams& params) {
  if (t.handle != nullptr) return t.handle->QueryScalar(params, out);
  return conn_->QueryScalar(t.text, out, params);
}

std::string SqlPathFinder::BuildExpandSql(const EdgeRelation& rel,
                                          bool forward,
                                          bool set_frontier) const {
  const std::string& v = options_.visited_table;
  const bool dj = options_.algorithm == Algorithm::kDJ;
  const std::string dist = forward ? "d2s" : "d2t";
  const std::string pred = forward ? "p2s" : "p2t";
  const std::string flag = forward ? "f" : "b";
  // DJ expands one node (q.nid = :mid); the set algorithms expand every
  // marked frontier row (q.f = 2) and add the Theorem-1 pruning term.
  std::string frontier_pred =
      set_frontier ? "q." + flag + " = 2" : "q.nid = :mid";
  std::string prune =
      set_frontier ? " and out.cost + q." + dist + " + :lb < :minCost" : "";

  std::string insert_cols, insert_vals;
  if (dj) {
    insert_cols = "(nid, d2s, p2s, f)";
    insert_vals = "(nid, cost, p2s, 0)";
  } else if (forward) {
    insert_cols = "(nid, d2s, p2s, f, d2t, p2t, b)";
    insert_vals = "(nid, cost, p2s, 0, :inf, 0 - 1, 0)";
  } else {
    insert_cols = "(nid, d2s, p2s, f, d2t, p2t, b)";
    insert_vals = "(nid, :inf, 0 - 1, 0, cost, p2s, 0)";
  }

  // Listing 2(3,4) / Listing 4(2): expansion join, window dedup, MERGE.
  return "merge into " + v +
         " as target using ("
         "select nid, p2s, cost from ("
         "select out." + rel.emit_column + ", out." + rel.parent_column +
         ", out.cost + q." + dist +
         ", row_number() over (partition by out." + rel.emit_column +
         " order by out.cost + q." + dist + ") as rownum "
         "from " + v + " q, " + rel.table->name() + " out "
         "where q.nid = out." + rel.join_column + " and " + frontier_pred +
         prune +
         ") tmp (nid, p2s, cost, rownum) where rownum = 1"
         ") as source (nid, p2s, cost) "
         "on (source.nid = target.nid) "
         "when matched and target." + dist + " > source.cost then update set " +
         dist + " = source.cost, " + pred + " = source.p2s, " + flag + " = 0 "
         "when not matched then insert " + insert_cols + " values " +
         insert_vals;
}

Status SqlPathFinder::Find(node_id_t s, node_id_t t, PathQueryResult* result) {
  *result = PathQueryResult{};
  Timer total;
  int64_t statements_before = graph_->db()->stats().statements;
  Status status = options_.algorithm == Algorithm::kDJ
                      ? RunDj(s, t, result)
                      : RunBidirectional(s, t, result);
  result->stats.total_us = total.ElapsedMicros();
  result->stats.statements =
      graph_->db()->stats().statements - statements_before;
  return status;
}

Status SqlPathFinder::RunDj(node_id_t s, node_id_t t,
                            PathQueryResult* result) {
  RELGRAPH_RETURN_IF_ERROR(Exec(t_truncate_, nullptr));
  RELGRAPH_RETURN_IF_ERROR(Exec(t_seed_, nullptr, P({{"s", s}})));

  for (int64_t iter = 0; iter < options_.max_iterations; iter++) {
    Value mid_v;
    RELGRAPH_RETURN_IF_ERROR(Scalar(t_pick_mid_, &mid_v));
    if (mid_v.IsNull()) break;  // no candidate left: t unreachable
    node_id_t mid = mid_v.AsInt();

    // Note on Algorithm 1 line 5: the paper breaks when the expansion
    // affects zero tuples. Zero affected rows only means *this* node's
    // neighbors already hold better distances — other candidates may remain
    // — so we keep the loop keyed on candidate exhaustion and target
    // finalization instead (same worst-case n iterations, never early-stops
    // on a correct instance).
    sql::SqlResult r;
    RELGRAPH_RETURN_IF_ERROR(Exec(t_expand_fwd_, &r, P({{"mid", mid}})));
    result->stats.expansions++;
    RELGRAPH_RETURN_IF_ERROR(Exec(t_finalize_mid_, nullptr, P({{"mid", mid}})));
    if (mid == t) {  // Listing 3(1): target finalized
      result->found = true;
      break;
    }
  }
  if (!result->found) return Status::OK();

  Value dist;
  RELGRAPH_RETURN_IF_ERROR(Scalar(t_dist_at_, &dist, P({{"x", t}})));
  result->distance = dist.AsInt();
  RELGRAPH_RETURN_IF_ERROR(RecoverChain(t_pred_fwd_, t, s, &result->path));
  std::reverse(result->path.begin(), result->path.end());

  Value vst;
  RELGRAPH_RETURN_IF_ERROR(Scalar(t_count_all_, &vst));
  result->stats.visited_rows = vst.AsInt();
  return Status::OK();
}

Status SqlPathFinder::RunBidirectional(node_id_t s, node_id_t t,
                                       PathQueryResult* result) {
  RELGRAPH_RETURN_IF_ERROR(Exec(t_truncate_, nullptr));
  if (s == t) {
    result->found = true;
    result->distance = 0;
    result->path = {s};
    return Status::OK();
  }
  RELGRAPH_RETURN_IF_ERROR(
      Exec(t_seed_, nullptr, P({{"s", s}, {"t", t}, {"inf", kInfinity}})));

  weight_t min_cost = kInfinity;
  weight_t lf = 0, lb = 0;
  int64_t nf = 1, nb = 1;

  for (int64_t iter = 0;
       lf + lb <= min_cost && nf > 0 && nb > 0 &&
       iter < options_.max_iterations;
       iter++) {
    const bool forward = nf <= nb;
    Template& mark = forward ? t_mark_fwd_ : t_mark_bwd_;
    Template& expand = forward ? t_expand_fwd_ : t_expand_bwd_;
    Template& fin = forward ? t_fin_fwd_ : t_fin_bwd_;
    Template& min_open = forward ? t_min_open_fwd_ : t_min_open_bwd_;
    Template& count_open = forward ? t_count_open_fwd_ : t_count_open_bwd_;

    sql::SqlResult r;
    RELGRAPH_RETURN_IF_ERROR(Exec(mark, &r, P({{"inf", kInfinity}})));
    if (r.affected == 0) {  // this direction has no reachable candidate left
      (forward ? nf : nb) = 0;
      continue;
    }
    RELGRAPH_RETURN_IF_ERROR(Exec(
        expand, &r,
        P({{"lb", forward ? lb : lf},
           {"minCost", min_cost},
           {"inf", kInfinity}})));
    result->stats.expansions++;
    RELGRAPH_RETURN_IF_ERROR(Exec(fin, nullptr));

    Value v;
    RELGRAPH_RETURN_IF_ERROR(Scalar(min_open, &v, P({{"inf", kInfinity}})));
    (forward ? lf : lb) = v.IsNull() ? kInfinity : v.AsInt();
    RELGRAPH_RETURN_IF_ERROR(Scalar(count_open, &v, P({{"inf", kInfinity}})));
    (forward ? nf : nb) = v.AsInt();
    RELGRAPH_RETURN_IF_ERROR(Scalar(t_min_cost_, &v));
    min_cost = v.IsNull() ? kInfinity : v.AsInt();
  }

  Value vst;
  RELGRAPH_RETURN_IF_ERROR(Scalar(t_count_all_, &vst));
  result->stats.visited_rows = vst.AsInt();

  if (min_cost >= kInfinity) return Status::OK();  // not found
  result->found = true;
  result->distance = min_cost;

  // §4.3 lines 17-20: locate one node on the shortest path, then walk the
  // p2s chain to s and the p2t chain to t.
  Value meet_v;
  RELGRAPH_RETURN_IF_ERROR(
      Scalar(t_meet_, &meet_v, P({{"minCost", min_cost}})));
  if (meet_v.IsNull()) {
    return Status::Internal("minCost has no witness row");
  }
  node_id_t meet = meet_v.AsInt();

  std::vector<node_id_t> fwd_chain;  // meet .. s
  RELGRAPH_RETURN_IF_ERROR(RecoverChain(t_pred_fwd_, meet, s, &fwd_chain));
  std::reverse(fwd_chain.begin(), fwd_chain.end());  // s .. meet
  std::vector<node_id_t> bwd_chain;  // meet .. t
  RELGRAPH_RETURN_IF_ERROR(RecoverChain(t_pred_bwd_, meet, t, &bwd_chain));

  result->path = std::move(fwd_chain);
  result->path.insert(result->path.end(), bwd_chain.begin() + 1,
                      bwd_chain.end());
  return Status::OK();
}

Status SqlPathFinder::RecoverChain(Template& pred_stmt, node_id_t from,
                                   node_id_t origin,
                                   std::vector<node_id_t>* out) {
  out->clear();
  out->push_back(from);
  node_id_t x = from;
  // The chain length is bounded by the visited-set size; use the graph's
  // node count as the safety valve.
  for (int64_t guard = 0; x != origin && guard <= graph_->num_nodes() + 1;
       guard++) {
    Value pred;
    RELGRAPH_RETURN_IF_ERROR(Scalar(pred_stmt, &pred, P({{"x", x}})));
    if (pred.IsNull()) {
      return Status::Corruption("broken predecessor chain at node " +
                                std::to_string(x));
    }
    x = pred.AsInt();
    out->push_back(x);
  }
  if (x != origin) {
    return Status::Corruption("predecessor chain does not reach origin");
  }
  return Status::OK();
}

}  // namespace relgraph
