#pragma once

#include <memory>
#include <string>

#include "src/core/path_finder.h"
#include "src/graph/graph_store.h"
#include "src/sql/sql_engine.h"

namespace relgraph {

/// Options for the SQL-text client. Only the algorithms whose statement
/// sequences the paper spells out in Listings 2-4 are offered; the
/// SegTable-based BSEG runs through the native PathFinder (its full-path
/// recovery needs the segment anchors, which the paper's literal TVisited
/// schema cannot express — see DESIGN.md).
struct SqlPathFinderOptions {
  Algorithm algorithm = Algorithm::kBSDJ;  // kDJ, kBSDJ, or kBBFS
  /// Working-table name; must be unique per finder within one database.
  std::string visited_table = "SqlTVisited";
  /// Safety valve; a correct run never reaches it.
  int64_t max_iterations = 10'000'000;
  /// Default (true): every statement template is prepared once in
  /// Create() and each Find() only *binds* fresh parameters — a full
  /// query performs zero parses/plans (DatabaseStats::prepares stays
  /// flat). False restores the paper's literal text regime — every
  /// statement re-parses and re-plans (the finder disables its
  /// connection's plan cache) — which bench_sql_client measures as the
  /// "text" series. Both modes issue identical SQL text, counts, and
  /// results.
  bool use_prepared = true;
};

/// The paper's client program, taken literally: a driver that talks to the
/// database *only* through SQL text (the engine's SqlEngine stands in for
/// the JDBC connection). Every statement of Listings 2-4 is issued as real
/// SQL — parsed, planned, and executed by the engine — with named
/// parameters (:mid, :lb, :minCost, ...) re-bound each iteration exactly
/// like a PreparedStatement.
///
/// The native PathFinder builds the same physical plans directly against
/// the executor layer; this class exists to demonstrate (and test) that the
/// paper's published SQL is sufficient, and to measure the parse/plan
/// overhead of the text interface (bench_sql_client).
class SqlPathFinder {
 public:
  static Status Create(GraphStore* graph, SqlPathFinderOptions options,
                       std::unique_ptr<SqlPathFinder>* out);

  /// Finds the shortest path from s to t; `result->found` reports
  /// reachability, the Status only engine errors.
  Status Find(node_id_t s, node_id_t t, PathQueryResult* result);

  const SqlPathFinderOptions& options() const { return options_; }

  /// The SQL text of every statement template the finder issues, keyed by
  /// role — surfaced so tests and the sql_shell example can display the
  /// exact statements (the paper's listings, modulo table names).
  struct Statements {
    std::string seed;
    std::string pick_mid;
    std::string expand_forward;
    std::string expand_backward;
    std::string finalize_mid;
    std::string target_reached;
    std::string mark_frontier_fwd;
    std::string mark_frontier_bwd;
    std::string finalize_frontier_fwd;
    std::string finalize_frontier_bwd;
    std::string min_open_fwd;
    std::string min_open_bwd;
    std::string count_open_fwd;
    std::string count_open_bwd;
    std::string min_cost;
    std::string meet_node;
    std::string pred_fwd;
    std::string pred_bwd;
  };
  const Statements& statements() const { return stmts_; }

 private:
  SqlPathFinder() = default;

  /// One statement template: its SQL text (what gets recorded per
  /// execution) and, in prepared mode, the compiled handle that makes
  /// each execution bind-only.
  struct Template {
    std::string text;
    std::shared_ptr<sql::PreparedStatement> handle;
  };

  /// Executes a template: through its prepared handle when present,
  /// through the (cache-disabled) text interface otherwise. Both paths
  /// record the same SQL text and count one statement.
  Status Exec(Template& t, sql::SqlResult* result,
              const sql::SqlParams& params = {});
  Status Scalar(Template& t, Value* out, const sql::SqlParams& params = {});

  Status RunDj(node_id_t s, node_id_t t, PathQueryResult* result);
  Status RunBidirectional(node_id_t s, node_id_t t, PathQueryResult* result);
  Status RecoverChain(Template& pred_stmt, node_id_t from, node_id_t origin,
                      std::vector<node_id_t>* out);
  /// Builds the Listing 2(3,4)/4(2) combined MERGE for one direction.
  std::string BuildExpandSql(const EdgeRelation& rel, bool forward,
                             bool set_frontier) const;

  GraphStore* graph_ = nullptr;
  SqlPathFinderOptions options_;
  std::unique_ptr<sql::SqlEngine> conn_;
  Statements stmts_;

  // Templates for the Listing statements (texts mirror stmts_) plus the
  // bookkeeping statements Find() issues around them.
  Template t_truncate_, t_seed_, t_pick_mid_, t_expand_fwd_, t_expand_bwd_,
      t_finalize_mid_, t_mark_fwd_, t_mark_bwd_, t_fin_fwd_, t_fin_bwd_,
      t_min_open_fwd_, t_min_open_bwd_, t_count_open_fwd_, t_count_open_bwd_,
      t_min_cost_, t_meet_, t_pred_fwd_, t_pred_bwd_, t_dist_at_,
      t_count_all_;
};

}  // namespace relgraph
