#include "src/core/visited_table.h"

#include "src/exec/expression.h"
#include "src/exec/scan_executors.h"

namespace relgraph {

namespace {
Schema VisitedSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"d2s", TypeId::kInt},
                 {"p2s", TypeId::kInt},
                 {"a2s", TypeId::kInt},
                 {"f", TypeId::kInt},
                 {"d2t", TypeId::kInt},
                 {"p2t", TypeId::kInt},
                 {"a2t", TypeId::kInt},
                 {"b", TypeId::kInt}});
}
}  // namespace

DirCols VisitedTable::ForwardCols() {
  return DirCols{"d2s", "p2s", "a2s", "f", /*forward=*/true};
}

DirCols VisitedTable::BackwardCols() {
  return DirCols{"d2t", "p2t", "a2t", "b", /*forward=*/false};
}

Status VisitedTable::Create(Database* db, IndexStrategy strategy,
                            std::string name,
                            std::unique_ptr<VisitedTable>* out) {
  auto vt = std::unique_ptr<VisitedTable>(new VisitedTable());
  vt->db_ = db;
  TableOptions topts;
  if (strategy == IndexStrategy::kCluIndex) {
    topts.storage = TableStorage::kClustered;
    topts.cluster_key = "nid";
    topts.cluster_unique = true;
    vt->has_unique_index_ = true;
  }
  RELGRAPH_RETURN_IF_ERROR(db->catalog()->CreateTable(
      std::move(name), VisitedSchema(), topts, &vt->table_));
  if (strategy == IndexStrategy::kIndex) {
    RELGRAPH_RETURN_IF_ERROR(
        vt->table_->CreateSecondaryIndex("nid", /*unique=*/true));
    vt->has_unique_index_ = true;
  }
  *out = std::move(vt);
  return Status::OK();
}

Status VisitedTable::Reset() {
  db_->RecordStatement();  // DELETE FROM TVisited
  return table_->Truncate();
}

Status VisitedTable::InsertSource(node_id_t s) {
  db_->RecordStatement();  // Listing 2(1)
  return table_->Insert(Tuple({Value(s), Value(int64_t{0}), Value(s), Value(s),
                               Value(int64_t{0}), Value(kInfinity),
                               Value(kInvalidNode), Value(kInvalidNode),
                               Value(int64_t{1})}));
}

Status VisitedTable::InsertSourceAndTarget(node_id_t s, node_id_t t) {
  db_->RecordStatement();
  RELGRAPH_RETURN_IF_ERROR(table_->Insert(
      Tuple({Value(s), Value(int64_t{0}), Value(s), Value(s),
             Value(int64_t{0}), Value(kInfinity), Value(kInvalidNode),
             Value(kInvalidNode), Value(int64_t{0})})));
  if (t == s) return Status::OK();
  db_->RecordStatement();
  return table_->Insert(Tuple({Value(t), Value(kInfinity), Value(kInvalidNode),
                               Value(kInvalidNode), Value(int64_t{0}),
                               Value(int64_t{0}), Value(t), Value(t),
                               Value(int64_t{0})}));
}

Status VisitedTable::GetRow(node_id_t nid, Tuple* out) {
  db_->RecordStatement();  // SELECT * FROM TVisited WHERE nid = :nid
  if (has_unique_index_) {
    return table_->LookupUnique("nid", nid, out, nullptr);
  }
  // Without an index the engine's plan is a filtered scan.
  auto child = std::make_unique<SeqScanExecutor>(table_);
  FilterExecutor plan(std::move(child), ColEq("nid", nid));
  RELGRAPH_RETURN_IF_ERROR(plan.Init());
  Tuple t;
  if (plan.Next(&t)) {
    *out = t;
    return Status::OK();
  }
  RELGRAPH_RETURN_IF_ERROR(plan.status());
  return Status::NotFound("node " + std::to_string(nid) + " not visited");
}

}  // namespace relgraph
