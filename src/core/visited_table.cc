#include "src/core/visited_table.h"

#include <algorithm>
#include <utility>

#include "src/exec/scan_executors.h"

namespace relgraph {

namespace {
Schema VisitedSchema() {
  return Schema({{"nid", TypeId::kInt},
                 {"d2s", TypeId::kInt},
                 {"p2s", TypeId::kInt},
                 {"a2s", TypeId::kInt},
                 {"f", TypeId::kInt},
                 {"d2t", TypeId::kInt},
                 {"p2t", TypeId::kInt},
                 {"a2t", TypeId::kInt},
                 {"b", TypeId::kInt}});
}

/// flag = 0 AND dist < infinity — the open-candidate filter every frontier
/// and auxiliary statement shares.
ExprRef OpenPredicate(const DirCols& dir) {
  return And(ColEq(dir.flag, 0),
             Cmp(CompareOp::kLt, Col(dir.dist), Lit(kInfinity)));
}
}  // namespace

ExprRef FrontierSpec::ToPredicate(const DirCols& dir) const {
  switch (kind) {
    case Kind::kAll:
      return nullptr;
    case Kind::kNode:
      return ColEq("nid", node);
    case Kind::kDistEq:
      return Cmp(CompareOp::kEq, Col(dir.dist), Lit(level));
    case Kind::kDistOr:
      return Or(Cmp(CompareOp::kLe, Col(dir.dist), Lit(bound)),
                Cmp(CompareOp::kEq, Col(dir.dist), Lit(level)));
  }
  return nullptr;
}

DirCols VisitedTable::ForwardCols() {
  return DirCols{"d2s", "p2s", "a2s", "f", /*forward=*/true};
}

DirCols VisitedTable::BackwardCols() {
  return DirCols{"d2t", "p2t", "a2t", "b", /*forward=*/false};
}

Status VisitedTable::Create(Database* db, IndexStrategy strategy,
                            std::string name,
                            std::unique_ptr<VisitedTable>* out) {
  auto vt = std::unique_ptr<VisitedTable>(new VisitedTable());
  vt->db_ = db;
  TableOptions topts;
  if (strategy == IndexStrategy::kCluIndex) {
    topts.storage = TableStorage::kClustered;
    topts.cluster_key = "nid";
    topts.cluster_unique = true;
    vt->has_unique_index_ = true;
  }
  RELGRAPH_RETURN_IF_ERROR(db->catalog()->CreateTable(
      std::move(name), VisitedSchema(), topts, &vt->table_));
  if (strategy == IndexStrategy::kIndex) {
    RELGRAPH_RETURN_IF_ERROR(db->catalog()->CreateSecondaryIndex(
        vt->table_, "nid", /*unique=*/true));
    vt->has_unique_index_ = true;
  }
  // Index/CluIndex: give the F/E operators indexed access paths on the sign
  // and distance columns, so frontier selection and the frontier scan read
  // O(frontier) rows. NoIndex keeps the paper's scan-only physical design.
  if (strategy != IndexStrategy::kNoIndex) {
    for (const char* col : {"f", "b", "d2s", "d2t"}) {
      RELGRAPH_RETURN_IF_ERROR(db->catalog()->CreateSecondaryIndex(
          vt->table_, col, /*unique=*/false));
    }
  }

  const Schema& schema = vt->table_->schema();
  vt->nid_idx_ = schema.IndexOf("nid");
  vt->d2s_idx_ = schema.IndexOf("d2s");
  vt->d2t_idx_ = schema.IndexOf("d2t");
  vt->fwd_state_.dist_idx = vt->d2s_idx_;
  vt->fwd_state_.flag_idx = schema.IndexOf("f");
  vt->bwd_state_.dist_idx = vt->d2t_idx_;
  vt->bwd_state_.flag_idx = schema.IndexOf("b");
  *out = std::move(vt);
  return Status::OK();
}

// -------------------------------------------------- incremental aggregates

void VisitedTable::AccumulateSide(DirState* state, const Tuple* old_row,
                                  const Tuple& new_row) {
  auto is_open = [&](const Tuple& t, weight_t* dist) {
    *dist = t.value(state->dist_idx).AsInt();
    return t.value(state->flag_idx).AsInt() == 0 && *dist < kInfinity;
  };
  weight_t dist;
  if (old_row != nullptr && is_open(*old_row, &dist)) {
    auto it = state->open_dists.find(dist);
    if (--it->second == 0) state->open_dists.erase(it);
    state->open_count--;
  }
  if (is_open(new_row, &dist)) {
    state->open_dists[dist]++;
    state->open_count++;
  }
}

void VisitedTable::OnRowChanged(const Tuple* old_row, const Tuple& new_row) {
  AccumulateSide(&fwd_state_, old_row, new_row);
  AccumulateSide(&bwd_state_, old_row, new_row);
  weight_t sum =
      new_row.value(d2s_idx_).AsInt() + new_row.value(d2t_idx_).AsInt();
  if (sum < min_cost_) min_cost_ = sum;
}

RowChangeObserver VisitedTable::ChangeObserver() {
  return [this](const Tuple* old_row, const Tuple& new_row) {
    OnRowChanged(old_row, new_row);
  };
}

weight_t VisitedTable::MinOpenDist(const DirCols& dir) const {
  const DirState& state = StateFor(dir);
  return state.open_dists.empty() ? kInfinity
                                  : state.open_dists.begin()->first;
}

int64_t VisitedTable::OpenCount(const DirCols& dir) const {
  return StateFor(dir).open_count;
}

// ------------------------------------------------------------ DML wrappers

Status VisitedTable::Reset() {
  db_->RecordStatement();  // DELETE FROM TVisited
  fwd_state_.open_dists.clear();
  fwd_state_.open_count = 0;
  bwd_state_.open_dists.clear();
  bwd_state_.open_count = 0;
  min_cost_ = kInfinity;
  return table_->Truncate();
}

Status VisitedTable::InsertSource(node_id_t s) {
  db_->RecordStatement();  // Listing 2(1)
  Tuple row({Value(s), Value(int64_t{0}), Value(s), Value(s),
             Value(int64_t{0}), Value(kInfinity), Value(kInvalidNode),
             Value(kInvalidNode), Value(int64_t{1})});
  RELGRAPH_RETURN_IF_ERROR(table_->Insert(row));
  OnRowChanged(nullptr, row);
  return Status::OK();
}

Status VisitedTable::InsertSourceAndTarget(node_id_t s, node_id_t t) {
  db_->RecordStatement();
  Tuple src({Value(s), Value(int64_t{0}), Value(s), Value(s),
             Value(int64_t{0}), Value(kInfinity), Value(kInvalidNode),
             Value(kInvalidNode), Value(int64_t{0})});
  RELGRAPH_RETURN_IF_ERROR(table_->Insert(src));
  OnRowChanged(nullptr, src);
  if (t == s) return Status::OK();
  db_->RecordStatement();
  Tuple tgt({Value(t), Value(kInfinity), Value(kInvalidNode),
             Value(kInvalidNode), Value(int64_t{0}), Value(int64_t{0}),
             Value(t), Value(t), Value(int64_t{0})});
  RELGRAPH_RETURN_IF_ERROR(table_->Insert(tgt));
  OnRowChanged(nullptr, tgt);
  return Status::OK();
}

Status VisitedTable::GetRow(node_id_t nid, Tuple* out) {
  db_->RecordStatement();  // SELECT * FROM TVisited WHERE nid = :nid
  if (has_unique_index_) {
    return table_->LookupUnique("nid", nid, out, nullptr);
  }
  // Without an index the engine's plan is a filtered scan.
  auto child = std::make_unique<SeqScanExecutor>(table_);
  FilterExecutor plan(std::move(child), ColEq("nid", nid));
  RELGRAPH_RETURN_IF_ERROR(plan.Init());
  Tuple t;
  if (plan.Next(&t)) {
    *out = t;
    return Status::OK();
  }
  RELGRAPH_RETURN_IF_ERROR(plan.status());
  return Status::NotFound("node " + std::to_string(nid) + " not visited");
}

// --------------------------------------------------- frontier access paths

Status VisitedTable::MarkFrontier(const DirCols& dir, const FrontierSpec& spec,
                                  int64_t* marked) {
  ExprRef pred = OpenPredicate(dir);
  if (ExprRef extra = spec.ToPredicate(dir)) pred = And(std::move(pred), extra);
  const std::vector<SetClause> sets = {{dir.flag, Lit(int64_t{2})}};
  RowChangeObserver observer = ChangeObserver();
  // Pick the cheapest access path that covers the spec; the residual
  // predicate keeps every plan exactly equivalent to the full-scan UPDATE.
  if (spec.kind == FrontierSpec::Kind::kNode &&
      table_->HasIndexOn("nid")) {
    return UpdateWhereIndexed(table_, "nid", spec.node, spec.node, pred, sets,
                              marked, observer);
  }
  if (spec.kind == FrontierSpec::Kind::kDistEq &&
      table_->HasIndexOn(dir.dist)) {
    return UpdateWhereIndexed(table_, dir.dist, spec.level, spec.level, pred,
                              sets, marked, observer);
  }
  if (spec.kind == FrontierSpec::Kind::kDistOr &&
      table_->HasIndexOn(dir.dist)) {
    return UpdateWhereIndexed(table_, dir.dist, 0,
                              std::max(spec.bound, spec.level), pred, sets,
                              marked, observer);
  }
  return UpdateWhere(table_, pred, sets, marked, observer);
}

Status VisitedTable::FinalizeFrontier(const DirCols& dir, int64_t* affected) {
  const std::vector<SetClause> sets = {{dir.flag, Lit(int64_t{1})}};
  RowChangeObserver observer = ChangeObserver();
  if (table_->HasIndexOn(dir.flag)) {
    return UpdateWhereIndexed(table_, dir.flag, 2, 2, ColEq(dir.flag, 2),
                              sets, affected, observer);
  }
  return UpdateWhere(table_, ColEq(dir.flag, 2), sets, affected, observer);
}

Status VisitedTable::FirstOpenAt(const DirCols& dir, weight_t dist,
                                 node_id_t* nid, bool* found) {
  *found = false;
  ExprRef pred = And(OpenPredicate(dir),
                     Cmp(CompareOp::kEq, Col(dir.dist), Lit(dist)));
  ExecRef source;
  if (table_->HasIndexOn(dir.dist)) {
    // Index order ties on scan position, so "first match" is the same row
    // the filtered full scan would return.
    source = std::make_unique<IndexRangeScanExecutor>(table_, dir.dist, dist,
                                                      dist);
  } else {
    source = std::make_unique<SeqScanExecutor>(table_);
  }
  FilterExecutor plan(std::move(source), std::move(pred));
  RELGRAPH_RETURN_IF_ERROR(plan.Init());
  Tuple t;
  if (plan.Next(&t)) {
    *nid = t.value(nid_idx_).AsInt();
    *found = true;
    return Status::OK();
  }
  return plan.status();
}

ExecRef VisitedTable::FrontierScan(const DirCols& dir) const {
  if (table_->HasIndexOn(dir.flag)) {
    return std::make_unique<IndexRangeScanExecutor>(table_, dir.flag, 2, 2);
  }
  return std::make_unique<FilterExecutor>(
      std::make_unique<SeqScanExecutor>(table_), ColEq(dir.flag, 2));
}

}  // namespace relgraph
