#pragma once

#include <memory>
#include <string>

#include "src/db/database.h"
#include "src/graph/graph_store.h"

namespace relgraph {

/// Column bundle naming one search direction's state inside TVisited.
/// Forward: (d2s, p2s, a2s, f); backward: (d2t, p2t, a2t, b).
struct DirCols {
  std::string dist;    // distance from the direction's origin
  std::string pred;    // predecessor (fwd) / successor (bwd) on the path
  std::string anchor;  // frontier node this row was expanded from (the
                       // segment anchor; equals pred on base-graph edges)
  std::string flag;    // three-value sign: 0 candidate, 1 expanded, 2 frontier
  bool forward = true;
};

/// The TVisited working table of the paper (§3.3), extended per §4.1 with
/// the backward-direction columns and, beyond the paper, with per-direction
/// *anchor* columns (a2s/a2t). The paper stores only the immediate
/// predecessor `p2s`, which under-specifies full-path recovery over
/// SegTable: intermediate segment nodes never enter TVisited, so a p2s
/// chain dead-ends. The anchor pins the frontier node whose segment covered
/// this row, letting recovery re-open the right TOutSegs/TInSegs run (see
/// PathFinder::RecoverPath). DESIGN.md documents this substitution.
///
/// Schema: (nid, d2s, p2s, a2s, f, d2t, p2t, a2t, b) — all INT, so rows are
/// fixed-width and update in place.
class VisitedTable {
 public:
  static Status Create(Database* db, IndexStrategy strategy, std::string name,
                       std::unique_ptr<VisitedTable>* out);

  Table* table() const { return table_; }
  Database* db() const { return db_; }

  static DirCols ForwardCols();
  static DirCols BackwardCols();

  /// Empties the table for the next query (counted as one statement).
  Status Reset();

  /// Listing 2(1): seed the forward search with the source node.
  Status InsertSource(node_id_t s);

  /// Algorithm 2 line 1: seed both directions.
  Status InsertSourceAndTarget(node_id_t s, node_id_t t);

  /// Point lookup of a node's row; uses the unique index when present,
  /// otherwise a relational scan (NoIndex mode).
  Status GetRow(node_id_t nid, Tuple* out);

  int64_t num_rows() const { return table_->num_rows(); }

 private:
  VisitedTable() = default;

  Database* db_ = nullptr;
  Table* table_ = nullptr;
  bool has_unique_index_ = false;
};

}  // namespace relgraph
