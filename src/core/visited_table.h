#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/exec/dml_executors.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"
#include "src/graph/graph_store.h"

namespace relgraph {

/// Column bundle naming one search direction's state inside TVisited.
/// Forward: (d2s, p2s, a2s, f); backward: (d2t, p2t, a2t, b).
struct DirCols {
  std::string dist;    // distance from the direction's origin
  std::string pred;    // predecessor (fwd) / successor (bwd) on the path
  std::string anchor;  // frontier node this row was expanded from (the
                       // segment anchor; equals pred on base-graph edges)
  std::string flag;    // three-value sign: 0 candidate, 1 expanded, 2 frontier
  bool forward = true;
};

/// Structured form of the F-operator's frontier-selection conjunct (the part
/// of Listing 4(1)'s WHERE beyond `flag = 0 AND dist < Max`). Keeping it
/// structured — rather than an opaque expression — lets VisitedTable choose
/// an indexed access path (a dist-index or nid-index probe) while
/// ToPredicate() still yields the exact SQL text and fallback plan.
struct FrontierSpec {
  enum class Kind {
    kAll,     // every open candidate (BBFS)
    kNode,    // nid = node (DJ / BDJ: one node at a time)
    kDistEq,  // dist = level (BSDJ: the minimum-distance set)
    kDistOr,  // dist <= bound OR dist = level (BSEG selective expansion)
  };
  Kind kind = Kind::kAll;
  node_id_t node = kInvalidNode;
  weight_t level = 0;
  weight_t bound = 0;

  static FrontierSpec All() { return {}; }
  static FrontierSpec Node(node_id_t n) {
    return {Kind::kNode, n, 0, 0};
  }
  static FrontierSpec DistEq(weight_t level) {
    return {Kind::kDistEq, kInvalidNode, level, 0};
  }
  static FrontierSpec DistOr(weight_t bound, weight_t level) {
    return {Kind::kDistOr, kInvalidNode, level, bound};
  }

  /// The conjunct as an expression over the TVisited schema; nullptr for
  /// kAll. Identical tree shape to what the algorithms historically built,
  /// so recorded SQL text is unchanged.
  ExprRef ToPredicate(const DirCols& dir) const;
};

/// The TVisited working table of the paper (§3.3), extended per §4.1 with
/// the backward-direction columns and, beyond the paper, with per-direction
/// *anchor* columns (a2s/a2t). The paper stores only the immediate
/// predecessor `p2s`, which under-specifies full-path recovery over
/// SegTable: intermediate segment nodes never enter TVisited, so a p2s
/// chain dead-ends. The anchor pins the frontier node whose segment covered
/// this row, letting recovery re-open the right TOutSegs/TInSegs run (see
/// PathFinder::RecoverPath). DESIGN.md documents this substitution.
///
/// Schema: (nid, d2s, p2s, a2s, f, d2t, p2t, a2t, b) — all INT, so rows are
/// fixed-width and update in place.
///
/// Beyond storage, this class owns TVisited's *access paths*:
///  - under the Index/CluIndex strategies the flag and dist columns carry
///    secondary B+-trees, so frontier selection, finalization, and the
///    E-operator's frontier scan touch O(frontier) rows instead of O(|V|);
///  - the aggregates the auxiliary statements read (open count, min open
///    dist, min d2s+d2t) are maintained incrementally on every insert,
///    frontier update, and merge, making those statements O(1). Every
///    mutation must therefore flow through this class (or a DML statement
///    carrying ChangeObserver()); callers never update the table directly.
class VisitedTable {
 public:
  static Status Create(Database* db, IndexStrategy strategy, std::string name,
                       std::unique_ptr<VisitedTable>* out);

  Table* table() const { return table_; }
  Database* db() const { return db_; }

  static DirCols ForwardCols();
  static DirCols BackwardCols();

  /// Empties the table for the next query (counted as one statement).
  Status Reset();

  /// Listing 2(1): seed the forward search with the source node.
  Status InsertSource(node_id_t s);

  /// Algorithm 2 line 1: seed both directions.
  Status InsertSourceAndTarget(node_id_t s, node_id_t t);

  /// Point lookup of a node's row; uses the unique index when present,
  /// otherwise a relational scan (NoIndex mode).
  Status GetRow(node_id_t nid, Tuple* out);

  int64_t num_rows() const { return table_->num_rows(); }

  // ----- incremental aggregates ------------------------------------------
  // Exact at all times; "open" means flag = 0 AND dist < infinity, the
  // candidate set every auxiliary statement filters on.

  /// MIN(dist) over open rows; kInfinity when none remain.
  weight_t MinOpenDist(const DirCols& dir) const;
  /// COUNT(*) over open rows.
  int64_t OpenCount(const DirCols& dir) const;
  /// MIN(d2s + d2t) over all rows; kInfinity when the table is empty.
  /// (Exact because per-row distances only ever decrease within a query.)
  weight_t MinPathCost() const { return min_cost_; }

  // ----- access-path-aware operations ------------------------------------

  /// Listing 4(1): flag := 2 for open rows satisfying `spec`. Uses the nid
  /// or dist index when the strategy provides one; otherwise the historical
  /// full-scan UPDATE plan. `marked` returns the affected-row count.
  Status MarkFrontier(const DirCols& dir, const FrontierSpec& spec,
                      int64_t* marked);

  /// Listing 4(3): flag := 1 for flag = 2 rows, via the flag index when
  /// present.
  Status FinalizeFrontier(const DirCols& dir, int64_t* affected);

  /// First open row with dist = `dist` in scan order (PickMid's outer
  /// SELECT TOP 1); `found` = false when no such row exists.
  Status FirstOpenAt(const DirCols& dir, weight_t dist, node_id_t* nid,
                     bool* found);

  /// Source executor over the marked frontier (flag = 2) for the
  /// E-operator join: an index range probe on the flag column when indexed,
  /// else the historical filtered scan. Row order matches the filtered
  /// scan in both cases (the flag index ties on scan position).
  ExecRef FrontierScan(const DirCols& dir) const;

  /// Observer that keeps the aggregates exact; attach to any DML statement
  /// (e.g. the M-operator MERGE) that mutates this table.
  RowChangeObserver ChangeObserver();

 private:
  VisitedTable() = default;

  /// Aggregate bookkeeping for one direction.
  struct DirState {
    size_t dist_idx = 0;
    size_t flag_idx = 0;
    std::map<weight_t, int64_t> open_dists;  // dist -> open-row count
    int64_t open_count = 0;
  };

  DirState& StateFor(const DirCols& dir) {
    return dir.forward ? fwd_state_ : bwd_state_;
  }
  const DirState& StateFor(const DirCols& dir) const {
    return dir.forward ? fwd_state_ : bwd_state_;
  }

  /// Folds one row image change into the aggregates (old_row null = insert).
  void OnRowChanged(const Tuple* old_row, const Tuple& new_row);
  void AccumulateSide(DirState* state, const Tuple* old_row,
                      const Tuple& new_row);

  Database* db_ = nullptr;
  Table* table_ = nullptr;
  bool has_unique_index_ = false;

  DirState fwd_state_;
  DirState bwd_state_;
  size_t d2s_idx_ = 0;
  size_t d2t_idx_ = 0;
  size_t nid_idx_ = 0;
  weight_t min_cost_ = kInfinity;
};

}  // namespace relgraph
