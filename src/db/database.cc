#include "src/db/database.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>

namespace relgraph {

namespace {
std::string TempDbPath() {
  static std::atomic<int> counter{0};
  auto dir = std::filesystem::temp_directory_path();
  return (dir / ("relgraph-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".db"))
      .string();
}
}  // namespace

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  if (options_.in_memory) {
    disk_ = std::make_unique<DiskManager>();
  } else {
    std::string path = options_.path.empty() ? TempDbPath() : options_.path;
    disk_ = std::make_unique<DiskManager>(path);
  }
  disk_->set_simulated_io_latency_us(options_.simulated_io_latency_us);
  pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, disk_.get(),
                                       options_.concurrent_readers);
  catalog_ = std::make_unique<Catalog>(pool_.get());
}

Database::Database(DatabaseOptions options, std::unique_ptr<DiskManager> disk)
    : options_(std::move(options)), disk_(std::move(disk)) {
  disk_->set_simulated_io_latency_us(options_.simulated_io_latency_us);
  pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, disk_.get(),
                                       options_.concurrent_readers);
  catalog_ = std::make_unique<Catalog>(pool_.get());
}

void Database::ResetStats() {
  stats_.Reset();
  pool_->ResetStats();
  disk_->ResetStats();
}

void Database::MaybeSimulateStatementLatency() {
  if (options_.simulated_statement_latency_us <= 0) return;
  auto until = std::chrono::steady_clock::now() +
               std::chrono::microseconds(
                   options_.simulated_statement_latency_us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace relgraph
