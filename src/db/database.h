#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"

namespace relgraph {

/// Feature profile of the underlying "RDBMS". The paper evaluates on a
/// commercial system (DBMS-X: window function + MERGE) and PostgreSQL 9.0
/// (window function, but MERGE landed only in PostgreSQL 15 — the paper
/// substitutes an update statement followed by an insert). The profile
/// gates which physical M-operator plan the FEM layer may build.
enum class EngineProfile {
  kDbmsX,
  kPostgres90,
};

struct DatabaseOptions {
  /// Buffer pool capacity in kPageSize pages (the paper's "buffer size").
  size_t buffer_pool_pages = 8192;  // 32 MiB
  /// Keep pages in anonymous memory instead of a file. Unit tests use this;
  /// benchmarks use file-backed storage.
  bool in_memory = true;
  /// Backing file for on-disk mode; empty picks a temp path.
  std::string path;
  EngineProfile profile = EngineProfile::kDbmsX;
  /// Per-physical-read busy-wait (µs) modelling a disk; see DiskManager.
  int64_t simulated_io_latency_us = 0;
  /// Per-statement busy-wait (µs) modelling the client/server round-trip
  /// the paper pays on every SQL statement (JDBC to DBMS-X/PostgreSQL).
  /// Our embedded engine has near-zero statement overhead, which shifts
  /// the set-at-a-time trade-off; this knob restores the paper's regime
  /// for the experiments that depend on it (Figure 7(c,d)).
  int64_t simulated_statement_latency_us = 0;
  /// Locks the buffer pool so multiple threads may *read* this database
  /// at once (writes still require external serialization). The
  /// distributed shard databases set this — their pages are served to
  /// pooled connections of concurrent query sessions. Off by default:
  /// single-session databases must not pay a lock per page access on the
  /// engine's hottest path.
  bool concurrent_readers = false;
};

/// Counters exposed to clients, mirroring what the paper's client reads
/// from the RDBMS side (statement counts stand in for JDBC round-trips,
/// affected-row counts stand in for SQLCA). `prepares` counts physical
/// plan constructions (initial compiles and catalog-version replans);
/// `plan_cache_hits` counts text-keyed plan-cache lookups that were
/// served without one. A steady-state client is parse-free exactly when
/// `prepares` stops moving while `statements` keeps counting.
///
/// The counters are atomics: a shard database serves many pooled
/// connections at once under the distributed coordinator, and every
/// connection's statements must count. Relaxed ordering — these are pure
/// tallies, nothing synchronizes on them.
struct DatabaseStats {
  std::atomic<int64_t> statements{0};
  std::atomic<int64_t> prepares{0};
  std::atomic<int64_t> plan_cache_hits{0};

  void Reset() {
    statements.store(0, std::memory_order_relaxed);
    prepares.store(0, std::memory_order_relaxed);
    plan_cache_hits.store(0, std::memory_order_relaxed);
  }
};

/// One embedded database instance: disk manager + buffer pool + catalog.
/// The paper's client/server split (Java client issuing SQL over JDBC)
/// becomes a library boundary: src/core is the "client" and may only touch
/// graph data through tables, executors, and DML statements of this engine.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions{});

  /// Attach constructor: wraps an already-open disk manager (e.g. a
  /// verified snapshot file opened with DiskManager::Open) instead of
  /// creating fresh storage. The catalog starts empty — the snapshot
  /// loader re-attaches tables from the manifest. `options.in_memory` and
  /// `options.path` are ignored in this form.
  Database(DatabaseOptions options, std::unique_ptr<DiskManager> disk);

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  const DatabaseOptions& options() const { return options_; }
  EngineProfile profile() const { return options_.profile; }

  /// True when the engine accepts the MERGE statement.
  bool SupportsMerge() const {
    return options_.profile == EngineProfile::kDbmsX;
  }

  /// Called by the FEM layer once per logical SQL statement issued. The
  /// optional text is the SQL the statement corresponds to (the Listing
  /// 2/3/4 equivalents); it is retained only while the log is enabled.
  /// Safe to call from concurrent connections (the counter is atomic and
  /// the log is mutex-guarded).
  void RecordStatement(std::string sql = std::string()) {
    stats_.statements.fetch_add(1, std::memory_order_relaxed);
    if (log_enabled_ && max_log_entries_ > 0 && !sql.empty()) {
      std::lock_guard<std::mutex> lock(log_mu_);
      if (statement_log_.size() >= max_log_entries_) {
        statement_log_.erase(statement_log_.begin());
      }
      statement_log_.push_back(std::move(sql));
    }
    MaybeSimulateStatementLatency();
  }

  /// Keeps the SQL text of up to `max_entries` most recent statements —
  /// a trace of what the client would have sent over JDBC. Enable/disable
  /// and reading the log back are single-threaded setup/teardown
  /// operations; only RecordStatement() itself is concurrency-safe.
  void EnableStatementLog(size_t max_entries = 4096) {
    log_enabled_ = true;
    max_log_entries_ = max_entries;
  }
  void DisableStatementLog() {
    log_enabled_ = false;
    statement_log_.clear();
  }
  const std::vector<std::string>& statement_log() const {
    return statement_log_;
  }

  /// Called by the SQL layer once per physical plan construction / per
  /// plan-cache hit (see DatabaseStats).
  void RecordPrepare() {
    stats_.prepares.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPlanCacheHit() {
    stats_.plan_cache_hits.fetch_add(1, std::memory_order_relaxed);
  }

  const DatabaseStats& stats() const { return stats_; }
  void ResetStats();

 private:
  void MaybeSimulateStatementLatency();

  DatabaseOptions options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  DatabaseStats stats_;
  bool log_enabled_ = false;
  size_t max_log_entries_ = 0;
  std::mutex log_mu_;
  std::vector<std::string> statement_log_;
};

}  // namespace relgraph
