#include "src/dist/coordinator.h"

#include <utility>

#include "src/dist/dist_path_finder.h"

namespace relgraph {

Status DistCoordinator::Create(ShardedGraphStore* store, DistOptions options,
                               std::unique_ptr<DistCoordinator>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.connections_per_shard < 1) {
    return Status::InvalidArgument("connections_per_shard must be >= 1");
  }
  auto coord = std::unique_ptr<DistCoordinator>(
      new DistCoordinator(store, options));
  coord->services_.resize(store->num_shards());
  for (int shard = 0; shard < store->num_shards(); shard++) {
    RELGRAPH_RETURN_IF_ERROR(LocalShardService::Create(
        store, shard, options.connections_per_shard,
        &coord->services_[shard]));
  }
  if (options.num_threads > 0) {
    coord->pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  *out = std::move(coord);
  return Status::OK();
}

Status DistCoordinator::NewSession(std::unique_ptr<DistPathFinder>* out) {
  return DistPathFinder::CreateSession(this, out);
}

}  // namespace relgraph
