#include "src/dist/coordinator.h"

#include <utility>

#include "src/dist/dist_path_finder.h"

namespace relgraph {

namespace {

/// Splits "host:port" (port in (0, 65535]); empty host defaults to
/// loopback.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("shard endpoint '" + endpoint +
                                   "' is not host:port");
  }
  *host = endpoint.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  const std::string port_str = endpoint.substr(colon + 1);
  int parsed = 0;
  bool valid = !port_str.empty();
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      valid = false;
      break;
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > 65535) {
      valid = false;
      break;
    }
  }
  if (!valid || parsed <= 0) {
    return Status::InvalidArgument("bad port in shard endpoint '" +
                                   endpoint + "'");
  }
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

/// Splits a shard's endpoint entry on '|' into replica tokens. "" and
/// "local" both mean the in-process service.
std::vector<std::string> SplitReplicas(const std::string& entry) {
  std::vector<std::string> tokens;
  size_t start = 0;
  for (;;) {
    const size_t bar = entry.find('|', start);
    std::string tok = entry.substr(
        start, bar == std::string::npos ? std::string::npos : bar - start);
    if (tok == "local") tok.clear();
    tokens.push_back(std::move(tok));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return tokens;
}

}  // namespace

Status DistCoordinator::Create(ShardedGraphStore* store, DistOptions options,
                               std::unique_ptr<DistCoordinator>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.connections_per_shard < 1) {
    return Status::InvalidArgument("connections_per_shard must be >= 1");
  }
  if (!options.shard_endpoints.empty() &&
      static_cast<int>(options.shard_endpoints.size()) !=
          store->num_shards()) {
    return Status::InvalidArgument(
        "shard_endpoints must name every shard (one entry per shard, \"\" "
        "for in-process)");
  }
  auto coord = std::unique_ptr<DistCoordinator>(
      new DistCoordinator(store, options));
  coord->services_.resize(store->num_shards());
  LocalShardOptions lopts;
  lopts.connections = options.connections_per_shard;
  lopts.checkout_timeout_ms = options.checkout_timeout_ms;
  lopts.max_queue_depth = options.admission_queue_depth;
  for (int shard = 0; shard < store->num_shards(); shard++) {
    const std::string endpoint =
        options.shard_endpoints.empty() ? std::string()
                                        : options.shard_endpoints[shard];
    const std::vector<std::string> tokens = SplitReplicas(endpoint);
    if (tokens.size() == 1) {
      // Single replica: wire the service directly, eagerly validated — a
      // dead endpoint with no fallback is a wiring error, not a state.
      if (tokens[0].empty()) {
        std::unique_ptr<LocalShardService> local;
        RELGRAPH_RETURN_IF_ERROR(
            LocalShardService::Create(store, shard, lopts, &local));
        coord->services_[shard] = std::move(local);
      } else {
        std::string host;
        uint16_t port = 0;
        RELGRAPH_RETURN_IF_ERROR(ParseEndpoint(tokens[0], &host, &port));
        std::unique_ptr<net::RemoteShardService> remote;
        RELGRAPH_RETURN_IF_ERROR(net::RemoteShardService::Connect(
            host, port, shard, store->num_shards(), options.remote,
            &remote));
        coord->services_[shard] = std::move(remote);
      }
      continue;
    }
    // Replica set: a replica that is merely unreachable right now — or one
    // refusing to serve because its snapshot failed verification (typed
    // Corruption) — starts out dead and is routed around: both are states
    // an operator can repair while the fleet serves. Only misconfiguration
    // (bad endpoint syntax, wrong shard identity, version skew) fails
    // Create.
    std::vector<Replica> replicas;
    std::vector<bool> start_dead;
    for (const std::string& tok : tokens) {
      Replica rep;
      if (tok.empty()) {
        std::unique_ptr<LocalShardService> local;
        RELGRAPH_RETURN_IF_ERROR(
            LocalShardService::Create(store, shard, lopts, &local));
        rep.service = std::move(local);
        rep.name = "local";
        start_dead.push_back(false);
      } else {
        std::string host;
        uint16_t port = 0;
        RELGRAPH_RETURN_IF_ERROR(ParseEndpoint(tok, &host, &port));
        std::unique_ptr<net::RemoteShardService> remote;
        RELGRAPH_RETURN_IF_ERROR(net::RemoteShardService::Create(
            host, port, shard, store->num_shards(), options.remote,
            &remote));
        Status probe = remote->Validate();
        if (!probe.ok() && !probe.IsUnavailable() &&
            !probe.IsDeadlineExceeded() && !probe.IsIOError() &&
            !probe.IsCorruption()) {
          return probe;  // misconfiguration: fail wiring with the reason
        }
        start_dead.push_back(!probe.ok());
        rep.probe = [svc = remote.get(),
                     timeout = options.replica.prober.probe_interval_ms] {
          return svc->Ping(timeout);
        };
        rep.name = tok;
        rep.service = std::move(remote);
      }
      replicas.push_back(std::move(rep));
    }
    std::unique_ptr<ReplicatedShardService> replicated;
    RELGRAPH_RETURN_IF_ERROR(ReplicatedShardService::Create(
        shard, std::move(replicas), options.replica, &replicated));
    // Seed health from the validation result so the first requests route
    // past known-dead replicas without paying a discovery failure.
    for (size_t i = 0; i < start_dead.size(); i++) {
      if (start_dead[i]) replicated->MarkReplicaDead(i);
    }
    coord->services_[shard] = std::move(replicated);
  }
  if (options.num_threads > 0) {
    coord->pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  *out = std::move(coord);
  return Status::OK();
}

Status DistCoordinator::NewSession(std::unique_ptr<DistPathFinder>* out) {
  return DistPathFinder::CreateSession(this, out);
}

ResilienceCounters DistCoordinator::Resilience() const {
  ResilienceCounters total;
  for (const auto& svc : services_) svc->AddResilience(&total);
  return total;
}

}  // namespace relgraph
