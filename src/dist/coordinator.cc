#include "src/dist/coordinator.h"

#include <utility>

#include "src/dist/dist_path_finder.h"

namespace relgraph {

namespace {

/// Splits "host:port" (port in (0, 65535]); empty host defaults to
/// loopback.
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("shard endpoint '" + endpoint +
                                   "' is not host:port");
  }
  *host = endpoint.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  const std::string port_str = endpoint.substr(colon + 1);
  int parsed = 0;
  bool valid = !port_str.empty();
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      valid = false;
      break;
    }
    parsed = parsed * 10 + (c - '0');
    if (parsed > 65535) {
      valid = false;
      break;
    }
  }
  if (!valid || parsed <= 0) {
    return Status::InvalidArgument("bad port in shard endpoint '" +
                                   endpoint + "'");
  }
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

}  // namespace

Status DistCoordinator::Create(ShardedGraphStore* store, DistOptions options,
                               std::unique_ptr<DistCoordinator>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.connections_per_shard < 1) {
    return Status::InvalidArgument("connections_per_shard must be >= 1");
  }
  if (!options.shard_endpoints.empty() &&
      static_cast<int>(options.shard_endpoints.size()) !=
          store->num_shards()) {
    return Status::InvalidArgument(
        "shard_endpoints must name every shard (one entry per shard, \"\" "
        "for in-process)");
  }
  auto coord = std::unique_ptr<DistCoordinator>(
      new DistCoordinator(store, options));
  coord->services_.resize(store->num_shards());
  for (int shard = 0; shard < store->num_shards(); shard++) {
    const std::string endpoint =
        options.shard_endpoints.empty() ? std::string()
                                        : options.shard_endpoints[shard];
    if (endpoint.empty()) {
      LocalShardOptions lopts;
      lopts.connections = options.connections_per_shard;
      lopts.checkout_timeout_ms = options.checkout_timeout_ms;
      std::unique_ptr<LocalShardService> local;
      RELGRAPH_RETURN_IF_ERROR(
          LocalShardService::Create(store, shard, lopts, &local));
      coord->services_[shard] = std::move(local);
    } else {
      std::string host;
      uint16_t port = 0;
      RELGRAPH_RETURN_IF_ERROR(ParseEndpoint(endpoint, &host, &port));
      std::unique_ptr<net::RemoteShardService> remote;
      RELGRAPH_RETURN_IF_ERROR(net::RemoteShardService::Connect(
          host, port, shard, store->num_shards(), options.remote, &remote));
      coord->services_[shard] = std::move(remote);
    }
  }
  if (options.num_threads > 0) {
    coord->pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  *out = std::move(coord);
  return Status::OK();
}

Status DistCoordinator::NewSession(std::unique_ptr<DistPathFinder>* out) {
  return DistPathFinder::CreateSession(this, out);
}

}  // namespace relgraph
