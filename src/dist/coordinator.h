#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dist/replica_set.h"
#include "src/dist/shard_service.h"
#include "src/dist/sharded_graph.h"
#include "src/labels/label_store.h"
#include "src/net/remote_shard_service.h"

namespace relgraph {

class DistPathFinder;

/// Coordinator-wide fast-path accounting: how many distance queries the
/// attached label index answered without any shard fan-out, and why the
/// rest fell back to the distributed FEM search. Summed across sessions
/// (tools print this next to the RESILIENCE summary).
struct DistLabelCounters {
  int64_t label_hits = 0;
  int64_t fallbacks = 0;
  int64_t stale_fallbacks = 0;
  int64_t inexact_fallbacks = 0;
};

/// Execution knobs for the distributed coordinator.
struct DistOptions {
  /// Worker threads driving shard expansion. 0 keeps the serial path: each
  /// round's shard requests run one after another in the calling thread and
  /// `parallel_us` is *simulated* (every round charged its slowest shard) —
  /// the correctness oracle and the measurement baseline. >= 1 runs one
  /// task per contacted shard on a shared pool and `parallel_us` becomes a
  /// *measured* wall clock.
  int num_threads = 0;
  /// Pooled connections per (in-process) shard. Each query session holds at
  /// most one connection per shard at a time, so this bounds how many
  /// sessions can expand on the same shard simultaneously; additional
  /// sessions queue, up to checkout_timeout_ms.
  int connections_per_shard = 1;
  /// How long a session may queue for a local shard connection before the
  /// round fails with Status::Unavailable (see LocalShardOptions).
  int64_t checkout_timeout_ms = 30'000;
  /// Requests allowed to queue per local shard pool beyond the connection
  /// count; one more is shed immediately with ResourceExhausted (see
  /// LocalShardOptions::max_queue_depth).
  int admission_queue_depth = 256;
  /// Transport per shard: each entry is one or more '|'-separated
  /// *replicas* of that shard — "host:port" for a net::ShardServer, or ""
  /// / "local" for the in-process LocalShardService. One replica wires the
  /// service directly (eagerly validated); several wire a
  /// ReplicatedShardService that routes by health, fails over, and
  /// optionally hedges (see `replica`). An empty vector keeps every shard
  /// local (the default single-process deployment); otherwise the size
  /// must equal the store's shard count. Mixing is fully supported — the
  /// coordinator's merge logic cannot tell, which is the point of the
  /// ShardService seam.
  std::vector<std::string> shard_endpoints;
  /// Failure-handling knobs applied to every remote shard stub.
  net::RemoteShardOptions remote;
  /// Replica routing / health / hedging knobs (multi-replica shards only).
  ReplicaOptions replica;
  /// Test/harness hook: called with the 1-based FEM round number right
  /// before that round's shard fan-out, from the session thread — the seam
  /// a deterministic FaultSchedule threads through. Null in production.
  std::function<void(int64_t)> round_hook;
};

/// Process-wide coordinator state for distributed BSDJ over one
/// ShardedGraphStore: the shard services (in-process pools and/or remote
/// stubs dialing net::ShardServers) and the worker pool that runs
/// expansion rounds. Query sessions (DistPathFinder) are created from
/// here — each owns its own coordinator-local TVisited and FEM engine, so
/// N sessions run Find() concurrently against the shared shard set, the
/// "many clients, one cluster" shape of the north star.
class DistCoordinator {
 public:
  static Status Create(ShardedGraphStore* store, DistOptions options,
                       std::unique_ptr<DistCoordinator>* out);

  /// Creates one query session. Sessions are independent (per-session
  /// visited state and statement accounting) and may be driven from
  /// different threads; a single session is not itself thread-safe.
  Status NewSession(std::unique_ptr<DistPathFinder>* out);

  ShardedGraphStore* store() const { return store_; }
  ShardService* shard_service(int shard) const {
    return services_[shard].get();
  }
  /// nullptr when options().num_threads == 0 (serial mode).
  ThreadPool* pool() const { return pool_.get(); }
  const DistOptions& options() const { return options_; }

  /// Sums resilience counters (retries, failovers, hedges, sheds, health
  /// census, ...) across every shard service and its replicas.
  ResilienceCounters Resilience() const;

  /// Attaches a hub-label serving unit: from here on, sessions answer
  /// certified-exact distance queries coordinator-side from two label
  /// probes — zero shard statements, zero rows shipped — and fall back to
  /// the distributed FEM search otherwise. Attach before queries start;
  /// the pointer is read un-synchronized on the query path.
  void AttachLabels(std::unique_ptr<LabelStore> labels) {
    labels_ = std::move(labels);
  }
  /// nullptr when no labels are attached.
  LabelStore* labels() const { return labels_.get(); }

  DistLabelCounters LabelCounters() const {
    DistLabelCounters c;
    c.label_hits = label_hits_.load(std::memory_order_relaxed);
    c.fallbacks = label_fallbacks_.load(std::memory_order_relaxed);
    c.stale_fallbacks = label_stale_.load(std::memory_order_relaxed);
    c.inexact_fallbacks = label_inexact_.load(std::memory_order_relaxed);
    return c;
  }
  void RecordLabelHit() {
    label_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordLabelFallback(bool stale, bool inexact) {
    label_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    if (stale) label_stale_.fetch_add(1, std::memory_order_relaxed);
    if (inexact) label_inexact_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Monotonic session id (1-based) stamped on each new session's shard
  /// requests, so shard-side admission can be per-session fair.
  int64_t NextSessionId() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  DistCoordinator(ShardedGraphStore* store, DistOptions options)
      : store_(store), options_(std::move(options)) {}

  ShardedGraphStore* store_;
  DistOptions options_;
  std::vector<std::unique_ptr<ShardService>> services_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<int64_t> next_session_id_{0};
  std::unique_ptr<LabelStore> labels_;
  std::atomic<int64_t> label_hits_{0};
  std::atomic<int64_t> label_fallbacks_{0};
  std::atomic<int64_t> label_stale_{0};
  std::atomic<int64_t> label_inexact_{0};
};

}  // namespace relgraph
