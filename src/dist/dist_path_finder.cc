#include "src/dist/dist_path_finder.h"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/timer.h"

namespace relgraph {

Status DistPathFinder::Create(ShardedGraphStore* store,
                              std::unique_ptr<DistPathFinder>* out,
                              DistOptions options) {
  std::unique_ptr<DistCoordinator> coord;
  RELGRAPH_RETURN_IF_ERROR(DistCoordinator::Create(store, options, &coord));
  std::unique_ptr<DistPathFinder> finder;
  RELGRAPH_RETURN_IF_ERROR(coord->NewSession(&finder));
  finder->owned_coord_ = std::move(coord);
  *out = std::move(finder);
  return Status::OK();
}

Status DistPathFinder::CreateSession(DistCoordinator* coord,
                                     std::unique_ptr<DistPathFinder>* out) {
  auto finder = std::unique_ptr<DistPathFinder>(new DistPathFinder(coord));
  finder->session_id_ = coord->NextSessionId();
  // Each session is its own "RDBMS node": statement counts and buffer
  // traffic on its TVisited accrue here, separate from every shard database
  // and from every other session.
  finder->coord_db_ = std::make_unique<Database>();
  RELGRAPH_RETURN_IF_ERROR(
      VisitedTable::Create(finder->coord_db_.get(),
                           finder->store_->strategy(), "TVisitedCoord",
                           &finder->visited_));
  finder->fem_ = std::make_unique<FemEngine>(
      finder->coord_db_.get(), finder->visited_.get(), SqlMode::kNsql);
  *out = std::move(finder);
  return Status::OK();
}

Status DistPathFinder::Distance(node_id_t s, node_id_t t,
                                DistPathResult* result,
                                bool* served_from_labels) {
  if (served_from_labels != nullptr) *served_from_labels = false;
  LabelStore* labels = coord_->labels();
  if (labels != nullptr) {
    if (label_probe_ == nullptr) {
      RELGRAPH_RETURN_IF_ERROR(
          LabelProbe::Create(labels->labels(), &label_probe_));
    }
    if (labels->stale()) {
      coord_->RecordLabelFallback(/*stale=*/true, /*inexact=*/false);
    } else {
      Timer timer;
      LabelProbeResult probe;
      RELGRAPH_RETURN_IF_ERROR(label_probe_->Distance(s, t, &probe));
      if (probe.answered) {
        *result = DistPathResult{};
        result->found = probe.found;
        result->distance = probe.found ? probe.distance : kInfinity;
        result->stats.coordinator_statements = probe.statements;
        result->stats.serial_us = timer.ElapsedMicros();
        result->stats.parallel_us = result->stats.serial_us;
        coord_->RecordLabelHit();
        if (served_from_labels != nullptr) *served_from_labels = true;
        return Status::OK();
      }
      coord_->RecordLabelFallback(/*stale=*/false, /*inexact=*/true);
    }
  }
  return Find(s, t, result);
}

Status DistPathFinder::ExpandOnShards(const std::vector<node_id_t>& frontier,
                                      bool forward, weight_t level,
                                      std::vector<Tuple>* rows,
                                      DistQueryStats* stats,
                                      int64_t* shard_serial_us,
                                      int64_t* shard_parallel_us) {
  // Route each frontier node to its owner shard.
  std::vector<std::vector<node_id_t>> by_shard(store_->num_shards());
  for (node_id_t n : frontier) {
    by_shard[store_->OwnerShard(n)].push_back(n);
  }

  // One request per contacted shard, kept in shard-index order: merging
  // responses in that fixed order makes every downstream result — dedup
  // choices, rows_shipped, statement counts — bit-identical whether the
  // requests ran serially or on any number of worker threads.
  std::vector<int> contacted;
  for (int shard = 0; shard < store_->num_shards(); shard++) {
    if (!by_shard[shard].empty()) contacted.push_back(shard);
  }
  std::vector<ShardExpandResponse> responses(contacted.size());

  ThreadPool* pool = coord_->pool();
  if (pool == nullptr || contacted.size() <= 1) {
    // Serial oracle: shard requests one after another in this thread. The
    // simulated-parallel clock charges each round only its slowest shard —
    // what the pre-thread-pool coordinator always reported.
    int64_t round_max_us = 0;
    for (size_t i = 0; i < contacted.size(); i++) {
      int shard = contacted[i];
      ShardExpandRequest req{forward, std::move(by_shard[shard]),
                             session_id_};
      RELGRAPH_RETURN_IF_ERROR(
          coord_->shard_service(shard)->Expand(req, &responses[i]));
      *shard_serial_us += responses[i].elapsed_us;
      round_max_us = std::max(round_max_us, responses[i].elapsed_us);
    }
    *shard_parallel_us += round_max_us;
  } else {
    // Threaded rounds: one task per contacted shard, future-joined. The
    // first contacted shard runs inline — the coordinator thread would
    // only block on the join otherwise, so it does one shard's work itself
    // and saves a dispatch. The parallel clock is the measured wall time
    // of the whole fan-out (queue wait included — that is real
    // coordinator-side latency), while the serial clock still accumulates
    // every shard's own service time.
    Timer round_timer;
    std::vector<std::future<Status>> futures;
    futures.reserve(contacted.size() - 1);
    for (size_t i = 1; i < contacted.size(); i++) {
      int shard = contacted[i];
      ShardService* svc = coord_->shard_service(shard);
      ShardExpandResponse* resp = &responses[i];
      auto req = std::make_shared<ShardExpandRequest>(
          ShardExpandRequest{forward, std::move(by_shard[shard]),
                             session_id_});
      futures.push_back(pool->Submit(
          [svc, req, resp]() -> Status { return svc->Expand(*req, resp); }));
    }
    ShardExpandRequest first_req{forward, std::move(by_shard[contacted[0]]),
                                 session_id_};
    Status first_error =
        coord_->shard_service(contacted[0])->Expand(first_req, &responses[0]);
    for (auto& f : futures) {
      Status st = f.get();
      if (!st.ok() && first_error.ok()) first_error = st;
    }
    RELGRAPH_RETURN_IF_ERROR(first_error);
    *shard_parallel_us += round_timer.ElapsedMicros();
    for (const ShardExpandResponse& resp : responses) {
      *shard_serial_us += resp.elapsed_us;
    }
  }

  size_t shipped_total = 0;
  for (const ShardExpandResponse& resp : responses) {
    stats->shard_statements += resp.statements;
    shipped_total += resp.edges.size();
  }
  stats->rows_shipped += static_cast<int64_t>(shipped_total);

  // The E-operator's dedup (rownum = 1): keep, per reached node, the
  // cheapest shipped edge, ties broken by the smaller parent — the shards
  // did the join, the coordinator finishes the expansion statement.
  std::unordered_map<node_id_t, size_t> best;
  best.reserve(shipped_total);
  std::vector<Tuple> dedup;
  for (const ShardExpandResponse& resp : responses) {
    for (const ShippedEdge& e : resp.edges) {
      weight_t cost = level + e.cost;
      auto [it, inserted] = best.try_emplace(e.emit_node, dedup.size());
      if (inserted) {
        dedup.push_back(Tuple({Value(e.emit_node), Value(cost),
                               Value(e.frontier_node),
                               Value(e.frontier_node)}));
        continue;
      }
      Tuple& cur = dedup[it->second];
      weight_t cur_cost = cur.value(1).AsInt();
      if (cost < cur_cost ||
          (cost == cur_cost && e.frontier_node < cur.value(2).AsInt())) {
        cur = Tuple({Value(e.emit_node), Value(cost), Value(e.frontier_node),
                     Value(e.frontier_node)});
      }
    }
  }
  *rows = std::move(dedup);
  return Status::OK();
}

Status DistPathFinder::WalkChain(const DirCols& dir, node_id_t from,
                                 node_id_t origin,
                                 std::vector<node_id_t>* out) {
  const size_t pred_idx = visited_->table()->schema().IndexOf(dir.pred);
  out->push_back(from);
  node_id_t x = from;
  for (int64_t guard = 0; x != origin; guard++) {
    if (guard > store_->num_nodes() + 8) {
      return Status::Internal("broken " + dir.pred + " chain");
    }
    Tuple row;
    RELGRAPH_RETURN_IF_ERROR(visited_->GetRow(x, &row));
    x = row.value(pred_idx).AsInt();
    out->push_back(x);
  }
  return Status::OK();
}

Status DistPathFinder::Find(node_id_t s, node_id_t t, DistPathResult* result) {
  *result = DistPathResult{};
  DistQueryStats& stats = result->stats;
  Timer total_timer;
  int64_t shard_serial_us = 0;    // sum over every shard request issued
  int64_t shard_parallel_us = 0;  // sum over rounds: measured wall
                                  // (threaded) or slowest shard (serial)
  const bool threaded = coord_->pool() != nullptr;
  const int64_t coord_stmt0 = coord_db_->stats().statements;

  if (s == t) {
    coord_db_->RecordStatement();  // the seed lookup answers immediately
    result->found = true;
    result->distance = 0;
    result->path = {s};
    stats.coordinator_statements =
        coord_db_->stats().statements - coord_stmt0;
    stats.serial_us = total_timer.ElapsedMicros();
    stats.parallel_us = stats.serial_us;
    return Status::OK();
  }

  const DirCols fwd = VisitedTable::ForwardCols();
  const DirCols bwd = VisitedTable::BackwardCols();
  RELGRAPH_RETURN_IF_ERROR(visited_->Reset());
  RELGRAPH_RETURN_IF_ERROR(visited_->InsertSourceAndTarget(s, t));

  while (true) {
    // Coordinator: read both frontier minima and the best meeting cost, and
    // test the Theorem-1 stop rule (lf + lb >= minCost). All three probes
    // are O(1) reads of TVisited's incremental aggregates.
    weight_t lf, lb, min_cost;
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(fwd, &lf));
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(bwd, &lb));
    RELGRAPH_RETURN_IF_ERROR(fem_->MinCost(&min_cost));
    if (lf >= kInfinity && lb >= kInfinity) break;
    if (min_cost < kInfinity && lf + lb >= min_cost) break;

    // Expand the direction whose next level is cheaper (BSDJ alternation).
    const bool forward = lb >= kInfinity || (lf < kInfinity && lf <= lb);
    const DirCols& dir = forward ? fwd : bwd;
    const weight_t level = forward ? lf : lb;

    // F-operator: mark the minimum-distance set, then read it back (the
    // frontier SELECT the coordinator ships to the shards).
    int64_t marked;
    RELGRAPH_RETURN_IF_ERROR(
        fem_->MarkFrontier(dir, FrontierSpec::DistEq(level), &marked));
    coord_db_->RecordStatement();  // SELECT nid FROM TVisited WHERE flag=2
    std::vector<node_id_t> frontier;
    {
      ExecRef scan = visited_->FrontierScan(dir);
      std::vector<Tuple> rows;
      RELGRAPH_RETURN_IF_ERROR(Collect(scan.get(), &rows));
      frontier.reserve(rows.size());
      const size_t nid_idx = visited_->table()->schema().IndexOf("nid");
      for (const Tuple& row : rows) {
        frontier.push_back(row.value(nid_idx).AsInt());
      }
    }

    // Fault-schedule seam: the hook sees the 1-based round number right
    // before this round's shard fan-out, from the session thread — so a
    // scripted fault ("kill replica R at round K") lands at a
    // deterministic point in the query, every run.
    if (coord_->options().round_hook) {
      coord_->options().round_hook(stats.rounds + 1);
    }
    std::vector<Tuple> expansion;
    RELGRAPH_RETURN_IF_ERROR(ExpandOnShards(frontier, forward, level,
                                            &expansion, &stats,
                                            &shard_serial_us,
                                            &shard_parallel_us));
    stats.rounds++;

    // M-operator on the coordinator: merge the shipped rows into TVisited.
    int64_t affected;
    RELGRAPH_RETURN_IF_ERROR(
        fem_->MergeExpansion(dir, std::move(expansion), &affected));
    RELGRAPH_RETURN_IF_ERROR(fem_->FinalizeFrontier(dir));
  }

  const weight_t best = visited_->MinPathCost();
  if (best < kInfinity) {
    result->found = true;
    result->distance = best;
    node_id_t meet;
    RELGRAPH_RETURN_IF_ERROR(fem_->MeetingNode(best, &meet));
    // Walk meet -> s through forward predecessors, then meet -> t through
    // backward successors.
    std::vector<node_id_t> head;
    RELGRAPH_RETURN_IF_ERROR(WalkChain(fwd, meet, s, &head));
    std::reverse(head.begin(), head.end());
    std::vector<node_id_t> tail;
    RELGRAPH_RETURN_IF_ERROR(WalkChain(bwd, meet, t, &tail));
    result->path = std::move(head);
    result->path.insert(result->path.end(), tail.begin() + 1, tail.end());
  }

  stats.coordinator_statements = coord_db_->stats().statements - coord_stmt0;
  const int64_t total_us = total_timer.ElapsedMicros();
  if (threaded) {
    // The query really ran its rounds in parallel: the total is the
    // parallel wall clock, and the serial clock backs the measured round
    // walls out and charges the shards' summed service time instead.
    stats.parallel_us = total_us;
    stats.serial_us = total_us - shard_parallel_us + shard_serial_us;
  } else {
    stats.serial_us = total_us;
    stats.parallel_us = total_us - shard_serial_us + shard_parallel_us;
  }
  return Status::OK();
}

}  // namespace relgraph
