#include "src/dist/dist_path_finder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/timer.h"

namespace relgraph {

Status DistPathFinder::Create(ShardedGraphStore* store,
                              std::unique_ptr<DistPathFinder>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  auto finder = std::unique_ptr<DistPathFinder>(new DistPathFinder(store));
  // The coordinator is its own "RDBMS node": statement counts and buffer
  // traffic on its TVisited accrue here, separate from every shard database.
  finder->coord_db_ = std::make_unique<Database>();
  RELGRAPH_RETURN_IF_ERROR(
      VisitedTable::Create(finder->coord_db_.get(), store->strategy(),
                           "TVisitedCoord", &finder->visited_));
  finder->fem_ = std::make_unique<FemEngine>(
      finder->coord_db_.get(), finder->visited_.get(), SqlMode::kNsql);

  // Prepare the per-shard expansion probes once: each shard's "engine"
  // parses and plans its two statements here, and every round afterwards
  // only binds `:n` — shard-side steady state never re-plans.
  finder->shard_conns_.resize(store->num_shards());
  for (int shard = 0; shard < store->num_shards(); shard++) {
    ShardConn& conn = finder->shard_conns_[shard];
    conn.engine = std::make_unique<sql::SqlEngine>(store->shard_db(shard));
    if (store->out_edges(shard)->HasIndexOn("fid")) {
      RELGRAPH_RETURN_IF_ERROR(conn.engine->Prepare(
          "select tid, cost from " + store->out_edges(shard)->name() +
              " where fid = :n",
          &conn.probe_fwd));
    }
    if (store->in_edges(shard)->HasIndexOn("tid")) {
      RELGRAPH_RETURN_IF_ERROR(conn.engine->Prepare(
          "select fid, cost from " + store->in_edges(shard)->name() +
              " where tid = :n",
          &conn.probe_bwd));
    }
  }
  *out = std::move(finder);
  return Status::OK();
}

Status DistPathFinder::ExpandOnShards(const std::vector<node_id_t>& frontier,
                                      bool forward, weight_t level,
                                      std::vector<Tuple>* rows,
                                      DistQueryStats* stats,
                                      int64_t* shard_serial_us,
                                      int64_t* shard_parallel_us) {
  // Route each frontier node to its owner shard.
  std::vector<std::vector<node_id_t>> by_shard(store_->num_shards());
  for (node_id_t n : frontier) {
    by_shard[store_->OwnerShard(n)].push_back(n);
  }

  // Shard-local expansion: every contacted shard answers one statement —
  // SELECT * FROM TEdges WHERE fid IN (<frontier ∩ shard>) — and ships its
  // matching adjacency rows back.
  struct Shipped {
    node_id_t frontier_node;
    node_id_t emit_node;
    weight_t cost;
  };
  int64_t round_max_us = 0;
  std::vector<Shipped> shipped;
  for (int shard = 0; shard < store_->num_shards(); shard++) {
    if (by_shard[shard].empty()) continue;
    Timer shard_timer;
    Table* table =
        forward ? store_->out_edges(shard) : store_->in_edges(shard);
    const size_t frontier_idx = forward ? 0 : 1;
    const size_t emit_idx = forward ? 1 : 0;
    // One logical round-trip to this shard per round (the conceptual
    // `... WHERE fid IN (<frontier ∩ shard>)` statement); the shard's
    // own Database additionally counts each prepared probe it executes.
    stats->shard_statements++;
    Tuple row;
    const std::shared_ptr<sql::PreparedStatement>& probe =
        forward ? shard_conns_[shard].probe_fwd : shard_conns_[shard].probe_bwd;
    if (probe != nullptr) {
      // Indexed shard: bind-and-execute the prepared point probe per
      // frontier node — same index range scan the native path built by
      // hand, now through the shard's SQL surface with zero re-planning.
      for (node_id_t n : by_shard[shard]) {
        sql::SqlResult r;
        RELGRAPH_RETURN_IF_ERROR(probe->Execute({{"n", Value(n)}}, &r));
        for (const Tuple& rrow : r.rows) {
          shipped.push_back(
              {n, rrow.value(0).AsInt(), rrow.value(1).AsInt()});
        }
      }
    } else {
      store_->shard_db(shard)->RecordStatement();
      std::unordered_set<node_id_t> wanted(by_shard[shard].begin(),
                                           by_shard[shard].end());
      Table::Iterator it = table->Scan();
      while (it.Next(&row, nullptr)) {
        node_id_t key = row.value(frontier_idx).AsInt();
        if (!wanted.count(key)) continue;
        shipped.push_back(
            {key, row.value(emit_idx).AsInt(), row.value(2).AsInt()});
      }
      RELGRAPH_RETURN_IF_ERROR(it.status());
    }
    int64_t us = shard_timer.ElapsedMicros();
    *shard_serial_us += us;
    round_max_us = std::max(round_max_us, us);
  }
  *shard_parallel_us += round_max_us;
  stats->rows_shipped += static_cast<int64_t>(shipped.size());

  // The E-operator's dedup (rownum = 1): keep, per reached node, the
  // cheapest shipped edge, ties broken by the smaller parent — the shards
  // did the join, the coordinator finishes the expansion statement.
  std::unordered_map<node_id_t, size_t> best;
  best.reserve(shipped.size());
  std::vector<Tuple> dedup;
  for (const Shipped& e : shipped) {
    weight_t cost = level + e.cost;
    auto [it, inserted] = best.try_emplace(e.emit_node, dedup.size());
    if (inserted) {
      dedup.push_back(Tuple({Value(e.emit_node), Value(cost),
                             Value(e.frontier_node), Value(e.frontier_node)}));
      continue;
    }
    Tuple& cur = dedup[it->second];
    weight_t cur_cost = cur.value(1).AsInt();
    if (cost < cur_cost ||
        (cost == cur_cost && e.frontier_node < cur.value(2).AsInt())) {
      cur = Tuple({Value(e.emit_node), Value(cost), Value(e.frontier_node),
                   Value(e.frontier_node)});
    }
  }
  *rows = std::move(dedup);
  return Status::OK();
}

Status DistPathFinder::WalkChain(const DirCols& dir, node_id_t from,
                                 node_id_t origin,
                                 std::vector<node_id_t>* out) {
  const size_t pred_idx = visited_->table()->schema().IndexOf(dir.pred);
  out->push_back(from);
  node_id_t x = from;
  for (int64_t guard = 0; x != origin; guard++) {
    if (guard > store_->num_nodes() + 8) {
      return Status::Internal("broken " + dir.pred + " chain");
    }
    Tuple row;
    RELGRAPH_RETURN_IF_ERROR(visited_->GetRow(x, &row));
    x = row.value(pred_idx).AsInt();
    out->push_back(x);
  }
  return Status::OK();
}

Status DistPathFinder::Find(node_id_t s, node_id_t t, DistPathResult* result) {
  *result = DistPathResult{};
  DistQueryStats& stats = result->stats;
  Timer total_timer;
  int64_t shard_serial_us = 0;    // sum over every shard query issued
  int64_t shard_parallel_us = 0;  // sum over rounds of the slowest shard
  const int64_t coord_stmt0 = coord_db_->stats().statements;

  if (s == t) {
    coord_db_->RecordStatement();  // the seed lookup answers immediately
    result->found = true;
    result->distance = 0;
    result->path = {s};
    stats.coordinator_statements =
        coord_db_->stats().statements - coord_stmt0;
    stats.serial_us = total_timer.ElapsedMicros();
    stats.parallel_us = stats.serial_us;
    return Status::OK();
  }

  const DirCols fwd = VisitedTable::ForwardCols();
  const DirCols bwd = VisitedTable::BackwardCols();
  RELGRAPH_RETURN_IF_ERROR(visited_->Reset());
  RELGRAPH_RETURN_IF_ERROR(visited_->InsertSourceAndTarget(s, t));

  while (true) {
    // Coordinator: read both frontier minima and the best meeting cost, and
    // test the Theorem-1 stop rule (lf + lb >= minCost). All three probes
    // are O(1) reads of TVisited's incremental aggregates.
    weight_t lf, lb, min_cost;
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(fwd, &lf));
    RELGRAPH_RETURN_IF_ERROR(fem_->MinOpenDistance(bwd, &lb));
    RELGRAPH_RETURN_IF_ERROR(fem_->MinCost(&min_cost));
    if (lf >= kInfinity && lb >= kInfinity) break;
    if (min_cost < kInfinity && lf + lb >= min_cost) break;

    // Expand the direction whose next level is cheaper (BSDJ alternation).
    const bool forward = lb >= kInfinity || (lf < kInfinity && lf <= lb);
    const DirCols& dir = forward ? fwd : bwd;
    const weight_t level = forward ? lf : lb;

    // F-operator: mark the minimum-distance set, then read it back (the
    // frontier SELECT the coordinator ships to the shards).
    int64_t marked;
    RELGRAPH_RETURN_IF_ERROR(
        fem_->MarkFrontier(dir, FrontierSpec::DistEq(level), &marked));
    coord_db_->RecordStatement();  // SELECT nid FROM TVisited WHERE flag=2
    std::vector<node_id_t> frontier;
    {
      ExecRef scan = visited_->FrontierScan(dir);
      std::vector<Tuple> rows;
      RELGRAPH_RETURN_IF_ERROR(Collect(scan.get(), &rows));
      frontier.reserve(rows.size());
      const size_t nid_idx = visited_->table()->schema().IndexOf("nid");
      for (const Tuple& row : rows) {
        frontier.push_back(row.value(nid_idx).AsInt());
      }
    }

    std::vector<Tuple> expansion;
    RELGRAPH_RETURN_IF_ERROR(ExpandOnShards(frontier, forward, level,
                                            &expansion, &stats,
                                            &shard_serial_us,
                                            &shard_parallel_us));
    stats.rounds++;

    // M-operator on the coordinator: merge the shipped rows into TVisited.
    int64_t affected;
    RELGRAPH_RETURN_IF_ERROR(
        fem_->MergeExpansion(dir, std::move(expansion), &affected));
    RELGRAPH_RETURN_IF_ERROR(fem_->FinalizeFrontier(dir));
  }

  const weight_t best = visited_->MinPathCost();
  if (best < kInfinity) {
    result->found = true;
    result->distance = best;
    node_id_t meet;
    RELGRAPH_RETURN_IF_ERROR(fem_->MeetingNode(best, &meet));
    // Walk meet -> s through forward predecessors, then meet -> t through
    // backward successors.
    std::vector<node_id_t> head;
    RELGRAPH_RETURN_IF_ERROR(WalkChain(fwd, meet, s, &head));
    std::reverse(head.begin(), head.end());
    std::vector<node_id_t> tail;
    RELGRAPH_RETURN_IF_ERROR(WalkChain(bwd, meet, t, &tail));
    result->path = std::move(head);
    result->path.insert(result->path.end(), tail.begin() + 1, tail.end());
  }

  stats.coordinator_statements = coord_db_->stats().statements - coord_stmt0;
  stats.serial_us = total_timer.ElapsedMicros();
  stats.parallel_us = stats.serial_us - shard_serial_us + shard_parallel_us;
  return Status::OK();
}

}  // namespace relgraph
