#include "src/dist/dist_path_finder.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/timer.h"

namespace relgraph {

namespace {

/// One direction of the coordinator's search: tentative distances, shortest
/// path tree links (predecessor forward, successor backward), the settled
/// set, and a lazy-deletion min-heap over the open nodes.
struct SearchSide {
  std::unordered_map<node_id_t, weight_t> dist;
  std::unordered_map<node_id_t, node_id_t> parent;
  std::unordered_set<node_id_t> settled;
  using HeapEntry = std::pair<weight_t, node_id_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  void Seed(node_id_t origin) {
    dist[origin] = 0;
    heap.push({0, origin});
  }

  /// Smallest open distance, discarding stale heap entries; kInfinity when
  /// the frontier is exhausted.
  weight_t MinOpen() {
    while (!heap.empty()) {
      auto [d, n] = heap.top();
      auto it = dist.find(n);
      if (settled.count(n) || it == dist.end() || it->second != d) {
        heap.pop();
        continue;
      }
      return d;
    }
    return kInfinity;
  }

  /// Pops and settles every open node at distance `level` (one set-at-a-time
  /// frontier, the paper's §4.1 move).
  std::vector<node_id_t> TakeFrontier(weight_t level) {
    std::vector<node_id_t> frontier;
    while (!heap.empty() && heap.top().first == level) {
      auto [d, n] = heap.top();
      heap.pop();
      auto it = dist.find(n);
      if (settled.count(n) || it == dist.end() || it->second != d) continue;
      settled.insert(n);
      frontier.push_back(n);
    }
    return frontier;
  }
};

/// An adjacency row shipped from a shard to the coordinator.
struct ShippedEdge {
  node_id_t frontier_node;  // the endpoint that matched the frontier
  node_id_t emit_node;      // the newly reached endpoint
  weight_t cost;
};

}  // namespace

Status DistPathFinder::Create(ShardedGraphStore* store,
                              std::unique_ptr<DistPathFinder>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  *out = std::unique_ptr<DistPathFinder>(new DistPathFinder(store));
  return Status::OK();
}

Status DistPathFinder::Find(node_id_t s, node_id_t t, DistPathResult* result) {
  *result = DistPathResult{};
  DistQueryStats& stats = result->stats;
  Timer total_timer;
  int64_t shard_serial_us = 0;    // sum over every shard query issued
  int64_t shard_parallel_us = 0;  // sum over rounds of the slowest shard

  if (s == t) {
    stats.coordinator_statements++;  // the seed lookup answers immediately
    result->found = true;
    result->distance = 0;
    result->path = {s};
    stats.serial_us = total_timer.ElapsedMicros();
    stats.parallel_us = stats.serial_us;
    return Status::OK();
  }

  SearchSide fwd, bwd;
  fwd.Seed(s);
  bwd.Seed(t);
  stats.coordinator_statements += 2;  // the two TVisited seed inserts

  weight_t best = kInfinity;
  node_id_t meet = kInvalidNode;
  auto try_meet = [&](node_id_t v) {
    auto fit = fwd.dist.find(v);
    auto bit = bwd.dist.find(v);
    if (fit == fwd.dist.end() || bit == bwd.dist.end()) return;
    weight_t through = fit->second + bit->second;
    if (through < best) {
      best = through;
      meet = v;
    }
  };

  while (true) {
    // Coordinator: read both frontier minima and test the Theorem-1 stop
    // rule (lf + lb >= minCost).
    weight_t lf = fwd.MinOpen();
    weight_t lb = bwd.MinOpen();
    stats.coordinator_statements += 2;
    if (lf == kInfinity && lb == kInfinity) break;
    if (best != kInfinity && lf + lb >= best) break;

    // Expand the direction whose next level is cheaper (BSDJ alternation).
    bool forward = lb == kInfinity || (lf != kInfinity && lf <= lb);
    SearchSide& side = forward ? fwd : bwd;
    weight_t level = forward ? lf : lb;

    std::vector<node_id_t> frontier = side.TakeFrontier(level);
    stats.coordinator_statements++;  // frontier select + settle update
    for (node_id_t n : frontier) try_meet(n);
    if (frontier.empty()) continue;

    // Route each frontier node to its owner shard.
    std::vector<std::vector<node_id_t>> by_shard(store_->num_shards());
    for (node_id_t n : frontier) {
      by_shard[store_->OwnerShard(n)].push_back(n);
    }

    // Shard-local expansion: every contacted shard answers one statement —
    // SELECT * FROM TEdges WHERE fid IN (<frontier ∩ shard>) — and ships
    // its matching adjacency rows back.
    int64_t round_max_us = 0;
    std::vector<ShippedEdge> shipped;
    for (int shard = 0; shard < store_->num_shards(); shard++) {
      if (by_shard[shard].empty()) continue;
      Timer shard_timer;
      Table* table =
          forward ? store_->out_edges(shard) : store_->in_edges(shard);
      const char* key_col = forward ? "fid" : "tid";
      const size_t frontier_idx = forward ? 0 : 1;
      const size_t emit_idx = forward ? 1 : 0;
      stats.shard_statements++;
      store_->shard_db(shard)->RecordStatement();
      Tuple row;
      if (table->HasIndexOn(key_col)) {
        for (node_id_t n : by_shard[shard]) {
          Table::Iterator it;
          RELGRAPH_RETURN_IF_ERROR(table->ScanRange(key_col, n, n, &it));
          while (it.Next(&row, nullptr)) {
            shipped.push_back({n, row.value(emit_idx).AsInt(),
                               row.value(2).AsInt()});
          }
          RELGRAPH_RETURN_IF_ERROR(it.status());
        }
      } else {
        std::unordered_set<node_id_t> wanted(by_shard[shard].begin(),
                                             by_shard[shard].end());
        Table::Iterator it = table->Scan();
        while (it.Next(&row, nullptr)) {
          node_id_t key = row.value(frontier_idx).AsInt();
          if (!wanted.count(key)) continue;
          shipped.push_back({key, row.value(emit_idx).AsInt(),
                             row.value(2).AsInt()});
        }
        RELGRAPH_RETURN_IF_ERROR(it.status());
      }
      int64_t us = shard_timer.ElapsedMicros();
      shard_serial_us += us;
      round_max_us = std::max(round_max_us, us);
    }
    shard_parallel_us += round_max_us;
    stats.rows_shipped += static_cast<int64_t>(shipped.size());
    stats.rounds++;

    // Coordinator: relax the shipped rows (the MERGE of Listing 4(2)).
    stats.coordinator_statements++;
    for (const ShippedEdge& e : shipped) {
      if (side.settled.count(e.emit_node)) continue;
      weight_t nd = level + e.cost;
      auto it = side.dist.find(e.emit_node);
      if (it != side.dist.end() && it->second <= nd) continue;
      side.dist[e.emit_node] = nd;
      side.parent[e.emit_node] = e.frontier_node;
      side.heap.push({nd, e.emit_node});
      try_meet(e.emit_node);
    }
  }

  stats.serial_us = total_timer.ElapsedMicros();
  stats.parallel_us = stats.serial_us - shard_serial_us + shard_parallel_us;

  if (best == kInfinity) return Status::OK();

  result->found = true;
  result->distance = best;
  // Walk meet -> s through forward predecessors, then meet -> t through
  // backward successors.
  std::vector<node_id_t> head;
  for (node_id_t v = meet; v != s;) {
    auto it = fwd.parent.find(v);
    if (it == fwd.parent.end()) {
      return Status::Internal("broken forward parent chain");
    }
    head.push_back(v);
    v = it->second;
  }
  head.push_back(s);
  std::reverse(head.begin(), head.end());
  result->path = std::move(head);
  for (node_id_t v = meet; v != t;) {
    auto it = bwd.parent.find(v);
    if (it == bwd.parent.end()) {
      return Status::Internal("broken backward parent chain");
    }
    v = it->second;
    result->path.push_back(v);
  }
  return Status::OK();
}

}  // namespace relgraph
