#pragma once

#include <memory>
#include <vector>

#include "src/dist/sharded_graph.h"

namespace relgraph {

/// What the distributed simulation measures per query: statement counts on
/// the coordinator and across shards, rows crossing the shard/coordinator
/// boundary (the "network"), and two clocks — the serial cost this
/// single-process simulation actually pays, and the simulated-parallel
/// wall clock where every expansion round is charged only its slowest
/// shard. parallel_us <= serial_us always holds.
struct DistQueryStats {
  int64_t coordinator_statements = 0;
  int64_t shard_statements = 0;
  int64_t rows_shipped = 0;
  int64_t rounds = 0;
  int64_t serial_us = 0;
  int64_t parallel_us = 0;
};

struct DistPathResult {
  bool found = false;
  weight_t distance = kInfinity;
  std::vector<node_id_t> path;  // s ... t when found
  DistQueryStats stats;
};

/// Coordinator for bi-directional set Dijkstra (the paper's BSDJ) over a
/// ShardedGraphStore — the §7 distributed extension, simulated in-process.
/// The coordinator keeps the visited/frontier bookkeeping and, each round,
/// sends the frontier's node set to the shards that own those nodes; each
/// shard answers with its local adjacency rows, which the coordinator
/// relaxes. Expansion is thus fully partitioned while termination (the
/// Theorem-1 bound lf + lb >= minCost) stays centralized.
class DistPathFinder {
 public:
  static Status Create(ShardedGraphStore* store,
                       std::unique_ptr<DistPathFinder>* out);

  /// Finds the shortest path from s to t. Not-found is reported through
  /// `result->found`; the Status covers engine errors only.
  Status Find(node_id_t s, node_id_t t, DistPathResult* result);

 private:
  explicit DistPathFinder(ShardedGraphStore* store) : store_(store) {}

  ShardedGraphStore* store_ = nullptr;
};

}  // namespace relgraph
