#pragma once

#include <memory>
#include <vector>

#include "src/core/fem.h"
#include "src/core/visited_table.h"
#include "src/dist/sharded_graph.h"
#include "src/sql/sql_engine.h"

namespace relgraph {

/// What the distributed simulation measures per query: statement counts on
/// the coordinator and across shards, rows crossing the shard/coordinator
/// boundary (the "network"), and two clocks — the serial cost this
/// single-process simulation actually pays, and the simulated-parallel
/// wall clock where every expansion round is charged only its slowest
/// shard. parallel_us <= serial_us always holds.
struct DistQueryStats {
  int64_t coordinator_statements = 0;
  int64_t shard_statements = 0;
  int64_t rows_shipped = 0;
  int64_t rounds = 0;
  int64_t serial_us = 0;
  int64_t parallel_us = 0;
};

struct DistPathResult {
  bool found = false;
  weight_t distance = kInfinity;
  std::vector<node_id_t> path;  // s ... t when found
  DistQueryStats stats;
};

/// Coordinator for bi-directional set Dijkstra (the paper's BSDJ) over a
/// ShardedGraphStore — the §7 distributed extension, simulated in-process.
/// The coordinator keeps its visited/frontier bookkeeping in a relational
/// TVisited (a VisitedTable in a coordinator-local Database), driven through
/// the same FEM operators as the single-node engine — so the distributed
/// path inherits TVisited's indexed access paths, O(1) aggregate probes,
/// and per-statement accounting. Each round it sends the frontier's node
/// set to the shards that own those nodes; each shard answers with its
/// local adjacency rows, which the coordinator merges back (the M-operator).
/// Expansion is thus fully partitioned while termination (the Theorem-1
/// bound lf + lb >= minCost) stays centralized.
class DistPathFinder {
 public:
  static Status Create(ShardedGraphStore* store,
                       std::unique_ptr<DistPathFinder>* out);

  /// Finds the shortest path from s to t. Not-found is reported through
  /// `result->found`; the Status covers engine errors only.
  Status Find(node_id_t s, node_id_t t, DistPathResult* result);

  /// The coordinator's database (statement counts feed DistQueryStats).
  Database* coordinator_db() { return coord_db_.get(); }

 private:
  explicit DistPathFinder(ShardedGraphStore* store) : store_(store) {}

  /// Queries the owner shards of `frontier` and ships their adjacency rows
  /// back as E-operator expansion rows (ExpansionSchema), deduplicated per
  /// reached node. Updates the shard-side clocks and counters.
  Status ExpandOnShards(const std::vector<node_id_t>& frontier, bool forward,
                        weight_t level, std::vector<Tuple>* rows,
                        DistQueryStats* stats, int64_t* shard_serial_us,
                        int64_t* shard_parallel_us);

  /// Walks one direction's predecessor chain from `from` back to `origin`.
  Status WalkChain(const DirCols& dir, node_id_t from, node_id_t origin,
                   std::vector<node_id_t>* out);

  ShardedGraphStore* store_ = nullptr;
  std::unique_ptr<Database> coord_db_;
  std::unique_ptr<VisitedTable> visited_;
  std::unique_ptr<FemEngine> fem_;

  /// Per-shard SQL connection with the two edge-probe statements prepared
  /// once at Create() — each expansion round only binds the frontier node
  /// (`:n`) and executes, so shard-side steady state is parse-free, the
  /// same contract SqlPathFinder has on the single-node engine. Used when
  /// the shard's adjacency is indexed; the NoIndex strategy keeps the
  /// single batched scan per shard (one statement answering the whole
  /// frontier set, which per-node SQL probes cannot express without
  /// IN-lists).
  struct ShardConn {
    std::unique_ptr<sql::SqlEngine> engine;
    std::shared_ptr<sql::PreparedStatement> probe_fwd;  // out-edges by fid
    std::shared_ptr<sql::PreparedStatement> probe_bwd;  // in-edges by tid
  };
  std::vector<ShardConn> shard_conns_;
};

}  // namespace relgraph
