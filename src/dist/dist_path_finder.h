#pragma once

#include <memory>
#include <vector>

#include "src/core/fem.h"
#include "src/core/visited_table.h"
#include "src/dist/coordinator.h"
#include "src/dist/sharded_graph.h"
#include "src/labels/label_probe.h"

namespace relgraph {

/// What one distributed query measures: statement counts on the coordinator
/// and across shards, rows crossing the shard/coordinator boundary (the
/// "network"), and two clocks.
///
/// `serial_us` is what the query costs with every shard request run one
/// after another; `parallel_us` is what it costs with each round's shard
/// requests running concurrently. In serial mode (DistOptions::num_threads
/// == 0) the query actually executes serially: serial_us is the measured
/// wall clock and parallel_us is *simulated* by charging each round only
/// its slowest shard (so parallel_us <= serial_us always holds there). In
/// threaded mode the roles flip: parallel_us is the *measured* wall clock
/// (rounds really run on the thread pool) and serial_us backs out the
/// measured round walls and charges the sum of shard service times instead.
struct DistQueryStats {
  int64_t coordinator_statements = 0;
  int64_t shard_statements = 0;
  int64_t rows_shipped = 0;
  int64_t rounds = 0;
  int64_t serial_us = 0;
  int64_t parallel_us = 0;
};

struct DistPathResult {
  bool found = false;
  weight_t distance = kInfinity;
  std::vector<node_id_t> path;  // s ... t when found
  DistQueryStats stats;
};

/// One query session of the distributed bi-directional set Dijkstra (the
/// paper's BSDJ, §7 extension). The session keeps its visited/frontier
/// bookkeeping in a relational TVisited (a VisitedTable in a session-local
/// Database), driven through the same FEM operators as the single-node
/// engine — so the distributed path inherits TVisited's indexed access
/// paths, O(1) aggregate probes, and per-statement accounting. Each round
/// it routes the frontier's node set to the owner shards' ShardServices
/// (serially, or one thread-pool task per shard); each shard answers with
/// its local adjacency rows, which the session merges back (the
/// M-operator). Expansion is thus fully partitioned while termination (the
/// Theorem-1 bound lf + lb >= minCost) stays centralized.
///
/// Sessions come from DistCoordinator::NewSession() and share that
/// coordinator's shard services, connection pools, and worker threads; the
/// session itself must be driven from one thread at a time.
class DistPathFinder {
 public:
  /// Convenience for the common single-session case: builds a private
  /// coordinator with `options` and one session on it.
  static Status Create(ShardedGraphStore* store,
                       std::unique_ptr<DistPathFinder>* out,
                       DistOptions options = DistOptions{});

  /// Finds the shortest path from s to t. Not-found is reported through
  /// `result->found`; the Status covers engine errors only.
  Status Find(node_id_t s, node_id_t t, DistPathResult* result);

  /// Distance-only query with the label fast path: when the coordinator
  /// has labels attached, they are fresh, and the probe certifies its
  /// answer exact, the result comes from two coordinator-side index scans
  /// — stats show zero rounds, zero shard statements, zero rows shipped.
  /// Everything else (stale labels, uncertified bound, no labels) runs the
  /// full distributed FEM search. `served_from_labels` (optional) reports
  /// which path answered; `result->path` stays empty on a label hit.
  Status Distance(node_id_t s, node_id_t t, DistPathResult* result,
                  bool* served_from_labels = nullptr);

  /// The session's database (statement counts feed DistQueryStats).
  Database* coordinator_db() { return coord_db_.get(); }

  /// The coordinator this session runs on (resilience counters live there).
  DistCoordinator* coordinator() const { return coord_; }
  /// This session's id, stamped on every shard request it issues.
  int64_t session_id() const { return session_id_; }

 private:
  friend class DistCoordinator;

  explicit DistPathFinder(DistCoordinator* coord)
      : coord_(coord), store_(coord->store()) {}

  static Status CreateSession(DistCoordinator* coord,
                              std::unique_ptr<DistPathFinder>* out);

  /// Queries the owner shards of `frontier` — serially, or as one
  /// thread-pool task per contacted shard — and ships their adjacency rows
  /// back as E-operator expansion rows (ExpansionSchema), deduplicated per
  /// reached node. Updates the shard-side clocks and counters.
  Status ExpandOnShards(const std::vector<node_id_t>& frontier, bool forward,
                        weight_t level, std::vector<Tuple>* rows,
                        DistQueryStats* stats, int64_t* shard_serial_us,
                        int64_t* shard_parallel_us);

  /// Walks one direction's predecessor chain from `from` back to `origin`.
  Status WalkChain(const DirCols& dir, node_id_t from, node_id_t origin,
                   std::vector<node_id_t>* out);

  DistCoordinator* coord_ = nullptr;
  ShardedGraphStore* store_ = nullptr;
  int64_t session_id_ = 0;
  /// Set only by the single-session Create() overload, which owns its
  /// coordinator; sessions minted via NewSession() borrow theirs.
  std::unique_ptr<DistCoordinator> owned_coord_;
  std::unique_ptr<Database> coord_db_;
  std::unique_ptr<VisitedTable> visited_;
  std::unique_ptr<FemEngine> fem_;
  /// Created lazily on the first Distance() after labels are attached:
  /// each session owns its probe (engine + prepared handles are
  /// single-threaded) over the coordinator's shared label database.
  std::unique_ptr<LabelProbe> label_probe_;
};

}  // namespace relgraph
