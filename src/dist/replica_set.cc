#include "src/dist/replica_set.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

namespace relgraph {

namespace {

/// Workers for hedged primaries. Hedging launches the preferred replica
/// asynchronously so the caller can start the backup if it stalls; a small
/// pool is enough because a task only occupies a worker for one request
/// round trip, and an oversubscribed pool merely delays the primary —
/// which at worst fires a redundant (still correct) hedge.
constexpr int kHedgeWorkers = 4;

}  // namespace

ReplicatedShardService::ReplicatedShardService(int shard,
                                               std::vector<Replica> replicas,
                                               ReplicaOptions options)
    : shard_(shard), options_(options), replicas_(std::move(replicas)) {
  health_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); i++) {
    health_.push_back(std::make_unique<net::HealthState>());
  }
  if (options_.hedge_delay_ms >= 0 && replicas_.size() >= 2) {
    hedge_pool_ = std::make_unique<ThreadPool>(kHedgeWorkers);
  }
  if (options_.enable_prober && options_.prober.probe_interval_ms > 0) {
    std::vector<net::HealthProber::Target> targets;
    for (size_t i = 0; i < replicas_.size(); i++) {
      if (!replicas_[i].probe) continue;  // local replicas cannot die alone
      targets.push_back({replicas_[i].probe, health_[i].get()});
    }
    if (!targets.empty()) {
      prober_ = std::make_unique<net::HealthProber>(std::move(targets),
                                                    options_.prober);
    }
  }
}

ReplicatedShardService::~ReplicatedShardService() {
  // Stop the threads that call into replicas before replicas_ dies.
  if (prober_) prober_->Stop();
  if (hedge_pool_) hedge_pool_->Shutdown();
}

Status ReplicatedShardService::Create(
    int shard, std::vector<Replica> replicas, ReplicaOptions options,
    std::unique_ptr<ReplicatedShardService>* out) {
  if (replicas.empty()) {
    return Status::InvalidArgument("replica set for shard " +
                                   std::to_string(shard) + " is empty");
  }
  for (const Replica& r : replicas) {
    if (r.service == nullptr) {
      return Status::InvalidArgument("null replica service for shard " +
                                     std::to_string(shard));
    }
  }
  out->reset(
      new ReplicatedShardService(shard, std::move(replicas), options));
  return Status::OK();
}

std::vector<size_t> ReplicatedShardService::RouteOrder() const {
  std::vector<size_t> order(replicas_.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  // Snapshot health once so the sort comparator is consistent even while
  // the prober updates cells concurrently.
  std::vector<int> rank(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); i++) {
    rank[i] = static_cast<int>(health_[i]->health());
  }
  std::stable_sort(order.begin(), order.end(),
                   [&rank](size_t a, size_t b) { return rank[a] < rank[b]; });
  return order;
}

void ReplicatedShardService::RecordOutcome(size_t i, const Status& st) {
  if (st.ok() || !IsFailoverable(st)) {
    // An application-level answer still proves the replica is alive.
    health_[i]->RecordSuccess();
  } else {
    health_[i]->RecordFailure(options_.prober);
  }
}

Status ReplicatedShardService::ExpandOnReplica(
    size_t i, const ShardExpandRequest& request,
    ShardExpandResponse* response) {
  *response = ShardExpandResponse{};
  Status st = replicas_[i].service->Expand(request, response);
  RecordOutcome(i, st);
  if (!st.ok()) *response = ShardExpandResponse{};
  return st;
}

Status ReplicatedShardService::AllReplicasFailed(const Status& last) const {
  return Status::Unavailable(
      "all " + std::to_string(replicas_.size()) + " replica(s) of shard " +
      std::to_string(shard_) + " failed; last error: " + last.ToString());
}

Status ReplicatedShardService::SequentialExpand(
    const std::vector<size_t>& order, size_t start,
    const ShardExpandRequest& request, ShardExpandResponse* response) {
  Status last = Status::Unavailable("no replica attempted");
  for (size_t k = start; k < order.size(); k++) {
    Status st = ExpandOnReplica(order[k], request, response);
    if (st.ok()) return st;
    if (!IsFailoverable(st)) return st;  // deterministic app-level answer
    last = st;
    if (k + 1 < order.size()) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return AllReplicasFailed(last);
}

Status ReplicatedShardService::HedgedExpand(const std::vector<size_t>& order,
                                            const ShardExpandRequest& request,
                                            ShardExpandResponse* response) {
  const size_t primary = order[0];
  const size_t secondary = order[1];
  // The primary runs asynchronously into shared state it co-owns: if the
  // hedge wins, this attempt is simply abandoned and finishes (harmlessly)
  // after we have returned. The request is copied for the same reason —
  // the caller's buffer does not outlive the caller.
  struct Attempt {
    ShardExpandResponse response;
    Status status = Status::OK();
  };
  auto attempt = std::make_shared<Attempt>();
  std::future<void> fut = hedge_pool_->Submit(
      [svc = replicas_[primary].service.get(), req = request, attempt] {
        attempt->status = svc->Expand(req, &attempt->response);
      });
  const auto delay = std::chrono::milliseconds(options_.hedge_delay_ms);
  if (fut.wait_for(delay) == std::future_status::ready) {
    fut.get();
    RecordOutcome(primary, attempt->status);
    if (attempt->status.ok()) {
      *response = std::move(attempt->response);
      return Status::OK();
    }
    if (!IsFailoverable(attempt->status)) return attempt->status;
    // Fast transport failure: ordinary failover, no hedge needed.
    failovers_.fetch_add(1, std::memory_order_relaxed);
    return SequentialExpand(order, 1, request, response);
  }
  // Primary is past the latency threshold: hedge on the next replica and
  // take the first valid response.
  hedges_.fetch_add(1, std::memory_order_relaxed);
  Status hedge_st = ExpandOnReplica(secondary, request, response);
  if (hedge_st.ok()) return hedge_st;
  if (!IsFailoverable(hedge_st)) return hedge_st;
  // The hedge failed too — now the primary's answer is worth waiting for.
  fut.wait();
  RecordOutcome(primary, attempt->status);
  if (attempt->status.ok()) {
    *response = std::move(attempt->response);
    return Status::OK();
  }
  if (!IsFailoverable(attempt->status)) return attempt->status;
  failovers_.fetch_add(1, std::memory_order_relaxed);
  if (order.size() > 2) {
    return SequentialExpand(order, 2, request, response);
  }
  return AllReplicasFailed(attempt->status);
}

Status ReplicatedShardService::Expand(const ShardExpandRequest& request,
                                      ShardExpandResponse* response) {
  const std::vector<size_t> order = RouteOrder();
  if (hedge_pool_ && order.size() >= 2) {
    return HedgedExpand(order, request, response);
  }
  return SequentialExpand(order, 0, request, response);
}

void ReplicatedShardService::AddResilience(ResilienceCounters* out) const {
  out->failovers += failovers();
  out->hedges += hedges();
  if (prober_) out->probes += prober_->probes_sent();
  for (size_t i = 0; i < replicas_.size(); i++) {
    switch (health_[i]->health()) {
      case net::ReplicaHealth::kHealthy:
        out->replicas_healthy++;
        break;
      case net::ReplicaHealth::kSuspect:
        out->replicas_suspect++;
        break;
      case net::ReplicaHealth::kDead:
        out->replicas_dead++;
        break;
    }
    replicas_[i].service->AddResilience(out);
  }
}

}  // namespace relgraph
