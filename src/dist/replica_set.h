#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dist/shard_service.h"
#include "src/net/prober.h"

namespace relgraph {

/// Knobs for one shard's replica set.
struct ReplicaOptions {
  /// Tail hedging: when the preferred replica has not answered after this
  /// many ms, launch the same request on the next replica and take the
  /// first valid response (shard responses are deterministic, so the race
  /// cannot change results — only the tail latency). < 0 disables.
  int64_t hedge_delay_ms = -1;
  /// Background heartbeat prober over the remote replicas.
  net::ProberOptions prober;
  /// Master switch for the background prober (health still updates
  /// passively from request outcomes when off).
  bool enable_prober = true;
};

/// One replica of a shard, as handed to ReplicatedShardService: the service
/// to route to, an optional liveness probe for the background prober (null
/// for in-process replicas — they cannot die independently), and a name for
/// error messages.
struct Replica {
  std::unique_ptr<ShardService> service;
  std::function<Status()> probe;
  std::string name;
};

/// N-way replicated ShardService: routes each Expand to the healthiest
/// replica, fails over on transport-class errors, optionally hedges the
/// tail, and keeps per-replica health fresh with a background heartbeat
/// prober — so one dead replica costs a failover, not the query.
///
/// Routing order is (health, index): healthy replicas first, then suspect,
/// then dead — dead replicas stay in the order as a last resort because the
/// attempt doubles as a recovery probe and their circuit breaker makes a
/// still-dead attempt nearly free. Application-level errors (the shard
/// executed and said no) are returned as-is without failover: every replica
/// would deterministically say the same thing.
///
/// Thread-safe to the same degree as its replicas: concurrent sessions
/// route independently; health cells are lock-free atomics.
class ReplicatedShardService : public ShardService {
 public:
  static Status Create(int shard, std::vector<Replica> replicas,
                       ReplicaOptions options,
                       std::unique_ptr<ReplicatedShardService>* out);

  ~ReplicatedShardService() override;

  Status Expand(const ShardExpandRequest& request,
                ShardExpandResponse* response) override;

  void AddResilience(ResilienceCounters* out) const override;

  int shard() const { return shard_; }
  size_t num_replicas() const { return replicas_.size(); }
  ShardService* replica_service(size_t i) const {
    return replicas_[i].service.get();
  }
  net::ReplicaHealth replica_health(size_t i) const {
    return health_[i]->health();
  }
  /// Seeds a replica's health as dead (e.g. unreachable at wiring time);
  /// the prober or a successful request revives it.
  void MarkReplicaDead(size_t i) { health_[i]->MarkDead(); }
  /// nullptr when the prober is disabled or no replica is probeable.
  const net::HealthProber* prober() const { return prober_.get(); }

  int64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  int64_t hedges() const { return hedges_.load(std::memory_order_relaxed); }

 private:
  ReplicatedShardService(int shard, std::vector<Replica> replicas,
                         ReplicaOptions options);

  /// Outcome worth trying another replica for. A breaker fast-fail
  /// surfaces as Unavailable, so it routes onward too. Corruption is
  /// failoverable by design: it means THIS replica's data (or this
  /// transport path) is bad, not that the answer doesn't exist — another
  /// replica with intact pages must get the chance to serve it. It is
  /// still non-RETRYABLE on the same replica (RemoteShardService), since
  /// re-reading bad pages cannot heal them.
  static bool IsFailoverable(const Status& st) {
    return st.IsUnavailable() || st.IsDeadlineExceeded() ||
           st.IsCorruption();
  }

  /// Replica indices in routing preference order (health rank, then index).
  std::vector<size_t> RouteOrder() const;

  /// One attempt on one replica, with health bookkeeping and the
  /// clear-response-on-error contract.
  Status ExpandOnReplica(size_t i, const ShardExpandRequest& request,
                         ShardExpandResponse* response);
  /// Plain failover walk over order[start..]; assumes start < order.size().
  Status SequentialExpand(const std::vector<size_t>& order, size_t start,
                          const ShardExpandRequest& request,
                          ShardExpandResponse* response);
  /// Hedged first attempt over order[0]/order[1], falling back to the
  /// sequential walk for order[2..] when both fail.
  Status HedgedExpand(const std::vector<size_t>& order,
                      const ShardExpandRequest& request,
                      ShardExpandResponse* response);

  void RecordOutcome(size_t i, const Status& st);

  Status AllReplicasFailed(const Status& last) const;

  const int shard_;
  const ReplicaOptions options_;
  /// Declaration order doubles as teardown order in reverse: the hedge pool
  /// and prober must shut down (joining their threads) BEFORE the replica
  /// services they call into are destroyed.
  std::vector<Replica> replicas_;
  std::vector<std::unique_ptr<net::HealthState>> health_;
  std::unique_ptr<ThreadPool> hedge_pool_;
  std::unique_ptr<net::HealthProber> prober_;

  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> hedges_{0};
};

}  // namespace relgraph
