#include "src/dist/shard_service.h"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "src/common/timer.h"

namespace relgraph {

Status LocalShardService::Create(ShardedGraphStore* store, int shard,
                                 LocalShardOptions options,
                                 std::unique_ptr<LocalShardService>* out) {
  if (options.connections < 1) {
    return Status::InvalidArgument("shard connection pool must be >= 1");
  }
  if (options.checkout_timeout_ms < 1) {
    return Status::InvalidArgument("checkout timeout must be >= 1 ms");
  }
  if (options.max_queue_depth < 0) {
    return Status::InvalidArgument("admission queue depth must be >= 0");
  }
  auto svc = std::unique_ptr<LocalShardService>(
      new LocalShardService(store, shard, options));
  for (int i = 0; i < options.connections; i++) {
    auto conn = std::make_unique<Conn>();
    conn->engine = std::make_unique<sql::SqlEngine>(store->shard_db(shard));
    if (store->out_edges(shard)->HasIndexOn("fid")) {
      RELGRAPH_RETURN_IF_ERROR(conn->engine->Prepare(
          "select tid, cost from " + store->out_edges(shard)->name() +
              " where fid = :n",
          &conn->probe_fwd));
    }
    if (store->in_edges(shard)->HasIndexOn("tid")) {
      RELGRAPH_RETURN_IF_ERROR(conn->engine->Prepare(
          "select fid, cost from " + store->in_edges(shard)->name() +
              " where tid = :n",
          &conn->probe_bwd));
    }
    svc->idle_.push_back(conn.get());
    svc->conns_.push_back(std::move(conn));
  }
  *out = std::move(svc);
  return Status::OK();
}

Status LocalShardService::CheckoutConn(int64_t session, Conn** out) {
  // Admission first: the queue bounds the wait at checkout_timeout_ms
  // (-> Unavailable, same typed error the remote transport degrades to),
  // sheds queue-full arrivals immediately (-> ResourceExhausted), and
  // round-robins grants across sessions so none starves.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.checkout_timeout_ms);
  Status admit = admission_.Acquire(static_cast<uint64_t>(session), deadline);
  if (!admit.ok()) {
    if (admit.IsUnavailable()) {
      // Keep the pool-exhaustion shape callers/tests key on.
      return Status::Unavailable(
          "shard " + std::to_string(shard_) + " connection pool exhausted (" +
          std::to_string(conns_.size()) + " connections busy for " +
          std::to_string(options_.checkout_timeout_ms) + " ms)");
    }
    return Status::ResourceExhausted(
        "shard " + std::to_string(shard_) + ": " + admit.message());
  }
  // A granted permit means a connection is free (permits == pool size).
  std::lock_guard<std::mutex> lock(mu_);
  *out = idle_.back();
  idle_.pop_back();
  return Status::OK();
}

void LocalShardService::ReturnConn(Conn* c) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(c);
  }
  admission_.Release();
}

Status LocalShardService::DebugCheckoutConn(void** handle) {
  Conn* conn = nullptr;
  RELGRAPH_RETURN_IF_ERROR(CheckoutConn(/*session=*/0, &conn));
  *handle = conn;
  return Status::OK();
}

void LocalShardService::DebugReturnConn(void* handle) {
  ReturnConn(static_cast<Conn*>(handle));
}

bool LocalShardService::ProbeFaultFires() {
  // The countdown parks at 0 once spent, so the fault stays sticky until
  // ClearFaults — mirroring DiskManager's injection semantics.
  int64_t cur = probe_fault_in_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur < 0) return false;
    if (cur == 0) return true;
    if (probe_fault_in_.compare_exchange_weak(cur, cur - 1,
                                              std::memory_order_relaxed)) {
      return false;
    }
  }
}

Status LocalShardService::Expand(const ShardExpandRequest& request,
                                 ShardExpandResponse* response) {
  *response = ShardExpandResponse{};
  Conn* conn = nullptr;
  RELGRAPH_RETURN_IF_ERROR(CheckoutConn(request.session_id, &conn));
  Timer timer;
  // One logical round-trip to this shard per request (the conceptual
  // `... WHERE fid IN (<frontier ∩ shard>)` statement); the shard's own
  // Database additionally counts each prepared probe it executes.
  response->statements = 1;
  Status st;
  const std::shared_ptr<sql::PreparedStatement>& probe =
      request.forward ? conn->probe_fwd : conn->probe_bwd;
  const bool fault_armed = probe_fault_in_.load(std::memory_order_relaxed) >= 0;
  if (probe != nullptr) {
    // Indexed shard: bind-and-execute the prepared point probe per frontier
    // node — the same index range scan the native path built by hand, now
    // through the shard's SQL surface with zero re-planning.
    for (node_id_t n : request.nodes) {
      if (fault_armed && ProbeFaultFires()) {
        st = Status::Internal("injected probe fault");
        break;
      }
      sql::SqlResult r;
      st = probe->Execute({{"n", Value(n)}}, &r);
      if (!st.ok()) break;
      for (const Tuple& row : r.rows) {
        response->edges.push_back(
            {n, row.value(0).AsInt(), row.value(1).AsInt()});
      }
    }
  } else {
    // NoIndex shard: one batched scan answers the whole frontier set.
    db()->RecordStatement();
    if (fault_armed && ProbeFaultFires()) {
      st = Status::Internal("injected probe fault");
    } else {
      Table* table = request.forward ? store_->out_edges(shard_)
                                     : store_->in_edges(shard_);
      const size_t frontier_idx = request.forward ? 0 : 1;
      const size_t emit_idx = request.forward ? 1 : 0;
      std::unordered_set<node_id_t> wanted(request.nodes.begin(),
                                           request.nodes.end());
      Table::Iterator it = table->Scan();
      Tuple row;
      while (it.Next(&row, nullptr)) {
        node_id_t key = row.value(frontier_idx).AsInt();
        if (!wanted.count(key)) continue;
        response->edges.push_back(
            {key, row.value(emit_idx).AsInt(), row.value(2).AsInt()});
      }
      st = it.status();
    }
  }
  response->elapsed_us = timer.ElapsedMicros();
  ReturnConn(conn);
  if (!st.ok()) {
    // Error contract (see ShardService): never leak a partial response.
    // A retrying caller folding these edges/stats in *again* after the
    // retry succeeds would double-count them.
    *response = ShardExpandResponse{};
  }
  return st;
}

}  // namespace relgraph
