#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/admission_queue.h"
#include "src/dist/sharded_graph.h"
#include "src/sql/sql_engine.h"

namespace relgraph {

/// One expansion request from the coordinator to a shard: "expand these
/// frontier nodes in this direction and send back your local adjacency
/// rows". This is the whole coordinator->shard wire contract — the
/// networked transport (src/net) serializes exactly this struct and its
/// response.
struct ShardExpandRequest {
  bool forward = true;              // out-edges (fid) vs in-edges (tid)
  std::vector<node_id_t> nodes;     // frontier ∩ shard (owner-routed)
  /// Querying session's id, for per-session-fair admission at the shard.
  /// 0 = anonymous (all such requests share one admission lane). Last so
  /// existing {forward, nodes} aggregate initializers stay valid.
  int64_t session_id = 0;

  bool operator==(const ShardExpandRequest&) const = default;
};

/// One adjacency row shipped back: the frontier node it was expanded from,
/// the node the edge reaches, and the edge cost. The coordinator finishes
/// the E-operator (level + cost, rownum-1 dedup) on these.
struct ShippedEdge {
  node_id_t frontier_node = kInvalidNode;
  node_id_t emit_node = kInvalidNode;
  weight_t cost = 0;

  bool operator==(const ShippedEdge&) const = default;
};

/// The shard's answer: its matching adjacency rows plus the counters the
/// coordinator folds into DistQueryStats.
struct ShardExpandResponse {
  std::vector<ShippedEdge> edges;
  /// Logical coordinator->shard round-trips this request cost (always 1:
  /// the conceptual `SELECT ... WHERE fid IN (<frontier ∩ shard>)`). The
  /// shard's own Database additionally counts each prepared probe it runs.
  int64_t statements = 0;
  /// Shard-local service time (µs), measured after a connection is held —
  /// queueing for a connection is coordinator-side wait, not shard work.
  int64_t elapsed_us = 0;

  bool operator==(const ShardExpandResponse&) const = default;
};

/// Cumulative resilience signals one service (or a whole fleet, summed by
/// the coordinator) has observed. Every field is monotonic; deltas between
/// snapshots are what benches and CI gates compare.
struct ResilienceCounters {
  // Remote transport (per stub).
  int64_t retries = 0;        // extra attempts beyond the first
  int64_t failures = 0;       // requests failed after exhausting retries
  int64_t breaker_opens = 0;  // closed->open circuit transitions
  // Replica routing.
  int64_t failovers = 0;      // attempts re-routed to another replica
  int64_t hedges = 0;         // hedge requests launched for tail latency
  // Admission control.
  int64_t sheds = 0;          // requests rejected queue-full (fast-fail)
  // Health.
  int64_t probes = 0;           // background heartbeats sent
  int64_t replicas_healthy = 0;  // current health census (gauge-like)
  int64_t replicas_suspect = 0;
  int64_t replicas_dead = 0;

  ResilienceCounters& operator+=(const ResilienceCounters& o) {
    retries += o.retries;
    failures += o.failures;
    breaker_opens += o.breaker_opens;
    failovers += o.failovers;
    hedges += o.hedges;
    sheds += o.sheds;
    probes += o.probes;
    replicas_healthy += o.replicas_healthy;
    replicas_suspect += o.replicas_suspect;
    replicas_dead += o.replicas_dead;
    return *this;
  }
};

/// The shard-side service boundary of the distributed engine. Exactly one
/// method today because expansion is the only thing BSDJ asks of a shard;
/// the interface is the seam where the networked transport
/// (net::RemoteShardService, an RPC stub implementing Expand) lands
/// without touching the coordinator.
///
/// Implementations must be safe to call from many threads at once: the
/// thread-pool coordinator issues one Expand per owner shard per round, and
/// concurrent query sessions overlap their rounds freely.
///
/// Error contract: on a non-OK Status, `*response` is left EMPTY
/// (default-constructed). Callers retry Expand — the remote stub does so
/// transparently — and a partially filled response surviving a failed
/// attempt would double-count edges and statements on the retry.
class ShardService {
 public:
  virtual ~ShardService() = default;
  virtual Status Expand(const ShardExpandRequest& request,
                        ShardExpandResponse* response) = 0;

  /// Folds this service's resilience counters into `*out`. Default: none.
  virtual void AddResilience(ResilienceCounters* out) const {}
};

/// Knobs for the in-process shard service.
struct LocalShardOptions {
  /// Pooled connections (each its own SqlEngine + prepared probes).
  int connections = 1;
  /// How long one Expand() may wait for a pooled connection before giving
  /// up with Status::Unavailable — the same typed error the remote path
  /// degrades to, so pool exhaustion is reported, not a wedged session.
  int64_t checkout_timeout_ms = 30'000;
  /// Requests allowed to *queue* for a connection beyond the pool size.
  /// One more is shed immediately with Status::ResourceExhausted (see
  /// AdmissionQueue) instead of waiting out checkout_timeout_ms.
  int max_queue_depth = 256;
};

/// In-process ShardService over one shard of a ShardedGraphStore.
///
/// Each shard keeps a fixed pool of *connections* — a per-connection
/// SqlEngine with the two edge-probe statements prepared once at
/// construction — and every Expand() checks one out for the duration of
/// the request, gated by a bounded per-session-fair AdmissionQueue:
/// sessions round-robin for free connections (no session starves), waits
/// are capped at checkout_timeout_ms (-> Unavailable), and once
/// max_queue_depth requests are already queued further arrivals are shed
/// immediately with ResourceExhausted. Shard-side steady state is
/// therefore parse-free and concurrent sessions never share a statement
/// handle; what they do share is the shard's Database, whose read path is
/// audited for concurrent readers (see the thread-safety notes on
/// BufferPool, Table, and BTree — queries only read shard data, all writes
/// happen at load time).
class LocalShardService : public ShardService {
 public:
  static Status Create(ShardedGraphStore* store, int shard,
                       LocalShardOptions options,
                       std::unique_ptr<LocalShardService>* out);

  Status Expand(const ShardExpandRequest& request,
                ShardExpandResponse* response) override;

  void AddResilience(ResilienceCounters* out) const override {
    out->sheds += admission_.sheds();
  }

  Database* db() const { return store_->shard_db(shard_); }
  int connections() const { return static_cast<int>(conns_.size()); }
  /// The admission queue gating this shard's pool (counters for tests).
  const AdmissionQueue& admission() const { return admission_; }

  /// Fault injection for failure-path tests (the DiskManager idiom): after
  /// `countdown` further successful per-node probes, every subsequent one
  /// fails with Internal("injected probe fault"). Negative disables.
  void InjectProbeFaultAfter(int64_t countdown) {
    probe_fault_in_.store(countdown, std::memory_order_relaxed);
  }
  void ClearFaults() {
    probe_fault_in_.store(-1, std::memory_order_relaxed);
  }

  /// Testing hooks: checkout/return a pooled connection directly, under
  /// the same deadline policy as Expand() — lets tests hold the pool
  /// empty deterministically. `handle` is opaque.
  Status DebugCheckoutConn(void** handle);
  void DebugReturnConn(void* handle);

 private:
  LocalShardService(ShardedGraphStore* store, int shard,
                    const LocalShardOptions& options)
      : store_(store),
        shard_(shard),
        options_(options),
        admission_(options.connections, options.max_queue_depth) {}

  /// One pooled shard connection: engine + prepared probes (null when the
  /// shard's adjacency is not indexed; the NoIndex strategy answers the
  /// whole frontier set with one batched scan instead, which per-node SQL
  /// probes cannot express without IN-lists).
  struct Conn {
    std::unique_ptr<sql::SqlEngine> engine;
    std::shared_ptr<sql::PreparedStatement> probe_fwd;  // out-edges by fid
    std::shared_ptr<sql::PreparedStatement> probe_bwd;  // in-edges by tid
  };

  /// Admits `session` through the admission queue, then hands out a free
  /// connection. Unavailable past checkout_timeout_ms; ResourceExhausted
  /// when the queue itself is full (shed without waiting).
  Status CheckoutConn(int64_t session, Conn** out);
  void ReturnConn(Conn* c);

  /// True when the injected probe fault should fire for this probe.
  bool ProbeFaultFires();

  ShardedGraphStore* store_;
  int shard_;
  LocalShardOptions options_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<int64_t> probe_fault_in_{-1};

  /// Admission policy in front of the pool: permits == connections, so a
  /// granted permit guarantees a connection is on idle_.
  AdmissionQueue admission_;
  std::mutex mu_;
  std::vector<Conn*> idle_;
};

}  // namespace relgraph
