#include "src/dist/shard_snapshot.h"

#include <cstring>
#include <vector>

#include "src/net/wire.h"
#include "src/storage/disk_manager.h"

namespace relgraph {

namespace {

/// Manifest magic ("RGSS": relgraph shard snapshot) and format version,
/// independent of the page-file format version underneath.
constexpr uint32_t kSnapshotMagic = 0x52475353;
constexpr uint16_t kSnapshotVersion = 1;

void EncodeTableState(net::WireWriter* w, const TablePersistentState& st) {
  w->PutBytes(st.name);
  w->PutU32(static_cast<uint32_t>(st.schema.NumColumns()));
  for (const auto& col : st.schema.columns()) {
    w->PutBytes(col.name);
    w->PutU8(static_cast<uint8_t>(col.type));
  }
  w->PutU8(st.options.storage == TableStorage::kClustered ? 1 : 0);
  w->PutBytes(st.options.cluster_key);
  w->PutU8(st.options.cluster_unique ? 1 : 0);
  w->PutI64(st.num_rows);
  w->PutI64(st.next_tie);
  w->PutI32(st.heap_first);
  w->PutI32(st.heap_last);
  w->PutI32(st.clustered_root);
  w->PutI64(st.clustered_entries);
  w->PutU32(static_cast<uint32_t>(st.indexes.size()));
  for (const auto& idx : st.indexes) {
    w->PutBytes(idx.name);
    w->PutBytes(idx.column);
    w->PutU8(idx.unique ? 1 : 0);
    w->PutI32(idx.root);
    w->PutI64(idx.entries);
  }
}

Status DecodeTableState(net::WireReader* r, TablePersistentState* st) {
  RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&st->name));
  uint32_t ncols;
  RELGRAPH_RETURN_IF_ERROR(r->GetU32(&ncols));
  if (ncols > kPageSize) {
    return Status::Corruption("manifest column count implausible");
  }
  std::vector<Column> columns;
  for (uint32_t i = 0; i < ncols; i++) {
    Column col;
    uint8_t type;
    RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&col.name));
    RELGRAPH_RETURN_IF_ERROR(r->GetU8(&type));
    if (type > static_cast<uint8_t>(TypeId::kVarchar)) {
      return Status::Corruption("manifest column type " +
                                std::to_string(type) + " unknown");
    }
    col.type = static_cast<TypeId>(type);
    columns.push_back(std::move(col));
  }
  st->schema = Schema(std::move(columns));
  uint8_t storage, cluster_unique, unique;
  RELGRAPH_RETURN_IF_ERROR(r->GetU8(&storage));
  if (storage > 1) {
    return Status::Corruption("manifest storage kind unknown");
  }
  st->options.storage =
      storage == 1 ? TableStorage::kClustered : TableStorage::kHeap;
  RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&st->options.cluster_key));
  RELGRAPH_RETURN_IF_ERROR(r->GetU8(&cluster_unique));
  st->options.cluster_unique = cluster_unique != 0;
  RELGRAPH_RETURN_IF_ERROR(r->GetI64(&st->num_rows));
  RELGRAPH_RETURN_IF_ERROR(r->GetI64(&st->next_tie));
  RELGRAPH_RETURN_IF_ERROR(r->GetI32(&st->heap_first));
  RELGRAPH_RETURN_IF_ERROR(r->GetI32(&st->heap_last));
  RELGRAPH_RETURN_IF_ERROR(r->GetI32(&st->clustered_root));
  RELGRAPH_RETURN_IF_ERROR(r->GetI64(&st->clustered_entries));
  uint32_t nidx;
  RELGRAPH_RETURN_IF_ERROR(r->GetU32(&nidx));
  if (nidx > kPageSize) {
    return Status::Corruption("manifest index count implausible");
  }
  for (uint32_t i = 0; i < nidx; i++) {
    TablePersistentState::IndexState is;
    uint8_t u;
    RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&is.name));
    RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&is.column));
    RELGRAPH_RETURN_IF_ERROR(r->GetU8(&u));
    is.unique = u != 0;
    RELGRAPH_RETURN_IF_ERROR(r->GetI32(&is.root));
    RELGRAPH_RETURN_IF_ERROR(r->GetI64(&is.entries));
    st->indexes.push_back(std::move(is));
  }
  return Status::OK();
}

std::string EncodeManifest(const ShardSnapshotInfo& info,
                           const TablePersistentState& out_edges,
                           const TablePersistentState& in_edges) {
  net::WireWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU16(kSnapshotVersion);
  w.PutI32(info.shard);
  w.PutI32(info.num_shards);
  w.PutU8(static_cast<uint8_t>(info.strategy));
  w.PutI64(info.num_nodes);
  w.PutI64(info.num_edges);
  w.PutI64(info.min_weight);
  EncodeTableState(&w, out_edges);
  EncodeTableState(&w, in_edges);
  return w.Take();
}

Status DecodeManifest(const std::string& payload, ShardSnapshotInfo* info,
                      TablePersistentState* out_edges,
                      TablePersistentState* in_edges) {
  net::WireReader r(payload);
  uint32_t magic;
  uint16_t version;
  uint8_t strategy;
  RELGRAPH_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("snapshot manifest magic mismatch");
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetU16(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot manifest version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kSnapshotVersion) + ")");
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&info->shard));
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&info->num_shards));
  RELGRAPH_RETURN_IF_ERROR(r.GetU8(&strategy));
  if (strategy > static_cast<uint8_t>(IndexStrategy::kCluIndex)) {
    return Status::Corruption("snapshot manifest strategy unknown");
  }
  info->strategy = static_cast<IndexStrategy>(strategy);
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&info->num_nodes));
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&info->num_edges));
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&info->min_weight));
  if (info->num_shards < 1 || info->shard < 0 ||
      info->shard >= info->num_shards) {
    return Status::Corruption("snapshot manifest shard identity out of range");
  }
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, out_edges));
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, in_edges));
  return r.Finish();
}

/// Reads the manifest page (the snapshot's last page) through the CRC
/// check and parses it.
Status ReadManifest(DiskManager* disk, ShardSnapshotInfo* info,
                    TablePersistentState* out_edges,
                    TablePersistentState* in_edges) {
  const page_id_t manifest_page = disk->num_pages() - 1;
  if (manifest_page < 0) {
    return Status::Corruption("snapshot holds no pages");
  }
  char page[kPageSize];
  RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(manifest_page, page));
  uint32_t len;
  std::memcpy(&len, page, 4);
  if (len > kPageSize - 4) {
    return Status::Corruption("snapshot manifest length implausible");
  }
  std::string payload(page + 4, len);
  return DecodeManifest(payload, info, out_edges, in_edges);
}

}  // namespace

Status WriteShardSnapshot(const ShardedGraphStore& store, int shard,
                          const std::string& path) {
  if (shard < 0 || shard >= store.num_shards()) {
    return Status::InvalidArgument("shard out of range");
  }
  Database* db = store.shards_[shard].db.get();
  if (db == nullptr) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " is not populated in this store");
  }
  // Flush so the disk manager (not the pool) holds every current page.
  RELGRAPH_RETURN_IF_ERROR(db->buffer_pool()->FlushAll());

  ShardSnapshotInfo info;
  info.shard = shard;
  info.num_shards = store.num_shards();
  info.strategy = store.strategy();
  info.num_nodes = store.num_nodes();
  info.num_edges = store.num_edges();
  info.min_weight = store.min_weight();
  const std::string manifest =
      EncodeManifest(info, store.shards_[shard].out_edges->ExportState(),
                     store.shards_[shard].in_edges->ExportState());
  if (manifest.size() + 4 > kPageSize) {
    return Status::Internal("snapshot manifest exceeds one page (" +
                            std::to_string(manifest.size()) + " bytes)");
  }

  const std::string tmp = path + ".tmp";
  std::unique_ptr<DiskManager> snap;
  RELGRAPH_RETURN_IF_ERROR(DiskManager::Open(tmp, OpenMode::kCreate, &snap));
  DiskManager* src = db->disk();
  char page[kPageSize];
  for (page_id_t id = 0; id < src->num_pages(); id++) {
    RELGRAPH_RETURN_IF_ERROR(src->ReadPage(id, page));
    snap->AllocatePage();  // sequential: snapshot ids mirror source ids
    RELGRAPH_RETURN_IF_ERROR(snap->WritePage(id, page));
  }
  std::memset(page, 0, kPageSize);
  const uint32_t len = static_cast<uint32_t>(manifest.size());
  std::memcpy(page, &len, 4);
  std::memcpy(page + 4, manifest.data(), manifest.size());
  const page_id_t manifest_page = snap->AllocatePage();
  RELGRAPH_RETURN_IF_ERROR(snap->WritePage(manifest_page, page));
  RELGRAPH_RETURN_IF_ERROR(snap->Sync());
  snap.reset();
  return AtomicRename(tmp, path);
}

Status ReadShardSnapshotInfo(const std::string& path,
                             ShardSnapshotInfo* info) {
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));
  TablePersistentState out_edges, in_edges;
  return ReadManifest(disk.get(), info, &out_edges, &in_edges);
}

Status VerifySnapshotPages(const std::string& path, int64_t* pages_verified) {
  if (pages_verified != nullptr) *pages_verified = 0;
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));
  char page[kPageSize];
  for (page_id_t id = 0; id < disk->num_pages(); id++) {
    RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(id, page));
    if (pages_verified != nullptr) (*pages_verified)++;
  }
  return Status::OK();
}

Status LoadShardSnapshot(const std::string& path,
                         const DatabaseOptions& db_options,
                         bool verify_structure,
                         std::unique_ptr<ShardedGraphStore>* out,
                         ShardSnapshotInfo* info) {
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));

  ShardSnapshotInfo manifest_info;
  TablePersistentState out_state, in_state;
  RELGRAPH_RETURN_IF_ERROR(
      ReadManifest(disk.get(), &manifest_info, &out_state, &in_state));

  if (verify_structure) {
    // Full scrub first: every page must pass its checksum before any
    // structural walk trusts the bytes.
    char page[kPageSize];
    for (page_id_t id = 0; id < disk->num_pages(); id++) {
      RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(id, page));
    }
  }

  auto store = std::unique_ptr<ShardedGraphStore>(new ShardedGraphStore());
  store->options_.num_shards = manifest_info.num_shards;
  store->options_.strategy = manifest_info.strategy;
  store->options_.shard_db_options = db_options;
  store->num_nodes_ = manifest_info.num_nodes;
  store->num_edges_ = manifest_info.num_edges;
  store->min_weight_ = manifest_info.min_weight;
  store->shards_.resize(manifest_info.num_shards);

  ShardedGraphStore::Shard& shard = store->shards_[manifest_info.shard];
  DatabaseOptions shard_opts = db_options;
  shard_opts.in_memory = false;
  shard_opts.path = path;
  // Shard databases serve pooled connections of concurrent query sessions.
  shard_opts.concurrent_readers = true;
  shard.db = std::make_unique<Database>(shard_opts, std::move(disk));

  std::unique_ptr<Table> out_table, in_table;
  RELGRAPH_RETURN_IF_ERROR(
      Table::Attach(shard.db->buffer_pool(), out_state, &out_table));
  RELGRAPH_RETURN_IF_ERROR(
      Table::Attach(shard.db->buffer_pool(), in_state, &in_table));
  shard.out_edges = out_table.get();
  shard.in_edges = in_table.get();
  RELGRAPH_RETURN_IF_ERROR(
      shard.db->catalog()->AttachTable(std::move(out_table)));
  RELGRAPH_RETURN_IF_ERROR(
      shard.db->catalog()->AttachTable(std::move(in_table)));

  if (verify_structure) {
    RELGRAPH_RETURN_IF_ERROR(shard.out_edges->CheckConsistency());
    RELGRAPH_RETURN_IF_ERROR(shard.in_edges->CheckConsistency());
  }

  if (info != nullptr) *info = manifest_info;
  *out = std::move(store);
  return Status::OK();
}

}  // namespace relgraph
