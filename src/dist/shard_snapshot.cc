#include "src/dist/shard_snapshot.h"

#include <cstring>
#include <vector>

#include "src/dist/snapshot_manifest.h"
#include "src/net/wire.h"
#include "src/storage/disk_manager.h"

namespace relgraph {

namespace {

/// Manifest magic ("RGSS": relgraph shard snapshot) and format version,
/// independent of the page-file format version underneath.
constexpr uint32_t kSnapshotMagic = 0x52475353;
constexpr uint16_t kSnapshotVersion = 1;

std::string EncodeManifest(const ShardSnapshotInfo& info,
                           const TablePersistentState& out_edges,
                           const TablePersistentState& in_edges) {
  net::WireWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU16(kSnapshotVersion);
  w.PutI32(info.shard);
  w.PutI32(info.num_shards);
  w.PutU8(static_cast<uint8_t>(info.strategy));
  w.PutI64(info.num_nodes);
  w.PutI64(info.num_edges);
  w.PutI64(info.min_weight);
  EncodeTableState(&w, out_edges);
  EncodeTableState(&w, in_edges);
  return w.Take();
}

Status DecodeManifest(const std::string& payload, ShardSnapshotInfo* info,
                      TablePersistentState* out_edges,
                      TablePersistentState* in_edges) {
  net::WireReader r(payload);
  uint32_t magic;
  uint16_t version;
  uint8_t strategy;
  RELGRAPH_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("snapshot manifest magic mismatch");
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetU16(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot manifest version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kSnapshotVersion) + ")");
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&info->shard));
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&info->num_shards));
  RELGRAPH_RETURN_IF_ERROR(r.GetU8(&strategy));
  if (strategy > static_cast<uint8_t>(IndexStrategy::kCluIndex)) {
    return Status::Corruption("snapshot manifest strategy unknown");
  }
  info->strategy = static_cast<IndexStrategy>(strategy);
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&info->num_nodes));
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&info->num_edges));
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&info->min_weight));
  if (info->num_shards < 1 || info->shard < 0 ||
      info->shard >= info->num_shards) {
    return Status::Corruption("snapshot manifest shard identity out of range");
  }
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, out_edges));
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, in_edges));
  return r.Finish();
}

/// Reads the manifest page (the snapshot's last page) through the CRC
/// check and parses it.
Status ReadManifest(DiskManager* disk, ShardSnapshotInfo* info,
                    TablePersistentState* out_edges,
                    TablePersistentState* in_edges) {
  std::string payload;
  RELGRAPH_RETURN_IF_ERROR(ReadManifestPage(disk, &payload));
  return DecodeManifest(payload, info, out_edges, in_edges);
}

}  // namespace

Status WriteShardSnapshot(const ShardedGraphStore& store, int shard,
                          const std::string& path) {
  if (shard < 0 || shard >= store.num_shards()) {
    return Status::InvalidArgument("shard out of range");
  }
  Database* db = store.shards_[shard].db.get();
  if (db == nullptr) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " is not populated in this store");
  }
  ShardSnapshotInfo info;
  info.shard = shard;
  info.num_shards = store.num_shards();
  info.strategy = store.strategy();
  info.num_nodes = store.num_nodes();
  info.num_edges = store.num_edges();
  info.min_weight = store.min_weight();
  const std::string manifest =
      EncodeManifest(info, store.shards_[shard].out_edges->ExportState(),
                     store.shards_[shard].in_edges->ExportState());
  return WriteDatabaseSnapshot(db, manifest, path);
}

Status ReadShardSnapshotInfo(const std::string& path,
                             ShardSnapshotInfo* info) {
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));
  TablePersistentState out_edges, in_edges;
  return ReadManifest(disk.get(), info, &out_edges, &in_edges);
}

Status VerifySnapshotPages(const std::string& path, int64_t* pages_verified) {
  if (pages_verified != nullptr) *pages_verified = 0;
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));
  char page[kPageSize];
  for (page_id_t id = 0; id < disk->num_pages(); id++) {
    RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(id, page));
    if (pages_verified != nullptr) (*pages_verified)++;
  }
  return Status::OK();
}

Status LoadShardSnapshot(const std::string& path,
                         const DatabaseOptions& db_options,
                         bool verify_structure,
                         std::unique_ptr<ShardedGraphStore>* out,
                         ShardSnapshotInfo* info) {
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));

  ShardSnapshotInfo manifest_info;
  TablePersistentState out_state, in_state;
  RELGRAPH_RETURN_IF_ERROR(
      ReadManifest(disk.get(), &manifest_info, &out_state, &in_state));

  if (verify_structure) {
    // Full scrub first: every page must pass its checksum before any
    // structural walk trusts the bytes.
    char page[kPageSize];
    for (page_id_t id = 0; id < disk->num_pages(); id++) {
      RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(id, page));
    }
  }

  auto store = std::unique_ptr<ShardedGraphStore>(new ShardedGraphStore());
  store->options_.num_shards = manifest_info.num_shards;
  store->options_.strategy = manifest_info.strategy;
  store->options_.shard_db_options = db_options;
  store->num_nodes_ = manifest_info.num_nodes;
  store->num_edges_ = manifest_info.num_edges;
  store->min_weight_ = manifest_info.min_weight;
  store->shards_.resize(manifest_info.num_shards);

  ShardedGraphStore::Shard& shard = store->shards_[manifest_info.shard];
  DatabaseOptions shard_opts = db_options;
  shard_opts.in_memory = false;
  shard_opts.path = path;
  // Shard databases serve pooled connections of concurrent query sessions.
  shard_opts.concurrent_readers = true;
  shard.db = std::make_unique<Database>(shard_opts, std::move(disk));

  std::unique_ptr<Table> out_table, in_table;
  RELGRAPH_RETURN_IF_ERROR(
      Table::Attach(shard.db->buffer_pool(), out_state, &out_table));
  RELGRAPH_RETURN_IF_ERROR(
      Table::Attach(shard.db->buffer_pool(), in_state, &in_table));
  shard.out_edges = out_table.get();
  shard.in_edges = in_table.get();
  RELGRAPH_RETURN_IF_ERROR(
      shard.db->catalog()->AttachTable(std::move(out_table)));
  RELGRAPH_RETURN_IF_ERROR(
      shard.db->catalog()->AttachTable(std::move(in_table)));

  if (verify_structure) {
    RELGRAPH_RETURN_IF_ERROR(shard.out_edges->CheckConsistency());
    RELGRAPH_RETURN_IF_ERROR(shard.in_edges->CheckConsistency());
  }

  if (info != nullptr) *info = manifest_info;
  *out = std::move(store);
  return Status::OK();
}

}  // namespace relgraph
