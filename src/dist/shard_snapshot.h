#pragma once

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/dist/sharded_graph.h"

namespace relgraph {

/// Shard snapshots: one shard's entire database persisted as a single
/// checksummed page file (the DiskManager on-disk format), so a restarted
/// shard_server loads and verifies instead of re-ingesting the graph.
///
/// Layout: pages 0..N-1 are a 1:1 copy of the shard database's pages —
/// same ids, so every heap-chain, tree-root, and child pointer stays valid
/// — and page N (the last page) is the *manifest*: snapshot identity
/// (shard, partition count, strategy, graph stats) plus each table's
/// TablePersistentState, wire-encoded with its own magic and version. The
/// DiskManager CRC footer covers the manifest page like any other.
///
/// Install is atomic: the snapshot is written to `path + ".tmp"`, synced,
/// and renamed over `path` (AtomicRename), so `path` always holds either
/// the previous snapshot or a complete new one. Loading reopens the file
/// as the shard database directly — every subsequent page read, during
/// verification and during query serving, goes through the CRC check.

/// Identity and graph stats recorded in a snapshot manifest.
struct ShardSnapshotInfo {
  int32_t shard = -1;
  int32_t num_shards = -1;
  IndexStrategy strategy = IndexStrategy::kCluIndex;
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  weight_t min_weight = kInfinity;
};

/// Atomically persists shard `shard` of `store` to `path` (write-temp ->
/// fsync -> rename). The shard database is flushed first, so the snapshot
/// reflects every row ingested so far.
Status WriteShardSnapshot(const ShardedGraphStore& store, int shard,
                          const std::string& path);

/// Reads and validates just the manifest of the snapshot at `path` — an
/// identity check without attaching the tables.
Status ReadShardSnapshotInfo(const std::string& path, ShardSnapshotInfo* info);

/// Scrubs every page of the snapshot file through the CRC check. Returns
/// the first Corruption found; `pages_verified` (optional) receives the
/// number of pages that passed.
Status VerifySnapshotPages(const std::string& path,
                           int64_t* pages_verified = nullptr);

/// Opens the snapshot at `path` and attaches it as a ShardedGraphStore
/// serving only the snapshotted shard (the other shard slots stay empty —
/// a shard server never touches them). With `verify_structure`, every page
/// checksum plus every heap-chain / B+-tree invariant is validated before
/// the store is returned; a failure is a typed Corruption and `*out` stays
/// unset, which is how a shard server decides to refuse to serve.
/// `info` (optional) receives the manifest identity.
Status LoadShardSnapshot(const std::string& path,
                         const DatabaseOptions& db_options,
                         bool verify_structure,
                         std::unique_ptr<ShardedGraphStore>* out,
                         ShardSnapshotInfo* info = nullptr);

}  // namespace relgraph
