#include "src/dist/sharded_graph.h"

#include <algorithm>
#include <utility>

namespace relgraph {

namespace {

/// Creates one shard-local adjacency table under the chosen strategy and
/// bulk-loads `edges` (already the shard's partition) in cluster-key order.
Status BuildShardTable(Catalog* catalog, const std::string& name,
                       const std::string& key_col, IndexStrategy strategy,
                       std::vector<Edge> edges, bool sort_by_from,
                       Table** out) {
  TableOptions topts;
  if (strategy == IndexStrategy::kCluIndex) {
    topts.storage = TableStorage::kClustered;
    topts.cluster_key = key_col;
  }
  RELGRAPH_RETURN_IF_ERROR(
      catalog->CreateTable(name, EdgeTableSchema(), topts, out));
  if (strategy == IndexStrategy::kIndex) {
    RELGRAPH_RETURN_IF_ERROR(
        catalog->CreateSecondaryIndex(*out, key_col, /*unique=*/false));
  }
  if (strategy == IndexStrategy::kCluIndex) {
    std::sort(edges.begin(), edges.end(),
              [sort_by_from](const Edge& a, const Edge& b) {
                return sort_by_from ? a.from < b.from : a.to < b.to;
              });
  }
  for (const auto& e : edges) {
    RELGRAPH_RETURN_IF_ERROR((*out)->Insert(EdgeTableRow(e)));
  }
  return Status::OK();
}

}  // namespace

Status ShardedGraphStore::Create(const EdgeList& list,
                                 ShardedGraphOptions options,
                                 std::unique_ptr<ShardedGraphStore>* out) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  auto store = std::unique_ptr<ShardedGraphStore>(new ShardedGraphStore());
  store->options_ = options;
  store->num_nodes_ = list.num_nodes;
  store->num_edges_ = static_cast<int64_t>(list.edges.size());
  store->min_weight_ = list.MinWeight();

  // Partition once: forward rows by Owner(fid), backward rows by Owner(tid).
  std::vector<std::vector<Edge>> out_part(options.num_shards);
  std::vector<std::vector<Edge>> in_part(options.num_shards);
  for (const auto& e : list.edges) {
    out_part[store->OwnerShard(e.from)].push_back(e);
    in_part[store->OwnerShard(e.to)].push_back(e);
  }

  store->shards_.resize(options.num_shards);
  for (int i = 0; i < options.num_shards; i++) {
    Shard& shard = store->shards_[i];
    // Shard databases are shared by pooled connections of concurrent query
    // sessions; their buffer pools must serve concurrent readers no matter
    // what the caller's options say.
    DatabaseOptions shard_opts = options.shard_db_options;
    shard_opts.concurrent_readers = true;
    shard.db = std::make_unique<Database>(shard_opts);
    Catalog* catalog = shard.db->catalog();
    RELGRAPH_RETURN_IF_ERROR(
        BuildShardTable(catalog, "TEdges", "fid", options.strategy,
                        std::move(out_part[i]), /*sort_by_from=*/true,
                        &shard.out_edges));
    RELGRAPH_RETURN_IF_ERROR(
        BuildShardTable(catalog, "TEdgesIn", "tid", options.strategy,
                        std::move(in_part[i]), /*sort_by_from=*/false,
                        &shard.in_edges));
  }
  *out = std::move(store);
  return Status::OK();
}

}  // namespace relgraph
