#pragma once

#include <memory>
#include <vector>

#include "src/db/database.h"
#include "src/graph/graph_store.h"

namespace relgraph {

struct ShardedGraphOptions {
  /// Number of partitions; each shard is its own Database instance (the
  /// paper's §7 sketch: one RDBMS node per partition).
  int num_shards = 1;
  IndexStrategy strategy = IndexStrategy::kCluIndex;
  /// Options applied to every per-shard database.
  DatabaseOptions shard_db_options;
};

/// Hash-partitioned edge relations across independent per-shard databases.
/// Edge (f, t, c) lives on shard Owner(f) in that shard's TEdges (the
/// forward adjacency) and on shard Owner(t) in that shard's TEdgesIn (the
/// backward adjacency) — so every expansion, in either direction, is a
/// purely shard-local query on the frontier nodes that hash there.
class ShardedGraphStore {
 public:
  static Status Create(const EdgeList& list, ShardedGraphOptions options,
                       std::unique_ptr<ShardedGraphStore>* out);

  int num_shards() const { return options_.num_shards; }
  IndexStrategy strategy() const { return options_.strategy; }
  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }
  weight_t min_weight() const { return min_weight_; }

  /// Partition function: which shard owns node `n`'s adjacency.
  int OwnerShard(node_id_t n) const {
    return static_cast<int>(n % options_.num_shards);
  }

  /// Shard-local adjacency tables (forward rows where Owner(fid) == shard,
  /// backward rows where Owner(tid) == shard).
  Table* out_edges(int shard) const { return shards_[shard].out_edges; }
  Table* in_edges(int shard) const { return shards_[shard].in_edges; }
  Database* shard_db(int shard) const { return shards_[shard].db.get(); }

 private:
  ShardedGraphStore() = default;

  // The snapshot layer (src/dist/shard_snapshot.cc) persists one shard's
  // database and reconstructs a store around the reopened file.
  friend Status WriteShardSnapshot(const ShardedGraphStore& store, int shard,
                                   const std::string& path);
  friend Status LoadShardSnapshot(const std::string& path,
                                  const DatabaseOptions& db_options,
                                  bool verify_structure,
                                  std::unique_ptr<ShardedGraphStore>* out,
                                  struct ShardSnapshotInfo* info);

  struct Shard {
    std::unique_ptr<Database> db;
    Table* out_edges = nullptr;
    Table* in_edges = nullptr;
  };

  ShardedGraphOptions options_;
  std::vector<Shard> shards_;
  int64_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  weight_t min_weight_ = kInfinity;
};

}  // namespace relgraph
