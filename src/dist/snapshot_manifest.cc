#include "src/dist/snapshot_manifest.h"

#include <cstring>

#include "src/db/database.h"

namespace relgraph {

void EncodeTableState(net::WireWriter* w, const TablePersistentState& st) {
  w->PutBytes(st.name);
  w->PutU32(static_cast<uint32_t>(st.schema.NumColumns()));
  for (const auto& col : st.schema.columns()) {
    w->PutBytes(col.name);
    w->PutU8(static_cast<uint8_t>(col.type));
  }
  w->PutU8(st.options.storage == TableStorage::kClustered ? 1 : 0);
  w->PutBytes(st.options.cluster_key);
  w->PutU8(st.options.cluster_unique ? 1 : 0);
  w->PutI64(st.num_rows);
  w->PutI64(st.next_tie);
  w->PutI32(st.heap_first);
  w->PutI32(st.heap_last);
  w->PutI32(st.clustered_root);
  w->PutI64(st.clustered_entries);
  w->PutU32(static_cast<uint32_t>(st.indexes.size()));
  for (const auto& idx : st.indexes) {
    w->PutBytes(idx.name);
    w->PutBytes(idx.column);
    w->PutU8(idx.unique ? 1 : 0);
    w->PutI32(idx.root);
    w->PutI64(idx.entries);
  }
}

Status DecodeTableState(net::WireReader* r, TablePersistentState* st) {
  RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&st->name));
  uint32_t ncols;
  RELGRAPH_RETURN_IF_ERROR(r->GetU32(&ncols));
  if (ncols > kPageSize) {
    return Status::Corruption("manifest column count implausible");
  }
  std::vector<Column> columns;
  for (uint32_t i = 0; i < ncols; i++) {
    Column col;
    uint8_t type;
    RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&col.name));
    RELGRAPH_RETURN_IF_ERROR(r->GetU8(&type));
    if (type > static_cast<uint8_t>(TypeId::kVarchar)) {
      return Status::Corruption("manifest column type " +
                                std::to_string(type) + " unknown");
    }
    col.type = static_cast<TypeId>(type);
    columns.push_back(std::move(col));
  }
  st->schema = Schema(std::move(columns));
  uint8_t storage, cluster_unique, unique;
  RELGRAPH_RETURN_IF_ERROR(r->GetU8(&storage));
  if (storage > 1) {
    return Status::Corruption("manifest storage kind unknown");
  }
  st->options.storage =
      storage == 1 ? TableStorage::kClustered : TableStorage::kHeap;
  RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&st->options.cluster_key));
  RELGRAPH_RETURN_IF_ERROR(r->GetU8(&cluster_unique));
  st->options.cluster_unique = cluster_unique != 0;
  RELGRAPH_RETURN_IF_ERROR(r->GetI64(&st->num_rows));
  RELGRAPH_RETURN_IF_ERROR(r->GetI64(&st->next_tie));
  RELGRAPH_RETURN_IF_ERROR(r->GetI32(&st->heap_first));
  RELGRAPH_RETURN_IF_ERROR(r->GetI32(&st->heap_last));
  RELGRAPH_RETURN_IF_ERROR(r->GetI32(&st->clustered_root));
  RELGRAPH_RETURN_IF_ERROR(r->GetI64(&st->clustered_entries));
  uint32_t nidx;
  RELGRAPH_RETURN_IF_ERROR(r->GetU32(&nidx));
  if (nidx > kPageSize) {
    return Status::Corruption("manifest index count implausible");
  }
  for (uint32_t i = 0; i < nidx; i++) {
    TablePersistentState::IndexState is;
    uint8_t u;
    RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&is.name));
    RELGRAPH_RETURN_IF_ERROR(r->GetBytes(&is.column));
    RELGRAPH_RETURN_IF_ERROR(r->GetU8(&u));
    is.unique = u != 0;
    RELGRAPH_RETURN_IF_ERROR(r->GetI32(&is.root));
    RELGRAPH_RETURN_IF_ERROR(r->GetI64(&is.entries));
    st->indexes.push_back(std::move(is));
  }
  return Status::OK();
}

Status ReadManifestPage(DiskManager* disk, std::string* payload) {
  const page_id_t manifest_page = disk->num_pages() - 1;
  if (manifest_page < 0) {
    return Status::Corruption("snapshot holds no pages");
  }
  char page[kPageSize];
  RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(manifest_page, page));
  uint32_t len;
  std::memcpy(&len, page, 4);
  if (len > kPageSize - 4) {
    return Status::Corruption("snapshot manifest length implausible");
  }
  payload->assign(page + 4, len);
  return Status::OK();
}

Status WriteDatabaseSnapshot(Database* db, const std::string& manifest,
                             const std::string& path) {
  if (manifest.size() + 4 > kPageSize) {
    return Status::Internal("snapshot manifest exceeds one page (" +
                            std::to_string(manifest.size()) + " bytes)");
  }
  // Flush so the disk manager (not the pool) holds every current page.
  RELGRAPH_RETURN_IF_ERROR(db->buffer_pool()->FlushAll());

  const std::string tmp = path + ".tmp";
  std::unique_ptr<DiskManager> snap;
  RELGRAPH_RETURN_IF_ERROR(DiskManager::Open(tmp, OpenMode::kCreate, &snap));
  DiskManager* src = db->disk();
  char page[kPageSize];
  for (page_id_t id = 0; id < src->num_pages(); id++) {
    RELGRAPH_RETURN_IF_ERROR(src->ReadPage(id, page));
    snap->AllocatePage();  // sequential: snapshot ids mirror source ids
    RELGRAPH_RETURN_IF_ERROR(snap->WritePage(id, page));
  }
  std::memset(page, 0, kPageSize);
  const uint32_t len = static_cast<uint32_t>(manifest.size());
  std::memcpy(page, &len, 4);
  std::memcpy(page + 4, manifest.data(), manifest.size());
  const page_id_t manifest_page = snap->AllocatePage();
  RELGRAPH_RETURN_IF_ERROR(snap->WritePage(manifest_page, page));
  RELGRAPH_RETURN_IF_ERROR(snap->Sync());
  snap.reset();
  return AtomicRename(tmp, path);
}

}  // namespace relgraph
