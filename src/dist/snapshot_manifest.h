#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/table.h"
#include "src/common/status.h"
#include "src/net/wire.h"
#include "src/storage/disk_manager.h"

namespace relgraph {

class Database;

/// Shared machinery of the durable snapshot formats (shard snapshots,
/// label-index snapshots): wire-encoding of TablePersistentState, the
/// one-page manifest framing, and the copy-pages + write-manifest +
/// atomic-rename install sequence. Each snapshot kind keeps its own magic,
/// version, and identity block; what they share is "a page-exact copy of a
/// Database with a trailing manifest page, installed atomically and
/// CRC-verified on every read".

/// Appends one table's persisted identity to `w`.
void EncodeTableState(net::WireWriter* w, const TablePersistentState& st);

/// Decodes one table state; every count is bounds-checked so a forged or
/// damaged manifest yields Corruption, never a huge allocation.
Status DecodeTableState(net::WireReader* r, TablePersistentState* st);

/// Reads the manifest page (the snapshot's last page) through the CRC
/// check and returns its payload (the bytes the writer framed).
Status ReadManifestPage(DiskManager* disk, std::string* payload);

/// Copies every page of `db` into `path + ".tmp"`, appends `manifest` as
/// the final page, syncs, and atomically renames over `path` — crash
/// mid-install keeps the previous snapshot. Flushes the buffer pool first
/// so the disk manager holds every current page. Fails with Internal when
/// the manifest exceeds one page.
Status WriteDatabaseSnapshot(Database* db, const std::string& manifest,
                             const std::string& path);

}  // namespace relgraph
