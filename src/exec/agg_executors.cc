#include "src/exec/agg_executors.h"

#include <map>

namespace relgraph {

namespace {

struct AggState {
  Value acc;         // MIN/MAX/SUM accumulator (NULL until first input)
  int64_t count = 0;
};

/// Folds one already-evaluated input value into the accumulator. The
/// argument expressions are evaluated per batch (EvalBatch) by the callers,
/// so this is the whole per-row cost of aggregation.
void AccumulateValue(AggOp op, const Value& v, AggState* state) {
  if (op == AggOp::kCount) {
    if (!v.IsNull()) state->count++;
    return;
  }
  if (v.IsNull()) return;  // SQL aggregates skip NULLs
  if (state->acc.IsNull()) {
    state->acc = v;
    return;
  }
  switch (op) {
    case AggOp::kMin:
      if (v.Compare(state->acc) < 0) state->acc = v;
      break;
    case AggOp::kMax:
      if (v.Compare(state->acc) > 0) state->acc = v;
      break;
    case AggOp::kSum:
      state->acc = state->acc.Add(v);
      break;
    case AggOp::kCount:
      break;
  }
}

Value Finalize(const AggSpec& spec, const AggState& state) {
  if (spec.op == AggOp::kCount) return Value(state.count);
  return state.acc;
}

}  // namespace

HashAggregateExecutor::HashAggregateExecutor(
    ExecRef child, std::vector<std::string> group_cols,
    std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)) {
  std::vector<Column> cols;
  const Schema& in = child_->OutputSchema();
  for (const auto& g : group_cols_) {
    cols.push_back({g, in.column(in.IndexOf(g)).type});
  }
  for (const auto& a : aggs_) {
    // COUNT yields INT; MIN/MAX/SUM keep the input's numeric type (INT for
    // every aggregate the path-finding statements use).
    cols.push_back({a.name, TypeId::kInt});
  }
  output_schema_ = Schema(std::move(cols));
}

Status HashAggregateExecutor::Init() {
  results_.clear();
  pos_ = 0;
  RELGRAPH_RETURN_IF_ERROR(child_->Init());

  const Schema& in = child_->OutputSchema();
  std::vector<size_t> group_idx;
  group_idx.reserve(group_cols_.size());
  for (const auto& g : group_cols_) group_idx.push_back(in.IndexOf(g));

  // std::map keyed on the group values gives deterministic output order,
  // which keeps tests and benchmark traces reproducible.
  std::map<std::vector<Value>, std::vector<AggState>,
           decltype([](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
             for (size_t i = 0; i < a.size(); i++) {
               int c = a[i].Compare(b[i]);
               if (c != 0) return c < 0;
             }
             return false;
           })>
      groups;

  // Batched build: the child drains through the borrowed-batch interface
  // (the build never owns the input rows), and each aggregate's argument
  // expression is evaluated as one column per batch; the per-row work is
  // just the group probe and accumulator fold.
  const Tuple* batch = nullptr;
  size_t cnt = 0;
  std::vector<ValueColumn> agg_cols(aggs_.size());
  while (child_->NextBatchView(&batch, &cnt)) {
    RowBatch rb(batch, cnt, in);
    for (size_t k = 0; k < aggs_.size(); k++) {
      if (aggs_[k].expr != nullptr) aggs_[k].expr->EvalBatch(rb, &agg_cols[k]);
    }
    for (size_t r = 0; r < cnt; r++) {
      std::vector<Value> key;
      key.reserve(group_idx.size());
      for (size_t gi : group_idx) key.push_back(batch[r].value(gi));
      auto [it, inserted] = groups.try_emplace(
          std::move(key), std::vector<AggState>(aggs_.size()));
      for (size_t k = 0; k < aggs_.size(); k++) {
        if (aggs_[k].expr == nullptr) {
          it->second[k].count++;  // COUNT(*)
        } else {
          AccumulateValue(aggs_[k].op, agg_cols[k].Get(r), &it->second[k]);
        }
      }
    }
  }
  RELGRAPH_RETURN_IF_ERROR(child_->status());

  if (groups.empty() && group_cols_.empty()) {
    // Scalar aggregate over empty input: one all-default row.
    std::vector<AggState> empty(aggs_.size());
    std::vector<Value> row;
    for (size_t i = 0; i < aggs_.size(); i++) {
      row.push_back(Finalize(aggs_[i], empty[i]));
    }
    results_.push_back(Tuple(std::move(row)));
    return Status::OK();
  }

  for (auto& [key, states] : groups) {
    std::vector<Value> row = key;
    for (size_t i = 0; i < aggs_.size(); i++) {
      row.push_back(Finalize(aggs_[i], states[i]));
    }
    results_.push_back(Tuple(std::move(row)));
  }
  return Status::OK();
}

bool HashAggregateExecutor::Next(Tuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

bool HashAggregateExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(results_, &pos_, out);
}

const Schema& HashAggregateExecutor::OutputSchema() const {
  return output_schema_;
}

Status EvalScalarAggregate(Executor* child, AggOp op, ExprRef expr,
                           Value* out) {
  RELGRAPH_RETURN_IF_ERROR(child->Init());
  AggSpec spec{op, std::move(expr), "agg"};
  AggState state;
  const Tuple* batch = nullptr;
  size_t cnt = 0;
  ValueColumn col;
  while (child->NextBatchView(&batch, &cnt)) {
    if (spec.expr == nullptr) {  // COUNT(*): no expression to evaluate
      state.count += static_cast<int64_t>(cnt);
      continue;
    }
    RowBatch rb(batch, cnt, child->OutputSchema());
    spec.expr->EvalBatch(rb, &col);
    for (size_t i = 0; i < col.size(); i++) {
      AccumulateValue(op, col.Get(i), &state);
    }
  }
  RELGRAPH_RETURN_IF_ERROR(child->status());
  *out = Finalize(spec, state);
  return Status::OK();
}

}  // namespace relgraph
