#include "src/exec/agg_executors.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace relgraph {

namespace {

/// Folds one already-evaluated input value into the accumulator. The
/// argument expressions are evaluated per batch (EvalBatch) by the callers,
/// so this is the whole per-row cost of aggregation.
void AccumulateValue(AggOp op, const Value& v, AggState* state) {
  if (op == AggOp::kCount) {
    if (!v.IsNull()) state->count++;
    return;
  }
  if (v.IsNull()) return;  // SQL aggregates skip NULLs
  if (state->acc.IsNull()) {
    state->acc = v;
    return;
  }
  switch (op) {
    case AggOp::kMin:
      if (v.Compare(state->acc) < 0) state->acc = v;
      break;
    case AggOp::kMax:
      if (v.Compare(state->acc) > 0) state->acc = v;
      break;
    case AggOp::kSum:
      state->acc = state->acc.Add(v);
      break;
    case AggOp::kCount:
      break;
  }
}

/// Lane-indexed fold that never constructs a Value on the unboxed int
/// path — the per-row cost of the whole grouped build once the probe is
/// out of the way.
void AccumulateLane(AggOp op, const ValueColumn& col, size_t i,
                    AggState* state) {
  if (col.is_int()) {
    if (col.IsNull(i)) return;  // COUNT skips NULLs too
    if (op == AggOp::kCount) {
      state->count++;
      return;
    }
    const int64_t v = col.IntAt(i);
    if (state->acc.type() == TypeId::kInt) {
      switch (op) {
        case AggOp::kMin:
          if (v < state->acc.AsInt()) state->acc.SetInt(v);
          break;
        case AggOp::kMax:
          if (v > state->acc.AsInt()) state->acc.SetInt(v);
          break;
        case AggOp::kSum:
          state->acc.SetInt(state->acc.AsInt() + v);
          break;
        case AggOp::kCount:
          break;
      }
      return;
    }
    AccumulateValue(op, Value(v), state);
    return;
  }
  AccumulateValue(op, col.Get(i), state);
}

Value Finalize(const AggSpec& spec, const AggState& state) {
  if (spec.op == AggOp::kCount) return Value(state.count);
  return state.acc;
}

constexpr uint32_t kEmptyBucket = UINT32_MAX;
constexpr uint64_t kHashSeed = 0xcbf29ce484222325ULL;

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return (h ^ v) * 1099511628211ULL;
}

/// Group-key hash, consistent with Value::Compare (the table's equality):
/// Compare treats cross-numeric-type values as equal (INT 1 == DOUBLE 1.0)
/// and NULLs as equal, so numerics hash through their double value and
/// NULL hashes to a constant. Value::Hash() itself is representation-
/// dependent and would split such groups.
uint64_t GroupValueHash(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case TypeId::kInt:
      return std::hash<double>()(static_cast<double>(v.AsInt()));
    case TypeId::kDouble:
      return std::hash<double>()(v.AsDouble());
    case TypeId::kVarchar:
      return std::hash<std::string>()(v.AsString());
  }
  return 0;
}

/// Does lane i of the gathered key columns equal the stored key at `key`
/// (`num_keys` contiguous values) under Value::Compare semantics? Mirrors
/// the old std::map comparator: NULLs compare equal, numerics compare
/// numerically across types.
bool LaneEqualsKey(const std::vector<ValueColumn>& cols, size_t i,
                   const Value* key, size_t num_keys) {
  for (size_t j = 0; j < num_keys; j++) {
    const ValueColumn& c = cols[j];
    const Value& k = key[j];
    if (c.is_int()) {
      if (c.IsNull(i)) {
        if (!k.IsNull()) return false;
        continue;
      }
      const int64_t v = c.IntAt(i);
      if (k.type() == TypeId::kInt) {
        if (k.AsInt() != v) return false;
      } else if (k.type() == TypeId::kDouble) {
        if (k.AsDouble() != static_cast<double>(v)) return false;
      } else {
        return false;
      }
      continue;
    }
    const Value lane = c.Get(i);
    if (lane.IsNull() || k.IsNull()) {
      if (lane.IsNull() != k.IsNull()) return false;
      continue;
    }
    if ((lane.type() == TypeId::kVarchar) != (k.type() == TypeId::kVarchar)) {
      return false;  // Compare would assert; typed schemas never mix these
    }
    if (lane.Compare(k) != 0) return false;
  }
  return true;
}

}  // namespace

HashAggregateExecutor::HashAggregateExecutor(
    ExecRef child, std::vector<std::string> group_cols,
    std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)) {
  std::vector<Column> cols;
  const Schema& in = child_->OutputSchema();
  for (const auto& g : group_cols_) {
    cols.push_back({g, in.column(in.IndexOf(g)).type});
  }
  for (const auto& a : aggs_) {
    // COUNT yields INT; MIN/MAX/SUM keep the input's numeric type (INT for
    // every aggregate the path-finding statements use).
    cols.push_back({a.name, TypeId::kInt});
  }
  output_schema_ = Schema(std::move(cols));
}

void HashAggregateExecutor::Rehash(size_t new_cap) {
  buckets_.assign(new_cap, kEmptyBucket);
  const size_t mask = new_cap - 1;
  for (uint32_t g = 0; g < group_hashes_.size(); g++) {
    size_t b = group_hashes_[g] & mask;
    while (buckets_[b] != kEmptyBucket) b = (b + 1) & mask;
    buckets_[b] = g;
  }
}

Status HashAggregateExecutor::Init() {
  results_.clear();
  pos_ = 0;
  RELGRAPH_RETURN_IF_ERROR(child_->Init());

  const Schema& in = child_->OutputSchema();
  std::vector<size_t> group_idx;
  group_idx.reserve(group_cols_.size());
  for (const auto& g : group_cols_) group_idx.push_back(in.IndexOf(g));

  group_key_values_.clear();
  group_hashes_.clear();
  states_.clear();
  Rehash(64);  // tiny statements stay tiny; the load-factor check grows it
  size_t mask = buckets_.size() - 1;

  const size_t num_aggs = aggs_.size();
  const size_t num_keys = group_idx.size();
  key_cols_.resize(num_keys);
  agg_cols_.resize(num_aggs);

  BatchSpan span;
  while (child_->NextBatchSel(&span)) {
    const size_t n = span.count();
    RowBatch rb(span.rows, span.num_rows, in, span.sel, span.num_sel);
    // Gather the group columns once per batch — hoists the per-row value()
    // indexing and int/boxed classification out of the probe loop — and
    // evaluate each aggregate argument as one column.
    for (size_t j = 0; j < num_keys; j++) {
      ValueColumn& col = key_cols_[j];
      col.Reset(n);
      const size_t idx = group_idx[j];
      for (size_t i = 0; i < n; i++) col.AppendRef(rb.row(i).value(idx));
    }
    for (size_t k = 0; k < num_aggs; k++) {
      if (aggs_[k].expr != nullptr) aggs_[k].expr->EvalBatch(rb, &agg_cols_[k]);
    }
    // Batch-hash the key lanes (unboxed int columns never box a Value).
    row_hashes_.assign(n, kHashSeed);
    for (size_t j = 0; j < num_keys; j++) {
      const ValueColumn& col = key_cols_[j];
      if (col.is_int()) {
        for (size_t i = 0; i < n; i++) {
          const uint64_t hv =
              col.IsNull(i)
                  ? 0x9E3779B97F4A7C15ULL
                  : std::hash<double>()(static_cast<double>(col.IntAt(i)));
          row_hashes_[i] = HashCombine(row_hashes_[i], hv);
        }
      } else {
        for (size_t i = 0; i < n; i++) {
          row_hashes_[i] = HashCombine(row_hashes_[i], GroupValueHash(col.Get(i)));
        }
      }
    }
    // Probe/insert each lane, then fold its aggregate inputs.
    for (size_t i = 0; i < n; i++) {
      const uint64_t h = row_hashes_[i];
      size_t b = h & mask;
      uint32_t g;
      for (;;) {
        g = buckets_[b];
        if (g == kEmptyBucket) {
          g = static_cast<uint32_t>(group_hashes_.size());
          for (size_t j = 0; j < num_keys; j++) {
            group_key_values_.push_back(key_cols_[j].Get(i));
          }
          group_hashes_.push_back(h);
          states_.resize(states_.size() + num_aggs);
          buckets_[b] = g;
          if (group_hashes_.size() * 4 >= buckets_.size() * 3) {
            Rehash(buckets_.size() * 2);
            mask = buckets_.size() - 1;
          }
          break;
        }
        if (group_hashes_[g] == h &&
            LaneEqualsKey(key_cols_, i,
                          group_key_values_.data() +
                              static_cast<size_t>(g) * num_keys,
                          num_keys)) {
          break;
        }
        b = (b + 1) & mask;
      }
      AggState* gs = &states_[static_cast<size_t>(g) * num_aggs];
      for (size_t k = 0; k < num_aggs; k++) {
        if (aggs_[k].expr == nullptr) {
          gs[k].count++;  // COUNT(*)
        } else {
          AccumulateLane(aggs_[k].op, agg_cols_[k], i, &gs[k]);
        }
      }
    }
  }
  RELGRAPH_RETURN_IF_ERROR(child_->status());

  if (group_hashes_.empty() && group_cols_.empty()) {
    // Scalar aggregate over empty input: one all-default row.
    std::vector<AggState> empty(num_aggs);
    std::vector<Value> row;
    for (size_t i = 0; i < num_aggs; i++) {
      row.push_back(Finalize(aggs_[i], empty[i]));
    }
    results_.push_back(Tuple(std::move(row)));
    return Status::OK();
  }

  // Deterministic output: sort the (unique) group keys under the same
  // lexicographic Value::Compare order the std::map build used. Keys live
  // in one flat array, so the comparator touches contiguous memory.
  const Value* kv = group_key_values_.data();
  std::vector<uint32_t> order(group_hashes_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Value* ka = kv + static_cast<size_t>(a) * num_keys;
    const Value* kb = kv + static_cast<size_t>(b) * num_keys;
    for (size_t i = 0; i < num_keys; i++) {
      int c = ka[i].Compare(kb[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });

  results_.reserve(order.size());
  std::vector<Value> row;
  for (uint32_t g : order) {
    row.clear();
    row.reserve(num_keys + num_aggs);
    const Value* key = kv + static_cast<size_t>(g) * num_keys;
    for (size_t i = 0; i < num_keys; i++) row.push_back(key[i]);
    for (size_t i = 0; i < num_aggs; i++) {
      row.push_back(Finalize(aggs_[i], states_[static_cast<size_t>(g) * num_aggs + i]));
    }
    results_.push_back(Tuple(std::move(row)));
  }
  return Status::OK();
}

bool HashAggregateExecutor::Next(Tuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

bool HashAggregateExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(results_, &pos_, out);
}

bool HashAggregateExecutor::NextBatchView(const Tuple** rows, size_t* n) {
  const size_t cap = ExecBatchSize();
  const size_t left = results_.size() - pos_;
  *n = left < cap ? left : cap;
  *rows = results_.data() + pos_;
  pos_ += *n;
  return *n > 0;
}

const Schema& HashAggregateExecutor::OutputSchema() const {
  return output_schema_;
}

Status EvalScalarAggregate(Executor* child, AggOp op, ExprRef expr,
                           Value* out) {
  RELGRAPH_RETURN_IF_ERROR(child->Init());
  AggSpec spec{op, std::move(expr), "agg"};
  AggState state;
  ValueColumn col;
  BatchSpan span;
  while (child->NextBatchSel(&span)) {
    const size_t n = span.count();
    if (spec.expr == nullptr) {  // COUNT(*): no expression to evaluate
      state.count += static_cast<int64_t>(n);
      continue;
    }
    RowBatch rb(span.rows, span.num_rows, child->OutputSchema(), span.sel,
                span.num_sel);
    spec.expr->EvalBatch(rb, &col);
    if (col.is_int() && !col.has_nulls() && n > 0 && op != AggOp::kCount) {
      // Null-free int column: fold in a tight loop, then merge once. The
      // fold order matches the per-row path (min/max/sum over int64 are
      // associative), so the result is bit-identical.
      const std::vector<int64_t>& v = col.ints();
      int64_t folded = v[0];
      switch (op) {
        case AggOp::kMin:
          for (size_t i = 1; i < n; i++) folded = v[i] < folded ? v[i] : folded;
          break;
        case AggOp::kMax:
          for (size_t i = 1; i < n; i++) folded = v[i] > folded ? v[i] : folded;
          break;
        case AggOp::kSum:
          for (size_t i = 1; i < n; i++) folded += v[i];
          break;
        case AggOp::kCount:
          break;
      }
      AccumulateValue(op, Value(folded), &state);
      continue;
    }
    for (size_t i = 0; i < col.size(); i++) {
      AccumulateLane(op, col, i, &state);
    }
  }
  RELGRAPH_RETURN_IF_ERROR(child->status());
  *out = Finalize(spec, state);
  return Status::OK();
}

}  // namespace relgraph
