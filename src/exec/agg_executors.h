#pragma once

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/expression.h"

namespace relgraph {

enum class AggOp { kMin, kMax, kSum, kCount };

struct AggSpec {
  AggOp op;
  ExprRef expr;       // ignored for COUNT(*) (may be null)
  std::string name;   // output column name
};

/// Hash aggregation: GROUP BY `group_cols` with the given aggregates.
/// Output schema = group columns followed by one column per aggregate.
/// With no group columns this is a scalar aggregate and emits exactly one
/// row even over empty input (MIN/MAX/SUM of nothing = NULL, COUNT = 0) —
/// the paper's termination probes (`select min(d2s) from TVisited where
/// f=0`) rely on that SQL behaviour.
class HashAggregateExecutor : public Executor {
 public:
  HashAggregateExecutor(ExecRef child, std::vector<std::string> group_cols,
                        std::vector<AggSpec> aggs);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("HashAggregate:");
    for (const auto& g : group_cols_) out->append(" " + g);
    for (const auto& a : aggs_) out->append(" " + a.name);
    out->append("\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema output_schema_;
  std::vector<Tuple> results_;
  size_t pos_ = 0;
};

/// Convenience for the auxiliary statements: runs a scalar aggregate plan
/// and returns its single value.
Status EvalScalarAggregate(Executor* child, AggOp op, ExprRef expr,
                           Value* out);

}  // namespace relgraph
