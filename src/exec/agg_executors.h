#pragma once

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/expression.h"

namespace relgraph {

enum class AggOp { kMin, kMax, kSum, kCount };

struct AggSpec {
  AggOp op;
  ExprRef expr;       // ignored for COUNT(*) (may be null)
  std::string name;   // output column name
};

/// One aggregate's accumulator (MIN/MAX/SUM value + COUNT tally).
struct AggState {
  Value acc;  // NULL until the first non-NULL input
  int64_t count = 0;
};

/// Hash aggregation: GROUP BY `group_cols` with the given aggregates.
/// Output schema = group columns followed by one column per aggregate.
/// With no group columns this is a scalar aggregate and emits exactly one
/// row even over empty input (MIN/MAX/SUM of nothing = NULL, COUNT = 0) —
/// the paper's termination probes (`select min(d2s) from TVisited where
/// f=0`) rely on that SQL behaviour.
///
/// The build is vectorized: the child drains through NextBatchSel (so a
/// filter underneath forwards selection vectors instead of compacting),
/// group columns are gathered and hashed a batch at a time, and each lane
/// probes an open-addressing table of group indices. Output order is made
/// deterministic by a final sort of the group keys under Value::Compare —
/// the exact order the previous std::map build produced, so results stay
/// bit-identical to the scalar oracle.
class HashAggregateExecutor : public Executor {
 public:
  HashAggregateExecutor(ExecRef child, std::vector<std::string> group_cols,
                        std::vector<AggSpec> aggs);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  /// Serves windows of the materialized result directly (Materialized-style
  /// zero-copy replay).
  bool NextBatchView(const Tuple** rows, size_t* n) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("HashAggregate:");
    for (const auto& g : group_cols_) out->append(" " + g);
    for (const auto& a : aggs_) out->append(" " + a.name);
    out->append("\n");
    child_->Explain(depth + 1, out);
  }

 private:
  /// Doubles the bucket array and reinserts every group from its stored
  /// hash (keys are never rehashed).
  void Rehash(size_t new_cap);

  ExecRef child_;
  std::vector<std::string> group_cols_;
  std::vector<AggSpec> aggs_;
  Schema output_schema_;
  std::vector<Tuple> results_;
  size_t pos_ = 0;

  // Build state, kept as members so prepared statements that re-Init()
  // the same plan (the FEM loop runs thousands of aggregate statements)
  // recycle every allocation. group g's key occupies the flat slice
  // group_key_values_[g * group_cols_.size() ..] (one contiguous array —
  // a per-group vector would cost an allocation per distinct group and
  // scatter the final sort's accesses), its hash is group_hashes_[g], and
  // its accumulators the flat slice states_[g * aggs_.size() ..];
  // buckets_ holds group indices (open addressing, linear probe,
  // power-of-two capacity).
  std::vector<Value> group_key_values_;
  std::vector<uint64_t> group_hashes_;
  std::vector<AggState> states_;
  std::vector<uint32_t> buckets_;
  std::vector<ValueColumn> key_cols_;   // gathered group columns, per batch
  std::vector<ValueColumn> agg_cols_;   // evaluated aggregate args, per batch
  std::vector<uint64_t> row_hashes_;    // per-lane key hashes, per batch
};

/// Convenience for the auxiliary statements: runs a scalar aggregate plan
/// and returns its single value.
Status EvalScalarAggregate(Executor* child, AggOp op, ExprRef expr,
                           Value* out);

}  // namespace relgraph
