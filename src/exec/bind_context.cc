#include "src/exec/bind_context.h"

namespace relgraph {

size_t BindContext::AddNamedSlot(const std::string& name) {
  for (size_t i = 0; i < slots_.size(); i++) {
    if (slots_[i].name == name) return i;
  }
  slots_.push_back({name, Value::Null(), false});
  return slots_.size() - 1;
}

size_t BindContext::AddAnonymousSlot() {
  slots_.push_back({std::string(), Value::Null(), false});
  return slots_.size() - 1;
}

void BindContext::ClearBindings() {
  for (Slot& s : slots_) {
    s.value = Value::Null();
    s.bound = false;
  }
}

Status BindContext::BindNamed(const std::map<std::string, Value>& params) {
  for (Slot& s : slots_) {
    if (s.name.empty()) continue;
    auto it = params.find(s.name);
    if (it == params.end()) {
      return Status::InvalidArgument("missing parameter :" + s.name);
    }
    s.value = it->second;
    s.bound = true;
  }
  return Status::OK();
}

void BindContext::Set(size_t slot, Value v) {
  slots_[slot].value = std::move(v);
  slots_[slot].bound = true;
}

}  // namespace relgraph
