#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/types/value.h"

namespace relgraph {

/// Runtime parameter memory for a prepared physical plan — the executor
/// layer's replacement for plan-time constant folding of `:params` and
/// scalar subqueries. Compilation registers one slot per distinct
/// parameter name (plus one anonymous slot per scalar subquery);
/// *binding* — the cheap per-execution step — writes fresh Values into
/// the slots, and Param()/BoundSlot() expressions read them while the
/// plan runs. This is what lets one physical plan be re-executed with
/// new bindings instead of being re-planned (JDBC's parse-once /
/// bind-many contract).
///
/// Expressions hold a raw pointer to their context, so its address must
/// stay stable for the plan's lifetime: prepared plans own their context
/// behind a unique_ptr and never re-seat it.
class BindContext {
 public:
  /// Registers (or finds) the slot for named parameter `name`.
  size_t AddNamedSlot(const std::string& name);

  /// Registers an anonymous slot (scalar-subquery results).
  size_t AddAnonymousSlot();

  /// Marks every slot unbound — the start of each execution.
  void ClearBindings();

  /// Binds every *named* slot from `params`. A registered name missing
  /// from the map is an error (the statement cannot run without it);
  /// extra map entries are ignored, matching ad-hoc execution.
  Status BindNamed(const std::map<std::string, Value>& params);

  void Set(size_t slot, Value v);
  bool IsBound(size_t slot) const { return slots_[slot].bound; }
  /// NULL when the slot is unbound (safe display/evaluation default;
  /// BindNamed guarantees bound named slots before execution).
  const Value& Get(size_t slot) const { return slots_[slot].value; }
  size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot {
    std::string name;  // empty for anonymous (subquery) slots
    Value value;
    bool bound = false;
  };
  std::vector<Slot> slots_;
};

}  // namespace relgraph
