#include "src/exec/dml_executors.h"

#include <unordered_map>

#include "src/exec/scan_executors.h"

namespace relgraph {

Status InsertFromExecutor(Table* table, Executor* source, int64_t* inserted) {
  *inserted = 0;
  RELGRAPH_RETURN_IF_ERROR(source->Init());
  std::vector<Tuple> batch;
  while (source->NextBatch(&batch)) {
    for (const Tuple& t : batch) {
      RELGRAPH_RETURN_IF_ERROR(table->Insert(t));
      (*inserted)++;
    }
  }
  return source->status();
}

namespace {

/// Pulls up to ExecBatchSize() (row, ref) pairs from `it`. `exhausted`
/// latches once the iterator reports false so a failed iterator is never
/// resumed (same contract as the scan executors).
bool DrainScanBatch(Table::Iterator* it, bool* exhausted,
                    std::vector<Tuple>* rows, std::vector<RowRef>* refs) {
  refs->clear();
  bool got = DrainBatchInto(rows, [&](Tuple* t) {
    if (*exhausted) return false;
    RowRef ref;
    if (!it->Next(t, &ref)) {
      *exhausted = true;
      return false;
    }
    refs->push_back(ref);
    return true;
  });
  return got;
}

/// Shared tail of the UPDATE plans: evaluate SET clauses over the matched
/// rows, then apply (the collect-then-apply split keeps the scan stable
/// under row movement). Both the WHERE predicate and the SET expressions
/// run in batch mode — one EvalBatch column per scan batch.
Status ApplyUpdates(Table* table, Table::Iterator it, ExprRef predicate,
                    const std::vector<SetClause>& sets, int64_t* affected,
                    const RowChangeObserver& observer) {
  *affected = 0;
  const Schema& schema = table->schema();
  std::vector<std::pair<size_t, ExprRef>> resolved;
  resolved.reserve(sets.size());
  for (const auto& s : sets) {
    int idx = schema.Find(s.column);
    if (idx < 0) return Status::InvalidArgument("no column " + s.column);
    resolved.emplace_back(static_cast<size_t>(idx), s.expr);
  }
  // The pre-image is only materialized when someone listens for it.
  const bool want_old = observer != nullptr;
  std::vector<std::tuple<RowRef, Tuple, Tuple>> pending;  // ref, old, new
  std::vector<Tuple> rows;
  std::vector<RowRef> refs;
  ValueColumn pred_scratch;
  std::vector<char> keep;
  std::vector<uint32_t> sel;
  std::vector<ValueColumn> set_cols(resolved.size());
  bool exhausted = false;
  while (DrainScanBatch(&it, &exhausted, &rows, &refs)) {
    // Matched rows stay where the scan put them; a selection vector over
    // the scan batch replaces the old compact-into-`matched` copy.
    const uint32_t* selp = nullptr;
    size_t lanes = rows.size();
    if (predicate != nullptr) {
      RowBatch batch(rows, schema);
      EvalPredicateBatch(*predicate, batch, &pred_scratch, &keep);
      sel.clear();
      for (size_t i = 0; i < rows.size(); i++) {
        if (keep[i]) sel.push_back(static_cast<uint32_t>(i));
      }
      if (sel.empty()) continue;
      selp = sel.data();
      lanes = sel.size();
    }
    // SET expressions see the *old* rows — one column per clause when the
    // match set is big enough to amortize it, row-at-a-time otherwise.
    const bool vectorize_sets = lanes >= kMinVectorizedRows;
    if (vectorize_sets) {
      RowBatch mbatch(rows.data(), rows.size(), schema, selp, lanes);
      for (size_t k = 0; k < resolved.size(); k++) {
        resolved[k].second->EvalBatch(mbatch, &set_cols[k]);
      }
    }
    for (size_t i = 0; i < lanes; i++) {
      const size_t r = selp != nullptr ? selp[i] : i;
      Tuple updated = rows[r];
      for (size_t k = 0; k < resolved.size(); k++) {
        updated.value(resolved[k].first) =
            vectorize_sets ? set_cols[k].Get(i)
                           : resolved[k].second->Evaluate(rows[r], schema);
      }
      pending.emplace_back(refs[r], want_old ? std::move(rows[r]) : Tuple(),
                           std::move(updated));
    }
  }
  RELGRAPH_RETURN_IF_ERROR(it.status());
  for (const auto& [row_ref, old_row, new_row] : pending) {
    RELGRAPH_RETURN_IF_ERROR(table->UpdateRow(row_ref, new_row));
    if (want_old) observer(&old_row, new_row);
    (*affected)++;
  }
  return Status::OK();
}

}  // namespace

Status UpdateWhere(Table* table, ExprRef predicate,
                   const std::vector<SetClause>& sets, int64_t* affected,
                   const RowChangeObserver& observer) {
  return ApplyUpdates(table, table->Scan(), std::move(predicate), sets,
                      affected, observer);
}

Status UpdateWhereIndexed(Table* table, const std::string& index_column,
                          int64_t lo, int64_t hi, ExprRef predicate,
                          const std::vector<SetClause>& sets,
                          int64_t* affected,
                          const RowChangeObserver& observer) {
  Table::Iterator it;
  RELGRAPH_RETURN_IF_ERROR(table->ScanRange(index_column, lo, hi, &it));
  return ApplyUpdates(table, std::move(it), std::move(predicate), sets,
                      affected, observer);
}

Status UpdateWhereIndexedDynamic(Table* table, const std::string& index_column,
                                 CompareOp op, const ExprRef& key,
                                 ExprRef predicate,
                                 const std::vector<SetClause>& sets,
                                 int64_t* affected,
                                 const RowChangeObserver& observer) {
  Value v = key->Evaluate(Tuple{}, Schema{});
  if (v.type() != TypeId::kInt) {
    // Non-INT keys never match an INT index probe profitably; run the
    // full-scan plan the text interface would have picked.
    return UpdateWhere(table, std::move(predicate), sets, affected, observer);
  }
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
  KeyRangeFor(op, v.AsInt(), &lo, &hi);  // overflow keeps the full range
  return UpdateWhereIndexed(table, index_column, lo, hi, std::move(predicate),
                            sets, affected, observer);
}

Status DeleteWhere(Table* table, ExprRef predicate, int64_t* affected) {
  *affected = 0;
  const Schema& schema = table->schema();
  std::vector<RowRef> pending;
  Table::Iterator it = table->Scan();
  std::vector<Tuple> rows;
  std::vector<RowRef> refs;
  ValueColumn pred_scratch;
  std::vector<char> keep;
  bool exhausted = false;
  while (DrainScanBatch(&it, &exhausted, &rows, &refs)) {
    if (predicate == nullptr) {
      pending.insert(pending.end(), refs.begin(), refs.end());
      continue;
    }
    RowBatch batch(rows, schema);
    EvalPredicateBatch(*predicate, batch, &pred_scratch, &keep);
    for (size_t i = 0; i < rows.size(); i++) {
      if (keep[i]) pending.push_back(refs[i]);
    }
  }
  RELGRAPH_RETURN_IF_ERROR(it.status());
  for (const auto& row_ref : pending) {
    RELGRAPH_RETURN_IF_ERROR(table->DeleteRow(row_ref));
    (*affected)++;
  }
  return Status::OK();
}

Status MergeInto(Table* target, Executor* source, const MergeSpec& spec,
                 int64_t* affected) {
  *affected = 0;
  const Schema& target_schema = target->schema();
  const Schema& source_schema = source->OutputSchema();
  int tgt_key_idx = target_schema.Find(spec.target_key_column);
  if (tgt_key_idx < 0) {
    return Status::InvalidArgument("MERGE target lacks key column " +
                                   spec.target_key_column);
  }
  // Without a unique index the planner falls back to a hash match: one scan
  // of the target builds key -> row, then each source row probes the map
  // (this is how an RDBMS executes MERGE on an unindexed target).
  const bool use_index = target->HasIndexOn(spec.target_key_column);
  std::unordered_map<int64_t, std::pair<RowRef, Tuple>> hash_side;
  if (!use_index) {
    Table::Iterator it = target->Scan();
    Tuple t;
    RowRef ref;
    while (it.Next(&t, &ref)) {
      const Value& key = t.value(tgt_key_idx);
      if (key.IsNull()) continue;
      hash_side.emplace(key.AsInt(), std::make_pair(ref, t));
    }
    RELGRAPH_RETURN_IF_ERROR(it.status());
  }
  int src_key_idx = source_schema.Find(spec.source_key_column);
  if (src_key_idx < 0) {
    return Status::InvalidArgument("MERGE source lacks key column " +
                                   spec.source_key_column);
  }
  if (!spec.insert_values.empty() &&
      spec.insert_values.size() != target_schema.NumColumns()) {
    return Status::InvalidArgument("MERGE insert arity mismatch");
  }

  // Combined row namespace for the matched branch: t.<col> then s.<col>.
  Schema combined = ConcatSchemas(PrefixSchema(target_schema, "t."),
                                  PrefixSchema(source_schema, "s."));
  std::vector<std::pair<size_t, ExprRef>> resolved_sets;
  resolved_sets.reserve(spec.matched_sets.size());
  for (const auto& s : spec.matched_sets) {
    int idx = target_schema.Find(s.column);
    if (idx < 0) return Status::InvalidArgument("no column " + s.column);
    resolved_sets.emplace_back(static_cast<size_t>(idx), s.expr);
  }

  // SQL MERGE semantics: the source is evaluated against the target's
  // *pre-statement* state (the standard's snapshot rule; also sidesteps
  // the Halloween problem when the source subquery reads the target). The
  // source therefore drains completely — through the batched Collect path,
  // so a SELECT-backed source (the paper's windowed expansion subquery)
  // still runs its whole pipeline in batch mode — before any merge action
  // runs. The per-row probe/update/insert below is inherently
  // row-at-a-time: each action sees the effect of the previous source row
  // on the target.
  std::vector<Tuple> src_rows;
  RELGRAPH_RETURN_IF_ERROR(Collect(source, &src_rows));
  {
    for (size_t si = 0; si < src_rows.size(); si++) {
      const Tuple& src = src_rows[si];
      const Value& key = src.value(src_key_idx);
      if (key.IsNull()) continue;
      Tuple existing;
      RowRef ref;
      Status found;
      if (use_index) {
        found = target->LookupUnique(spec.target_key_column, key.AsInt(),
                                     &existing, &ref);
      } else {
        auto it = hash_side.find(key.AsInt());
        if (it != hash_side.end()) {
          ref = it->second.first;
          existing = it->second.second;
          found = Status::OK();
        } else {
          found = Status::NotFound("");
        }
      }
      if (found.ok()) {
        Tuple joined = ConcatTuples(existing, src);
        if (spec.matched_condition != nullptr &&
            !EvalPredicate(*spec.matched_condition, joined, combined)) {
          continue;
        }
        if (resolved_sets.empty()) continue;
        Tuple updated = existing;
        for (const auto& [idx, expr] : resolved_sets) {
          updated.value(idx) = expr->Evaluate(joined, combined);
        }
        RELGRAPH_RETURN_IF_ERROR(target->UpdateRow(ref, updated));
        if (spec.observer != nullptr) spec.observer(&existing, updated);
        if (!use_index) hash_side[key.AsInt()] = {ref, updated};
        (*affected)++;
      } else if (found.IsNotFound()) {
        if (spec.insert_values.empty()) continue;
        std::vector<Value> values;
        values.reserve(spec.insert_values.size());
        for (const auto& e : spec.insert_values) {
          values.push_back(e->Evaluate(src, source_schema));
        }
        Tuple fresh(std::move(values));
        RowRef fresh_ref;
        RELGRAPH_RETURN_IF_ERROR(target->Insert(fresh, &fresh_ref));
        if (spec.observer != nullptr) spec.observer(nullptr, fresh);
        if (!use_index) hash_side[key.AsInt()] = {fresh_ref, fresh};
        (*affected)++;
      } else {
        return found;
      }
    }
  }
  return source->status();
}

}  // namespace relgraph
