#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/catalog/table.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"

namespace relgraph {

/// Invoked once per row a DML statement actually changes: `old_row` is null
/// for inserts, otherwise the pre-image; `new_row` is the post-image (both
/// in the table schema). VisitedTable subscribes to keep its incremental
/// aggregates exact without re-scanning (deletes are not reported — the
/// callers that care truncate instead of deleting).
using RowChangeObserver =
    std::function<void(const Tuple* old_row, const Tuple& new_row)>;

/// Data-modification statements. Each reports the number of affected rows —
/// the engine's equivalent of the SQL communication area (SQLCA) the paper's
/// Algorithm 1 polls to detect termination ("if the number of affected
/// tuples is 0 then break").

/// INSERT INTO table SELECT ... ; source schema must be type-compatible.
Status InsertFromExecutor(Table* table, Executor* source, int64_t* inserted);

/// UPDATE table SET col=expr, ... WHERE predicate. Set expressions are
/// evaluated against the *old* row (table schema). A null predicate matches
/// every row.
struct SetClause {
  std::string column;
  ExprRef expr;
};
Status UpdateWhere(Table* table, ExprRef predicate,
                   const std::vector<SetClause>& sets, int64_t* affected,
                   const RowChangeObserver& observer = nullptr);

/// UPDATE driven through an index: candidate rows come from
/// ScanRange(index_column, lo, hi) instead of a full scan, then `predicate`
/// (which must imply the range for the two plans to be equivalent) filters
/// residually. This is the plan an RDBMS picks for the F-operator's
/// `UPDATE ... WHERE flag = 2` once the flag column is indexed.
Status UpdateWhereIndexed(Table* table, const std::string& index_column,
                          int64_t lo, int64_t hi, ExprRef predicate,
                          const std::vector<SetClause>& sets,
                          int64_t* affected,
                          const RowChangeObserver& observer = nullptr);

/// Prepared-statement form of UpdateWhereIndexed: the probe range is
/// `index_column OP key`, with `key` — a parameter or scalar-subquery
/// slot — evaluated when the statement *executes*, not when it was
/// planned. A non-INT key falls back to the full-scan plan and an
/// overflowing bound to the full key range; `predicate` always applies
/// residually, so every execution stays equivalent to UpdateWhere.
Status UpdateWhereIndexedDynamic(Table* table, const std::string& index_column,
                                 CompareOp op, const ExprRef& key,
                                 ExprRef predicate,
                                 const std::vector<SetClause>& sets,
                                 int64_t* affected,
                                 const RowChangeObserver& observer = nullptr);

/// DELETE FROM table WHERE predicate.
Status DeleteWhere(Table* table, ExprRef predicate, int64_t* affected);

/// The SQL:2008 MERGE statement (paper §2.2, Listing 2(4)):
///
///   MERGE INTO target USING <source> ON target.<key_col> = source.<key_col>
///   WHEN MATCHED [AND <matched_condition>] THEN UPDATE SET ...
///   WHEN NOT MATCHED THEN INSERT VALUES (...)
///
/// The target must have a *unique* access path on `target_key_column`
/// (unique secondary index or unique cluster key); the probe per source row
/// is an index lookup, which is what makes one MERGE cheaper than the
/// update-statement-plus-insert-statement pair it replaces.
///
/// Expression namespaces: `matched_condition` and matched SET expressions
/// see the combined schema [t.<target cols>, s.<source cols>]; insert value
/// expressions see the plain source schema.
struct MergeSpec {
  std::string target_key_column;
  std::string source_key_column;
  ExprRef matched_condition;            // nullptr = always
  std::vector<SetClause> matched_sets;  // columns of the target
  std::vector<ExprRef> insert_values;   // one per target column
  RowChangeObserver observer;           // optional change notifications
};

Status MergeInto(Table* target, Executor* source, const MergeSpec& spec,
                 int64_t* affected);

}  // namespace relgraph
