#include "src/exec/executor.h"

namespace relgraph {

namespace {
size_t g_exec_batch_size = kExecBatchSize;
size_t g_sel_vector_min_rows = kSelVectorMinRows;
}  // namespace

size_t ExecBatchSize() { return g_exec_batch_size; }

void SetExecBatchSize(size_t n) {
  g_exec_batch_size = n == 0 ? kExecBatchSize : n;
}

size_t SelVectorMinRows() { return g_sel_vector_min_rows; }

void SetSelVectorMinRows(size_t n) {
  g_sel_vector_min_rows = n == 0 ? kSelVectorMinRows : n;
}

void Executor::Explain(int depth, std::string* out) const {
  Indent(depth, out);
  out->append("Operator\n");
}

Status Collect(Executor* exec, std::vector<Tuple>* out) {
  RELGRAPH_RETURN_IF_ERROR(exec->Init());
  std::vector<Tuple> batch;
  while (exec->NextBatch(&batch)) {
    out->insert(out->end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  return exec->status();
}

}  // namespace relgraph
