#pragma once

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace relgraph {

/// Volcano-style pull executor: Init() once, then Next() until it returns
/// false; check status() afterwards to distinguish end-of-stream from error.
/// Physical plans for the paper's SQL statements are built by composing
/// these executors (see src/core/fem.cc for the F/E/M plans).
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Init() = 0;

  /// Produces the next tuple; false at end of stream or on error.
  virtual bool Next(Tuple* out) = 0;

  virtual const Schema& OutputSchema() const = 0;

  /// Appends this node (and its inputs, indented) to `out` — the plan tree
  /// behind EXPLAIN. One line per operator, physical choices spelled out
  /// (e.g. IndexNestedLoopJoin vs NestedLoopJoin, pushed-down filters).
  virtual void Explain(int depth, std::string* out) const;

  const Status& status() const { return status_; }

 protected:
  /// Explain helper: two spaces per depth level.
  static void Indent(int depth, std::string* out) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }

  Status status_;
};

using ExecRef = std::unique_ptr<Executor>;

/// Drains `exec` into a vector (Init + Next*). Errors propagate.
Status Collect(Executor* exec, std::vector<Tuple>* out);

}  // namespace relgraph
