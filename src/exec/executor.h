#pragma once

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace relgraph {

/// Rows moved per NextBatch() call. Large enough to amortize the per-batch
/// virtual dispatch, small enough to stay cache-resident.
inline constexpr size_t kExecBatchSize = 1024;

/// Volcano-style pull executor: Init() once, then Next() until it returns
/// false; check status() afterwards to distinguish end-of-stream from error.
/// Physical plans for the paper's SQL statements are built by composing
/// these executors (see src/core/fem.cc for the F/E/M plans).
///
/// Hot consumers (the E-operator, Collect) pull through NextBatch(), which
/// moves up to kExecBatchSize tuples per virtual call; operators without an
/// override fall back to a Next() loop, so the two interfaces always yield
/// the same stream.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Init() = 0;

  /// Produces the next tuple; false at end of stream or on error.
  virtual bool Next(Tuple* out) = 0;

  /// Clears `out` and appends up to kExecBatchSize tuples. Returns false
  /// when the stream is exhausted (out left empty) or on error — like
  /// Next(), check status() to tell the two apart. The batch vector is
  /// caller-owned so its capacity is reused across calls.
  virtual bool NextBatch(std::vector<Tuple>* out) {
    out->clear();
    Tuple t;
    while (out->size() < kExecBatchSize && Next(&t)) {
      out->push_back(std::move(t));
    }
    return !out->empty();
  }

  virtual const Schema& OutputSchema() const = 0;

  /// Appends this node (and its inputs, indented) to `out` — the plan tree
  /// behind EXPLAIN. One line per operator, physical choices spelled out
  /// (e.g. IndexNestedLoopJoin vs NestedLoopJoin, pushed-down filters).
  virtual void Explain(int depth, std::string* out) const;

  const Status& status() const { return status_; }

 protected:
  /// Explain helper: two spaces per depth level.
  static void Indent(int depth, std::string* out) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }

  Status status_;
};

using ExecRef = std::unique_ptr<Executor>;

/// Shared NextBatch body for executors that replay a materialized vector
/// (Materialized, Window): copies rows [*pos, ...) into `out` up to the
/// batch cap, advancing *pos.
inline bool ReplayBatch(const std::vector<Tuple>& rows, size_t* pos,
                        std::vector<Tuple>* out) {
  out->clear();
  while (*pos < rows.size() && out->size() < kExecBatchSize) {
    out->push_back(rows[(*pos)++]);
  }
  return !out->empty();
}

/// Drains `exec` into a vector (Init + Next*). Errors propagate.
Status Collect(Executor* exec, std::vector<Tuple>* out);

}  // namespace relgraph
