#pragma once

#include <memory>
#include <vector>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace relgraph {

/// Effective rows-per-NextBatch cap. Defaults to kExecBatchSize
/// (src/common/config.h); SetExecBatchSize lets benchmarks sweep it
/// (bench_micro_exec) and tests force degenerate sizes. Not thread-safe —
/// set it before running plans, never mid-drain.
size_t ExecBatchSize();
void SetExecBatchSize(size_t n);  // n = 0 restores kExecBatchSize

/// Effective selection-vector threshold: the minimum number of surviving
/// rows for FilterExecutor to forward (rows, sel) instead of compacting.
/// Defaults to kSelVectorMinRows; SetSelVectorMinRows lets bench_micro_exec
/// sweep it and tests pin both extremes (1 = always forward a selection,
/// SIZE_MAX = always compact, i.e. the legacy path). Same thread-safety
/// caveat as SetExecBatchSize: set before running plans, never mid-drain.
size_t SelVectorMinRows();
void SetSelVectorMinRows(size_t n);  // n = 0 restores kSelVectorMinRows

/// A borrowed batch plus an optional selection vector: the unit of flow on
/// the NextBatchSel path. `rows[0..num_rows)` are owned by the producer and
/// valid until its next pull of any kind. When `sel` is non-null, only the
/// lanes `rows[sel[0..num_sel)]` are part of the stream (sel is strictly
/// ascending); when null, the batch is dense and num_sel is ignored.
///
/// Contract: consumers iterate lanes with count()/row(i) and must never
/// reorder or mutate through the span. Only materialization boundaries
/// (Sort, Collect, MERGE's source drain, DML apply, wire serialization)
/// may compact; pass-through operators (Project, Rename, Join outer sides,
/// aggregation builds) must consume the selection in place.
struct BatchSpan {
  const Tuple* rows = nullptr;
  size_t num_rows = 0;
  const uint32_t* sel = nullptr;  // nullptr = dense
  size_t num_sel = 0;

  /// Number of selected lanes.
  size_t count() const { return sel != nullptr ? num_sel : num_rows; }
  /// Maps lane i to its index in rows.
  size_t index(size_t i) const { return sel != nullptr ? sel[i] : i; }
  const Tuple& row(size_t i) const { return rows[index(i)]; }
  bool dense() const { return sel == nullptr; }
};

/// Shared body of every batch drain: pulls up to ExecBatchSize() rows via
/// `pull(Tuple*)` straight into `out`'s slots. The slot discipline is the
/// batch path's core perf invariant — grow on demand (short streams never
/// pay for slots they don't use), never clear() (recycled tuples keep
/// their heap buffers), trim with resize at the end — so it lives here
/// once rather than in each drain site.
template <typename PullFn>
bool DrainBatchInto(std::vector<Tuple>* out, PullFn pull) {
  const size_t cap = ExecBatchSize();
  size_t n = 0;
  while (n < cap) {
    if (n == out->size()) out->emplace_back();
    if (!pull(&(*out)[n])) break;
    n++;
  }
  out->resize(n);
  return n > 0;
}

/// Volcano-style pull executor: Init() once, then Next() until it returns
/// false; check status() afterwards to distinguish end-of-stream from error.
/// Physical plans for the paper's SQL statements are built by composing
/// these executors (see src/core/fem.cc for the F/E/M plans).
///
/// Hot consumers (the E-operator, Collect) pull through NextBatch(), which
/// moves up to kExecBatchSize tuples per virtual call; operators without an
/// override fall back to a Next() loop, so the two interfaces always yield
/// the same stream.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Init() = 0;

  /// Produces the next tuple; false at end of stream or on error.
  virtual bool Next(Tuple* out) = 0;

  /// Clears `out` and appends up to ExecBatchSize() tuples. Returns false
  /// when the stream is exhausted (out left empty) or on error — like
  /// Next(), check status() to tell the two apart. The batch vector is
  /// caller-owned so its capacity is reused across calls.
  virtual bool NextBatch(std::vector<Tuple>* out) {
    return DrainBatchInto(out, [this](Tuple* t) { return Next(t); });
  }

  /// Borrowed-batch pull: points *rows/*n at up to ExecBatchSize() tuples
  /// owned by this executor, valid only until the next pull of any kind.
  /// Consumers that do not need to own the tuples — filters, projections,
  /// aggregate builds, the MERGE source drain — read through this and skip
  /// a per-batch tuple copy. The default adapts NextBatch through an
  /// internal buffer (no worse than a caller-owned batch); operators that
  /// already hold their output (Materialized) serve it with zero copies.
  virtual bool NextBatchView(const Tuple** rows, size_t* n) {
    if (!NextBatch(&view_buffer_)) return false;
    *rows = view_buffer_.data();
    *n = view_buffer_.size();
    return true;
  }

  /// Selection-aware pull: like NextBatchView but the producer may attach a
  /// selection vector instead of compacting (see BatchSpan for the borrow
  /// and iteration contract). The default serves the NextBatchView stream
  /// as dense spans, so every executor speaks this interface; only
  /// FilterExecutor currently produces sparse spans, and only when the
  /// survivor count reaches SelVectorMinRows().
  virtual bool NextBatchSel(BatchSpan* out) {
    const Tuple* rows = nullptr;
    size_t n = 0;
    if (!NextBatchView(&rows, &n)) return false;
    *out = BatchSpan{rows, n, nullptr, 0};
    return true;
  }

  virtual const Schema& OutputSchema() const = 0;

  /// Appends this node (and its inputs, indented) to `out` — the plan tree
  /// behind EXPLAIN. One line per operator, physical choices spelled out
  /// (e.g. IndexNestedLoopJoin vs NestedLoopJoin, pushed-down filters).
  virtual void Explain(int depth, std::string* out) const;

  const Status& status() const { return status_; }

 protected:
  /// Explain helper: two spaces per depth level.
  static void Indent(int depth, std::string* out) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
  }

  Status status_;
  std::vector<Tuple> view_buffer_;  // backs the default NextBatchView
};

using ExecRef = std::unique_ptr<Executor>;

/// Shared NextBatch body for executors that replay a materialized vector
/// (Materialized, HashAggregate): copies rows [*pos, ...) into `out` up to
/// the batch cap, advancing *pos. Rows are copy-assigned into the batch's
/// existing slots — not clear()ed and re-pushed — so a reused batch vector
/// keeps its tuples' heap buffers and the steady-state replay allocates
/// nothing (the same trick that makes single-tuple Next() into one reused
/// out-tuple cheap).
inline bool ReplayBatch(const std::vector<Tuple>& rows, size_t* pos,
                        std::vector<Tuple>* out) {
  const size_t cap = ExecBatchSize();
  const size_t left = rows.size() - *pos;
  const size_t n = left < cap ? left : cap;
  out->resize(n);
  for (size_t i = 0; i < n; i++) {
    (*out)[i] = rows[(*pos)++];
  }
  return n > 0;
}

/// Drains `exec` into a vector (Init + Next*). Errors propagate.
Status Collect(Executor* exec, std::vector<Tuple>* out);

}  // namespace relgraph
