#include "src/exec/expression.h"

#include <cassert>

namespace relgraph {

namespace {

class ColumnExpr : public Expression {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}
  Value Evaluate(const Tuple& tuple, const Schema& schema) const override {
    return tuple.value(schema.IndexOf(name_));
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Value Evaluate(const Tuple&, const Schema&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

class AddExpr : public Expression {
 public:
  AddExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return left_->Evaluate(t, s).Add(right_->Evaluate(t, s));
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " + " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class MulExpr : public Expression {
 public:
  MulExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    Value rv = right_->Evaluate(t, s);
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    if (lv.type() == TypeId::kInt && rv.type() == TypeId::kInt) {
      return Value(lv.AsInt() * rv.AsInt());
    }
    return Value(lv.AsNumeric() * rv.AsNumeric());
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " * " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

class CompareExpr : public Expression {
 public:
  CompareExpr(CompareOp op, ExprRef l, ExprRef r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    Value rv = right_->Evaluate(t, s);
    if (lv.IsNull() || rv.IsNull()) return Value::Null();  // SQL unknown
    int c = lv.Compare(rv);
    bool result = false;
    switch (op_) {
      case CompareOp::kEq: result = c == 0; break;
      case CompareOp::kNe: result = c != 0; break;
      case CompareOp::kLt: result = c < 0; break;
      case CompareOp::kLe: result = c <= 0; break;
      case CompareOp::kGt: result = c > 0; break;
      case CompareOp::kGe: result = c >= 0; break;
    }
    return Value(static_cast<int64_t>(result ? 1 : 0));
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + OpName(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprRef left_, right_;
};

class AndExpr : public Expression {
 public:
  AndExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    if (!lv.IsNull() && lv.AsInt() == 0) return Value(int64_t{0});
    Value rv = right_->Evaluate(t, s);
    if (!rv.IsNull() && rv.AsInt() == 0) return Value(int64_t{0});
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    return Value(int64_t{1});
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class OrExpr : public Expression {
 public:
  OrExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    if (!lv.IsNull() && lv.AsInt() != 0) return Value(int64_t{1});
    Value rv = right_->Evaluate(t, s);
    if (!rv.IsNull() && rv.AsInt() != 0) return Value(int64_t{1});
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    return Value(int64_t{0});
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class SubExpr : public Expression {
 public:
  SubExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    Value rv = right_->Evaluate(t, s);
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    if (lv.type() == TypeId::kInt && rv.type() == TypeId::kInt) {
      return Value(lv.AsInt() - rv.AsInt());
    }
    return Value(lv.AsNumeric() - rv.AsNumeric());
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " - " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class DivExpr : public Expression {
 public:
  DivExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    Value rv = right_->Evaluate(t, s);
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    if (lv.type() == TypeId::kInt && rv.type() == TypeId::kInt) {
      if (rv.AsInt() == 0) return Value::Null();
      return Value(lv.AsInt() / rv.AsInt());
    }
    if (rv.AsNumeric() == 0) return Value::Null();
    return Value(lv.AsNumeric() / rv.AsNumeric());
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " / " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class IsNullExpr : public Expression {
 public:
  IsNullExpr(ExprRef inner, bool negated)
      : inner_(std::move(inner)), negated_(negated) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    bool is_null = inner_->Evaluate(t, s).IsNull();
    return Value(static_cast<int64_t>(is_null != negated_ ? 1 : 0));
  }
  std::string ToString() const override {
    return inner_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprRef inner_;
  bool negated_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprRef inner) : inner_(std::move(inner)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value v = inner_->Evaluate(t, s);
    if (v.IsNull()) return Value::Null();
    return Value(static_cast<int64_t>(v.AsInt() == 0 ? 1 : 0));
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  ExprRef inner_;
};

}  // namespace

ExprRef Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprRef Lit(int64_t v) { return std::make_shared<LiteralExpr>(Value(v)); }
ExprRef Lit(double v) { return std::make_shared<LiteralExpr>(Value(v)); }
ExprRef Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Value(std::move(v)));
}
ExprRef Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprRef NullLit() { return std::make_shared<LiteralExpr>(Value::Null()); }
ExprRef Add(ExprRef left, ExprRef right) {
  return std::make_shared<AddExpr>(std::move(left), std::move(right));
}
ExprRef Sub(ExprRef left, ExprRef right) {
  return std::make_shared<SubExpr>(std::move(left), std::move(right));
}
ExprRef Mul(ExprRef left, ExprRef right) {
  return std::make_shared<MulExpr>(std::move(left), std::move(right));
}
ExprRef Div(ExprRef left, ExprRef right) {
  return std::make_shared<DivExpr>(std::move(left), std::move(right));
}
ExprRef IsNull(ExprRef inner, bool negated) {
  return std::make_shared<IsNullExpr>(std::move(inner), negated);
}
ExprRef Cmp(CompareOp op, ExprRef left, ExprRef right) {
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}
ExprRef And(ExprRef left, ExprRef right) {
  return std::make_shared<AndExpr>(std::move(left), std::move(right));
}
ExprRef Or(ExprRef left, ExprRef right) {
  return std::make_shared<OrExpr>(std::move(left), std::move(right));
}
ExprRef Not(ExprRef inner) { return std::make_shared<NotExpr>(std::move(inner)); }

ExprRef ColEq(std::string name, int64_t v) {
  return Cmp(CompareOp::kEq, Col(std::move(name)), Lit(v));
}

bool EvalPredicate(const Expression& expr, const Tuple& tuple,
                   const Schema& schema) {
  Value v = expr.Evaluate(tuple, schema);
  return !v.IsNull() && v.AsInt() != 0;
}

}  // namespace relgraph
