#include "src/exec/expression.h"

#include <algorithm>
#include <cassert>

#include "src/exec/bind_context.h"

namespace relgraph {

void Expression::EvalBatch(const RowBatch& batch, ValueColumn* out) const {
  // Scalar fallback: one Evaluate per row. Operator nodes override this
  // with column-at-a-time kernels.
  const size_t n = batch.num_rows();
  out->Reset(n);
  for (size_t i = 0; i < n; i++) {
    out->Append(Evaluate(batch.row(i), batch.schema()));
  }
}

namespace {

/// Thread-local LIFO pool of scratch columns for EvalBatch's interior
/// nodes. Borrow depth equals expression-tree depth, and a returned slot is
/// handed back to the next borrower at the same depth, so the vectors keep
/// their capacity across batches — steady-state batch evaluation allocates
/// nothing.
class ScratchPool {
 public:
  ValueColumn* Borrow() {
    if (next_ == cols_.size()) {
      cols_.push_back(std::make_unique<ValueColumn>());
    }
    return cols_[next_++].get();
  }
  void Return() { next_--; }

 private:
  std::vector<std::unique_ptr<ValueColumn>> cols_;
  size_t next_ = 0;
};

thread_local ScratchPool g_scratch_pool;

/// RAII borrow. Declare in evaluation order; destruction order being the
/// reverse keeps the pool's LIFO discipline.
class ScratchColumn {
 public:
  ScratchColumn() : col_(g_scratch_pool.Borrow()) {}
  ~ScratchColumn() { g_scratch_pool.Return(); }
  ScratchColumn(const ScratchColumn&) = delete;
  ScratchColumn& operator=(const ScratchColumn&) = delete;
  ValueColumn& operator*() { return *col_; }
  ValueColumn* get() { return col_; }

 private:
  ValueColumn* col_;
};

/// Unboxed binary kernel: both inputs are int columns; `f` combines two
/// non-null int64s. NULL in either input yields NULL (SQL arithmetic /
/// comparison semantics). The null-free loop is branchless per row — this
/// is the code the whole TVisited workload runs.
template <typename IntFn>
void IntBinaryKernel(const ValueColumn& l, const ValueColumn& r,
                     ValueColumn* out, IntFn f) {
  const size_t n = l.size();
  out->ResetIntFilled(n);
  std::vector<int64_t>& o = out->MutableInts();
  const std::vector<int64_t>& a = l.ints();
  const std::vector<int64_t>& b = r.ints();
  if (!l.has_nulls() && !r.has_nulls()) {
    for (size_t i = 0; i < n; i++) o[i] = f(a[i], b[i]);
    return;
  }
  for (size_t i = 0; i < n; i++) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out->SetNull(i);
    } else {
      o[i] = f(a[i], b[i]);
    }
  }
}

/// Boxed binary kernel: the general path when either side left the int
/// representation. `combine` is the node's scalar Combine, so the two
/// evaluation modes share one semantics definition.
template <typename CombineFn>
void BoxedBinaryKernel(const ValueColumn& l, const ValueColumn& r,
                       ValueColumn* out, CombineFn combine) {
  const size_t n = l.size();
  out->Reset(n);
  for (size_t i = 0; i < n; i++) {
    out->Append(combine(l.Get(i), r.Get(i)));
  }
}

class ColumnExpr : public Expression {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}
  Value Evaluate(const Tuple& tuple, const Schema& schema) const override {
    return tuple.value(schema.IndexOf(name_));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    // The whole point of batch mode: the name -> position lookup happens
    // once here instead of once per row. row(i) gathers through the
    // batch's selection vector when one is attached, so every interior
    // kernel above this leaf sees a compact column and stays
    // selection-oblivious.
    const size_t n = batch.num_rows();
    out->Reset(n);
    const size_t idx = batch.schema().IndexOf(name_);
    for (size_t i = 0; i < n; i++) out->AppendRef(batch.row(i).value(idx));
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  Value Evaluate(const Tuple&, const Schema&) const override { return value_; }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    const size_t n = batch.num_rows();
    if (value_.type() == TypeId::kInt) {
      out->ResetIntFilled(n);
      std::vector<int64_t>& o = out->MutableInts();
      std::fill(o.begin(), o.end(), value_.AsInt());
      return;
    }
    out->Reset(n);
    if (value_.IsNull()) {
      for (size_t i = 0; i < n; i++) out->AppendNull();
    } else {
      for (size_t i = 0; i < n; i++) out->Append(value_);
    }
  }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// Shared body of the two slot-reading nodes: evaluation returns the
/// context slot's current value, batch mode broadcasts it like a literal.
class SlotReadExpr : public Expression {
 public:
  SlotReadExpr(const BindContext* ctx, size_t slot) : ctx_(ctx), slot_(slot) {}
  Value Evaluate(const Tuple&, const Schema&) const override {
    return ctx_->Get(slot_);
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    const Value& v = ctx_->Get(slot_);
    const size_t n = batch.num_rows();
    if (v.type() == TypeId::kInt) {
      out->ResetIntFilled(n);
      std::vector<int64_t>& o = out->MutableInts();
      std::fill(o.begin(), o.end(), v.AsInt());
      return;
    }
    out->Reset(n);
    if (v.IsNull()) {
      for (size_t i = 0; i < n; i++) out->AppendNull();
    } else {
      for (size_t i = 0; i < n; i++) out->AppendRef(v);
    }
  }

 protected:
  const BindContext* ctx_;
  size_t slot_;
};

class ParamExpr : public SlotReadExpr {
 public:
  ParamExpr(const BindContext* ctx, size_t slot, std::string name)
      : SlotReadExpr(ctx, slot), name_(std::move(name)) {}
  std::string ToString() const override { return ":" + name_; }

 private:
  std::string name_;
};

class BoundSlotExpr : public SlotReadExpr {
 public:
  using SlotReadExpr::SlotReadExpr;
  std::string ToString() const override {
    return ctx_->IsBound(slot_) ? ctx_->Get(slot_).ToString() : "(subquery)";
  }
};

class AddExpr : public Expression {
 public:
  AddExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  static Value Combine(const Value& lv, const Value& rv) {
    return lv.Add(rv);
  }
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return Combine(left_->Evaluate(t, s), right_->Evaluate(t, s));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    if (l.is_int() && r.is_int()) {
      IntBinaryKernel(l, r, out, [](int64_t a, int64_t b) { return a + b; });
    } else {
      BoxedBinaryKernel(l, r, out, Combine);
    }
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " + " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class SubExpr : public Expression {
 public:
  SubExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  static Value Combine(const Value& lv, const Value& rv) {
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    if (lv.type() == TypeId::kInt && rv.type() == TypeId::kInt) {
      return Value(lv.AsInt() - rv.AsInt());
    }
    return Value(lv.AsNumeric() - rv.AsNumeric());
  }
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return Combine(left_->Evaluate(t, s), right_->Evaluate(t, s));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    if (l.is_int() && r.is_int()) {
      IntBinaryKernel(l, r, out, [](int64_t a, int64_t b) { return a - b; });
    } else {
      BoxedBinaryKernel(l, r, out, Combine);
    }
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " - " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class MulExpr : public Expression {
 public:
  MulExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  static Value Combine(const Value& lv, const Value& rv) {
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    if (lv.type() == TypeId::kInt && rv.type() == TypeId::kInt) {
      return Value(lv.AsInt() * rv.AsInt());
    }
    return Value(lv.AsNumeric() * rv.AsNumeric());
  }
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return Combine(left_->Evaluate(t, s), right_->Evaluate(t, s));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    if (l.is_int() && r.is_int()) {
      IntBinaryKernel(l, r, out, [](int64_t a, int64_t b) { return a * b; });
    } else {
      BoxedBinaryKernel(l, r, out, Combine);
    }
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " * " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class DivExpr : public Expression {
 public:
  DivExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  static Value Combine(const Value& lv, const Value& rv) {
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    if (lv.type() == TypeId::kInt && rv.type() == TypeId::kInt) {
      if (rv.AsInt() == 0) return Value::Null();
      return Value(lv.AsInt() / rv.AsInt());
    }
    if (rv.AsNumeric() == 0) return Value::Null();
    return Value(lv.AsNumeric() / rv.AsNumeric());
  }
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return Combine(left_->Evaluate(t, s), right_->Evaluate(t, s));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    if (!l.is_int() || !r.is_int()) {
      BoxedBinaryKernel(l, r, out, Combine);
      return;
    }
    // Int division adds its own NULL source (division by zero), so it gets
    // a dedicated kernel instead of IntBinaryKernel.
    const size_t n = l.size();
    out->ResetIntFilled(n);
    std::vector<int64_t>& o = out->MutableInts();
    const std::vector<int64_t>& a = l.ints();
    const std::vector<int64_t>& b = r.ints();
    for (size_t i = 0; i < n; i++) {
      if (l.IsNull(i) || r.IsNull(i) || b[i] == 0) {
        out->SetNull(i);
      } else {
        o[i] = a[i] / b[i];
      }
    }
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " / " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

class CompareExpr : public Expression {
 public:
  CompareExpr(CompareOp op, ExprRef l, ExprRef r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  static Value Combine(CompareOp op, const Value& lv, const Value& rv) {
    if (lv.IsNull() || rv.IsNull()) return Value::Null();  // SQL unknown
    int c = lv.Compare(rv);
    bool result = false;
    switch (op) {
      case CompareOp::kEq: result = c == 0; break;
      case CompareOp::kNe: result = c != 0; break;
      case CompareOp::kLt: result = c < 0; break;
      case CompareOp::kLe: result = c <= 0; break;
      case CompareOp::kGt: result = c > 0; break;
      case CompareOp::kGe: result = c >= 0; break;
    }
    return Value(static_cast<int64_t>(result ? 1 : 0));
  }
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return Combine(op_, left_->Evaluate(t, s), right_->Evaluate(t, s));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    if (!l.is_int() || !r.is_int()) {
      BoxedBinaryKernel(l, r, out,
                        [op = op_](const Value& lv, const Value& rv) {
                          return Combine(op, lv, rv);
                        });
      return;
    }
    // Int comparisons (the body of every frontier predicate) run one
    // branchless kernel per operator over the unboxed columns.
    switch (op_) {
      case CompareOp::kEq:
        IntBinaryKernel(l, r, out,
                        [](int64_t a, int64_t b) -> int64_t { return a == b; });
        break;
      case CompareOp::kNe:
        IntBinaryKernel(l, r, out,
                        [](int64_t a, int64_t b) -> int64_t { return a != b; });
        break;
      case CompareOp::kLt:
        IntBinaryKernel(l, r, out,
                        [](int64_t a, int64_t b) -> int64_t { return a < b; });
        break;
      case CompareOp::kLe:
        IntBinaryKernel(l, r, out,
                        [](int64_t a, int64_t b) -> int64_t { return a <= b; });
        break;
      case CompareOp::kGt:
        IntBinaryKernel(l, r, out,
                        [](int64_t a, int64_t b) -> int64_t { return a > b; });
        break;
      case CompareOp::kGe:
        IntBinaryKernel(l, r, out,
                        [](int64_t a, int64_t b) -> int64_t { return a >= b; });
        break;
    }
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + OpName(op_) + " " +
           right_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprRef left_, right_;
};

class AndExpr : public Expression {
 public:
  AndExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    if (!lv.IsNull() && lv.AsInt() == 0) return Value(int64_t{0});
    Value rv = right_->Evaluate(t, s);
    if (!rv.IsNull() && rv.AsInt() == 0) return Value(int64_t{0});
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    return Value(int64_t{1});
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    // Three-valued AND over fully evaluated sides: same truth table as the
    // short-circuiting scalar path (false dominates NULL).
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    const size_t n = l.size();
    if (l.is_int() && r.is_int()) {
      out->ResetIntFilled(n);
      std::vector<int64_t>& o = out->MutableInts();
      const std::vector<int64_t>& a = l.ints();
      const std::vector<int64_t>& b = r.ints();
      if (!l.has_nulls() && !r.has_nulls()) {
        for (size_t i = 0; i < n; i++) o[i] = (a[i] != 0) & (b[i] != 0);
        return;
      }
      for (size_t i = 0; i < n; i++) {
        const bool ln = l.IsNull(i), rn = r.IsNull(i);
        if (!ln && a[i] == 0) {
          o[i] = 0;
        } else if (!rn && b[i] == 0) {
          o[i] = 0;
        } else if (ln || rn) {
          out->SetNull(i);
        } else {
          o[i] = 1;
        }
      }
      return;
    }
    BoxedBinaryKernel(l, r, out, [](const Value& lv, const Value& rv) {
      if (!lv.IsNull() && lv.AsInt() == 0) return Value(int64_t{0});
      if (!rv.IsNull() && rv.AsInt() == 0) return Value(int64_t{0});
      if (lv.IsNull() || rv.IsNull()) return Value::Null();
      return Value(int64_t{1});
    });
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class OrExpr : public Expression {
 public:
  OrExpr(ExprRef l, ExprRef r) : left_(std::move(l)), right_(std::move(r)) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    Value lv = left_->Evaluate(t, s);
    if (!lv.IsNull() && lv.AsInt() != 0) return Value(int64_t{1});
    Value rv = right_->Evaluate(t, s);
    if (!rv.IsNull() && rv.AsInt() != 0) return Value(int64_t{1});
    if (lv.IsNull() || rv.IsNull()) return Value::Null();
    return Value(int64_t{0});
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn ls, rs;
    ValueColumn& l = *ls;
    ValueColumn& r = *rs;
    left_->EvalBatch(batch, &l);
    right_->EvalBatch(batch, &r);
    const size_t n = l.size();
    if (l.is_int() && r.is_int()) {
      out->ResetIntFilled(n);
      std::vector<int64_t>& o = out->MutableInts();
      const std::vector<int64_t>& a = l.ints();
      const std::vector<int64_t>& b = r.ints();
      if (!l.has_nulls() && !r.has_nulls()) {
        for (size_t i = 0; i < n; i++) o[i] = (a[i] != 0) | (b[i] != 0);
        return;
      }
      for (size_t i = 0; i < n; i++) {
        const bool ln = l.IsNull(i), rn = r.IsNull(i);
        if (!ln && a[i] != 0) {
          o[i] = 1;
        } else if (!rn && b[i] != 0) {
          o[i] = 1;
        } else if (ln || rn) {
          out->SetNull(i);
        } else {
          o[i] = 0;
        }
      }
      return;
    }
    BoxedBinaryKernel(l, r, out, [](const Value& lv, const Value& rv) {
      if (!lv.IsNull() && lv.AsInt() != 0) return Value(int64_t{1});
      if (!rv.IsNull() && rv.AsInt() != 0) return Value(int64_t{1});
      if (lv.IsNull() || rv.IsNull()) return Value::Null();
      return Value(int64_t{0});
    });
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
  }

 private:
  ExprRef left_, right_;
};

class IsNullExpr : public Expression {
 public:
  IsNullExpr(ExprRef inner, bool negated)
      : inner_(std::move(inner)), negated_(negated) {}
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    bool is_null = inner_->Evaluate(t, s).IsNull();
    return Value(static_cast<int64_t>(is_null != negated_ ? 1 : 0));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn is_;
    ValueColumn& inner = *is_;
    inner_->EvalBatch(batch, &inner);
    const size_t n = inner.size();
    out->ResetIntFilled(n);
    std::vector<int64_t>& o = out->MutableInts();
    for (size_t i = 0; i < n; i++) {
      o[i] = inner.IsNull(i) != negated_ ? 1 : 0;
    }
  }
  std::string ToString() const override {
    return inner_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprRef inner_;
  bool negated_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprRef inner) : inner_(std::move(inner)) {}
  static Value Combine(const Value& v) {
    if (v.IsNull()) return Value::Null();
    return Value(static_cast<int64_t>(v.AsInt() == 0 ? 1 : 0));
  }
  Value Evaluate(const Tuple& t, const Schema& s) const override {
    return Combine(inner_->Evaluate(t, s));
  }
  void EvalBatch(const RowBatch& batch, ValueColumn* out) const override {
    ScratchColumn is_;
    ValueColumn& inner = *is_;
    inner_->EvalBatch(batch, &inner);
    const size_t n = inner.size();
    if (inner.is_int()) {
      out->ResetIntFilled(n);
      std::vector<int64_t>& o = out->MutableInts();
      const std::vector<int64_t>& a = inner.ints();
      for (size_t i = 0; i < n; i++) {
        if (inner.IsNull(i)) {
          out->SetNull(i);
        } else {
          o[i] = a[i] == 0;
        }
      }
      return;
    }
    out->Reset(n);
    for (size_t i = 0; i < n; i++) out->Append(Combine(inner.Get(i)));
  }
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }

 private:
  ExprRef inner_;
};

}  // namespace

ExprRef Col(std::string name) {
  return std::make_shared<ColumnExpr>(std::move(name));
}
ExprRef Param(const BindContext* ctx, size_t slot, std::string name) {
  return std::make_shared<ParamExpr>(ctx, slot, std::move(name));
}
ExprRef BoundSlot(const BindContext* ctx, size_t slot) {
  return std::make_shared<BoundSlotExpr>(ctx, slot);
}
ExprRef Lit(int64_t v) { return std::make_shared<LiteralExpr>(Value(v)); }
ExprRef Lit(double v) { return std::make_shared<LiteralExpr>(Value(v)); }
ExprRef Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Value(std::move(v)));
}
ExprRef Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprRef NullLit() { return std::make_shared<LiteralExpr>(Value::Null()); }
ExprRef Add(ExprRef left, ExprRef right) {
  return std::make_shared<AddExpr>(std::move(left), std::move(right));
}
ExprRef Sub(ExprRef left, ExprRef right) {
  return std::make_shared<SubExpr>(std::move(left), std::move(right));
}
ExprRef Mul(ExprRef left, ExprRef right) {
  return std::make_shared<MulExpr>(std::move(left), std::move(right));
}
ExprRef Div(ExprRef left, ExprRef right) {
  return std::make_shared<DivExpr>(std::move(left), std::move(right));
}
ExprRef IsNull(ExprRef inner, bool negated) {
  return std::make_shared<IsNullExpr>(std::move(inner), negated);
}
ExprRef Cmp(CompareOp op, ExprRef left, ExprRef right) {
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}
ExprRef And(ExprRef left, ExprRef right) {
  return std::make_shared<AndExpr>(std::move(left), std::move(right));
}
ExprRef Or(ExprRef left, ExprRef right) {
  return std::make_shared<OrExpr>(std::move(left), std::move(right));
}
ExprRef Not(ExprRef inner) { return std::make_shared<NotExpr>(std::move(inner)); }

ExprRef ColEq(std::string name, int64_t v) {
  return Cmp(CompareOp::kEq, Col(std::move(name)), Lit(v));
}

bool EvalPredicate(const Expression& expr, const Tuple& tuple,
                   const Schema& schema) {
  Value v = expr.Evaluate(tuple, schema);
  return !v.IsNull() && v.AsInt() != 0;
}

void EvalPredicateBatch(const Expression& expr, const RowBatch& batch,
                        ValueColumn* scratch, std::vector<char>* keep) {
  if (!batch.has_selection() && batch.num_rows() < kMinVectorizedRows) {
    // Tiny dense batch (the FEM loop's single-digit-row frontier
    // statements): per-row evaluation beats the per-node column setup
    // cost. Selection-carrying batches always vectorize — the producer
    // only forwards a selection when enough lanes survive.
    keep->resize(batch.num_rows());
    for (size_t i = 0; i < batch.num_rows(); i++) {
      (*keep)[i] = EvalPredicate(expr, batch.row(i), batch.schema()) ? 1 : 0;
    }
    return;
  }
  expr.EvalBatch(batch, scratch);
  const size_t n = scratch->size();
  keep->resize(n);
  if (scratch->is_int() && !scratch->has_nulls()) {
    const std::vector<int64_t>& v = scratch->ints();
    for (size_t i = 0; i < n; i++) (*keep)[i] = v[i] != 0;
    return;
  }
  for (size_t i = 0; i < n; i++) {
    if (scratch->IsNull(i)) {
      (*keep)[i] = 0;
    } else if (scratch->is_int()) {
      (*keep)[i] = scratch->IntAt(i) != 0;
    } else {
      (*keep)[i] = scratch->Get(i).AsInt() != 0;
    }
  }
}

}  // namespace relgraph
