#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/tuple.h"
#include "src/types/value.h"

namespace relgraph {

/// Scalar expression tree evaluated against one tuple. This is the
/// machinery behind every WHERE predicate, SELECT list item, join
/// condition, and MERGE action in the paper's SQL listings.
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Value Evaluate(const Tuple& tuple, const Schema& schema) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprRef = std::shared_ptr<const Expression>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// References a column by name; resolved against the schema at evaluation
/// time so one expression works across plans with compatible columns.
ExprRef Col(std::string name);
/// Integer / double / string / NULL literals.
ExprRef Lit(int64_t v);
ExprRef Lit(double v);
ExprRef Lit(std::string v);
ExprRef Lit(Value v);
ExprRef NullLit();
/// Arithmetic and logic. Div is SQL division: NULL on division by zero,
/// integer division for two INTs.
ExprRef Add(ExprRef left, ExprRef right);
ExprRef Sub(ExprRef left, ExprRef right);
ExprRef Mul(ExprRef left, ExprRef right);
ExprRef Div(ExprRef left, ExprRef right);
ExprRef Cmp(CompareOp op, ExprRef left, ExprRef right);
ExprRef And(ExprRef left, ExprRef right);
ExprRef Or(ExprRef left, ExprRef right);
ExprRef Not(ExprRef inner);
/// SQL IS NULL / IS NOT NULL (distinct from `= NULL`, which is unknown).
ExprRef IsNull(ExprRef inner, bool negated = false);

/// Shorthand: column = integer literal, the most common predicate.
ExprRef ColEq(std::string name, int64_t v);

/// SQL boolean test: true only when the value is non-null and nonzero
/// (comparisons yield INT 0/1; NULL propagates as "unknown" = not true).
bool EvalPredicate(const Expression& expr, const Tuple& tuple,
                   const Schema& schema);

}  // namespace relgraph
