#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/types/schema.h"
#include "src/types/tuple.h"
#include "src/types/value.h"

namespace relgraph {

/// Column-oriented view over a run of same-schema tuples — the unit the
/// batch-mode evaluator works on. Expressions evaluated against a RowBatch
/// produce one *column vector* per tree node (EvalBatch below), which hoists
/// schema name resolution and virtual dispatch out of the per-row loop: one
/// IndexOf and one virtual call per node per batch, instead of per row.
/// The view borrows the tuples; it must not outlive them.
class RowBatch {
 public:
  RowBatch(const std::vector<Tuple>& rows, const Schema& schema)
      : rows_(rows.data()), num_rows_(rows.size()), schema_(&schema) {}
  /// Borrowed-span form (NextBatchView output).
  RowBatch(const Tuple* rows, size_t n, const Schema& schema)
      : rows_(rows), num_rows_(n), schema_(&schema) {}
  /// Selection-vector form (NextBatchSel output): only rows[sel[i]] for
  /// i < sel_n are part of the batch. num_rows() reports the *selected*
  /// count and row(i) maps through the selection, so expression kernels
  /// evaluate exactly the qualifying lanes and their output columns are
  /// compact (entry i of every column belongs to lane i). A null `sel`
  /// degrades to the dense span form.
  RowBatch(const Tuple* rows, size_t n, const Schema& schema,
           const uint32_t* sel, size_t sel_n)
      : rows_(rows),
        num_rows_(sel != nullptr ? sel_n : n),
        schema_(&schema),
        sel_(sel) {}

  size_t num_rows() const { return num_rows_; }
  const Tuple& row(size_t i) const {
    return rows_[sel_ != nullptr ? sel_[i] : i];
  }
  bool has_selection() const { return sel_ != nullptr; }
  const Schema& schema() const { return *schema_; }

 private:
  const Tuple* rows_;
  size_t num_rows_;  // selected count when sel_ is set
  const Schema* schema_;
  const uint32_t* sel_ = nullptr;
};

/// One expression's output over a whole RowBatch. Two representations:
///
///  - *unboxed*: a contiguous int64 vector plus an optional null bitmap —
///    the fast path. Every column of the shortest-path workload (TVisited,
///    TEdges, the expansion view) is INT, so predicates and arithmetic
///    compile down to tight loops over plain machine words with no variant
///    dispatch per row;
///  - *boxed*: a Value vector for anything else (doubles, strings). The
///    column demotes itself automatically the first time a non-INT value
///    is appended, so mixed data stays correct.
///
/// Builders come in two flavors: Append() classifies value by value (used
/// by the generic fallback), while ResetIntFilled()/MutableInts()/SetNull()
/// let vectorized operators write the unboxed representation directly.
class ValueColumn {
 public:
  size_t size() const { return is_int_ ? ints_.size() : boxed_.size(); }
  bool is_int() const { return is_int_; }
  bool has_nulls() const { return is_int_ ? has_nulls_ : true; }

  bool IsNull(size_t i) const {
    return is_int_ ? (has_nulls_ && nulls_[i] != 0) : boxed_[i].IsNull();
  }
  /// Unboxed element (valid on the int path when !IsNull(i)).
  int64_t IntAt(size_t i) const { return ints_[i]; }
  const std::vector<int64_t>& ints() const { return ints_; }
  /// Boxed view of element i (constructs a Value on the int path).
  Value Get(size_t i) const {
    if (!is_int_) return boxed_[i];
    if (has_nulls_ && nulls_[i] != 0) return Value::Null();
    return Value(ints_[i]);
  }

  /// Restart as an empty int-optimistic column with room for n rows.
  void Reset(size_t n) {
    is_int_ = true;
    has_nulls_ = false;
    ints_.clear();
    ints_.reserve(n);
    nulls_.clear();
    boxed_.clear();
  }
  /// Restart as an int column of n slots, all non-null, values unset —
  /// the writer fills MutableInts() and flags exceptions via SetNull().
  void ResetIntFilled(size_t n) {
    is_int_ = true;
    has_nulls_ = false;
    ints_.resize(n);
    nulls_.clear();
    boxed_.clear();
  }
  std::vector<int64_t>& MutableInts() { return ints_; }
  void SetNull(size_t i) {
    if (!has_nulls_) {
      has_nulls_ = true;
      nulls_.assign(ints_.size(), 0);
    }
    nulls_[i] = 1;
  }
  /// Classifying append: stays unboxed for INT/NULL, demotes otherwise.
  void Append(Value v) {
    if (is_int_) {
      if (v.type() == TypeId::kInt) {
        ints_.push_back(v.AsInt());
        if (has_nulls_) nulls_.push_back(0);
        return;
      }
      if (v.IsNull()) {
        AppendNull();
        return;
      }
      DemoteToBoxed();
    }
    boxed_.push_back(std::move(v));
  }
  /// By-reference variant of Append: the int path reads the value without
  /// ever constructing a Value copy (the per-row cost of column loads).
  void AppendRef(const Value& v) {
    if (is_int_) {
      if (v.type() == TypeId::kInt) {
        ints_.push_back(v.AsInt());
        if (has_nulls_) nulls_.push_back(0);
        return;
      }
      if (v.IsNull()) {
        AppendNull();
        return;
      }
      DemoteToBoxed();
    }
    boxed_.push_back(v);
  }
  void AppendNull() {
    if (!is_int_) {
      boxed_.push_back(Value::Null());
      return;
    }
    if (!has_nulls_) {
      has_nulls_ = true;
      nulls_.assign(ints_.size(), 0);
    }
    ints_.push_back(0);
    nulls_.push_back(1);
  }

 private:
  void DemoteToBoxed() {
    boxed_.clear();
    boxed_.reserve(ints_.size() + 1);
    for (size_t i = 0; i < ints_.size(); i++) {
      boxed_.push_back(has_nulls_ && nulls_[i] ? Value::Null()
                                               : Value(ints_[i]));
    }
    is_int_ = false;
    ints_.clear();
    nulls_.clear();
  }

  bool is_int_ = true;
  bool has_nulls_ = false;
  std::vector<int64_t> ints_;
  std::vector<uint8_t> nulls_;  // parallel to ints_ once has_nulls_ is set
  std::vector<Value> boxed_;
};

/// Scalar expression tree evaluated against one tuple. This is the
/// machinery behind every WHERE predicate, SELECT list item, join
/// condition, and MERGE action in the paper's SQL listings.
///
/// Every node also evaluates set-at-a-time via EvalBatch; the two entry
/// points always produce the same values (pinned by test_exec_batch.cc).
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Value Evaluate(const Tuple& tuple, const Schema& schema) const = 0;

  /// Evaluates the expression for every row of `batch` into one column.
  /// The base implementation is the scalar fallback (one Evaluate per row)
  /// so exotic nodes stay correct; the arithmetic/comparison/logic/column
  /// nodes override it with column-at-a-time loops that hoist schema
  /// resolution and virtual dispatch out of the row loop, and run unboxed
  /// int64 kernels when their inputs are int columns. AND/OR lose their
  /// short-circuit *work* saving in batch mode (both sides are evaluated
  /// for all rows) but keep their three-valued-logic results; expressions
  /// are side-effect free, so the streams cannot diverge.
  virtual void EvalBatch(const RowBatch& batch, ValueColumn* out) const;

  virtual std::string ToString() const = 0;
};

using ExprRef = std::shared_ptr<const Expression>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

class BindContext;

/// References a column by name; resolved against the schema at evaluation
/// time so one expression works across plans with compatible columns.
ExprRef Col(std::string name);
/// Prepared-statement parameter `:name`: reads slot `slot` of `ctx` at
/// evaluation time, so one compiled plan re-executes with fresh bindings.
/// Unbound slots read as NULL (BindContext::BindNamed guarantees named
/// slots are bound before a plan runs).
ExprRef Param(const BindContext* ctx, size_t slot, std::string name);
/// Scalar-subquery result slot, filled at bind time by the prepared
/// statement right before the main plan opens — the executor-layer
/// replacement for folding subqueries into the plan. ToString renders the
/// current value when bound (what EXPLAIN shows), "(subquery)" otherwise.
ExprRef BoundSlot(const BindContext* ctx, size_t slot);
/// Integer / double / string / NULL literals.
ExprRef Lit(int64_t v);
ExprRef Lit(double v);
ExprRef Lit(std::string v);
ExprRef Lit(Value v);
ExprRef NullLit();
/// Arithmetic and logic. Div is SQL division: NULL on division by zero,
/// integer division for two INTs.
ExprRef Add(ExprRef left, ExprRef right);
ExprRef Sub(ExprRef left, ExprRef right);
ExprRef Mul(ExprRef left, ExprRef right);
ExprRef Div(ExprRef left, ExprRef right);
ExprRef Cmp(CompareOp op, ExprRef left, ExprRef right);
ExprRef And(ExprRef left, ExprRef right);
ExprRef Or(ExprRef left, ExprRef right);
ExprRef Not(ExprRef inner);
/// SQL IS NULL / IS NOT NULL (distinct from `= NULL`, which is unknown).
ExprRef IsNull(ExprRef inner, bool negated = false);

/// Shorthand: column = integer literal, the most common predicate.
ExprRef ColEq(std::string name, int64_t v);

/// Below this many rows, batch consumers evaluate row-at-a-time instead of
/// materializing per-node columns: the FEM loop issues thousands of tiny
/// statements (single-digit-row frontiers), where EvalBatch's fixed
/// per-node setup outweighs its per-row savings. Both paths are
/// value-identical (pinned by test_exec_batch.cc), so this is purely a
/// cost-model cutoff.
inline constexpr size_t kMinVectorizedRows = 16;

/// SQL boolean test: true only when the value is non-null and nonzero
/// (comparisons yield INT 0/1; NULL propagates as "unknown" = not true).
bool EvalPredicate(const Expression& expr, const Tuple& tuple,
                   const Schema& schema);

/// Batch form of EvalPredicate: keep->at(i) is 1 when row i passes. `scratch`
/// is caller-owned so its capacity survives across batches.
void EvalPredicateBatch(const Expression& expr, const RowBatch& batch,
                        ValueColumn* scratch, std::vector<char>* keep);

}  // namespace relgraph
