#include "src/exec/join_executors.h"

namespace relgraph {

// ---------------------------------------------------------- NestedLoopJoin

NestedLoopJoinExecutor::NestedLoopJoinExecutor(ExecRef left, ExecRef right,
                                               ExprRef predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  output_schema_ =
      ConcatSchemas(left_->OutputSchema(), right_->OutputSchema());
}

Status NestedLoopJoinExecutor::Init() {
  RELGRAPH_RETURN_IF_ERROR(left_->Init());
  right_rows_.clear();
  RELGRAPH_RETURN_IF_ERROR(Collect(right_.get(), &right_rows_));
  have_left_ = false;
  right_pos_ = 0;
  return Status::OK();
}

bool NestedLoopJoinExecutor::Next(Tuple* out) {
  for (;;) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) {
        status_ = left_->status();
        return false;
      }
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      Tuple joined = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      if (predicate_ == nullptr ||
          EvalPredicate(*predicate_, joined, output_schema_)) {
        *out = std::move(joined);
        return true;
      }
    }
    have_left_ = false;
  }
}

const Schema& NestedLoopJoinExecutor::OutputSchema() const {
  return output_schema_;
}

// ----------------------------------------------------- IndexNestedLoopJoin

IndexNestedLoopJoinExecutor::IndexNestedLoopJoinExecutor(
    ExecRef outer, Table* inner, std::string inner_column, ExprRef outer_key,
    ExprRef residual)
    : outer_(std::move(outer)),
      inner_(inner),
      inner_column_(std::move(inner_column)),
      outer_key_(std::move(outer_key)),
      residual_(std::move(residual)) {
  output_schema_ = ConcatSchemas(outer_->OutputSchema(), inner_->schema());
}

Status IndexNestedLoopJoinExecutor::Init() {
  if (!inner_->HasIndexOn(inner_column_)) {
    return Status::InvalidArgument("index nested-loop join requires index on " +
                                   inner_column_);
  }
  have_outer_ = false;
  inner_open_ = false;
  return outer_->Init();
}

bool IndexNestedLoopJoinExecutor::Next(Tuple* out) {
  for (;;) {
    if (!have_outer_) {
      if (!outer_->Next(&current_outer_)) {
        status_ = outer_->status();
        return false;
      }
      have_outer_ = true;
      Value key = outer_key_->Evaluate(current_outer_, outer_->OutputSchema());
      if (key.IsNull()) {  // NULL keys join nothing
        have_outer_ = false;
        continue;
      }
      status_ = inner_->ScanRange(inner_column_, key.AsInt(), key.AsInt(),
                                  &inner_it_);
      if (!status_.ok()) return false;
      inner_open_ = true;
    }
    Tuple inner_tuple;
    while (inner_open_ && inner_it_.Next(&inner_tuple, nullptr)) {
      Tuple joined = ConcatTuples(current_outer_, inner_tuple);
      if (residual_ == nullptr ||
          EvalPredicate(*residual_, joined, output_schema_)) {
        *out = std::move(joined);
        return true;
      }
    }
    if (inner_open_ && !inner_it_.status().ok()) {
      status_ = inner_it_.status();
      return false;
    }
    have_outer_ = false;
    inner_open_ = false;
  }
}

const Schema& IndexNestedLoopJoinExecutor::OutputSchema() const {
  return output_schema_;
}

}  // namespace relgraph
