#include "src/exec/join_executors.h"

namespace relgraph {

// ---------------------------------------------------------- NestedLoopJoin

NestedLoopJoinExecutor::NestedLoopJoinExecutor(ExecRef left, ExecRef right,
                                               ExprRef predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  output_schema_ =
      ConcatSchemas(left_->OutputSchema(), right_->OutputSchema());
}

Status NestedLoopJoinExecutor::Init() {
  RELGRAPH_RETURN_IF_ERROR(left_->Init());
  right_rows_.clear();
  RELGRAPH_RETURN_IF_ERROR(Collect(right_.get(), &right_rows_));
  have_left_ = false;
  right_pos_ = 0;
  return Status::OK();
}

bool NestedLoopJoinExecutor::Next(Tuple* out) {
  for (;;) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) {
        status_ = left_->status();
        return false;
      }
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      Tuple joined = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      if (predicate_ == nullptr ||
          EvalPredicate(*predicate_, joined, output_schema_)) {
        *out = std::move(joined);
        return true;
      }
    }
    have_left_ = false;
  }
}

const Schema& NestedLoopJoinExecutor::OutputSchema() const {
  return output_schema_;
}

// ----------------------------------------------------- IndexNestedLoopJoin

IndexNestedLoopJoinExecutor::IndexNestedLoopJoinExecutor(
    ExecRef outer, Table* inner, std::string inner_column, ExprRef outer_key,
    ExprRef residual)
    : outer_(std::move(outer)),
      inner_(inner),
      inner_column_(std::move(inner_column)),
      outer_key_(std::move(outer_key)),
      residual_(std::move(residual)) {
  output_schema_ = ConcatSchemas(outer_->OutputSchema(), inner_->schema());
}

Status IndexNestedLoopJoinExecutor::Init() {
  if (!inner_->HasIndexOn(inner_column_)) {
    return Status::InvalidArgument("index nested-loop join requires index on " +
                                   inner_column_);
  }
  outer_span_ = BatchSpan{};
  outer_lane_ = 0;
  inner_open_ = false;
  return outer_->Init();
}

bool IndexNestedLoopJoinExecutor::OpenNextOuter() {
  for (;;) {
    if (outer_lane_ >= outer_span_.count()) {
      if (!outer_->NextBatchSel(&outer_span_)) {
        status_ = outer_->status();
        return false;
      }
      outer_lane_ = 0;
    }
    Value key = outer_key_->Evaluate(outer_span_.row(outer_lane_),
                                     outer_->OutputSchema());
    if (key.IsNull()) {  // NULL keys join nothing
      outer_lane_++;
      continue;
    }
    status_ = inner_->ScanRange(inner_column_, key.AsInt(), key.AsInt(),
                                &inner_it_);
    if (!status_.ok()) return false;
    inner_open_ = true;
    return true;
  }
}

bool IndexNestedLoopJoinExecutor::Next(Tuple* out) {
  for (;;) {
    if (!inner_open_ && !OpenNextOuter()) return false;
    while (inner_it_.Next(&inner_tuple_, nullptr)) {
      Tuple joined = ConcatTuples(outer_span_.row(outer_lane_), inner_tuple_);
      if (residual_ == nullptr ||
          EvalPredicate(*residual_, joined, output_schema_)) {
        *out = std::move(joined);
        return true;
      }
    }
    if (!inner_it_.status().ok()) {
      status_ = inner_it_.status();
      return false;
    }
    inner_open_ = false;
    outer_lane_++;
  }
}

bool IndexNestedLoopJoinExecutor::NextBatch(std::vector<Tuple>* out) {
  // Non-virtual self-call: one virtual hop per batch instead of per row.
  return DrainBatchInto(
      out, [this](Tuple* t) { return IndexNestedLoopJoinExecutor::Next(t); });
}

const Schema& IndexNestedLoopJoinExecutor::OutputSchema() const {
  return output_schema_;
}

}  // namespace relgraph
