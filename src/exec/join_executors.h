#pragma once

#include <string>
#include <vector>

#include "src/catalog/table.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"

namespace relgraph {

/// Block nested-loop join: the right input is materialized once, then each
/// left tuple is paired against it under `predicate` (evaluated over the
/// concatenated schema). This is the E-operator's fallback plan when TEdges
/// has no index — the paper's NoIndex configuration.
class NestedLoopJoinExecutor : public Executor {
 public:
  NestedLoopJoinExecutor(ExecRef left, ExecRef right, ExprRef predicate);
  Status Init() override;
  bool Next(Tuple* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append(predicate_ == nullptr
                    ? "NestedLoopJoin (cross)\n"
                    : "NestedLoopJoin: " + predicate_->ToString() + "\n");
    left_->Explain(depth + 1, out);
    right_->Explain(depth + 1, out);
  }

 private:
  ExecRef left_;
  ExecRef right_;
  ExprRef predicate_;
  Schema output_schema_;
  std::vector<Tuple> right_rows_;
  Tuple current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Index nested-loop join: for each outer tuple, evaluates `outer_key` and
/// probes the inner table's index on `inner_column` for equal keys. This is
/// the plan the RDBMS optimizer picks for the E-operator join
/// `TVisited ⋈ TEdges ON TVisited.nid = TEdges.fid` when TEdges is indexed
/// (the paper's Index / CluIndex configurations). An optional residual
/// predicate is applied to the concatenated row — the BSEG pruning rule
/// `out.cost + q.d2s + lb < minCost` lands there.
class IndexNestedLoopJoinExecutor : public Executor {
 public:
  IndexNestedLoopJoinExecutor(ExecRef outer, Table* inner,
                              std::string inner_column, ExprRef outer_key,
                              ExprRef residual = nullptr);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("IndexNestedLoopJoin: probe " + inner_->name() + "." +
                inner_column_ + " = " + outer_key_->ToString());
    if (residual_ != nullptr) {
      out->append(" residual " + residual_->ToString());
    }
    out->append("\n");
    outer_->Explain(depth + 1, out);
  }

 private:
  /// Advances to the next outer row with a non-NULL key and opens its inner
  /// range scan; false when the outer side is exhausted or on error.
  bool OpenNextOuter();

  ExecRef outer_;
  Table* inner_;
  std::string inner_column_;
  ExprRef outer_key_;
  ExprRef residual_;
  Schema output_schema_;
  // The outer side is pulled through NextBatchSel: probes walk the
  // borrowed span lane by lane, so a filtered outer (the E-operator's
  // frontier restriction) flows into the join without ever being
  // compacted, and the per-row virtual-call round trip disappears from
  // the join loop. The span stays valid because the outer child is only
  // pulled again once every lane has been probed.
  BatchSpan outer_span_;
  size_t outer_lane_ = 0;
  Tuple inner_tuple_;  // reused across probes
  Table::Iterator inner_it_;
  bool inner_open_ = false;
};

}  // namespace relgraph
