#include "src/exec/scan_executors.h"

namespace relgraph {

Schema PrefixSchema(const Schema& schema, const std::string& prefix) {
  std::vector<Column> cols;
  cols.reserve(schema.NumColumns());
  for (const auto& c : schema.columns()) {
    cols.push_back({prefix + c.name, c.type});
  }
  return Schema(std::move(cols));
}

namespace {

/// Shared single-pull and batch-drain bodies for the two table-iterator
/// scans. Once the iterator reports false — end of stream *or* error —
/// `exhausted` latches so neither pull style touches it again: resuming a
/// failed iterator would skip the bad row and overwrite its error status,
/// making the batch stream diverge from the Next() stream.
bool PullIterator(Table::Iterator* it, bool* exhausted, Status* status,
                  Tuple* out) {
  if (*exhausted) return false;
  if (!it->Next(out, nullptr)) {
    *exhausted = true;
    *status = it->status();
    return false;
  }
  return true;
}

bool DrainIteratorBatch(Table::Iterator* it, bool* exhausted, Status* status,
                        std::vector<Tuple>* out) {
  return DrainBatchInto(out, [&](Tuple* t) {
    return PullIterator(it, exhausted, status, t);
  });
}

}  // namespace

// ---------------------------------------------------------------- SeqScan

SeqScanExecutor::SeqScanExecutor(Table* table) : table_(table) {}

Status SeqScanExecutor::Init() {
  it_ = table_->Scan();
  exhausted_ = false;
  return Status::OK();
}

bool SeqScanExecutor::Next(Tuple* out) {
  return PullIterator(&it_, &exhausted_, &status_, out);
}

bool SeqScanExecutor::NextBatch(std::vector<Tuple>* out) {
  return DrainIteratorBatch(&it_, &exhausted_, &status_, out);
}

const Schema& SeqScanExecutor::OutputSchema() const {
  return table_->schema();
}

// ---------------------------------------------------------- IndexRangeScan

bool KeyRangeFor(CompareOp op, int64_t k, int64_t* lo, int64_t* hi) {
  constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMaxKey = std::numeric_limits<int64_t>::max();
  switch (op) {
    case CompareOp::kEq: *lo = *hi = k; return true;
    case CompareOp::kLe: *lo = kMinKey; *hi = k; return true;
    case CompareOp::kLt:
      if (k == kMinKey) return false;
      *lo = kMinKey;
      *hi = k - 1;
      return true;
    case CompareOp::kGe: *lo = k; *hi = kMaxKey; return true;
    case CompareOp::kGt:
      if (k == kMaxKey) return false;
      *lo = k + 1;
      *hi = kMaxKey;
      return true;
    default:
      return false;  // <> has no contiguous range
  }
}

IndexRangeScanExecutor::IndexRangeScanExecutor(Table* table,
                                               std::string column, int64_t lo,
                                               int64_t hi)
    : table_(table), column_(std::move(column)), lo_(lo), hi_(hi) {}

IndexRangeScanExecutor::IndexRangeScanExecutor(Table* table,
                                               std::string column,
                                               CompareOp op, ExprRef key)
    : table_(table),
      column_(std::move(column)),
      lo_(std::numeric_limits<int64_t>::min()),
      hi_(std::numeric_limits<int64_t>::max()),
      key_(std::move(key)),
      op_(op) {}

void IndexRangeScanExecutor::ComputeRuntimeBounds() {
  lo_ = std::numeric_limits<int64_t>::min();
  hi_ = std::numeric_limits<int64_t>::max();
  Value v = key_->Evaluate(Tuple{}, Schema{});
  if (v.type() != TypeId::kInt) return;  // full range; residual filter decides
  int64_t lo, hi;
  if (KeyRangeFor(op_, v.AsInt(), &lo, &hi)) {
    lo_ = lo;
    hi_ = hi;
  }
}

Status IndexRangeScanExecutor::Init() {
  exhausted_ = false;
  if (key_ != nullptr) ComputeRuntimeBounds();
  return table_->ScanRange(column_, lo_, hi_, &it_);
}

void IndexRangeScanExecutor::Explain(int depth, std::string* out) const {
  Indent(depth, out);
  int64_t lo = lo_, hi = hi_;
  if (key_ != nullptr) {
    // Render the bounds the *current* bindings imply, so EXPLAIN on a
    // bound prepared statement shows real numbers; unbound slots read as
    // NULL, which leaves the range fully open.
    lo = std::numeric_limits<int64_t>::min();
    hi = std::numeric_limits<int64_t>::max();
    Value v = key_->Evaluate(Tuple{}, Schema{});
    if (v.type() == TypeId::kInt) KeyRangeFor(op_, v.AsInt(), &lo, &hi);
  }
  const bool open_lo = lo == std::numeric_limits<int64_t>::min();
  const bool open_hi = hi == std::numeric_limits<int64_t>::max();
  out->append("IndexRangeScan: " + table_->name() + "." + column_ + " in [" +
              (open_lo ? "-inf" : std::to_string(lo)) + ", " +
              (open_hi ? "+inf" : std::to_string(hi)) + "]" +
              (key_ != nullptr ? " (bound from " + key_->ToString() + ")" : "") +
              "\n");
}

bool IndexRangeScanExecutor::Next(Tuple* out) {
  return PullIterator(&it_, &exhausted_, &status_, out);
}

bool IndexRangeScanExecutor::NextBatch(std::vector<Tuple>* out) {
  return DrainIteratorBatch(&it_, &exhausted_, &status_, out);
}

const Schema& IndexRangeScanExecutor::OutputSchema() const {
  return table_->schema();
}

// ----------------------------------------------------------------- Filter

FilterExecutor::FilterExecutor(ExecRef child, ExprRef predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterExecutor::Init() { return child_->Init(); }

bool FilterExecutor::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (EvalPredicate(*predicate_, *out, child_->OutputSchema())) return true;
  }
  status_ = child_->status();
  return false;
}

namespace {

/// Copies the selected lanes of `span` into `dst` under the slot
/// discipline (overwrite existing slots, grow on demand, trim at the end).
void CompactLanes(const BatchSpan& span, const std::vector<char>& keep,
                  std::vector<Tuple>* dst) {
  const size_t lanes = span.count();
  size_t n = 0;
  for (size_t i = 0; i < lanes; i++) {
    if (!keep[i]) continue;
    if (n == dst->size()) dst->emplace_back();
    (*dst)[n++] = span.row(i);
  }
  dst->resize(n);
}

/// Flattens every lane of a (possibly sparse) span into `dst`, same slot
/// discipline.
void FlattenSpan(const BatchSpan& span, std::vector<Tuple>* dst) {
  const size_t lanes = span.count();
  for (size_t i = 0; i < lanes; i++) {
    if (i == dst->size()) dst->emplace_back();
    (*dst)[i] = span.row(i);
  }
  dst->resize(lanes);
}

}  // namespace

bool FilterExecutor::PullSel(BatchSpan* out, std::vector<Tuple>* compact_into) {
  const Schema& in_schema = child_->OutputSchema();
  // Each child batch is consumed whole, so no lanes straddle calls and the
  // forwarded span never exceeds one child batch — the batch-size cap holds
  // through filter stacks. The predicate runs as one EvalPredicateBatch per
  // child batch over exactly the child's selected lanes.
  for (;;) {
    BatchSpan cs;
    if (!child_->NextBatchSel(&cs)) {
      status_ = child_->status();
      return false;
    }
    RowBatch batch(cs.rows, cs.num_rows, in_schema, cs.sel, cs.num_sel);
    EvalPredicateBatch(*predicate_, batch, &pred_scratch_, &keep_);
    const size_t lanes = cs.count();
    size_t k = 0;
    for (size_t i = 0; i < lanes; i++) k += keep_[i] != 0;
    if (k == 0) continue;
    if (k == lanes) {
      // Every lane passed: forward the child's span untouched (for a
      // stacked filter this also preserves the child's selection vector).
      *out = cs;
      return true;
    }
    if (k >= SelVectorMinRows()) {
      // Enough survivors to be worth the downstream indirection: keep the
      // child's rows where they are and carry the qualifying indices.
      // cs.index(i) composes with the child's own selection, so the
      // forwarded sel always indexes the underlying row storage.
      sel_.clear();
      sel_.reserve(k);
      for (size_t i = 0; i < lanes; i++) {
        if (keep_[i]) sel_.push_back(static_cast<uint32_t>(cs.index(i)));
      }
      *out = BatchSpan{cs.rows, cs.num_rows, sel_.data(), sel_.size()};
      return true;
    }
    // Few survivors: a compact copy is cheaper than the indirection.
    CompactLanes(cs, keep_, compact_into);
    *out = BatchSpan{compact_into->data(), compact_into->size(), nullptr, 0};
    return true;
  }
}

bool FilterExecutor::NextBatchSel(BatchSpan* out) {
  return PullSel(out, &compact_buffer_);
}

bool FilterExecutor::NextBatchView(const Tuple** rows, size_t* n) {
  BatchSpan span;
  if (!PullSel(&span, &view_buffer_)) return false;
  if (span.dense()) {
    // Either the child's own storage (all-true: forwarded zero-copy) or
    // view_buffer_ (compacted below threshold) — serve it directly.
    *rows = span.rows;
    *n = span.num_rows;
    return true;
  }
  FlattenSpan(span, &view_buffer_);
  *rows = view_buffer_.data();
  *n = view_buffer_.size();
  return true;
}

bool FilterExecutor::NextBatch(std::vector<Tuple>* out) {
  BatchSpan span;
  if (!PullSel(&span, out)) {
    out->clear();
    return false;
  }
  // PullSel may have compacted straight into `out`; otherwise the span
  // borrows the child's storage and the caller needs its own copy.
  if (span.rows != out->data()) FlattenSpan(span, out);
  return true;
}

const Schema& FilterExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

// ---------------------------------------------------------------- Project

ProjectExecutor::ProjectExecutor(ExecRef child, std::vector<ExprRef> exprs,
                                 Schema output_schema)
    : child_(std::move(child)),
      exprs_(std::move(exprs)),
      output_schema_(std::move(output_schema)) {}

Status ProjectExecutor::Init() {
  if (exprs_.size() != output_schema_.NumColumns()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  return child_->Init();
}

bool ProjectExecutor::Next(Tuple* out) {
  Tuple in;
  if (!child_->Next(&in)) {
    status_ = child_->status();
    return false;
  }
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const auto& e : exprs_) {
    values.push_back(e->Evaluate(in, child_->OutputSchema()));
  }
  *out = Tuple(std::move(values));
  return true;
}

bool ProjectExecutor::NextBatch(std::vector<Tuple>* out) {
  BatchSpan span;
  if (!child_->NextBatchSel(&span)) {
    out->clear();
    status_ = child_->status();
    return false;
  }
  const Schema& in_schema = child_->OutputSchema();
  const size_t n_rows = span.count();
  // Tiny *dense* batch (the FEM frontier statements): row-at-a-time is
  // cheaper than per-node column setup. A selection-carrying span always
  // takes the column path — the old behavior here was the hidden cost of
  // compacting filters: survivors dribbled in below the vectorization
  // cutoff and every projection fell back to per-row name resolution.
  if (span.dense() && n_rows < kMinVectorizedRows) {
    out->resize(n_rows);
    for (size_t i = 0; i < n_rows; i++) {
      std::vector<Value> values;
      values.reserve(exprs_.size());
      for (const auto& e : exprs_) {
        values.push_back(e->Evaluate(span.rows[i], in_schema));
      }
      (*out)[i] = Tuple(std::move(values));
    }
    return true;
  }
  // Column-at-a-time over the borrowed child span (no input copy): each
  // select item produces one column over the selected lanes, then the
  // columns zip back into row tuples — this is where a sparse span
  // compacts, as a side effect of producing fresh output rows. Output
  // slots with the right arity are overwritten in place (no allocation);
  // slots a downstream consumer moved from get rebuilt.
  RowBatch batch(span.rows, span.num_rows, in_schema, span.sel, span.num_sel);
  expr_cols_.resize(exprs_.size());
  for (size_t k = 0; k < exprs_.size(); k++) {
    exprs_[k]->EvalBatch(batch, &expr_cols_[k]);
  }
  const size_t n = n_rows;
  const size_t width = exprs_.size();
  out->resize(n);
  for (size_t i = 0; i < n; i++) {
    Tuple& dst = (*out)[i];
    if (dst.NumValues() == width) {
      for (size_t k = 0; k < width; k++) {
        const ValueColumn& col = expr_cols_[k];
        if (col.is_int() && !col.IsNull(i)) {
          dst.value(k).SetInt(col.IntAt(i));  // no temporary Value
        } else if (col.is_int()) {
          dst.value(k).SetNull();
        } else {
          dst.value(k) = col.Get(i);
        }
      }
    } else {
      std::vector<Value> values;
      values.reserve(width);
      for (size_t k = 0; k < width; k++) {
        values.push_back(expr_cols_[k].Get(i));
      }
      dst = Tuple(std::move(values));
    }
  }
  return true;
}

const Schema& ProjectExecutor::OutputSchema() const { return output_schema_; }

// ------------------------------------------------------------------ Limit

LimitExecutor::LimitExecutor(ExecRef child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitExecutor::Init() {
  produced_ = 0;
  return child_->Init();
}

bool LimitExecutor::Next(Tuple* out) {
  if (produced_ >= limit_) return false;
  if (!child_->Next(out)) {
    status_ = child_->status();
    return false;
  }
  produced_++;
  return true;
}

const Schema& LimitExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

// ----------------------------------------------------------- Materialized

MaterializedExecutor::MaterializedExecutor(std::vector<Tuple> tuples,
                                           Schema schema)
    : tuples_(std::move(tuples)), schema_(std::move(schema)) {}

Status MaterializedExecutor::Init() {
  pos_ = 0;
  return Status::OK();
}

bool MaterializedExecutor::Next(Tuple* out) {
  if (pos_ >= tuples_.size()) return false;
  *out = tuples_[pos_++];
  return true;
}

bool MaterializedExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(tuples_, &pos_, out);
}

bool MaterializedExecutor::NextBatchView(const Tuple** rows, size_t* n) {
  const size_t cap = ExecBatchSize();
  const size_t left = tuples_.size() - pos_;
  *n = left < cap ? left : cap;
  *rows = tuples_.data() + pos_;
  pos_ += *n;
  return *n > 0;
}

const Schema& MaterializedExecutor::OutputSchema() const { return schema_; }

// ----------------------------------------------------------------- Rename

RenameExecutor::RenameExecutor(ExecRef child, std::vector<std::string> names)
    : child_(std::move(child)) {
  std::vector<Column> cols;
  const Schema& in = child_->OutputSchema();
  cols.reserve(in.NumColumns());
  for (size_t i = 0; i < in.NumColumns(); i++) {
    cols.push_back({names[i], in.column(i).type});
  }
  schema_ = Schema(std::move(cols));
}

Status RenameExecutor::Init() { return child_->Init(); }

bool RenameExecutor::Next(Tuple* out) {
  if (!child_->Next(out)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

bool RenameExecutor::NextBatch(std::vector<Tuple>* out) {
  if (!child_->NextBatch(out)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

bool RenameExecutor::NextBatchView(const Tuple** rows, size_t* n) {
  if (!child_->NextBatchView(rows, n)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

bool RenameExecutor::NextBatchSel(BatchSpan* out) {
  if (!child_->NextBatchSel(out)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

const Schema& RenameExecutor::OutputSchema() const { return schema_; }

}  // namespace relgraph

namespace relgraph_explain_detail {}  // silences include-what-you-use noise
