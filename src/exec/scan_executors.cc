#include "src/exec/scan_executors.h"

namespace relgraph {

void Executor::Explain(int depth, std::string* out) const {
  Indent(depth, out);
  out->append("Operator\n");
}

Status Collect(Executor* exec, std::vector<Tuple>* out) {
  RELGRAPH_RETURN_IF_ERROR(exec->Init());
  std::vector<Tuple> batch;
  while (exec->NextBatch(&batch)) {
    out->insert(out->end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  return exec->status();
}

Schema PrefixSchema(const Schema& schema, const std::string& prefix) {
  std::vector<Column> cols;
  cols.reserve(schema.NumColumns());
  for (const auto& c : schema.columns()) {
    cols.push_back({prefix + c.name, c.type});
  }
  return Schema(std::move(cols));
}

namespace {

/// Shared single-pull and batch-drain bodies for the two table-iterator
/// scans. Once the iterator reports false — end of stream *or* error —
/// `exhausted` latches so neither pull style touches it again: resuming a
/// failed iterator would skip the bad row and overwrite its error status,
/// making the batch stream diverge from the Next() stream.
bool PullIterator(Table::Iterator* it, bool* exhausted, Status* status,
                  Tuple* out) {
  if (*exhausted) return false;
  if (!it->Next(out, nullptr)) {
    *exhausted = true;
    *status = it->status();
    return false;
  }
  return true;
}

bool DrainIteratorBatch(Table::Iterator* it, bool* exhausted, Status* status,
                        std::vector<Tuple>* out) {
  out->clear();
  Tuple t;
  while (out->size() < kExecBatchSize &&
         PullIterator(it, exhausted, status, &t)) {
    out->push_back(std::move(t));
  }
  return !out->empty();
}

}  // namespace

// ---------------------------------------------------------------- SeqScan

SeqScanExecutor::SeqScanExecutor(Table* table) : table_(table) {}

Status SeqScanExecutor::Init() {
  it_ = table_->Scan();
  exhausted_ = false;
  return Status::OK();
}

bool SeqScanExecutor::Next(Tuple* out) {
  return PullIterator(&it_, &exhausted_, &status_, out);
}

bool SeqScanExecutor::NextBatch(std::vector<Tuple>* out) {
  return DrainIteratorBatch(&it_, &exhausted_, &status_, out);
}

const Schema& SeqScanExecutor::OutputSchema() const {
  return table_->schema();
}

// ---------------------------------------------------------- IndexRangeScan

IndexRangeScanExecutor::IndexRangeScanExecutor(Table* table,
                                               std::string column, int64_t lo,
                                               int64_t hi)
    : table_(table), column_(std::move(column)), lo_(lo), hi_(hi) {}

Status IndexRangeScanExecutor::Init() {
  exhausted_ = false;
  return table_->ScanRange(column_, lo_, hi_, &it_);
}

bool IndexRangeScanExecutor::Next(Tuple* out) {
  return PullIterator(&it_, &exhausted_, &status_, out);
}

bool IndexRangeScanExecutor::NextBatch(std::vector<Tuple>* out) {
  return DrainIteratorBatch(&it_, &exhausted_, &status_, out);
}

const Schema& IndexRangeScanExecutor::OutputSchema() const {
  return table_->schema();
}

// ----------------------------------------------------------------- Filter

FilterExecutor::FilterExecutor(ExecRef child, ExprRef predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterExecutor::Init() { return child_->Init(); }

bool FilterExecutor::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (EvalPredicate(*predicate_, *out, child_->OutputSchema())) return true;
  }
  status_ = child_->status();
  return false;
}

bool FilterExecutor::NextBatch(std::vector<Tuple>* out) {
  out->clear();
  const Schema& in_schema = child_->OutputSchema();
  // Each child batch is consumed whole, so no tuples straddle calls, and
  // pulling stops as soon as anything matched — out never exceeds one child
  // batch, which keeps the kExecBatchSize cap intact through filter stacks.
  while (out->empty()) {
    if (!child_->NextBatch(&in_batch_)) {
      status_ = child_->status();
      break;
    }
    for (Tuple& t : in_batch_) {
      if (EvalPredicate(*predicate_, t, in_schema)) {
        out->push_back(std::move(t));
      }
    }
  }
  return !out->empty();
}

const Schema& FilterExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

// ---------------------------------------------------------------- Project

ProjectExecutor::ProjectExecutor(ExecRef child, std::vector<ExprRef> exprs,
                                 Schema output_schema)
    : child_(std::move(child)),
      exprs_(std::move(exprs)),
      output_schema_(std::move(output_schema)) {}

Status ProjectExecutor::Init() {
  if (exprs_.size() != output_schema_.NumColumns()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  return child_->Init();
}

bool ProjectExecutor::Next(Tuple* out) {
  Tuple in;
  if (!child_->Next(&in)) {
    status_ = child_->status();
    return false;
  }
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const auto& e : exprs_) {
    values.push_back(e->Evaluate(in, child_->OutputSchema()));
  }
  *out = Tuple(std::move(values));
  return true;
}

bool ProjectExecutor::NextBatch(std::vector<Tuple>* out) {
  out->clear();
  if (!child_->NextBatch(&in_batch_)) {
    status_ = child_->status();
    return false;
  }
  const Schema& in_schema = child_->OutputSchema();
  out->reserve(in_batch_.size());
  for (const Tuple& in : in_batch_) {
    std::vector<Value> values;
    values.reserve(exprs_.size());
    for (const auto& e : exprs_) {
      values.push_back(e->Evaluate(in, in_schema));
    }
    out->emplace_back(std::move(values));
  }
  return true;
}

const Schema& ProjectExecutor::OutputSchema() const { return output_schema_; }

// ------------------------------------------------------------------ Limit

LimitExecutor::LimitExecutor(ExecRef child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitExecutor::Init() {
  produced_ = 0;
  return child_->Init();
}

bool LimitExecutor::Next(Tuple* out) {
  if (produced_ >= limit_) return false;
  if (!child_->Next(out)) {
    status_ = child_->status();
    return false;
  }
  produced_++;
  return true;
}

const Schema& LimitExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

// ----------------------------------------------------------- Materialized

MaterializedExecutor::MaterializedExecutor(std::vector<Tuple> tuples,
                                           Schema schema)
    : tuples_(std::move(tuples)), schema_(std::move(schema)) {}

Status MaterializedExecutor::Init() {
  pos_ = 0;
  return Status::OK();
}

bool MaterializedExecutor::Next(Tuple* out) {
  if (pos_ >= tuples_.size()) return false;
  *out = tuples_[pos_++];
  return true;
}

bool MaterializedExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(tuples_, &pos_, out);
}

const Schema& MaterializedExecutor::OutputSchema() const { return schema_; }

// ----------------------------------------------------------------- Rename

RenameExecutor::RenameExecutor(ExecRef child, std::vector<std::string> names)
    : child_(std::move(child)) {
  std::vector<Column> cols;
  const Schema& in = child_->OutputSchema();
  cols.reserve(in.NumColumns());
  for (size_t i = 0; i < in.NumColumns(); i++) {
    cols.push_back({names[i], in.column(i).type});
  }
  schema_ = Schema(std::move(cols));
}

Status RenameExecutor::Init() { return child_->Init(); }

bool RenameExecutor::Next(Tuple* out) {
  if (!child_->Next(out)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

const Schema& RenameExecutor::OutputSchema() const { return schema_; }

}  // namespace relgraph

namespace relgraph_explain_detail {}  // silences include-what-you-use noise
