#include "src/exec/scan_executors.h"

namespace relgraph {

Schema PrefixSchema(const Schema& schema, const std::string& prefix) {
  std::vector<Column> cols;
  cols.reserve(schema.NumColumns());
  for (const auto& c : schema.columns()) {
    cols.push_back({prefix + c.name, c.type});
  }
  return Schema(std::move(cols));
}

namespace {

/// Shared single-pull and batch-drain bodies for the two table-iterator
/// scans. Once the iterator reports false — end of stream *or* error —
/// `exhausted` latches so neither pull style touches it again: resuming a
/// failed iterator would skip the bad row and overwrite its error status,
/// making the batch stream diverge from the Next() stream.
bool PullIterator(Table::Iterator* it, bool* exhausted, Status* status,
                  Tuple* out) {
  if (*exhausted) return false;
  if (!it->Next(out, nullptr)) {
    *exhausted = true;
    *status = it->status();
    return false;
  }
  return true;
}

bool DrainIteratorBatch(Table::Iterator* it, bool* exhausted, Status* status,
                        std::vector<Tuple>* out) {
  return DrainBatchInto(out, [&](Tuple* t) {
    return PullIterator(it, exhausted, status, t);
  });
}

}  // namespace

// ---------------------------------------------------------------- SeqScan

SeqScanExecutor::SeqScanExecutor(Table* table) : table_(table) {}

Status SeqScanExecutor::Init() {
  it_ = table_->Scan();
  exhausted_ = false;
  return Status::OK();
}

bool SeqScanExecutor::Next(Tuple* out) {
  return PullIterator(&it_, &exhausted_, &status_, out);
}

bool SeqScanExecutor::NextBatch(std::vector<Tuple>* out) {
  return DrainIteratorBatch(&it_, &exhausted_, &status_, out);
}

const Schema& SeqScanExecutor::OutputSchema() const {
  return table_->schema();
}

// ---------------------------------------------------------- IndexRangeScan

bool KeyRangeFor(CompareOp op, int64_t k, int64_t* lo, int64_t* hi) {
  constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMaxKey = std::numeric_limits<int64_t>::max();
  switch (op) {
    case CompareOp::kEq: *lo = *hi = k; return true;
    case CompareOp::kLe: *lo = kMinKey; *hi = k; return true;
    case CompareOp::kLt:
      if (k == kMinKey) return false;
      *lo = kMinKey;
      *hi = k - 1;
      return true;
    case CompareOp::kGe: *lo = k; *hi = kMaxKey; return true;
    case CompareOp::kGt:
      if (k == kMaxKey) return false;
      *lo = k + 1;
      *hi = kMaxKey;
      return true;
    default:
      return false;  // <> has no contiguous range
  }
}

IndexRangeScanExecutor::IndexRangeScanExecutor(Table* table,
                                               std::string column, int64_t lo,
                                               int64_t hi)
    : table_(table), column_(std::move(column)), lo_(lo), hi_(hi) {}

IndexRangeScanExecutor::IndexRangeScanExecutor(Table* table,
                                               std::string column,
                                               CompareOp op, ExprRef key)
    : table_(table),
      column_(std::move(column)),
      lo_(std::numeric_limits<int64_t>::min()),
      hi_(std::numeric_limits<int64_t>::max()),
      key_(std::move(key)),
      op_(op) {}

void IndexRangeScanExecutor::ComputeRuntimeBounds() {
  lo_ = std::numeric_limits<int64_t>::min();
  hi_ = std::numeric_limits<int64_t>::max();
  Value v = key_->Evaluate(Tuple{}, Schema{});
  if (v.type() != TypeId::kInt) return;  // full range; residual filter decides
  int64_t lo, hi;
  if (KeyRangeFor(op_, v.AsInt(), &lo, &hi)) {
    lo_ = lo;
    hi_ = hi;
  }
}

Status IndexRangeScanExecutor::Init() {
  exhausted_ = false;
  if (key_ != nullptr) ComputeRuntimeBounds();
  return table_->ScanRange(column_, lo_, hi_, &it_);
}

void IndexRangeScanExecutor::Explain(int depth, std::string* out) const {
  Indent(depth, out);
  int64_t lo = lo_, hi = hi_;
  if (key_ != nullptr) {
    // Render the bounds the *current* bindings imply, so EXPLAIN on a
    // bound prepared statement shows real numbers; unbound slots read as
    // NULL, which leaves the range fully open.
    lo = std::numeric_limits<int64_t>::min();
    hi = std::numeric_limits<int64_t>::max();
    Value v = key_->Evaluate(Tuple{}, Schema{});
    if (v.type() == TypeId::kInt) KeyRangeFor(op_, v.AsInt(), &lo, &hi);
  }
  const bool open_lo = lo == std::numeric_limits<int64_t>::min();
  const bool open_hi = hi == std::numeric_limits<int64_t>::max();
  out->append("IndexRangeScan: " + table_->name() + "." + column_ + " in [" +
              (open_lo ? "-inf" : std::to_string(lo)) + ", " +
              (open_hi ? "+inf" : std::to_string(hi)) + "]" +
              (key_ != nullptr ? " (bound from " + key_->ToString() + ")" : "") +
              "\n");
}

bool IndexRangeScanExecutor::Next(Tuple* out) {
  return PullIterator(&it_, &exhausted_, &status_, out);
}

bool IndexRangeScanExecutor::NextBatch(std::vector<Tuple>* out) {
  return DrainIteratorBatch(&it_, &exhausted_, &status_, out);
}

const Schema& IndexRangeScanExecutor::OutputSchema() const {
  return table_->schema();
}

// ----------------------------------------------------------------- Filter

FilterExecutor::FilterExecutor(ExecRef child, ExprRef predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterExecutor::Init() { return child_->Init(); }

bool FilterExecutor::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (EvalPredicate(*predicate_, *out, child_->OutputSchema())) return true;
  }
  status_ = child_->status();
  return false;
}

bool FilterExecutor::NextBatch(std::vector<Tuple>* out) {
  size_t n = 0;
  const Schema& in_schema = child_->OutputSchema();
  // Each child batch is consumed whole, so no tuples straddle calls, and
  // pulling stops as soon as anything matched — out never exceeds one child
  // batch, which keeps the batch-size cap intact through filter stacks. The
  // child is read through the borrowed-batch interface and the predicate
  // runs as one EvalBatch per batch, so only the *matched* rows are ever
  // copied (into output slots whose buffers are recycled across calls).
  while (n == 0) {
    const Tuple* rows = nullptr;
    size_t cnt = 0;
    if (!child_->NextBatchView(&rows, &cnt)) {
      status_ = child_->status();
      break;
    }
    RowBatch batch(rows, cnt, in_schema);
    EvalPredicateBatch(*predicate_, batch, &pred_scratch_, &keep_);
    for (size_t i = 0; i < cnt; i++) {
      if (!keep_[i]) continue;
      if (n < out->size()) {
        (*out)[n] = rows[i];
      } else {
        out->push_back(rows[i]);
      }
      n++;
    }
  }
  out->resize(n);
  return n > 0;
}

const Schema& FilterExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

// ---------------------------------------------------------------- Project

ProjectExecutor::ProjectExecutor(ExecRef child, std::vector<ExprRef> exprs,
                                 Schema output_schema)
    : child_(std::move(child)),
      exprs_(std::move(exprs)),
      output_schema_(std::move(output_schema)) {}

Status ProjectExecutor::Init() {
  if (exprs_.size() != output_schema_.NumColumns()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  return child_->Init();
}

bool ProjectExecutor::Next(Tuple* out) {
  Tuple in;
  if (!child_->Next(&in)) {
    status_ = child_->status();
    return false;
  }
  std::vector<Value> values;
  values.reserve(exprs_.size());
  for (const auto& e : exprs_) {
    values.push_back(e->Evaluate(in, child_->OutputSchema()));
  }
  *out = Tuple(std::move(values));
  return true;
}

bool ProjectExecutor::NextBatch(std::vector<Tuple>* out) {
  const Tuple* rows = nullptr;
  size_t cnt = 0;
  if (!child_->NextBatchView(&rows, &cnt)) {
    out->clear();
    status_ = child_->status();
    return false;
  }
  const Schema& in_schema = child_->OutputSchema();
  const size_t n_rows = cnt;
  if (n_rows < kMinVectorizedRows) {  // tiny batch: row-at-a-time is cheaper
    out->resize(n_rows);
    for (size_t i = 0; i < n_rows; i++) {
      std::vector<Value> values;
      values.reserve(exprs_.size());
      for (const auto& e : exprs_) {
        values.push_back(e->Evaluate(rows[i], in_schema));
      }
      (*out)[i] = Tuple(std::move(values));
    }
    return true;
  }
  // Column-at-a-time over the borrowed child batch (no input copy): each
  // select item produces one column over the whole batch, then the columns
  // zip back into row tuples. Output slots with the right arity are
  // overwritten in place (no allocation); slots a downstream consumer
  // moved from get rebuilt.
  RowBatch batch(rows, cnt, in_schema);
  expr_cols_.resize(exprs_.size());
  for (size_t k = 0; k < exprs_.size(); k++) {
    exprs_[k]->EvalBatch(batch, &expr_cols_[k]);
  }
  const size_t n = cnt;
  const size_t width = exprs_.size();
  out->resize(n);
  for (size_t i = 0; i < n; i++) {
    Tuple& dst = (*out)[i];
    if (dst.NumValues() == width) {
      for (size_t k = 0; k < width; k++) {
        const ValueColumn& col = expr_cols_[k];
        if (col.is_int() && !col.IsNull(i)) {
          dst.value(k).SetInt(col.IntAt(i));  // no temporary Value
        } else if (col.is_int()) {
          dst.value(k).SetNull();
        } else {
          dst.value(k) = col.Get(i);
        }
      }
    } else {
      std::vector<Value> values;
      values.reserve(width);
      for (size_t k = 0; k < width; k++) {
        values.push_back(expr_cols_[k].Get(i));
      }
      dst = Tuple(std::move(values));
    }
  }
  return true;
}

const Schema& ProjectExecutor::OutputSchema() const { return output_schema_; }

// ------------------------------------------------------------------ Limit

LimitExecutor::LimitExecutor(ExecRef child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitExecutor::Init() {
  produced_ = 0;
  return child_->Init();
}

bool LimitExecutor::Next(Tuple* out) {
  if (produced_ >= limit_) return false;
  if (!child_->Next(out)) {
    status_ = child_->status();
    return false;
  }
  produced_++;
  return true;
}

const Schema& LimitExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

// ----------------------------------------------------------- Materialized

MaterializedExecutor::MaterializedExecutor(std::vector<Tuple> tuples,
                                           Schema schema)
    : tuples_(std::move(tuples)), schema_(std::move(schema)) {}

Status MaterializedExecutor::Init() {
  pos_ = 0;
  return Status::OK();
}

bool MaterializedExecutor::Next(Tuple* out) {
  if (pos_ >= tuples_.size()) return false;
  *out = tuples_[pos_++];
  return true;
}

bool MaterializedExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(tuples_, &pos_, out);
}

bool MaterializedExecutor::NextBatchView(const Tuple** rows, size_t* n) {
  const size_t cap = ExecBatchSize();
  const size_t left = tuples_.size() - pos_;
  *n = left < cap ? left : cap;
  *rows = tuples_.data() + pos_;
  pos_ += *n;
  return *n > 0;
}

const Schema& MaterializedExecutor::OutputSchema() const { return schema_; }

// ----------------------------------------------------------------- Rename

RenameExecutor::RenameExecutor(ExecRef child, std::vector<std::string> names)
    : child_(std::move(child)) {
  std::vector<Column> cols;
  const Schema& in = child_->OutputSchema();
  cols.reserve(in.NumColumns());
  for (size_t i = 0; i < in.NumColumns(); i++) {
    cols.push_back({names[i], in.column(i).type});
  }
  schema_ = Schema(std::move(cols));
}

Status RenameExecutor::Init() { return child_->Init(); }

bool RenameExecutor::Next(Tuple* out) {
  if (!child_->Next(out)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

bool RenameExecutor::NextBatch(std::vector<Tuple>* out) {
  if (!child_->NextBatch(out)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

bool RenameExecutor::NextBatchView(const Tuple** rows, size_t* n) {
  if (!child_->NextBatchView(rows, n)) {
    status_ = child_->status();
    return false;
  }
  return true;
}

const Schema& RenameExecutor::OutputSchema() const { return schema_; }

}  // namespace relgraph

namespace relgraph_explain_detail {}  // silences include-what-you-use noise
