#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/table.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"

namespace relgraph {

/// Full-table scan (the paper's NoIndex access path).
class SeqScanExecutor : public Executor {
 public:
  explicit SeqScanExecutor(Table* table);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("SeqScan: " + table_->name() + "\n");
  }

 private:
  Table* table_;
  Table::Iterator it_;
  bool exhausted_ = false;  // iterator returned false; don't pull it again
};

/// Key range [*lo, *hi] covering `column OP k` with the column on the
/// left-hand side. Returns false when the comparison yields no usable
/// range (an open bound that would overflow); callers fall back to a full
/// range or a sequential scan — the predicate always re-applies
/// residually, so the range only needs to *cover* the matching keys.
bool KeyRangeFor(CompareOp op, int64_t k, int64_t* lo, int64_t* hi);

/// Index range scan: lo <= column <= hi through the cluster tree or a
/// secondary index. Two bound sources:
///  - *static*: lo/hi fixed at plan time (plan-time-constant conjuncts);
///  - *runtime*: the bound is `column OP <key expr>` where the key — a
///    prepared-statement parameter or a scalar-subquery slot — is
///    evaluated at Open, so one compiled plan probes fresh bounds on
///    every execution. A non-INT or overflowing key degrades to the full
///    key range (the residual filter keeps the plan equivalent).
class IndexRangeScanExecutor : public Executor {
 public:
  IndexRangeScanExecutor(Table* table, std::string column, int64_t lo,
                         int64_t hi);
  IndexRangeScanExecutor(Table* table, std::string column, CompareOp op,
                         ExprRef key);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override;

 private:
  /// Evaluates the runtime key into lo_/hi_ (full range on a non-INT or
  /// overflowing key).
  void ComputeRuntimeBounds();

  Table* table_;
  std::string column_;
  int64_t lo_, hi_;
  ExprRef key_;  // non-null => runtime bounds (op_ applies)
  CompareOp op_ = CompareOp::kEq;
  Table::Iterator it_;
  bool exhausted_ = false;  // iterator returned false; don't pull it again
};

/// WHERE clause: forwards child tuples satisfying the predicate.
///
/// The batch paths are built around one selection-aware pull (PullSel):
/// per child batch the predicate runs once, and the survivors are
/// forwarded in the cheapest legal representation — the child's span
/// untouched when every lane passes (zero copies), a selection vector
/// over the child's rows when at least SelVectorMinRows() lanes survive
/// (still zero copies), and a dense compacted batch only below that
/// threshold, where the indirection would cost downstream more than the
/// copy. NextBatchSel consumers see all three forms; NextBatchView and
/// NextBatch flatten sparse spans since their interfaces cannot carry a
/// selection.
class FilterExecutor : public Executor {
 public:
  FilterExecutor(ExecRef child, ExprRef predicate);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  bool NextBatchView(const Tuple** rows, size_t* n) override;
  bool NextBatchSel(BatchSpan* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("Filter: " + predicate_->ToString() + "\n");
    child_->Explain(depth + 1, out);
  }

 private:
  /// Pulls child batches until one has survivors (or the stream ends).
  /// Forwards all-true and above-threshold batches without copying; below
  /// the threshold, compacts the survivors into `compact_into` (slot
  /// discipline: recycled tuples keep their buffers) and returns a dense
  /// span over it.
  bool PullSel(BatchSpan* out, std::vector<Tuple>* compact_into);

  ExecRef child_;
  ExprRef predicate_;
  ValueColumn pred_scratch_;  // EvalBatch output column
  std::vector<char> keep_;    // per-lane predicate verdicts
  std::vector<uint32_t> sel_;  // backs forwarded selection vectors
  std::vector<Tuple> compact_buffer_;  // NextBatchSel's compaction target
};

/// SELECT list: evaluates one expression per output column.
class ProjectExecutor : public Executor {
 public:
  ProjectExecutor(ExecRef child, std::vector<ExprRef> exprs,
                  Schema output_schema);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("Project:");
    for (const auto& e : exprs_) out->append(" " + e->ToString());
    out->append("\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  std::vector<ExprRef> exprs_;
  Schema output_schema_;
  std::vector<ValueColumn> expr_cols_;  // one column per select item
};

/// TOP n / LIMIT n.
class LimitExecutor : public Executor {
 public:
  LimitExecutor(ExecRef child, int64_t limit);
  Status Init() override;
  bool Next(Tuple* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("Limit: " + std::to_string(limit_) + "\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

/// Replays an in-memory tuple vector (used for VALUES lists and for
/// materialized intermediate results such as the E-operator output fed to
/// the M-operator).
class MaterializedExecutor : public Executor {
 public:
  MaterializedExecutor(std::vector<Tuple> tuples, Schema schema);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  /// Serves windows of the owned vector directly — the zero-copy source
  /// the whole batched pipeline leans on.
  bool NextBatchView(const Tuple** rows, size_t* n) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("Materialized: " + std::to_string(tuples_.size()) +
                " row(s)\n");
  }

 private:
  std::vector<Tuple> tuples_;
  Schema schema_;
  size_t pos_ = 0;
};

/// Renames the child's columns (SQL AS aliases; used to build the "t.x"/
/// "s.x" combined schemas for MERGE and join predicates).
class RenameExecutor : public Executor {
 public:
  RenameExecutor(ExecRef child, std::vector<std::string> new_names);
  Status Init() override;
  bool Next(Tuple* out) override;
  /// Renaming only touches the schema, so batches (and borrowed views)
  /// pass straight through — the planner wraps every base-table scan in a
  /// Rename, and without these the whole SQL pipeline would fall back to
  /// row-at-a-time pulls underneath it.
  bool NextBatch(std::vector<Tuple>* out) override;
  bool NextBatchView(const Tuple** rows, size_t* n) override;
  bool NextBatchSel(BatchSpan* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("Rename: -> " + schema_.ToString() + "\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  Schema schema_;
};

/// Prefixes every column name of `schema` with `prefix` (e.g. "out.").
Schema PrefixSchema(const Schema& schema, const std::string& prefix);

}  // namespace relgraph
