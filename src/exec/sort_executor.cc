#include "src/exec/sort_executor.h"

#include <algorithm>

namespace relgraph {

int CompareBySortKeys(const Tuple& a, const Tuple& b,
                      const std::vector<SortKey>& keys, const Schema& schema) {
  for (const auto& key : keys) {
    Value va = key.expr->Evaluate(a, schema);
    Value vb = key.expr->Evaluate(b, schema);
    int c = va.Compare(vb);
    if (c != 0) return key.ascending ? c : -c;
  }
  return 0;
}

SortExecutor::SortExecutor(ExecRef child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortExecutor::Init() {
  rows_.clear();
  pos_ = 0;
  RELGRAPH_RETURN_IF_ERROR(Collect(child_.get(), &rows_));
  if (rows_.size() < 2) return Status::OK();

  // Decorate-sort: every key expression evaluates exactly once per row —
  // as one EvalBatch column over the whole input — and the comparator
  // reads the precomputed columns, instead of re-evaluating expressions
  // (with their per-comparison schema lookups) O(n log n) times. Batch
  // and scalar evaluation are value-identical (test_exec_batch.cc), and
  // ValueColumn::Get reproduces the exact Values Evaluate would return,
  // so the sort order is unchanged.
  const Schema& schema = child_->OutputSchema();
  const size_t n = rows_.size();
  std::vector<ValueColumn> key_cols(keys_.size());
  RowBatch batch(rows_, schema);
  for (size_t k = 0; k < keys_.size(); k++) {
    keys_[k].expr->EvalBatch(batch, &key_cols[k]);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; i++) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < keys_.size(); k++) {
      const ValueColumn& col = key_cols[k];
      int c;
      if (col.is_int() && !col.has_nulls()) {
        const int64_t va = col.IntAt(a), vb = col.IntAt(b);
        c = va < vb ? -1 : (va > vb ? 1 : 0);
      } else {
        c = col.Get(a).Compare(col.Get(b));
      }
      if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Tuple> sorted;
  sorted.reserve(n);
  for (size_t i = 0; i < n; i++) sorted.push_back(std::move(rows_[order[i]]));
  rows_ = std::move(sorted);
  return Status::OK();
}

bool SortExecutor::Next(Tuple* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

bool SortExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(rows_, &pos_, out);
}

const Schema& SortExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

}  // namespace relgraph
