#include "src/exec/sort_executor.h"

#include <algorithm>

namespace relgraph {

int CompareBySortKeys(const Tuple& a, const Tuple& b,
                      const std::vector<SortKey>& keys, const Schema& schema) {
  for (const auto& key : keys) {
    Value va = key.expr->Evaluate(a, schema);
    Value vb = key.expr->Evaluate(b, schema);
    int c = va.Compare(vb);
    if (c != 0) return key.ascending ? c : -c;
  }
  return 0;
}

SortExecutor::SortExecutor(ExecRef child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortExecutor::Init() {
  rows_.clear();
  pos_ = 0;
  RELGRAPH_RETURN_IF_ERROR(Collect(child_.get(), &rows_));
  const Schema& schema = child_->OutputSchema();
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return CompareBySortKeys(a, b, keys_, schema) < 0;
                   });
  return Status::OK();
}

bool SortExecutor::Next(Tuple* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

bool SortExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(rows_, &pos_, out);
}

const Schema& SortExecutor::OutputSchema() const {
  return child_->OutputSchema();
}

}  // namespace relgraph
