#pragma once

#include <vector>

#include "src/exec/executor.h"
#include "src/exec/expression.h"

namespace relgraph {

struct SortKey {
  ExprRef expr;
  bool ascending = true;
};

/// ORDER BY: materializes the child and emits in key order (stable sort, so
/// equal keys preserve input order — matters for deterministic row_number
/// ties).
class SortExecutor : public Executor {
 public:
  SortExecutor(ExecRef child, std::vector<SortKey> keys);
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("Sort:");
    for (const auto& k : keys_) {
      out->append(" " + k.expr->ToString() + (k.ascending ? "" : " DESC"));
    }
    out->append("\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  std::vector<SortKey> keys_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// Compares two tuples under a sort-key list; shared with the window
/// executor.
int CompareBySortKeys(const Tuple& a, const Tuple& b,
                      const std::vector<SortKey>& keys, const Schema& schema);

}  // namespace relgraph
