#include "src/exec/window_executor.h"

#include <algorithm>

#include "src/exec/scan_executors.h"

namespace relgraph {

// ------------------------------------------------ SortedWindowRowNumber

SortedWindowRowNumberExecutor::SortedWindowRowNumberExecutor(
    ExecRef child, std::vector<std::string> partition_cols,
    std::string out_column)
    : child_(std::move(child)), partition_cols_(std::move(partition_cols)) {
  std::vector<Column> cols = child_->OutputSchema().columns();
  cols.push_back({std::move(out_column), TypeId::kInt});
  output_schema_ = Schema(std::move(cols));
}

Status SortedWindowRowNumberExecutor::Init() {
  prev_key_.clear();
  have_prev_ = false;
  row_number_ = 0;
  const Schema& in = child_->OutputSchema();
  part_idx_.clear();
  part_idx_.reserve(partition_cols_.size());
  for (const auto& p : partition_cols_) part_idx_.push_back(in.IndexOf(p));
  return child_->Init();
}

void SortedWindowRowNumberExecutor::Number(Tuple in, Tuple* out) {
  bool boundary = !have_prev_;
  if (have_prev_) {
    for (size_t k = 0; k < part_idx_.size(); k++) {
      if (prev_key_[k].Compare(in.value(part_idx_[k])) != 0) {
        boundary = true;
        break;
      }
    }
  }
  if (boundary) {
    row_number_ = 0;
    prev_key_.clear();
    for (size_t pi : part_idx_) prev_key_.push_back(in.value(pi));
    have_prev_ = true;
  }
  row_number_++;
  const size_t width = in.NumValues() + 1;
  if (out->NumValues() == width) {
    // Reused output slot: overwrite in place, no allocation.
    for (size_t i = 0; i + 1 < width; i++) {
      out->value(i) = std::move(in.value(i));
    }
    out->value(width - 1) = Value(row_number_);
    return;
  }
  std::vector<Value> values;
  values.reserve(width);
  for (size_t i = 0; i + 1 < width; i++) {
    values.push_back(std::move(in.value(i)));
  }
  values.emplace_back(row_number_);
  *out = Tuple(std::move(values));
}

bool SortedWindowRowNumberExecutor::Next(Tuple* out) {
  Tuple in;
  if (!child_->Next(&in)) {
    status_ = child_->status();
    return false;
  }
  Number(std::move(in), out);
  return true;
}

bool SortedWindowRowNumberExecutor::NextBatch(std::vector<Tuple>* out) {
  if (!child_->NextBatch(&in_batch_)) {
    out->clear();
    status_ = child_->status();
    return false;
  }
  out->resize(in_batch_.size());
  for (size_t i = 0; i < in_batch_.size(); i++) {
    Number(std::move(in_batch_[i]), &(*out)[i]);
  }
  return true;
}

const Schema& SortedWindowRowNumberExecutor::OutputSchema() const {
  return output_schema_;
}

// ------------------------------------------------------ WindowRowNumber

WindowRowNumberExecutor::WindowRowNumberExecutor(
    ExecRef child, std::vector<std::string> partition_cols,
    std::vector<SortKey> order_keys, std::string out_column)
    : child_(std::move(child)),
      partition_cols_(std::move(partition_cols)),
      order_keys_(std::move(order_keys)),
      out_column_(std::move(out_column)) {
  std::vector<Column> cols = child_->OutputSchema().columns();
  cols.push_back({out_column_, TypeId::kInt});
  output_schema_ = Schema(std::move(cols));
}

Status WindowRowNumberExecutor::Init() {
  stream_.reset();
  std::vector<Tuple> input;
  RELGRAPH_RETURN_IF_ERROR(Collect(child_.get(), &input));

  const Schema& in_schema = child_->OutputSchema();
  std::vector<size_t> part_idx;
  part_idx.reserve(partition_cols_.size());
  for (const auto& p : partition_cols_) part_idx.push_back(in_schema.IndexOf(p));

  // One sort orders by (partition, order-keys); partitions are then
  // contiguous runs — the standard single-pass window plan. Partition
  // columns compare through pre-resolved indices (not the expression
  // comparator) so the sort costs no per-comparison name lookups.
  auto cmp_partition = [&](const Tuple& a, const Tuple& b) {
    for (size_t pi : part_idx) {
      int c = a.value(pi).Compare(b.value(pi));
      if (c != 0) return c;
    }
    return 0;
  };
  std::stable_sort(input.begin(), input.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     int c = cmp_partition(a, b);
                     if (c != 0) return c < 0;
                     return CompareBySortKeys(a, b, order_keys_, in_schema) < 0;
                   });

  // The sorted vector is the only materialization: row numbers are
  // assigned on the fly by the streaming operator as consumers pull.
  stream_ = std::make_unique<SortedWindowRowNumberExecutor>(
      std::make_unique<MaterializedExecutor>(std::move(input), in_schema),
      partition_cols_, out_column_);
  return stream_->Init();
}

bool WindowRowNumberExecutor::Next(Tuple* out) {
  if (stream_ == nullptr) return false;  // Init() failed or never ran
  if (!stream_->Next(out)) {
    status_ = stream_->status();
    return false;
  }
  return true;
}

bool WindowRowNumberExecutor::NextBatch(std::vector<Tuple>* out) {
  if (stream_ == nullptr) {  // Init() failed or never ran
    out->clear();
    return false;
  }
  if (!stream_->NextBatch(out)) {
    status_ = stream_->status();
    return false;
  }
  return true;
}

const Schema& WindowRowNumberExecutor::OutputSchema() const {
  return output_schema_;
}

}  // namespace relgraph
