#include "src/exec/window_executor.h"

#include <algorithm>

namespace relgraph {

WindowRowNumberExecutor::WindowRowNumberExecutor(
    ExecRef child, std::vector<std::string> partition_cols,
    std::vector<SortKey> order_keys, std::string out_column)
    : child_(std::move(child)),
      partition_cols_(std::move(partition_cols)),
      order_keys_(std::move(order_keys)) {
  std::vector<Column> cols = child_->OutputSchema().columns();
  cols.push_back({std::move(out_column), TypeId::kInt});
  output_schema_ = Schema(std::move(cols));
}

Status WindowRowNumberExecutor::Init() {
  rows_.clear();
  pos_ = 0;
  std::vector<Tuple> input;
  RELGRAPH_RETURN_IF_ERROR(Collect(child_.get(), &input));

  const Schema& in_schema = child_->OutputSchema();
  std::vector<size_t> part_idx;
  part_idx.reserve(partition_cols_.size());
  for (const auto& p : partition_cols_) part_idx.push_back(in_schema.IndexOf(p));

  // One sort orders by (partition, order-keys); partitions are then
  // contiguous runs — the standard single-pass window plan.
  auto cmp_partition = [&](const Tuple& a, const Tuple& b) {
    for (size_t pi : part_idx) {
      int c = a.value(pi).Compare(b.value(pi));
      if (c != 0) return c;
    }
    return 0;
  };
  std::stable_sort(input.begin(), input.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     int c = cmp_partition(a, b);
                     if (c != 0) return c < 0;
                     return CompareBySortKeys(a, b, order_keys_, in_schema) < 0;
                   });

  rows_.reserve(input.size());
  int64_t row_number = 0;
  for (size_t i = 0; i < input.size(); i++) {
    if (i == 0 || cmp_partition(input[i - 1], input[i]) != 0) {
      row_number = 0;  // new partition
    }
    row_number++;
    std::vector<Value> values;
    values.reserve(input[i].NumValues() + 1);
    for (const Value& v : input[i].values()) values.push_back(v);
    values.emplace_back(row_number);
    rows_.push_back(Tuple(std::move(values)));
  }
  return Status::OK();
}

bool WindowRowNumberExecutor::Next(Tuple* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

bool WindowRowNumberExecutor::NextBatch(std::vector<Tuple>* out) {
  return ReplayBatch(rows_, &pos_, out);
}

const Schema& WindowRowNumberExecutor::OutputSchema() const {
  return output_schema_;
}

}  // namespace relgraph
