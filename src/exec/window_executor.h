#pragma once

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/expression.h"
#include "src/exec/sort_executor.h"

namespace relgraph {

/// Streaming row_number(): assumes the child emits rows already ordered so
/// that every partition is one contiguous run (and rows within a partition
/// arrive in the desired ORDER BY order). Appends a 1-based INT row number
/// that resets at each partition boundary. O(1) state — only the previous
/// row's partition key is retained — so nothing is materialized; downstream
/// `rownum = 1` filters (the paper's dedup) stream row by row.
class SortedWindowRowNumberExecutor : public Executor {
 public:
  SortedWindowRowNumberExecutor(ExecRef child,
                                std::vector<std::string> partition_cols,
                                std::string out_column = "rownum");
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("StreamingWindowRowNumber: partition by");
    for (const auto& p : partition_cols_) out->append(" " + p);
    out->append(" (sorted input) -> " +
                output_schema_.column(output_schema_.NumColumns() - 1).name +
                "\n");
    child_->Explain(depth + 1, out);
  }

 private:
  /// Appends the row number for `in` (advancing the partition state) and
  /// writes the widened tuple to `out`.
  void Number(Tuple in, Tuple* out);

  ExecRef child_;
  std::vector<std::string> partition_cols_;
  std::vector<size_t> part_idx_;
  Schema output_schema_;
  std::vector<Value> prev_key_;  // previous row's partition column values
  bool have_prev_ = false;
  int64_t row_number_ = 0;
  std::vector<Tuple> in_batch_;  // NextBatch scratch
};

/// The SQL:2003 window function the paper leans on (§2.2, Listing 2(3)):
///
///   row_number() OVER (PARTITION BY <cols> ORDER BY <keys>)
///
/// Physical plan: one stable sort of the child by (partition columns, order
/// keys) — partitions become contiguous runs — feeding the streaming
/// operator above. The sorted input is the only materialization; the
/// numbered output is produced row/batch-at-a-time, which halves the
/// operator's peak memory versus the old build-the-whole-output plan and
/// lets the E-operator's `rownum = 1` dedup stream. Selecting `rownum = 1`
/// keeps, per expanded node, the single occurrence with minimal distance —
/// carrying its non-aggregate columns (p2s!) along, which is exactly why
/// the paper prefers this over the aggregate+re-join formulation.
class WindowRowNumberExecutor : public Executor {
 public:
  WindowRowNumberExecutor(ExecRef child, std::vector<std::string> partition_cols,
                          std::vector<SortKey> order_keys,
                          std::string out_column = "rownum");
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("WindowRowNumber: partition by");
    for (const auto& p : partition_cols_) out->append(" " + p);
    out->append(" order by");
    for (const auto& k : order_keys_) out->append(" " + k.expr->ToString());
    out->append(" -> " + output_schema_.column(
                             output_schema_.NumColumns() - 1).name + "\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  std::vector<std::string> partition_cols_;
  std::vector<SortKey> order_keys_;
  std::string out_column_;
  Schema output_schema_;
  /// Sort + streaming-number pipeline, rebuilt on every Init() over the
  /// freshly sorted input.
  std::unique_ptr<SortedWindowRowNumberExecutor> stream_;
};

}  // namespace relgraph
