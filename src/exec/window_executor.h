#pragma once

#include <string>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/expression.h"
#include "src/exec/sort_executor.h"

namespace relgraph {

/// The SQL:2003 window function the paper leans on (§2.2, Listing 2(3)):
///
///   row_number() OVER (PARTITION BY <cols> ORDER BY <keys>)
///
/// Materializes the child, sorts by (partition columns, order keys), and
/// appends an INT column holding the 1-based row number within each
/// partition. Selecting `rownum = 1` afterwards keeps, per expanded node,
/// the single occurrence with minimal distance — carrying its non-aggregate
/// columns (p2s!) along, which is exactly why the paper prefers this over
/// the aggregate+re-join formulation.
class WindowRowNumberExecutor : public Executor {
 public:
  WindowRowNumberExecutor(ExecRef child, std::vector<std::string> partition_cols,
                          std::vector<SortKey> order_keys,
                          std::string out_column = "rownum");
  Status Init() override;
  bool Next(Tuple* out) override;
  bool NextBatch(std::vector<Tuple>* out) override;
  const Schema& OutputSchema() const override;
  void Explain(int depth, std::string* out) const override {
    Indent(depth, out);
    out->append("WindowRowNumber: partition by");
    for (const auto& p : partition_cols_) out->append(" " + p);
    out->append(" order by");
    for (const auto& k : order_keys_) out->append(" " + k.expr->ToString());
    out->append(" -> " + output_schema_.column(
                             output_schema_.NumColumns() - 1).name + "\n");
    child_->Explain(depth + 1, out);
  }

 private:
  ExecRef child_;
  std::vector<std::string> partition_cols_;
  std::vector<SortKey> order_keys_;
  Schema output_schema_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

}  // namespace relgraph
