#include "src/graph/generators.h"

#include <algorithm>

#include "src/common/rng.h"

namespace relgraph {

namespace {
weight_t DrawWeight(Rng* rng, WeightRange w) {
  return rng->NextInt(w.lo, w.hi);
}
}  // namespace

EdgeList GenerateRandomGraph(int64_t n, int64_t m, WeightRange weights,
                             uint64_t seed) {
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = n;
  list.edges.reserve(m);
  for (int64_t i = 0; i < m; i++) {
    node_id_t u = rng.NextInt(0, n - 1);
    node_id_t v = rng.NextInt(0, n - 1);
    if (u == v) v = (v + 1) % n;
    list.edges.push_back({u, v, DrawWeight(&rng, weights)});
  }
  return list;
}

EdgeList GenerateBarabasiAlbert(int64_t n, int64_t degree, WeightRange weights,
                                uint64_t seed) {
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = n;
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is preferential attachment (the classic repeated-nodes trick).
  std::vector<node_id_t> targets;
  targets.reserve(2 * n * degree);
  int64_t seed_nodes = std::max<int64_t>(degree, 2);
  for (node_id_t u = 0; u < seed_nodes; u++) {
    node_id_t v = (u + 1) % seed_nodes;
    weight_t w = DrawWeight(&rng, weights);
    list.edges.push_back({u, v, w});
    list.edges.push_back({v, u, w});
    targets.push_back(u);
    targets.push_back(v);
  }
  for (node_id_t u = seed_nodes; u < n; u++) {
    for (int64_t k = 0; k < degree; k++) {
      node_id_t v = targets[rng.NextBounded(targets.size())];
      if (v == u) v = targets[rng.NextBounded(targets.size())];
      if (v == u) v = (u + 1) % n;
      weight_t w = DrawWeight(&rng, weights);
      list.edges.push_back({u, v, w});
      list.edges.push_back({v, u, w});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return list;
}

EdgeList GenerateCommunityGraph(int64_t n, int64_t avg_degree,
                                int64_t num_communities, double intra_fraction,
                                WeightRange weights, uint64_t seed) {
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = n;
  int64_t community_size = std::max<int64_t>(1, n / num_communities);
  int64_t undirected_edges = n * avg_degree / 2;
  for (int64_t i = 0; i < undirected_edges; i++) {
    node_id_t u = rng.NextInt(0, n - 1);
    node_id_t v;
    if (rng.NextDouble() < intra_fraction) {
      int64_t c = u / community_size;
      int64_t lo = c * community_size;
      int64_t hi = std::min(n - 1, lo + community_size - 1);
      v = rng.NextInt(lo, hi);
    } else {
      v = rng.NextInt(0, n - 1);
    }
    if (u == v) v = (v + 1) % n;
    weight_t w = DrawWeight(&rng, weights);
    list.edges.push_back({u, v, w});
    list.edges.push_back({v, u, w});
  }
  return list;
}

EdgeList GenerateGridGraph(int64_t rows, int64_t cols, WeightRange weights,
                           uint64_t seed) {
  Rng rng(seed);
  EdgeList list;
  list.num_nodes = rows * cols;
  auto id = [cols](int64_t r, int64_t c) { return r * cols + c; };
  for (int64_t r = 0; r < rows; r++) {
    for (int64_t c = 0; c < cols; c++) {
      if (c + 1 < cols) {
        weight_t w = DrawWeight(&rng, weights);
        list.edges.push_back({id(r, c), id(r, c + 1), w});
        list.edges.push_back({id(r, c + 1), id(r, c), w});
      }
      if (r + 1 < rows) {
        weight_t w = DrawWeight(&rng, weights);
        list.edges.push_back({id(r, c), id(r + 1, c), w});
        list.edges.push_back({id(r + 1, c), id(r, c), w});
      }
    }
  }
  return list;
}

EdgeList MakeDblpStandIn(double scale, uint64_t seed) {
  // DBLP: 312,967 nodes, ~3.7 avg degree, strong community structure.
  int64_t n = std::max<int64_t>(1000, static_cast<int64_t>(312967 * scale));
  return GenerateCommunityGraph(n, /*avg_degree=*/4, /*num_communities=*/n / 50,
                                /*intra_fraction=*/0.8, WeightRange{1, 100},
                                seed);
}

EdgeList MakeGoogleWebStandIn(double scale, uint64_t seed) {
  // GoogleWeb: 855,802 nodes, ~5.9 avg degree, skewed (power-law) degrees.
  int64_t n = std::max<int64_t>(1000, static_cast<int64_t>(855802 * scale));
  return GenerateBarabasiAlbert(n, /*degree=*/3, WeightRange{1, 100}, seed);
}

EdgeList MakeLiveJournalStandIn(double scale, uint64_t seed) {
  // LiveJournal: 4,847,571 nodes, ~8.9 avg degree power-law social graph.
  int64_t n = std::max<int64_t>(1000, static_cast<int64_t>(4847571 * scale));
  return GenerateBarabasiAlbert(n, /*degree=*/4, WeightRange{1, 100}, seed);
}

}  // namespace relgraph
