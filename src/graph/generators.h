#pragma once

#include <cstdint>

#include "src/graph/memgraph.h"

namespace relgraph {

/// Graph generators for the paper's workloads (§5.1 "Data Sets"). Weights
/// are always drawn uniformly from [weight_lo, weight_hi]; the paper uses
/// [1,100] everywhere.
struct WeightRange {
  weight_t lo = 1;
  weight_t hi = 100;
};

/// Paper's Random graphs: "we randomly select the source and target node
/// for m times among n nodes" — m independent uniform edges (self-loops
/// excluded, duplicates allowed, directed).
EdgeList GenerateRandomGraph(int64_t n, int64_t m, WeightRange weights,
                             uint64_t seed);

/// Paper's Power graphs (Barabási Graph Generator): preferential-attachment
/// scale-free graph where each new node attaches `degree` out-edges to
/// existing nodes with probability proportional to their current degree.
/// Edges are emitted in both directions (the generator's graphs are
/// undirected; storing both directions matches a symmetric TEdges).
EdgeList GenerateBarabasiAlbert(int64_t n, int64_t degree, WeightRange weights,
                                uint64_t seed);

/// Community-structured graph standing in for DBLP (dense intra-community
/// collaboration, sparse inter-community links). Undirected (both
/// directions stored).
EdgeList GenerateCommunityGraph(int64_t n, int64_t avg_degree,
                                int64_t num_communities, double intra_fraction,
                                WeightRange weights, uint64_t seed);

/// 4-neighbour grid standing in for a road network (used by examples).
EdgeList GenerateGridGraph(int64_t rows, int64_t cols, WeightRange weights,
                           uint64_t seed);

/// Named stand-ins for the paper's real datasets, scaled by `scale` in
/// (0, 1]: scale=1 approximates the original node count. See DESIGN.md
/// "Substitutions" for the topology-class argument.
EdgeList MakeDblpStandIn(double scale, uint64_t seed);
EdgeList MakeGoogleWebStandIn(double scale, uint64_t seed);
EdgeList MakeLiveJournalStandIn(double scale, uint64_t seed);

}  // namespace relgraph
