#include "src/graph/graph_io.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace relgraph {

Status SaveEdgeList(const EdgeList& list, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fprintf(f, "%" PRId64 " %zu\n", list.num_nodes, list.edges.size());
  for (const auto& e : list.edges) {
    std::fprintf(f, "%" PRId64 " %" PRId64 " %" PRId64 "\n", e.from, e.to,
                 e.weight);
  }
  std::fclose(f);
  return Status::OK();
}

Status LoadEdgeList(const std::string& path, EdgeList* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  out->num_nodes = 0;
  out->edges.clear();
  char line[256];
  bool header_seen = false;
  int64_t declared_edges = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    if (!header_seen) {
      if (std::sscanf(line, "%" PRId64 " %" PRId64, &out->num_nodes,
                      &declared_edges) != 2) {
        std::fclose(f);
        return Status::Corruption("bad header in " + path);
      }
      header_seen = true;
      out->edges.reserve(declared_edges);
      continue;
    }
    Edge e;
    int n = std::sscanf(line, "%" PRId64 " %" PRId64 " %" PRId64, &e.from,
                        &e.to, &e.weight);
    if (n == 2) e.weight = 1;
    if (n < 2) {
      std::fclose(f);
      return Status::Corruption("bad edge line in " + path);
    }
    if (e.from < 0 || e.from >= out->num_nodes || e.to < 0 ||
        e.to >= out->num_nodes) {
      std::fclose(f);
      return Status::Corruption("edge endpoint out of range in " + path);
    }
    out->edges.push_back(e);
  }
  std::fclose(f);
  if (!header_seen) return Status::Corruption("empty edge list " + path);
  return Status::OK();
}

}  // namespace relgraph
