#pragma once

#include <string>

#include "src/common/status.h"
#include "src/graph/memgraph.h"

namespace relgraph {

/// Plain-text edge list: first line "num_nodes num_edges", then one
/// "from to weight" triple per line. Lines starting with '#' are comments
/// (SNAP-style, so real datasets drop in if available).
Status SaveEdgeList(const EdgeList& list, const std::string& path);
Status LoadEdgeList(const std::string& path, EdgeList* out);

}  // namespace relgraph
