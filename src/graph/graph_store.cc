#include "src/graph/graph_store.h"

#include <algorithm>

namespace relgraph {

const char* IndexStrategyName(IndexStrategy s) {
  switch (s) {
    case IndexStrategy::kNoIndex:
      return "NoIndex";
    case IndexStrategy::kIndex:
      return "Index";
    case IndexStrategy::kCluIndex:
      return "CluIndex";
  }
  return "?";
}

Schema EdgeTableSchema() {
  return Schema({{"fid", TypeId::kInt},
                 {"tid", TypeId::kInt},
                 {"cost", TypeId::kInt}});
}

Tuple EdgeTableRow(const Edge& e) {
  return Tuple({Value(e.from), Value(e.to), Value(e.weight)});
}

Status GraphStore::Create(Database* db, const EdgeList& list,
                          GraphStoreOptions options,
                          std::unique_ptr<GraphStore>* out) {
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->db_ = db;
  store->options_ = options;
  store->num_nodes_ = list.num_nodes;
  store->num_edges_ = static_cast<int64_t>(list.edges.size());
  store->min_weight_ = list.MinWeight();
  Catalog* catalog = db->catalog();
  const std::string& p = options.prefix;

  // TNodes(nid, label): label supports the pattern-matching extension and
  // defaults to a hash bucket of the id.
  {
    Schema node_schema({{"nid", TypeId::kInt}, {"label", TypeId::kInt}});
    TableOptions topts;
    if (options.strategy == IndexStrategy::kCluIndex) {
      topts.storage = TableStorage::kClustered;
      topts.cluster_key = "nid";
      topts.cluster_unique = true;
    }
    RELGRAPH_RETURN_IF_ERROR(catalog->CreateTable(p + "TNodes", node_schema,
                                                  topts, &store->nodes_));
    if (options.strategy == IndexStrategy::kIndex) {
      RELGRAPH_RETURN_IF_ERROR(catalog->CreateSecondaryIndex(
          store->nodes_, "nid", /*unique=*/true));
    }
    for (node_id_t u = 0; u < list.num_nodes; u++) {
      RELGRAPH_RETURN_IF_ERROR(
          store->nodes_->Insert(Tuple({Value(u), Value(u % 16)})));
    }
  }

  if (options.strategy == IndexStrategy::kCluIndex) {
    // Two clustered copies; rows inserted in cluster-key order for a
    // packed tree (the clustered bulk-load a real RDBMS would do).
    TableOptions fwd;
    fwd.storage = TableStorage::kClustered;
    fwd.cluster_key = "fid";
    RELGRAPH_RETURN_IF_ERROR(catalog->CreateTable(p + "TEdges", EdgeTableSchema(),
                                                  fwd, &store->edges_out_));
    TableOptions bwd;
    bwd.storage = TableStorage::kClustered;
    bwd.cluster_key = "tid";
    RELGRAPH_RETURN_IF_ERROR(catalog->CreateTable(p + "TEdgesIn", EdgeTableSchema(),
                                                  bwd, &store->edges_in_));
    std::vector<Edge> sorted = list.edges;
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge& a, const Edge& b) { return a.from < b.from; });
    for (const auto& e : sorted) {
      RELGRAPH_RETURN_IF_ERROR(store->edges_out_->Insert(EdgeTableRow(e)));
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
    for (const auto& e : sorted) {
      RELGRAPH_RETURN_IF_ERROR(store->edges_in_->Insert(EdgeTableRow(e)));
    }
  } else {
    RELGRAPH_RETURN_IF_ERROR(catalog->CreateTable(
        p + "TEdges", EdgeTableSchema(), TableOptions{}, &store->edges_out_));
    store->edges_in_ = store->edges_out_;
    for (const auto& e : list.edges) {
      RELGRAPH_RETURN_IF_ERROR(store->edges_out_->Insert(EdgeTableRow(e)));
    }
    if (options.strategy == IndexStrategy::kIndex) {
      RELGRAPH_RETURN_IF_ERROR(catalog->CreateSecondaryIndex(
          store->edges_out_, "fid", /*unique=*/false));
      RELGRAPH_RETURN_IF_ERROR(catalog->CreateSecondaryIndex(
          store->edges_out_, "tid", /*unique=*/false));
    }
  }
  *out = std::move(store);
  return Status::OK();
}

EdgeRelation GraphStore::Forward() const {
  return EdgeRelation{edges_out_, "fid", "tid", "fid", "cost"};
}

EdgeRelation GraphStore::Backward() const {
  return EdgeRelation{edges_in_, "tid", "fid", "tid", "cost"};
}

Status GraphStore::AddEdge(const Edge& e) {
  RELGRAPH_RETURN_IF_ERROR(edges_out_->Insert(EdgeTableRow(e)));
  if (edges_in_ != edges_out_) {
    RELGRAPH_RETURN_IF_ERROR(edges_in_->Insert(EdgeTableRow(e)));
  }
  num_edges_++;
  min_weight_ = std::min(min_weight_, e.weight);
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

namespace {

/// Deletes one row matching (fid, tid, cost) from an edge table, probing
/// through `key_col`'s index when one exists.
Status RemoveOneEdgeRow(Table* table, const std::string& key_col, int64_t key,
                        const Edge& e) {
  Table::Iterator it;
  if (table->HasIndexOn(key_col)) {
    RELGRAPH_RETURN_IF_ERROR(table->ScanRange(key_col, key, key, &it));
  } else {
    it = table->Scan();
  }
  Tuple row;
  RowRef ref;
  while (it.Next(&row, &ref)) {
    if (row.value(0).AsInt() == e.from && row.value(1).AsInt() == e.to &&
        row.value(2).AsInt() == e.weight) {
      return table->DeleteRow(ref);
    }
  }
  RELGRAPH_RETURN_IF_ERROR(it.status());
  return Status::NotFound("no edge (" + std::to_string(e.from) + ", " +
                          std::to_string(e.to) + ", " +
                          std::to_string(e.weight) + ")");
}

}  // namespace

Status GraphStore::RemoveEdge(const Edge& e) {
  RELGRAPH_RETURN_IF_ERROR(RemoveOneEdgeRow(edges_out_, "fid", e.from, e));
  if (edges_in_ != edges_out_) {
    RELGRAPH_RETURN_IF_ERROR(RemoveOneEdgeRow(edges_in_, "tid", e.to, e));
  }
  num_edges_--;
  mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

}  // namespace relgraph
