#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "src/db/database.h"
#include "src/graph/memgraph.h"

namespace relgraph {

/// Physical indexing of the edge relations — the paper's Figure 8(c) knobs.
enum class IndexStrategy {
  kNoIndex,   // heap TEdges, no access path: joins degrade to scans
  kIndex,     // heap TEdges + non-clustered B+-trees on fid and tid
  kCluIndex,  // two clustered copies: TEdges by fid, TEdgesIn by tid
};

const char* IndexStrategyName(IndexStrategy s);

/// The canonical TEdges(fid, tid, cost) schema and its row encoding, shared
/// by every physical copy of the edge relation (GraphStore's clustered
/// pair, the sharded partitions).
Schema EdgeTableSchema();
Tuple EdgeTableRow(const Edge& e);

struct GraphStoreOptions {
  IndexStrategy strategy = IndexStrategy::kCluIndex;
  /// Table-name prefix so several graphs can coexist in one database.
  std::string prefix;
};

/// One adjacency relation as the FEM operators consume it: which table to
/// join against, which column carries the frontier side of the join, which
/// column names the expanded node, and which column names the expanded
/// node's predecessor/successor on the original graph. Base edge tables
/// bind parent to the frontier endpoint; SegTable relations bind it to the
/// precomputed `pid`.
struct EdgeRelation {
  Table* table = nullptr;
  std::string join_column;    // matches the frontier node id
  std::string emit_column;    // the newly reached node id
  std::string parent_column;  // predecessor (fwd) / successor (bwd)
  std::string cost_column = "cost";
};

/// Relational storage of one graph, matching the paper's Figure 1:
/// TNodes(nid) and TEdges(fid, tid, cost), stored under the chosen index
/// strategy. With kCluIndex the reverse adjacency lives in a second
/// clustered copy (TEdgesIn by tid) so backward expansions are indexed too,
/// mirroring the paper's symmetric TOutSegs/TInSegs arrangement.
class GraphStore {
 public:
  static Status Create(Database* db, const EdgeList& list,
                       GraphStoreOptions options,
                       std::unique_ptr<GraphStore>* out);

  /// Adjacency for forward expansion (join on fid, emit tid).
  EdgeRelation Forward() const;
  /// Adjacency for backward expansion (join on tid, emit fid).
  EdgeRelation Backward() const;

  Table* nodes() const { return nodes_; }
  Database* db() const { return db_; }
  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }
  weight_t min_weight() const { return min_weight_; }
  IndexStrategy strategy() const { return options_.strategy; }

  /// Counts graph mutations (AddEdge/RemoveEdge) since construction.
  /// Derived structures (hub labels, sketches) record the epoch they were
  /// built at; a moved epoch means their answers may no longer match the
  /// graph. Unlike the catalog version this only moves on *data* changes,
  /// so unrelated DDL (working tables, indexes) doesn't invalidate them.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

  /// Appends one edge to every physical copy/index (dynamic updates).
  Status AddEdge(const Edge& e);

  /// Removes one edge matching (from, to, weight) from every physical
  /// copy/index; NotFound when no such edge exists. `min_weight()` is left
  /// untouched: deleting an edge can only raise the true minimum, and a
  /// stale smaller bound only makes the frontier rules more conservative,
  /// never incorrect.
  Status RemoveEdge(const Edge& e);

 private:
  GraphStore() = default;

  Database* db_ = nullptr;
  GraphStoreOptions options_;
  Table* nodes_ = nullptr;
  Table* edges_out_ = nullptr;  // kCluIndex: clustered by fid; else the heap
  Table* edges_in_ = nullptr;   // kCluIndex: clustered by tid; else == out
  int64_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  weight_t min_weight_ = kInfinity;
  std::atomic<uint64_t> mutation_epoch_{0};
};

}  // namespace relgraph
