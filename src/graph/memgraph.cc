#include "src/graph/memgraph.h"

#include <algorithm>
#include <queue>

namespace relgraph {

weight_t EdgeList::MinWeight() const {
  weight_t w = kInfinity;
  for (const auto& e : edges) w = std::min(w, e.weight);
  return w;
}

MemGraph::MemGraph(const EdgeList& list)
    : num_nodes_(list.num_nodes), min_weight_(list.MinWeight()) {
  int64_t m = static_cast<int64_t>(list.edges.size());
  out_offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& e : list.edges) {
    out_offsets_[e.from + 1]++;
    in_offsets_[e.to + 1]++;
  }
  for (int64_t i = 0; i < num_nodes_; i++) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  to_.resize(m);
  out_weights_.resize(m);
  from_.resize(m);
  in_weights_.resize(m);
  std::vector<int64_t> out_pos(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<int64_t> in_pos(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const auto& e : list.edges) {
    int64_t po = out_pos[e.from]++;
    to_[po] = e.to;
    out_weights_[po] = e.weight;
    int64_t pi = in_pos[e.to]++;
    from_[pi] = e.from;
    in_weights_[pi] = e.weight;
  }
}

std::vector<MemGraph::Neighbor> MemGraph::OutNeighbors(node_id_t u) const {
  std::vector<Neighbor> out;
  for (int64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; i++) {
    out.push_back({to_[i], out_weights_[i]});
  }
  return out;
}

std::vector<MemGraph::Neighbor> MemGraph::InNeighbors(node_id_t u) const {
  std::vector<Neighbor> out;
  for (int64_t i = in_offsets_[u]; i < in_offsets_[u + 1]; i++) {
    out.push_back({from_[i], in_weights_[i]});
  }
  return out;
}

int64_t MemGraph::OutDegree(node_id_t u) const {
  return out_offsets_[u + 1] - out_offsets_[u];
}

namespace {
using HeapItem = std::pair<weight_t, node_id_t>;
using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

std::vector<node_id_t> RecoverPath(const std::vector<node_id_t>& pred,
                                   node_id_t s, node_id_t t) {
  std::vector<node_id_t> path;
  for (node_id_t x = t; x != s; x = pred[x]) {
    path.push_back(x);
    if (pred[x] == kInvalidNode) return {};
  }
  path.push_back(s);
  std::reverse(path.begin(), path.end());
  return path;
}
}  // namespace

MemPathResult MemGraph::Dijkstra(node_id_t s, node_id_t t) const {
  MemPathResult result;
  std::vector<weight_t> dist(num_nodes_, kInfinity);
  std::vector<node_id_t> pred(num_nodes_, kInvalidNode);
  std::vector<bool> settled(num_nodes_, false);
  MinHeap heap;
  dist[s] = 0;
  pred[s] = s;
  heap.push({0, s});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (settled[u]) continue;
    settled[u] = true;
    result.settled++;
    if (u == t) break;
    for (int64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; i++) {
      node_id_t v = to_[i];
      weight_t nd = d + out_weights_[i];
      if (nd < dist[v]) {
        dist[v] = nd;
        pred[v] = u;
        heap.push({nd, v});
      }
    }
  }
  if (dist[t] < kInfinity) {
    result.found = true;
    result.distance = dist[t];
    result.path = RecoverPath(pred, s, t);
  }
  return result;
}

MemPathResult MemGraph::BidirectionalDijkstra(node_id_t s, node_id_t t) const {
  MemPathResult result;
  if (s == t) {
    result.found = true;
    result.distance = 0;
    result.path = {s};
    return result;
  }
  std::vector<weight_t> dist_f(num_nodes_, kInfinity);
  std::vector<weight_t> dist_b(num_nodes_, kInfinity);
  std::vector<node_id_t> pred(num_nodes_, kInvalidNode);
  std::vector<node_id_t> succ(num_nodes_, kInvalidNode);
  std::vector<bool> settled_f(num_nodes_, false);
  std::vector<bool> settled_b(num_nodes_, false);
  MinHeap heap_f, heap_b;
  dist_f[s] = 0;
  pred[s] = s;
  heap_f.push({0, s});
  dist_b[t] = 0;
  succ[t] = t;
  heap_b.push({0, t});

  weight_t best = kInfinity;
  node_id_t meet = kInvalidNode;
  weight_t top_f = 0, top_b = 0;

  auto relax_meeting = [&](node_id_t v) {
    if (dist_f[v] < kInfinity && dist_b[v] < kInfinity &&
        dist_f[v] + dist_b[v] < best) {
      best = dist_f[v] + dist_b[v];
      meet = v;
    }
  };

  while (!heap_f.empty() || !heap_b.empty()) {
    top_f = heap_f.empty() ? kInfinity : heap_f.top().first;
    top_b = heap_b.empty() ? kInfinity : heap_b.top().first;
    if (top_f + top_b >= best) break;
    if (top_f <= top_b) {
      auto [d, u] = heap_f.top();
      heap_f.pop();
      if (settled_f[u]) continue;
      settled_f[u] = true;
      result.settled++;
      for (int64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; i++) {
        node_id_t v = to_[i];
        weight_t nd = d + out_weights_[i];
        if (nd < dist_f[v]) {
          dist_f[v] = nd;
          pred[v] = u;
          heap_f.push({nd, v});
        }
        relax_meeting(v);
      }
    } else {
      auto [d, u] = heap_b.top();
      heap_b.pop();
      if (settled_b[u]) continue;
      settled_b[u] = true;
      result.settled++;
      for (int64_t i = in_offsets_[u]; i < in_offsets_[u + 1]; i++) {
        node_id_t v = from_[i];
        weight_t nd = d + in_weights_[i];
        if (nd < dist_b[v]) {
          dist_b[v] = nd;
          succ[v] = u;
          heap_b.push({nd, v});
        }
        relax_meeting(v);
      }
    }
  }

  if (best >= kInfinity) return result;
  result.found = true;
  result.distance = best;
  // Stitch s -> meet (pred links) and meet -> t (succ links).
  std::vector<node_id_t> front;
  for (node_id_t x = meet; x != s; x = pred[x]) {
    if (pred[x] == kInvalidNode) return result;
    front.push_back(x);
  }
  front.push_back(s);
  std::reverse(front.begin(), front.end());
  for (node_id_t x = meet; x != t;) {
    x = succ[x];
    front.push_back(x);
  }
  result.path = std::move(front);
  return result;
}

std::vector<weight_t> MemGraph::SingleSourceDistances(node_id_t s,
                                                      weight_t limit) const {
  std::vector<weight_t> dist(num_nodes_, kInfinity);
  MinHeap heap;
  dist[s] = 0;
  heap.push({0, s});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (d > limit) break;
    for (int64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; i++) {
      node_id_t v = to_[i];
      weight_t nd = d + out_weights_[i];
      if (nd < dist[v] && nd <= limit) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  return dist;
}

weight_t MemGraph::PathLength(const std::vector<node_id_t>& path) const {
  if (path.empty()) return kInfinity;
  weight_t total = 0;
  for (size_t i = 0; i + 1 < path.size(); i++) {
    weight_t best = kInfinity;
    for (int64_t j = out_offsets_[path[i]]; j < out_offsets_[path[i] + 1];
         j++) {
      if (to_[j] == path[i + 1]) best = std::min(best, out_weights_[j]);
    }
    if (best == kInfinity) return kInfinity;
    total += best;
  }
  return total;
}

}  // namespace relgraph
