#pragma once

#include <cstdint>
#include <vector>

#include "src/common/config.h"

namespace relgraph {

/// One weighted directed edge.
struct Edge {
  node_id_t from = 0;
  node_id_t to = 0;
  weight_t weight = 1;

  bool operator==(const Edge& other) const = default;
};

/// An edge list plus its node count — the interchange format between
/// generators, file I/O, the relational GraphStore, and MemGraph.
struct EdgeList {
  int64_t num_nodes = 0;
  std::vector<Edge> edges;

  weight_t MinWeight() const;
};

/// Result of an in-memory shortest-path query.
struct MemPathResult {
  bool found = false;
  weight_t distance = kInfinity;
  std::vector<node_id_t> path;     // s ... t when found
  int64_t settled = 0;             // nodes finalized (search-space measure)
};

/// Compressed-sparse-row adjacency (out and in) kept fully in memory.
/// Implements the paper's in-memory competitors MDJ (Dijkstra with a binary
/// heap) and MBDJ (bi-directional Dijkstra), and doubles as the test oracle
/// for every relational algorithm.
class MemGraph {
 public:
  explicit MemGraph(const EdgeList& list);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return static_cast<int64_t>(to_.size()); }
  weight_t min_weight() const { return min_weight_; }

  struct Neighbor {
    node_id_t node;
    weight_t weight;
  };

  /// Out-neighbors of u as a contiguous span.
  std::vector<Neighbor> OutNeighbors(node_id_t u) const;
  std::vector<Neighbor> InNeighbors(node_id_t u) const;
  int64_t OutDegree(node_id_t u) const;

  /// MDJ: single-direction Dijkstra.
  MemPathResult Dijkstra(node_id_t s, node_id_t t) const;

  /// MBDJ: bi-directional Dijkstra (alternates on the smaller frontier top).
  MemPathResult BidirectionalDijkstra(node_id_t s, node_id_t t) const;

  /// Single-source distances to every reachable node, bounded by `limit`
  /// (pass kInfinity for unbounded). Used by SegTable ground-truth tests.
  std::vector<weight_t> SingleSourceDistances(node_id_t s,
                                              weight_t limit) const;

  /// Sum of edge weights along `path`; kInfinity when any hop is not an
  /// edge. Validates recovered paths.
  weight_t PathLength(const std::vector<node_id_t>& path) const;

 private:
  int64_t num_nodes_;
  weight_t min_weight_;
  // Forward CSR.
  std::vector<int64_t> out_offsets_;
  std::vector<node_id_t> to_;
  std::vector<weight_t> out_weights_;
  // Reverse CSR.
  std::vector<int64_t> in_offsets_;
  std::vector<node_id_t> from_;
  std::vector<weight_t> in_weights_;
};

}  // namespace relgraph
