#include "src/index/btree.h"

#include <cassert>
#include <cstring>
#include <unordered_set>

namespace relgraph {

// ---------------------------------------------------------------------------
// On-page layout
//
// Both node kinds share an 8-byte header at offset 0:
//   u8  is_leaf; u8 pad; u16 count; i32 next (leaf sibling / unused)
// Entries follow at offset 8 with a fixed stride:
//   leaf:     key i64 | tie i64 | payload[payload_size]
//   internal: key i64 | tie i64 | child i32 (+4 pad)   (stride 24)
// Internal separator entry 0 acts as -infinity: descent always lands in a
// child, and its stored key is maintained as a lower bound for readability.
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kHeaderSize = 8;
constexpr size_t kInternalStride = 24;

struct NodeHeader {
  uint8_t is_leaf;
  uint8_t pad;
  uint16_t count;
  page_id_t next;
};

NodeHeader* Header(char* data) { return reinterpret_cast<NodeHeader*>(data); }
const NodeHeader* Header(const char* data) {
  return reinterpret_cast<const NodeHeader*>(data);
}

size_t LeafStride(uint16_t payload_size) { return 16 + payload_size; }

size_t LeafCapacity(uint16_t payload_size) {
  return (kPageSize - kHeaderSize) / LeafStride(payload_size);
}

size_t InternalCapacity() { return (kPageSize - kHeaderSize) / kInternalStride; }

char* LeafEntry(char* data, uint16_t i, uint16_t payload_size) {
  return data + kHeaderSize + static_cast<size_t>(i) * LeafStride(payload_size);
}
const char* LeafEntry(const char* data, uint16_t i, uint16_t payload_size) {
  return data + kHeaderSize + static_cast<size_t>(i) * LeafStride(payload_size);
}

char* InternalEntry(char* data, uint16_t i) {
  return data + kHeaderSize + static_cast<size_t>(i) * kInternalStride;
}
const char* InternalEntry(const char* data, uint16_t i) {
  return data + kHeaderSize + static_cast<size_t>(i) * kInternalStride;
}

BtKey ReadKey(const char* entry) {
  BtKey k;
  std::memcpy(&k.key, entry, 8);
  std::memcpy(&k.tie, entry + 8, 8);
  return k;
}

void WriteKey(char* entry, const BtKey& k) {
  std::memcpy(entry, &k.key, 8);
  std::memcpy(entry + 8, &k.tie, 8);
}

page_id_t ReadChild(const char* entry) {
  page_id_t c;
  std::memcpy(&c, entry + 16, 4);
  return c;
}

void WriteChild(char* entry, page_id_t c) { std::memcpy(entry + 16, &c, 4); }

/// First leaf position with entry key >= `key` (lower bound).
uint16_t LeafLowerBound(const char* data, const BtKey& key,
                        uint16_t payload_size) {
  const NodeHeader* h = Header(data);
  uint16_t lo = 0, hi = h->count;
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (ReadKey(LeafEntry(data, mid, payload_size)).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot to descend into: last separator <= key (slot 0 is -infinity).
uint16_t InternalChildIndex(const char* data, const BtKey& key) {
  const NodeHeader* h = Header(data);
  uint16_t lo = 1, hi = h->count;  // entry 0 always qualifies
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (ReadKey(InternalEntry(data, mid)).Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo - 1;
}

}  // namespace

std::string EncodeRid(const Rid& rid) {
  std::string out(8, 0);
  std::memcpy(out.data(), &rid.page_id, 4);
  std::memcpy(out.data() + 4, &rid.slot, 2);
  return out;
}

Rid DecodeRid(std::string_view payload) {
  Rid rid;
  assert(payload.size() >= 6);
  std::memcpy(&rid.page_id, payload.data(), 4);
  std::memcpy(&rid.slot, payload.data() + 4, 2);
  return rid;
}

Status BTree::Create(BufferPool* pool, uint16_t payload_size, BTree* out) {
  if (LeafCapacity(payload_size) < 4) {
    return Status::InvalidArgument("payload too large for a B+-tree page");
  }
  page_id_t id;
  Page* page;
  RELGRAPH_RETURN_IF_ERROR(pool->NewPage(&id, &page));
  NodeHeader* h = Header(page->data());
  h->is_leaf = 1;
  h->count = 0;
  h->next = kInvalidPageId;
  RELGRAPH_RETURN_IF_ERROR(pool->UnpinPage(id, /*is_dirty=*/true));
  out->pool_ = pool;
  out->root_ = id;
  out->payload_size_ = payload_size;
  out->num_entries_ = 0;
  return Status::OK();
}

Status BTree::FindLeaf(const BtKey& key, page_id_t* leaf,
                       std::vector<Descent>* path) const {
  page_id_t current = root_;
  for (;;) {
    PageGuard guard(pool_, current);
    RELGRAPH_RETURN_IF_ERROR(guard.status());
    const NodeHeader* h = Header(guard.data());
    if (h->is_leaf) {
      *leaf = current;
      return Status::OK();
    }
    uint16_t idx = InternalChildIndex(guard.data(), key);
    if (path != nullptr) path->push_back({current, idx});
    current = ReadChild(InternalEntry(guard.data(), idx));
  }
}

Status BTree::Insert(BtKey key, std::string_view payload, bool unique) {
  if (payload.size() != payload_size_) {
    return Status::InvalidArgument("payload width mismatch");
  }
  std::vector<Descent> path;
  page_id_t leaf_id;
  RELGRAPH_RETURN_IF_ERROR(FindLeaf(key, &leaf_id, &path));

  PageGuard guard(pool_, leaf_id);
  RELGRAPH_RETURN_IF_ERROR(guard.status());
  NodeHeader* h = Header(guard.page()->data());
  char* data = guard.page()->data();

  uint16_t pos = LeafLowerBound(data, key, payload_size_);
  if (pos < h->count) {
    BtKey existing = ReadKey(LeafEntry(data, pos, payload_size_));
    if (existing == key ||
        (unique && existing.key == key.key)) {
      return Status::AlreadyExists("duplicate key " + std::to_string(key.key));
    }
  }
  if (unique && pos > 0) {
    BtKey prev = ReadKey(LeafEntry(data, pos - 1, payload_size_));
    if (prev.key == key.key) {
      return Status::AlreadyExists("duplicate key " + std::to_string(key.key));
    }
  }

  if (h->count < LeafCapacity(payload_size_)) {
    size_t stride = LeafStride(payload_size_);
    char* at = LeafEntry(data, pos, payload_size_);
    std::memmove(at + stride, at,
                 static_cast<size_t>(h->count - pos) * stride);
    WriteKey(at, key);
    std::memcpy(at + 16, payload.data(), payload_size_);
    h->count++;
    guard.MarkDirty();
    num_entries_++;
    return Status::OK();
  }

  guard.Release();
  RELGRAPH_RETURN_IF_ERROR(SplitLeaf(leaf_id, &path, key, payload));
  num_entries_++;
  return Status::OK();
}

Status BTree::SplitLeaf(page_id_t leaf_id, std::vector<Descent>* path,
                        const BtKey& pending_key,
                        std::string_view pending_payload) {
  PageGuard left(pool_, leaf_id);
  RELGRAPH_RETURN_IF_ERROR(left.status());
  char* ldata = left.page()->data();
  NodeHeader* lh = Header(ldata);

  page_id_t right_id;
  Page* right_page;
  RELGRAPH_RETURN_IF_ERROR(pool_->NewPage(&right_id, &right_page));
  char* rdata = right_page->data();
  NodeHeader* rh = Header(rdata);
  rh->is_leaf = 1;

  size_t stride = LeafStride(payload_size_);
  uint16_t total = lh->count;
  uint16_t keep = total / 2;
  uint16_t moved = total - keep;
  std::memcpy(LeafEntry(rdata, 0, payload_size_),
              LeafEntry(ldata, keep, payload_size_),
              static_cast<size_t>(moved) * stride);
  rh->count = moved;
  lh->count = keep;
  rh->next = lh->next;
  lh->next = right_id;
  left.MarkDirty();

  BtKey sep = ReadKey(LeafEntry(rdata, 0, payload_size_));

  // Place the pending entry into whichever half owns its key range.
  {
    char* target = pending_key.Compare(sep) < 0 ? ldata : rdata;
    NodeHeader* th = Header(target);
    uint16_t pos = LeafLowerBound(target, pending_key, payload_size_);
    char* at = LeafEntry(target, pos, payload_size_);
    std::memmove(at + stride, at, static_cast<size_t>(th->count - pos) * stride);
    WriteKey(at, pending_key);
    std::memcpy(at + 16, pending_payload.data(), payload_size_);
    th->count++;
  }

  RELGRAPH_RETURN_IF_ERROR(pool_->UnpinPage(right_id, /*is_dirty=*/true));
  left.Release();
  return InsertIntoParent(path, sep, right_id);
}

Status BTree::InsertIntoParent(std::vector<Descent>* path, BtKey sep,
                               page_id_t new_child) {
  if (path->empty()) {
    // The split node was the root: grow the tree by one level.
    page_id_t old_root = root_;
    page_id_t new_root_id;
    Page* new_root;
    RELGRAPH_RETURN_IF_ERROR(pool_->NewPage(&new_root_id, &new_root));
    char* data = new_root->data();
    NodeHeader* h = Header(data);
    h->is_leaf = 0;
    h->count = 2;
    h->next = kInvalidPageId;
    WriteKey(InternalEntry(data, 0), BtKey{INT64_MIN, INT64_MIN});
    WriteChild(InternalEntry(data, 0), old_root);
    WriteKey(InternalEntry(data, 1), sep);
    WriteChild(InternalEntry(data, 1), new_child);
    RELGRAPH_RETURN_IF_ERROR(pool_->UnpinPage(new_root_id, /*is_dirty=*/true));
    root_ = new_root_id;
    return Status::OK();
  }

  Descent d = path->back();
  path->pop_back();
  PageGuard guard(pool_, d.page);
  RELGRAPH_RETURN_IF_ERROR(guard.status());
  char* data = guard.page()->data();
  NodeHeader* h = Header(data);

  if (h->count < InternalCapacity()) {
    uint16_t pos = d.index + 1;  // new child goes right after the split child
    char* at = InternalEntry(data, pos);
    std::memmove(at + kInternalStride, at,
                 static_cast<size_t>(h->count - pos) * kInternalStride);
    WriteKey(at, sep);
    WriteChild(at, new_child);
    h->count++;
    guard.MarkDirty();
    return Status::OK();
  }

  // Split the internal node, then insert (sep, new_child) into the proper
  // half, then recurse upward with the right half's first separator.
  page_id_t right_id;
  Page* right_page;
  RELGRAPH_RETURN_IF_ERROR(pool_->NewPage(&right_id, &right_page));
  char* rdata = right_page->data();
  NodeHeader* rh = Header(rdata);
  rh->is_leaf = 0;
  rh->next = kInvalidPageId;

  uint16_t total = h->count;
  uint16_t keep = total / 2;
  uint16_t moved = total - keep;
  std::memcpy(InternalEntry(rdata, 0), InternalEntry(data, keep),
              static_cast<size_t>(moved) * kInternalStride);
  rh->count = moved;
  h->count = keep;
  guard.MarkDirty();

  BtKey up_sep = ReadKey(InternalEntry(rdata, 0));

  {
    // Insert the pending (sep, new_child). It belongs after child slot
    // d.index of the pre-split node.
    uint16_t pos = d.index + 1;
    char* target;
    NodeHeader* th;
    uint16_t tpos;
    if (pos <= keep) {
      target = data;
      th = h;
      tpos = pos;
    } else {
      target = rdata;
      th = rh;
      tpos = pos - keep;
    }
    char* at = InternalEntry(target, tpos);
    std::memmove(at + kInternalStride, at,
                 static_cast<size_t>(th->count - tpos) * kInternalStride);
    WriteKey(at, sep);
    WriteChild(at, new_child);
    th->count++;
  }

  RELGRAPH_RETURN_IF_ERROR(pool_->UnpinPage(right_id, /*is_dirty=*/true));
  guard.Release();
  return InsertIntoParent(path, up_sep, right_id);
}

Status BTree::Delete(BtKey key) {
  page_id_t leaf_id;
  RELGRAPH_RETURN_IF_ERROR(FindLeaf(key, &leaf_id, nullptr));
  PageGuard guard(pool_, leaf_id);
  RELGRAPH_RETURN_IF_ERROR(guard.status());
  char* data = guard.page()->data();
  NodeHeader* h = Header(data);
  uint16_t pos = LeafLowerBound(data, key, payload_size_);
  if (pos >= h->count ||
      !(ReadKey(LeafEntry(data, pos, payload_size_)) == key)) {
    return Status::NotFound("key not in tree");
  }
  size_t stride = LeafStride(payload_size_);
  char* at = LeafEntry(data, pos, payload_size_);
  std::memmove(at, at + stride,
               static_cast<size_t>(h->count - pos - 1) * stride);
  h->count--;
  guard.MarkDirty();
  num_entries_--;
  return Status::OK();
}

Status BTree::SearchExact(BtKey key, std::string* payload) const {
  page_id_t leaf_id;
  RELGRAPH_RETURN_IF_ERROR(FindLeaf(key, &leaf_id, nullptr));
  PageGuard guard(pool_, leaf_id);
  RELGRAPH_RETURN_IF_ERROR(guard.status());
  const char* data = guard.data();
  const NodeHeader* h = Header(data);
  uint16_t pos = LeafLowerBound(data, key, payload_size_);
  if (pos >= h->count ||
      !(ReadKey(LeafEntry(data, pos, payload_size_)) == key)) {
    return Status::NotFound("key not in tree");
  }
  payload->assign(LeafEntry(data, pos, payload_size_) + 16, payload_size_);
  return Status::OK();
}

Status BTree::SearchFirst(int64_t key, BtKey* found,
                          std::string* payload) const {
  BtKey probe{key, INT64_MIN};
  page_id_t leaf_id;
  RELGRAPH_RETURN_IF_ERROR(FindLeaf(probe, &leaf_id, nullptr));
  page_id_t current = leaf_id;
  while (current != kInvalidPageId) {
    PageGuard guard(pool_, current);
    RELGRAPH_RETURN_IF_ERROR(guard.status());
    const char* data = guard.data();
    const NodeHeader* h = Header(data);
    uint16_t pos = LeafLowerBound(data, probe, payload_size_);
    if (pos < h->count) {
      BtKey k = ReadKey(LeafEntry(data, pos, payload_size_));
      if (k.key != key) return Status::NotFound("key not in tree");
      *found = k;
      payload->assign(LeafEntry(data, pos, payload_size_) + 16, payload_size_);
      return Status::OK();
    }
    current = h->next;
  }
  return Status::NotFound("key not in tree");
}

Status BTree::UpdatePayload(BtKey key, std::string_view payload) {
  if (payload.size() != payload_size_) {
    return Status::InvalidArgument("payload width mismatch");
  }
  page_id_t leaf_id;
  RELGRAPH_RETURN_IF_ERROR(FindLeaf(key, &leaf_id, nullptr));
  PageGuard guard(pool_, leaf_id);
  RELGRAPH_RETURN_IF_ERROR(guard.status());
  char* data = guard.page()->data();
  NodeHeader* h = Header(data);
  uint16_t pos = LeafLowerBound(data, key, payload_size_);
  if (pos >= h->count ||
      !(ReadKey(LeafEntry(data, pos, payload_size_)) == key)) {
    return Status::NotFound("key not in tree");
  }
  std::memcpy(LeafEntry(data, pos, payload_size_) + 16, payload.data(),
              payload_size_);
  guard.MarkDirty();
  return Status::OK();
}

BTree::Iterator BTree::Scan(int64_t key_lo, int64_t key_hi) const {
  Iterator it;
  it.tree_ = this;
  it.hi_ = key_hi;
  BtKey probe{key_lo, INT64_MIN};
  page_id_t leaf_id;
  // A failed descent must poison the iterator, not fake a clean EOF: an
  // empty-looking range probe would silently drop rows (e.g. a shortest-path
  // frontier expansion "finding" no edges over a corrupted page).
  Status descent = FindLeaf(probe, &leaf_id, nullptr);
  if (!descent.ok()) {
    it.leaf_ = kInvalidPageId;
    it.status_ = descent;
    return it;
  }
  PageGuard guard(pool_, leaf_id);
  if (!guard.ok()) {
    it.leaf_ = kInvalidPageId;
    it.status_ = guard.status();
    return it;
  }
  const char* data = guard.data();
  uint16_t pos = LeafLowerBound(data, probe, payload_size_);
  it.leaf_ = leaf_id;
  it.pos_ = pos;
  return it;
}

BTree::Iterator BTree::ScanAll() const { return Scan(INT64_MIN, INT64_MAX); }

bool BTree::Iterator::Next(BtKey* key, std::string* payload) {
  while (leaf_ != kInvalidPageId) {
    PageGuard guard(tree_->pool_, leaf_);
    if (!guard.ok()) {
      status_ = guard.status();  // surface I/O errors, don't fake EOF
      return false;
    }
    const char* data = guard.data();
    const NodeHeader* h = Header(data);
    if (pos_ < h->count) {
      const char* entry = LeafEntry(data, pos_, tree_->payload_size_);
      BtKey k = ReadKey(entry);
      if (k.key > hi_) {
        leaf_ = kInvalidPageId;
        return false;
      }
      *key = k;
      payload->assign(entry + 16, tree_->payload_size_);
      pos_++;
      return true;
    }
    leaf_ = h->next;
    pos_ = 0;
  }
  return false;
}

int BTree::Height() const {
  int height = 1;
  page_id_t current = root_;
  for (;;) {
    PageGuard guard(pool_, current);
    if (!guard.ok()) return height;
    const NodeHeader* h = Header(guard.data());
    if (h->is_leaf) return height;
    current = ReadChild(InternalEntry(guard.data(), 0));
    height++;
  }
}

BTree BTree::Open(BufferPool* pool, page_id_t root, uint16_t payload_size,
                  int64_t num_entries) {
  BTree t;
  t.pool_ = pool;
  t.root_ = root;
  t.payload_size_ = payload_size;
  t.num_entries_ = num_entries;
  return t;
}

Status BTree::CheckIntegrity() const {
  // Walk the whole tree: every node's entries must be strictly ordered and,
  // for internal nodes, each child's keys must fall inside the separator
  // range. Leaves must chain left-to-right in key order.
  //
  // Hardened against hostile pages: the walk must terminate and stay in
  // bounds no matter what bytes a corrupted node holds. Concretely that
  // means (a) is_leaf must be 0/1 and count within the node's capacity
  // BEFORE any entry is dereferenced, (b) child and sibling page ids must
  // be allocated pages, and (c) a visited set rejects any page linked
  // twice — which both detects shared-subtree corruption and bounds the
  // traversal (no cycles, so no infinite loop).
  struct Frame {
    page_id_t page;
    bool has_lo;
    BtKey lo;
    bool has_hi;
    BtKey hi;
  };
  const page_id_t num_pages = pool_->disk()->num_pages();
  if (root_ < 0 || root_ >= num_pages) {
    return Status::Corruption("b+tree root " + std::to_string(root_) +
                              " is not an allocated page");
  }
  std::vector<Frame> stack{{root_, false, {}, false, {}}};
  std::unordered_set<page_id_t> visited;
  int64_t counted = 0;
  page_id_t first_leaf = kInvalidPageId;

  // First verify structure via DFS.
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (!visited.insert(f.page).second) {
      return Status::Corruption("b+tree links page " + std::to_string(f.page) +
                                " twice (shared subtree or cycle)");
    }
    PageGuard guard(pool_, f.page);
    RELGRAPH_RETURN_IF_ERROR(guard.status());
    const char* data = guard.data();
    const NodeHeader* h = Header(data);
    if (h->is_leaf != 0 && h->is_leaf != 1) {
      return Status::Corruption("b+tree node " + std::to_string(f.page) +
                                " has invalid is_leaf flag " +
                                std::to_string(h->is_leaf));
    }
    const size_t capacity =
        h->is_leaf ? LeafCapacity(payload_size_) : InternalCapacity();
    if (h->count > capacity) {
      return Status::Corruption(
          "b+tree node " + std::to_string(f.page) + " claims " +
          std::to_string(h->count) + " entries, capacity is " +
          std::to_string(capacity));
    }
    if (h->is_leaf && first_leaf == kInvalidPageId && !f.has_lo) {
      first_leaf = f.page;  // leftmost descent reaches the chain head
    }
    BtKey prev{INT64_MIN, INT64_MIN};
    bool have_prev = false;
    for (uint16_t i = 0; i < h->count; i++) {
      BtKey k = h->is_leaf ? ReadKey(LeafEntry(data, i, payload_size_))
                           : ReadKey(InternalEntry(data, i));
      if (h->is_leaf || i > 0) {  // internal slot 0 is the -inf sentinel
        if (have_prev && !(prev < k)) {
          return Status::Corruption("unordered keys in node " +
                                    std::to_string(f.page));
        }
        if (f.has_lo && k < f.lo) {
          return Status::Corruption("key below separator range");
        }
        if (f.has_hi && !(k < f.hi)) {
          return Status::Corruption("key above separator range");
        }
        prev = k;
        have_prev = true;
      }
      if (h->is_leaf) counted++;
    }
    if (!h->is_leaf) {
      for (uint16_t i = 0; i < h->count; i++) {
        Frame child;
        child.page = ReadChild(InternalEntry(data, i));
        if (child.page < 0 || child.page >= num_pages) {
          return Status::Corruption(
              "b+tree node " + std::to_string(f.page) + " links child " +
              std::to_string(child.page) + ", not an allocated page");
        }
        child.has_lo = i > 0;
        if (child.has_lo) child.lo = ReadKey(InternalEntry(data, i));
        child.has_hi = (i + 1) < h->count;
        if (child.has_hi) child.hi = ReadKey(InternalEntry(data, i + 1));
        if (f.has_hi && !child.has_hi) {
          child.has_hi = true;
          child.hi = f.hi;
        }
        if (f.has_lo && !child.has_lo) {
          child.has_lo = true;
          child.lo = f.lo;
        }
        stack.push_back(child);
      }
    }
  }
  if (counted != num_entries_) {
    return Status::Corruption("entry count mismatch: tree has " +
                              std::to_string(counted) + ", expected " +
                              std::to_string(num_entries_));
  }

  // Then verify the leaf chain yields the same globally sorted sequence.
  // Walked manually (not via Iterator) with its own visited set: a
  // corrupted `next` pointer may form a cycle of pages the DFS never saw,
  // and an Iterator would spin in it forever.
  BtKey last_leaf_key{INT64_MIN, INT64_MIN};
  bool have_last = false;
  int64_t chained = 0;
  std::unordered_set<page_id_t> chain_visited;
  page_id_t leaf = first_leaf;
  while (leaf != kInvalidPageId) {
    if (leaf < 0 || leaf >= num_pages) {
      return Status::Corruption("leaf chain points at unallocated page " +
                                std::to_string(leaf));
    }
    if (!chain_visited.insert(leaf).second) {
      return Status::Corruption("leaf chain revisits page " +
                                std::to_string(leaf) + " (cycle)");
    }
    if (visited.find(leaf) == visited.end()) {
      return Status::Corruption("leaf chain includes page " +
                                std::to_string(leaf) +
                                " that is not part of the tree");
    }
    PageGuard guard(pool_, leaf);
    RELGRAPH_RETURN_IF_ERROR(guard.status());
    const char* data = guard.data();
    const NodeHeader* h = Header(data);
    if (!h->is_leaf) {
      return Status::Corruption("leaf chain passes through internal node " +
                                std::to_string(leaf));
    }
    for (uint16_t i = 0; i < h->count; i++) {
      BtKey k = ReadKey(LeafEntry(data, i, payload_size_));
      if (have_last && !(last_leaf_key < k)) {
        return Status::Corruption("leaf chain out of order");
      }
      last_leaf_key = k;
      have_last = true;
      chained++;
    }
    leaf = h->next;
  }
  if (chained != num_entries_) {
    return Status::Corruption("leaf chain count mismatch");
  }
  return Status::OK();
}

}  // namespace relgraph
