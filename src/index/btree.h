#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"

namespace relgraph {

/// Composite B+-tree key: a primary 64-bit key plus a 64-bit tiebreaker.
/// Unique indexes use tie = 0; non-unique indexes (e.g. the clustered edge
/// table keyed by `fid`, which has one entry per outgoing edge) use a
/// monotone sequence number as the tiebreaker so duplicate primary keys
/// stay distinct and ordered.
struct BtKey {
  int64_t key = 0;
  int64_t tie = 0;

  int Compare(const BtKey& other) const {
    if (key != other.key) return key < other.key ? -1 : 1;
    if (tie != other.tie) return tie < other.tie ? -1 : 1;
    return 0;
  }
  bool operator==(const BtKey& other) const { return Compare(other) == 0; }
  bool operator<(const BtKey& other) const { return Compare(other) < 0; }
};

/// Page-based B+-tree with fixed-size payloads, stored through the buffer
/// pool (so index probes participate in buffer-hit/miss accounting exactly
/// like the paper's RDBMS indexes).
///
/// Payloads are opaque byte strings of a fixed width chosen at creation:
///  - non-clustered index: payload = encoded RID (8 bytes) into a heap file;
///  - clustered table:     payload = the serialized tuple itself (fixed-width
///    schema), i.e. the table *is* the tree — the paper's "CluIndex" layout.
///
/// Design notes: single-writer (no latching; the engine is single-threaded
/// per Database), deletes do not rebalance (underflowed nodes are tolerated;
/// the workloads here delete rarely and drop whole tables instead).
class BTree {
 public:
  BTree() = default;

  /// Creates an empty tree whose leaf payloads are `payload_size` bytes.
  static Status Create(BufferPool* pool, uint16_t payload_size, BTree* out);

  /// Re-opens an existing tree from its persisted identity (root page,
  /// payload width, entry count — what the snapshot manifest records).
  /// Callers that attach untrusted files run CheckIntegrity() afterwards.
  static BTree Open(BufferPool* pool, page_id_t root, uint16_t payload_size,
                    int64_t num_entries);

  /// Inserts (key -> payload). With `unique` set, an equal primary key part
  /// (ignoring the tiebreaker) fails with AlreadyExists.
  Status Insert(BtKey key, std::string_view payload, bool unique);

  /// Removes the entry with exactly (key, tie). NotFound if absent.
  Status Delete(BtKey key);

  /// Finds the entry with exactly (key, tie).
  Status SearchExact(BtKey key, std::string* payload) const;

  /// Finds the first entry whose primary key part equals `key`.
  Status SearchFirst(int64_t key, BtKey* found, std::string* payload) const;

  /// Overwrites the payload of the entry with exactly (key, tie).
  Status UpdatePayload(BtKey key, std::string_view payload);

  /// Ordered scan over primary-key range [key_lo, key_hi], both inclusive.
  class Iterator {
   public:
    /// Advances; false when the range is exhausted *or* on an I/O error —
    /// check status() to tell the two apart.
    bool Next(BtKey* key, std::string* payload);

    const Status& status() const { return status_; }

   private:
    friend class BTree;
    const BTree* tree_ = nullptr;
    page_id_t leaf_ = kInvalidPageId;
    uint16_t pos_ = 0;
    int64_t hi_ = 0;
    Status status_;
  };

  Iterator Scan(int64_t key_lo, int64_t key_hi) const;
  Iterator ScanAll() const;

  int64_t num_entries() const { return num_entries_; }
  page_id_t root() const { return root_; }
  uint16_t payload_size() const { return payload_size_; }

  /// Tree height (1 = root is a leaf). Diagnostic.
  int Height() const;

  /// Verifies ordering and separator invariants; used by property tests.
  Status CheckIntegrity() const;

 private:
  struct Descent {
    page_id_t page;
    uint16_t index;  // child slot taken in this internal node
  };

  Status FindLeaf(const BtKey& key, page_id_t* leaf,
                  std::vector<Descent>* path) const;
  Status SplitLeaf(page_id_t leaf_id, std::vector<Descent>* path,
                   const BtKey& pending_key, std::string_view pending_payload);
  Status InsertIntoParent(std::vector<Descent>* path, BtKey sep,
                          page_id_t new_child);

  BufferPool* pool_ = nullptr;
  page_id_t root_ = kInvalidPageId;
  uint16_t payload_size_ = 0;
  int64_t num_entries_ = 0;
};

/// Encodes a RID as an 8-byte B+-tree payload.
std::string EncodeRid(const Rid& rid);
Rid DecodeRid(std::string_view payload);

}  // namespace relgraph
