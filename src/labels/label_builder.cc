#include "src/labels/label_builder.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/timer.h"
#include "src/sql/sql_engine.h"

namespace relgraph {

namespace {

using namespace label_internal;  // NOLINT: meta-key enum

sql::SqlParams P(std::initializer_list<std::pair<const char*, int64_t>> kv) {
  sql::SqlParams params;
  for (const auto& [k, v] : kv) params.emplace(k, Value(v));
  return params;
}

/// One direction of the per-hub pruned Dijkstra: the five statements of
/// the pipeline, prepared once and re-bound for every hub.
struct DirectionPipeline {
  std::shared_ptr<sql::PreparedStatement> clear, seed, mark, prune, emit,
      expand, finalize;
};

struct PipelineBuilder {
  sql::SqlEngine* conn;
  int64_t* statements;

  Status Prep(const std::string& text,
              std::shared_ptr<sql::PreparedStatement>* out) {
    return conn->Prepare(text, out);
  }
  Status Run(const std::shared_ptr<sql::PreparedStatement>& stmt,
             const sql::SqlParams& params = {}, int64_t* affected = nullptr) {
    sql::SqlResult r;
    RELGRAPH_RETURN_IF_ERROR(stmt->Execute(params, &r));
    (*statements)++;
    if (affected != nullptr) *affected = r.affected;
    return Status::OK();
  }
};

/// The PLL prune as one matched-only MERGE: for every frontier vertex u,
/// cov = min over common hubs of already-built labels — forward pass:
/// d(h -> h') from LabelsOut(h) joined to d(h' -> u) from LabelsIn(u);
/// backward pass: d(u -> h') from LabelsOut(u) joined to d(h' -> h) from
/// LabelsIn(h). cov <= d(u) means an earlier hub already covers this pair,
/// so u is finalized unlabeled and never expanded.
std::string BuildPruneSql(const std::string& w, const std::string& lo,
                          const std::string& li, bool forward) {
  const std::string lo_key = forward ? "lo.nid = :h" : "lo.nid = q.nid";
  const std::string li_key = forward ? "li.nid = q.nid" : "li.nid = :h";
  return "merge into " + w +
         " as target using ("
         "select nid, cov from ("
         "select q.nid, lo.dist + li.dist, "
         "row_number() over (partition by q.nid order by lo.dist + li.dist) "
         "as rn "
         "from " + w + " q, " + lo + " lo, " + li + " li "
         "where q.f = 2 and " + lo_key + " and " + li_key +
         " and li.hub = lo.hub"
         ") tmp (nid, cov, rn) where rn = 1"
         ") as source (nid, cov) "
         "on (source.nid = target.nid) "
         "when matched and source.cov <= target.d then update set f = 1";
}

/// The frontier expansion as the same window-deduplicated MERGE the FEM
/// E-operator issues, on the (nid, d, f) working schema.
std::string BuildExpandSql(const std::string& w, const EdgeRelation& rel) {
  return "merge into " + w +
         " as target using ("
         "select nid, cost from ("
         "select e." + rel.emit_column + ", e.cost + q.d, "
         "row_number() over (partition by e." + rel.emit_column +
         " order by e.cost + q.d) as rn "
         "from " + w + " q, " + rel.table->name() + " e "
         "where q.nid = e." + rel.join_column + " and q.f = 2"
         ") tmp (nid, cost, rn) where rn = 1"
         ") as source (nid, cost) "
         "on (source.nid = target.nid) "
         "when matched and target.d > source.cost then update set "
         "d = source.cost, f = 0 "
         "when not matched then insert (nid, d, f) values (nid, cost, 0)";
}

Status PreparePipeline(PipelineBuilder* pb, const std::string& w,
                       const std::string& lo, const std::string& li,
                       const EdgeRelation& rel, bool forward,
                       DirectionPipeline* out) {
  RELGRAPH_RETURN_IF_ERROR(pb->Prep("truncate " + w, &out->clear));
  RELGRAPH_RETURN_IF_ERROR(pb->Prep(
      "insert into " + w + " (nid, d, f) values (:h, 0, 0)", &out->seed));
  RELGRAPH_RETURN_IF_ERROR(pb->Prep(
      "update " + w + " set f = 2 where f = 0 and d = (select min(d) from " +
          w + " where f = 0)",
      &out->mark));
  RELGRAPH_RETURN_IF_ERROR(
      pb->Prep(BuildPruneSql(w, lo, li, forward), &out->prune));
  // Forward BFS discovers d(h -> u): an *in*-label of u. Backward BFS
  // discovers d(u -> h): an *out*-label.
  const std::string& emit_table = forward ? li : lo;
  RELGRAPH_RETURN_IF_ERROR(pb->Prep(
      "insert into " + emit_table +
          " (nid, hub, dist) select nid, :h as hub, d from " + w +
          " where f = 2",
      &out->emit));
  RELGRAPH_RETURN_IF_ERROR(pb->Prep(BuildExpandSql(w, rel), &out->expand));
  RELGRAPH_RETURN_IF_ERROR(
      pb->Prep("update " + w + " set f = 1 where f = 2", &out->finalize));
  return Status::OK();
}

/// Runs one hub's pruned Dijkstra in one direction; adds emitted label
/// rows to *entries and frontier rounds to *rounds.
Status RunHub(PipelineBuilder* pb, const DirectionPipeline& p, node_id_t hub,
              int64_t max_iterations, int64_t* rounds, int64_t* entries) {
  RELGRAPH_RETURN_IF_ERROR(pb->Run(p.clear));
  RELGRAPH_RETURN_IF_ERROR(pb->Run(p.seed, P({{"h", hub}})));
  for (int64_t iter = 0;; iter++) {
    if (iter >= max_iterations) {
      return Status::Internal("label BFS exceeded max_iterations");
    }
    int64_t marked = 0;
    RELGRAPH_RETURN_IF_ERROR(pb->Run(p.mark, {}, &marked));
    if (marked == 0) break;
    (*rounds)++;
    RELGRAPH_RETURN_IF_ERROR(pb->Run(p.prune, P({{"h", hub}})));
    int64_t emitted = 0;
    RELGRAPH_RETURN_IF_ERROR(pb->Run(p.emit, P({{"h", hub}}), &emitted));
    *entries += emitted;
    if (emitted > 0) {
      RELGRAPH_RETURN_IF_ERROR(pb->Run(p.expand));
    }
    RELGRAPH_RETURN_IF_ERROR(pb->Run(p.finalize));
  }
  return Status::OK();
}

}  // namespace

Status LabelBuilder::Build(GraphStore* graph, const std::string& prefix,
                           LabelBuildOptions options,
                           std::unique_ptr<LabelIndex>* out,
                           LabelBuildStats* stats) {
  Timer total;
  Database* db = graph->db();
  auto index = std::unique_ptr<LabelIndex>(new LabelIndex());
  index->db_ = db;
  index->prefix_ = prefix;
  const std::string lo = index->out_name();
  const std::string li = index->in_name();
  const std::string meta = index->meta_name();
  for (const std::string& name : {lo, li, meta}) {
    if (db->catalog()->GetTable(name) != nullptr) {
      return Status::AlreadyExists("label table " + name +
                                   " already exists; drop it first");
    }
  }
  // The staleness baseline: any mutation from here on (including one that
  // races the build) moves the live epoch off this value and the serving
  // layer falls back.
  const uint64_t built_epoch = graph->mutation_epoch();

  sql::SqlEngine conn(db);
  int64_t statements = 0;
  PipelineBuilder pb{&conn, &statements};

  // Hub order: total degree descending, node id ascending — the pruned
  // landmark heuristic (high-degree vertices cover the most pairs, so
  // processing them first keeps later BFS trees tiny). Degrees come from
  // the graph tables themselves via GROUP BY.
  std::unordered_map<node_id_t, int64_t> degree;
  {
    sql::SqlResult r;
    const EdgeRelation fwd = graph->Forward();
    const EdgeRelation bwd = graph->Backward();
    RELGRAPH_RETURN_IF_ERROR(conn.Execute(
        "select " + fwd.join_column + ", count(*) from " +
            fwd.table->name() + " group by " + fwd.join_column,
        &r));
    statements++;
    for (const auto& row : r.rows) {
      degree[row.value(0).AsInt()] += row.value(1).AsInt();
    }
    RELGRAPH_RETURN_IF_ERROR(conn.Execute(
        "select " + bwd.join_column + ", count(*) from " +
            bwd.table->name() + " group by " + bwd.join_column,
        &r));
    statements++;
    for (const auto& row : r.rows) {
      degree[row.value(0).AsInt()] += row.value(1).AsInt();
    }
  }
  std::vector<node_id_t> hubs;
  {
    sql::SqlResult r;
    RELGRAPH_RETURN_IF_ERROR(
        conn.Execute("select nid from " + graph->nodes()->name(), &r));
    statements++;
    hubs.reserve(r.rows.size());
    for (const auto& row : r.rows) hubs.push_back(row.value(0).AsInt());
  }
  std::sort(hubs.begin(), hubs.end(), [&](node_id_t a, node_id_t b) {
    const int64_t da = degree.count(a) ? degree.at(a) : 0;
    const int64_t db2 = degree.count(b) ? degree.at(b) : 0;
    if (da != db2) return da > db2;
    return a < b;
  });
  const int64_t total_nodes = static_cast<int64_t>(hubs.size());
  if (options.max_hubs >= 0 &&
      options.max_hubs < static_cast<int64_t>(hubs.size())) {
    hubs.resize(options.max_hubs);
  }

  // Label relations: clustered by nid so a probe is one sargable range
  // scan over exactly that vertex's entries. Meta is tiny and keyed.
  RELGRAPH_RETURN_IF_ERROR(conn.Execute(
      "create table " + lo + " (nid int, hub int, dist int) cluster by "
      "(nid)"));
  RELGRAPH_RETURN_IF_ERROR(conn.Execute(
      "create table " + li + " (nid int, hub int, dist int) cluster by "
      "(nid)"));
  RELGRAPH_RETURN_IF_ERROR(conn.Execute(
      "create table " + meta + " (k int, v int) cluster by (k) unique"));
  statements += 3;

  // Working table: one pruned Dijkstra state, same shape and indexing as
  // the FEM visited tables (f/d indexed for the frontier statements).
  const std::string w = prefix + options.work_table;
  Status dropped = conn.Execute("drop table " + w);
  (void)dropped;  // NotFound when no builder ran before: expected
  RELGRAPH_RETURN_IF_ERROR(conn.Execute(
      "create table " + w + " (nid int, d int, f int) cluster by (nid) "
      "unique"));
  RELGRAPH_RETURN_IF_ERROR(
      conn.Execute("create index ix_" + w + "_f on " + w + " (f)"));
  RELGRAPH_RETURN_IF_ERROR(
      conn.Execute("create index ix_" + w + "_d on " + w + " (d)"));
  statements += 3;

  DirectionPipeline fwd_pipe, bwd_pipe;
  RELGRAPH_RETURN_IF_ERROR(PreparePipeline(&pb, w, lo, li, graph->Forward(),
                                           /*forward=*/true, &fwd_pipe));
  RELGRAPH_RETURN_IF_ERROR(PreparePipeline(&pb, w, lo, li, graph->Backward(),
                                           /*forward=*/false, &bwd_pipe));

  int64_t rounds = 0, entries = 0;
  for (node_id_t hub : hubs) {
    // Forward first: in-labels of reachable vertices, including the hub's
    // own (h, 0); then backward for the out-labels. Within one hub the
    // passes cannot see each other's fresh entries in their prune joins
    // (the forward prune reads LabelsOut(h), written only by the backward
    // pass that has not run yet; the backward prune reads LabelsOut of
    // frontier vertices, whose current-hub rows are emitted only after
    // their one frontier appearance) — the PLL previous-hubs-only rule.
    RELGRAPH_RETURN_IF_ERROR(RunHub(&pb, fwd_pipe, hub,
                                    options.max_iterations, &rounds,
                                    &entries));
    RELGRAPH_RETURN_IF_ERROR(RunHub(&pb, bwd_pipe, hub,
                                    options.max_iterations, &rounds,
                                    &entries));
  }

  // Drop the working table: construction state should not outlive the
  // build (and the DDL bumps the catalog version, so any prepared handle
  // in this session replans against the final schema).
  RELGRAPH_RETURN_IF_ERROR(conn.Execute("drop table " + w));
  statements++;

  index->num_hubs_ = static_cast<int64_t>(hubs.size());
  index->complete_ = index->num_hubs_ == total_nodes;
  index->num_entries_ = entries;
  index->num_nodes_ = graph->num_nodes();
  index->num_edges_ = graph->num_edges();
  index->built_mutation_epoch_ = built_epoch;
  index->built_catalog_version_ = db->catalog()->version();

  // Persist the metadata so Attach() (and snapshot restore) can rebuild
  // this handle from the tables alone.
  {
    std::shared_ptr<sql::PreparedStatement> put;
    RELGRAPH_RETURN_IF_ERROR(conn.Prepare(
        "insert into " + meta + " (k, v) values (:k, :v)", &put));
    const std::pair<int64_t, int64_t> rows[] = {
        {kMetaFormatVersion, kLabelFormatVersion},
        {kMetaNumHubs, index->num_hubs_},
        {kMetaComplete, index->complete_ ? 1 : 0},
        {kMetaMutationEpoch, static_cast<int64_t>(built_epoch)},
        {kMetaCatalogVersion,
         static_cast<int64_t>(index->built_catalog_version_)},
        {kMetaNumNodes, index->num_nodes_},
        {kMetaNumEdges, index->num_edges_},
        {kMetaNumEntries, entries},
    };
    for (const auto& [k, v] : rows) {
      RELGRAPH_RETURN_IF_ERROR(put->Execute(P({{"k", k}, {"v", v}})));
      statements++;
    }
  }

  if (stats != nullptr) {
    stats->hubs = index->num_hubs_;
    stats->statements = statements;
    stats->rounds = rounds;
    stats->entries = entries;
    stats->build_us = total.ElapsedMicros();
  }
  *out = std::move(index);
  return Status::OK();
}

}  // namespace relgraph
