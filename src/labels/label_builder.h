#pragma once

#include <memory>
#include <string>

#include "src/graph/graph_store.h"
#include "src/labels/label_index.h"

namespace relgraph {

struct LabelBuildOptions {
  /// How many hubs to process, in pruned-landmark order (total degree
  /// descending, node id ascending as the tie-break). < 0 processes every
  /// vertex — a *complete* index, which answers all pairs exactly. A
  /// smaller budget trades exactness for build time: answers become upper
  /// bounds and only witness-at-endpoint probes are certified (the rest
  /// fall back to FEM).
  int64_t max_hubs = -1;
  /// Working-table name; must be unique per concurrent builder in one
  /// database. The table is dropped when construction finishes.
  std::string work_table = "LabelW";
  /// Per-hub safety valve on BFS rounds; a correct run never reaches it.
  int64_t max_iterations = 10'000'000;
};

/// Statement counts of one construction run — how much SQL the pipeline
/// issued (benches report this next to wall clock).
struct LabelBuildStats {
  int64_t hubs = 0;
  int64_t statements = 0;
  int64_t rounds = 0;   // frontier rounds summed over hubs and directions
  int64_t entries = 0;  // label rows materialized (both directions)
  int64_t build_us = 0;
};

/// Constructs hub labels (pruned landmark labeling, Akiba et al. — the
/// "Shortest Paths in Microseconds" structure) as a batched
/// prepared-statement SQL pipeline over the graph tables: the same
/// MERGE/UPDATE frontier idioms the FEM operators use, one pruned Dijkstra
/// per hub per direction, label rows emitted with INSERT..SELECT. Every
/// statement is prepared once and re-bound per hub, so the whole build
/// performs a constant number of parses/plans.
///
/// Per hub h (forward shown; backward swaps the edge relation and the two
/// label tables):
///
///   delete from W; insert into W values (:h, 0, 0)
///   loop:
///     F  update W set f = 2 where f = 0 and d = (select min(d) ...)
///     P  merge .. when matched and cov <= d then update set f = 1
///        (cov = min over common hubs of existing labels — the PLL prune;
///         pruned vertices are neither labeled nor expanded)
///     L  insert into LabelsIn (nid, hub, dist)
///        select nid, :h, d from W where f = 2
///     E  merge into W using (frontier x TEdges, window-deduplicated) ..
///     M  update W set f = 1 where f = 2
///
/// Prune joins only consult labels of *previously processed* hubs (a
/// vertex enters the frontier at most once per BFS and its current-hub
/// label row is emitted after the prune step), which is exactly the
/// PLL invariant that keeps emitted distances exact.
class LabelBuilder {
 public:
  /// Builds labels for `graph` into tables <prefix>LabelsOut/In/Meta in
  /// graph->db(), where prefix = graph's table prefix is NOT assumed —
  /// pass it via `prefix` (empty for the default single-graph database).
  /// Fails with AlreadyExists when label tables of this prefix exist.
  static Status Build(GraphStore* graph, const std::string& prefix,
                      LabelBuildOptions options,
                      std::unique_ptr<LabelIndex>* out,
                      LabelBuildStats* stats = nullptr);
};

}  // namespace relgraph
