#include "src/labels/label_index.h"

#include "src/sql/sql_engine.h"

namespace relgraph {

namespace {

using namespace label_internal;  // NOLINT: meta-key enum

Status ReadMetaValue(sql::SqlEngine* conn, const std::string& meta,
                     int64_t key, int64_t* out) {
  Value v;
  sql::SqlParams params;
  params.emplace("k", Value(key));
  RELGRAPH_RETURN_IF_ERROR(conn->QueryScalar(
      "select v from " + meta + " where k = :k", &v, params));
  if (v.IsNull()) {
    return Status::Corruption("label meta key " + std::to_string(key) +
                              " missing from " + meta);
  }
  *out = v.AsInt();
  return Status::OK();
}

}  // namespace

Status LabelIndex::Attach(Database* db, const std::string& prefix,
                          std::unique_ptr<LabelIndex>* out) {
  auto index = std::unique_ptr<LabelIndex>(new LabelIndex());
  index->db_ = db;
  index->prefix_ = prefix;
  for (const std::string& name :
       {index->out_name(), index->in_name(), index->meta_name()}) {
    if (db->catalog()->GetTable(name) == nullptr) {
      return Status::InvalidArgument("label table " + name +
                                     " not found in this database");
    }
  }
  sql::SqlEngine conn(db);
  const std::string meta = index->meta_name();
  int64_t format, num_hubs, complete, epoch, catalog_version, nodes, edges,
      entries;
  RELGRAPH_RETURN_IF_ERROR(ReadMetaValue(
      &conn, meta, kMetaFormatVersion, &format));
  if (format != kLabelFormatVersion) {
    return Status::InvalidArgument(
        "label index format " + std::to_string(format) + " (expected " +
        std::to_string(kLabelFormatVersion) + ")");
  }
  RELGRAPH_RETURN_IF_ERROR(
      ReadMetaValue(&conn, meta, kMetaNumHubs, &num_hubs));
  RELGRAPH_RETURN_IF_ERROR(
      ReadMetaValue(&conn, meta, kMetaComplete, &complete));
  RELGRAPH_RETURN_IF_ERROR(
      ReadMetaValue(&conn, meta, kMetaMutationEpoch, &epoch));
  RELGRAPH_RETURN_IF_ERROR(ReadMetaValue(
      &conn, meta, kMetaCatalogVersion, &catalog_version));
  RELGRAPH_RETURN_IF_ERROR(
      ReadMetaValue(&conn, meta, kMetaNumNodes, &nodes));
  RELGRAPH_RETURN_IF_ERROR(
      ReadMetaValue(&conn, meta, kMetaNumEdges, &edges));
  RELGRAPH_RETURN_IF_ERROR(
      ReadMetaValue(&conn, meta, kMetaNumEntries, &entries));
  index->num_hubs_ = num_hubs;
  index->complete_ = complete != 0;
  index->num_entries_ = entries;
  index->num_nodes_ = nodes;
  index->num_edges_ = edges;
  index->built_mutation_epoch_ = static_cast<uint64_t>(epoch);
  index->built_catalog_version_ = static_cast<uint64_t>(catalog_version);
  *out = std::move(index);
  return Status::OK();
}

}  // namespace relgraph
