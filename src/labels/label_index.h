#pragma once

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/db/database.h"

namespace relgraph {

namespace label_internal {

/// <prefix>LabelsMeta keys. The meta relation is (k int, v int) so the
/// index is reconstructible from the database alone (Attach) — snapshots
/// carry the tables, the tables carry the metadata.
enum MetaKey : int64_t {
  kMetaFormatVersion = 1,
  kMetaNumHubs = 2,
  kMetaComplete = 3,
  kMetaMutationEpoch = 4,
  kMetaCatalogVersion = 5,
  kMetaNumNodes = 6,
  kMetaNumEdges = 7,
  kMetaNumEntries = 8,
};

constexpr int64_t kLabelFormatVersion = 1;

}  // namespace label_internal

/// Handle on a materialized hub-label index: the two label relations
///
///   <prefix>LabelsOut (nid, hub, dist)   -- dist = d(nid -> hub)
///   <prefix>LabelsIn  (nid, hub, dist)   -- dist = d(hub -> nid)
///
/// clustered by nid so one probe is one sargable range scan, plus a
/// <prefix>LabelsMeta (k, v) relation recording what the labels were built
/// from. `distance(s,t)` is then two probes and a min:
///
///   select min(lo.dist + li.dist) from LabelsOut lo, LabelsIn li
///   where lo.nid = :s and li.nid = :t and li.hub = lo.hub
///
/// A *complete* index (every vertex processed as a hub, pruned landmark
/// order) answers every pair exactly, including unreachable ones (no common
/// hub <=> no path). A partial index yields an upper bound that is provably
/// exact only when the witness hub is s or t — LabelProbe reports which,
/// and callers fall back to FEM for the rest.
///
/// Staleness: the index records the GraphStore::mutation_epoch() it was
/// built at. Serving layers compare that against the live graph's epoch and
/// fall back to FEM on any mismatch — stale labels never answer. The epoch
/// comparison only works against the graph object the labels were built on;
/// after restoring labels + graph from paired snapshots, the restorer calls
/// RebaseEpoch() to assert the pair matches again.
class LabelIndex {
 public:
  /// Reattaches an index whose relations already live in `db` (created by
  /// LabelBuilder earlier, or just restored by LoadLabelSnapshot), reading
  /// the build metadata back from <prefix>LabelsMeta. InvalidArgument when
  /// the tables are missing; Corruption when the meta rows are.
  static Status Attach(Database* db, const std::string& prefix,
                       std::unique_ptr<LabelIndex>* out);

  Database* db() const { return db_; }
  const std::string& prefix() const { return prefix_; }
  std::string out_name() const { return prefix_ + "LabelsOut"; }
  std::string in_name() const { return prefix_ + "LabelsIn"; }
  std::string meta_name() const { return prefix_ + "LabelsMeta"; }

  /// Hubs processed during construction; `complete()` when that covered
  /// every vertex of the graph (=> every answer exact).
  int64_t num_hubs() const { return num_hubs_; }
  bool complete() const { return complete_; }
  /// Total label entries across both directions (avg labels/vertex =
  /// num_entries / (2 * num_nodes) — the index-size number benches report).
  int64_t num_entries() const { return num_entries_; }
  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }

  uint64_t built_mutation_epoch() const { return built_mutation_epoch_; }
  uint64_t built_catalog_version() const { return built_catalog_version_; }

  /// True when the graph has mutated since the labels were built — the
  /// serving layers' never-answer-stale check.
  bool stale(uint64_t current_mutation_epoch) const {
    return current_mutation_epoch != built_mutation_epoch_;
  }

  /// Re-anchors the staleness baseline to `current_mutation_epoch`. Called
  /// by a restorer that re-paired these labels with a graph it *knows*
  /// matches them (e.g. both sides of one snapshot pair): the restored
  /// graph counts mutations from zero again, so the build-time epoch no
  /// longer lines up even though the data does.
  void RebaseEpoch(uint64_t current_mutation_epoch) {
    built_mutation_epoch_ = current_mutation_epoch;
  }

 private:
  friend class LabelBuilder;
  LabelIndex() = default;

  Database* db_ = nullptr;
  std::string prefix_;
  int64_t num_hubs_ = 0;
  bool complete_ = false;
  int64_t num_entries_ = 0;
  int64_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  uint64_t built_mutation_epoch_ = 0;
  uint64_t built_catalog_version_ = 0;
};

}  // namespace relgraph
