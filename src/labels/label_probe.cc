#include "src/labels/label_probe.h"

namespace relgraph {

Status LabelProbe::Create(const LabelIndex* index,
                          std::unique_ptr<LabelProbe>* out) {
  auto probe = std::unique_ptr<LabelProbe>(new LabelProbe());
  probe->index_ = index;
  probe->conn_ = std::make_unique<sql::SqlEngine>(index->db());
  const std::string lo = index->out_name();
  const std::string li = index->in_name();
  RELGRAPH_RETURN_IF_ERROR(probe->conn_->Prepare(
      "select min(lo.dist + li.dist) from " + lo + " lo, " + li +
          " li where lo.nid = :s and li.nid = :t and li.hub = lo.hub",
      &probe->min_stmt_));
  RELGRAPH_RETURN_IF_ERROR(probe->conn_->Prepare(
      "select top 1 lo.hub from " + lo + " lo, " + li +
          " li where lo.nid = :s and li.nid = :t and li.hub = lo.hub and "
          "lo.dist + li.dist = :d",
      &probe->witness_stmt_));
  *out = std::move(probe);
  return Status::OK();
}

Status LabelProbe::Distance(node_id_t s, node_id_t t,
                            LabelProbeResult* result) {
  *result = LabelProbeResult{};
  if (s == t) {
    result->answered = true;
    result->found = true;
    result->distance = 0;
    return Status::OK();
  }
  sql::SqlParams params;
  params.emplace("s", Value(static_cast<int64_t>(s)));
  params.emplace("t", Value(static_cast<int64_t>(t)));
  Value min_v;
  RELGRAPH_RETURN_IF_ERROR(min_stmt_->QueryScalar(params, &min_v));
  result->statements++;
  if (min_v.IsNull()) {
    // No common hub. A complete index labels every vertex pair that has a
    // path, so emptiness *proves* unreachability; a partial one proves
    // nothing.
    result->answered = index_->complete();
    result->found = false;
    return Status::OK();
  }
  result->found = true;
  result->distance = min_v.AsInt();
  if (index_->complete()) {
    result->answered = true;
    return Status::OK();
  }
  // Partial index: the min is an upper bound. It is provably exact when
  // the witness hub is an endpoint (then it equals a label entry's true
  // distance, and no shorter path exists below a true distance).
  params.emplace("d", Value(static_cast<int64_t>(result->distance)));
  Value hub_v;
  RELGRAPH_RETURN_IF_ERROR(witness_stmt_->QueryScalar(params, &hub_v));
  result->statements++;
  if (!hub_v.IsNull()) {
    const node_id_t hub = hub_v.AsInt();
    result->answered = hub == s || hub == t;
  }
  return Status::OK();
}

}  // namespace relgraph
