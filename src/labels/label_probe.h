#pragma once

#include <memory>

#include "src/graph/memgraph.h"
#include "src/labels/label_index.h"
#include "src/sql/sql_engine.h"

namespace relgraph {

/// Outcome of one label probe. `answered` is the exactness certificate:
/// true only when the probe *proves* its answer equals the true shortest
/// distance (complete index; or witness hub equal to an endpoint; or
/// s == t). answered == false carries the best upper bound found (or
/// nothing) and the caller must fall back to FEM. The probe never checks
/// staleness — callers own their graph and gate on LabelIndex::stale()
/// before probing.
struct LabelProbeResult {
  bool answered = false;
  bool found = false;                // meaningful when answered
  weight_t distance = kInfinity;     // exact when answered, else upper bound
  int64_t statements = 0;            // SQL statements this probe issued
};

/// Serves distance(s,t) from the label relations: one sargable range scan
/// per endpoint joined on the hub column, min over the sums —
///
///   select min(lo.dist + li.dist) from LabelsOut lo, LabelsIn li
///   where lo.nid = :s and li.nid = :t and li.hub = lo.hub
///
/// Statements are prepared at Create() and only re-bound per query, so a
/// probe is bind + two indexed range scans. A probe owns its own SqlEngine
/// and handles (a PreparedStatement must not run on two threads at once):
/// concurrent sessions each create their own probe over the shared label
/// database, exactly like the distributed shard pool's per-connection
/// engines.
class LabelProbe {
 public:
  static Status Create(const LabelIndex* index,
                       std::unique_ptr<LabelProbe>* out);

  /// Probes distance(s,t). On a complete index one statement decides
  /// everything (a NULL min proves unreachability). On a partial index an
  /// answer is certified only via the witness-hub statement; unreachable
  /// pairs cannot be certified at all.
  Status Distance(node_id_t s, node_id_t t, LabelProbeResult* result);

  const LabelIndex* index() const { return index_; }

 private:
  LabelProbe() = default;

  const LabelIndex* index_ = nullptr;
  std::unique_ptr<sql::SqlEngine> conn_;
  std::shared_ptr<sql::PreparedStatement> min_stmt_;
  std::shared_ptr<sql::PreparedStatement> witness_stmt_;
};

}  // namespace relgraph
