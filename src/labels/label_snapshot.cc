#include "src/labels/label_snapshot.h"

#include "src/dist/snapshot_manifest.h"
#include "src/net/wire.h"
#include "src/storage/disk_manager.h"

namespace relgraph {

namespace {

/// Manifest magic ("RGLS": relgraph label snapshot) and format version,
/// distinct from the shard-snapshot manifest so a mixed-up file path is a
/// typed refusal, not a misparse.
constexpr uint32_t kLabelSnapshotMagic = 0x52474C53;
constexpr uint16_t kLabelSnapshotVersion = 1;

std::string EncodeManifest(const std::string& prefix,
                           const TablePersistentState& out_state,
                           const TablePersistentState& in_state,
                           const TablePersistentState& meta_state) {
  net::WireWriter w;
  w.PutU32(kLabelSnapshotMagic);
  w.PutU16(kLabelSnapshotVersion);
  w.PutBytes(prefix);
  EncodeTableState(&w, out_state);
  EncodeTableState(&w, in_state);
  EncodeTableState(&w, meta_state);
  return w.Take();
}

Status DecodeManifest(const std::string& payload, std::string* prefix,
                      TablePersistentState* out_state,
                      TablePersistentState* in_state,
                      TablePersistentState* meta_state) {
  net::WireReader r(payload);
  uint32_t magic;
  uint16_t version;
  RELGRAPH_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kLabelSnapshotMagic) {
    return Status::Corruption("label snapshot manifest magic mismatch");
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetU16(&version));
  if (version != kLabelSnapshotVersion) {
    return Status::InvalidArgument(
        "label snapshot manifest version " + std::to_string(version) +
        " (expected " + std::to_string(kLabelSnapshotVersion) + ")");
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetBytes(prefix));
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, out_state));
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, in_state));
  RELGRAPH_RETURN_IF_ERROR(DecodeTableState(&r, meta_state));
  return r.Finish();
}

}  // namespace

Status WriteLabelSnapshot(const LabelIndex& index, const std::string& path) {
  Database* db = index.db();
  Table* out_table = db->catalog()->GetTable(index.out_name());
  Table* in_table = db->catalog()->GetTable(index.in_name());
  Table* meta_table = db->catalog()->GetTable(index.meta_name());
  if (out_table == nullptr || in_table == nullptr || meta_table == nullptr) {
    return Status::InvalidArgument(
        "label tables missing from the index's database");
  }
  const std::string manifest =
      EncodeManifest(index.prefix(), out_table->ExportState(),
                     in_table->ExportState(), meta_table->ExportState());
  return WriteDatabaseSnapshot(db, manifest, path);
}

Status LoadLabelSnapshot(const std::string& path,
                         const DatabaseOptions& db_options,
                         RestoredLabelIndex* out) {
  std::unique_ptr<DiskManager> disk;
  RELGRAPH_RETURN_IF_ERROR(
      DiskManager::Open(path, OpenMode::kOpenExisting, &disk));

  std::string payload;
  RELGRAPH_RETURN_IF_ERROR(ReadManifestPage(disk.get(), &payload));
  std::string prefix;
  TablePersistentState out_state, in_state, meta_state;
  RELGRAPH_RETURN_IF_ERROR(
      DecodeManifest(payload, &prefix, &out_state, &in_state, &meta_state));

  // Full scrub before trusting any byte: label serving reads pages lazily,
  // so a corrupt page would otherwise surface only when (if ever) a probe
  // touches it. Every page must pass its checksum up front.
  {
    char page[kPageSize];
    for (page_id_t id = 0; id < disk->num_pages(); id++) {
      RELGRAPH_RETURN_IF_ERROR(disk->ReadPage(id, page));
    }
  }

  DatabaseOptions opts = db_options;
  opts.in_memory = false;
  opts.path = path;
  // Label databases serve one probe engine per concurrent session.
  opts.concurrent_readers = true;
  auto db = std::make_unique<Database>(opts, std::move(disk));

  for (TablePersistentState* state : {&out_state, &in_state, &meta_state}) {
    std::unique_ptr<Table> table;
    RELGRAPH_RETURN_IF_ERROR(
        Table::Attach(db->buffer_pool(), *state, &table));
    RELGRAPH_RETURN_IF_ERROR(db->catalog()->AttachTable(std::move(table)));
  }

  std::unique_ptr<LabelIndex> index;
  RELGRAPH_RETURN_IF_ERROR(LabelIndex::Attach(db.get(), prefix, &index));
  out->db = std::move(db);
  out->index = std::move(index);
  return Status::OK();
}

}  // namespace relgraph
