#pragma once

#include <memory>
#include <string>

#include "src/labels/label_index.h"

namespace relgraph {

/// Durable label-index snapshots, riding the same machinery as shard
/// snapshots (src/dist/snapshot_manifest.h): a page-exact, CRC-verified
/// copy of the database holding the label relations, with a one-page
/// manifest naming the three tables, installed by atomic rename. A
/// restarted shard loads this file and serves label hits without any
/// rebuild; the build metadata (hub count, completeness, build epoch)
/// travels inside the LabelsMeta relation itself.

/// Snapshots the database `index` lives in. When labels were built in
/// place (same database as the graph), the graph pages come along — the
/// manifest still only re-attaches the label tables on load.
Status WriteLabelSnapshot(const LabelIndex& index, const std::string& path);

/// A restored index: the reopened database and the handle over it. The
/// index's staleness baseline is the *build-time* epoch; after pairing it
/// with a graph known to match (restored from the same install), call
/// index->RebaseEpoch(graph->mutation_epoch()).
struct RestoredLabelIndex {
  std::unique_ptr<Database> db;
  std::unique_ptr<LabelIndex> index;
};

/// Opens a label snapshot (every page read passes the CRC check), attaches
/// the label relations, and rebuilds the LabelIndex handle from LabelsMeta.
/// Corruption anywhere — damaged page, forged manifest, missing meta rows —
/// refuses the load; it never serves a half-readable index.
Status LoadLabelSnapshot(const std::string& path,
                         const DatabaseOptions& db_options,
                         RestoredLabelIndex* out);

}  // namespace relgraph
