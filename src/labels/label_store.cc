#include "src/labels/label_store.h"

#include "src/labels/label_snapshot.h"

namespace relgraph {

Status LabelStore::Build(const EdgeList& list, LabelBuildOptions options,
                         std::unique_ptr<LabelStore>* out,
                         LabelBuildStats* stats) {
  auto store = std::unique_ptr<LabelStore>(new LabelStore());
  DatabaseOptions db_opts;
  db_opts.concurrent_readers = true;
  store->db_ = std::make_unique<Database>(db_opts);
  RELGRAPH_RETURN_IF_ERROR(GraphStore::Create(
      store->db_.get(), list, GraphStoreOptions{}, &store->graph_));
  RELGRAPH_RETURN_IF_ERROR(LabelBuilder::Build(
      store->graph_.get(), /*prefix=*/"", options, &store->index_, stats));
  *out = std::move(store);
  return Status::OK();
}

Status LabelStore::Load(const std::string& path,
                        std::unique_ptr<LabelStore>* out) {
  auto store = std::unique_ptr<LabelStore>(new LabelStore());
  RestoredLabelIndex restored;
  RELGRAPH_RETURN_IF_ERROR(
      LoadLabelSnapshot(path, DatabaseOptions{}, &restored));
  store->db_ = std::move(restored.db);
  store->index_ = std::move(restored.index);
  *out = std::move(store);
  return Status::OK();
}

Status LabelStore::WriteSnapshot(const std::string& path) const {
  return WriteLabelSnapshot(*index_, path);
}

}  // namespace relgraph
