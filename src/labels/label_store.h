#pragma once

#include <memory>
#include <string>

#include "src/graph/graph_store.h"
#include "src/labels/label_builder.h"
#include "src/labels/label_index.h"

namespace relgraph {

/// A self-contained label serving unit: its own Database (concurrent
/// readers on — many sessions probe it at once), a GraphStore built from
/// the edge list, and the LabelIndex constructed over it. This is what a
/// DistCoordinator attaches so distributed fleets answer label hits
/// coordinator-side with zero shard fan-out — construction stays a
/// single-node SQL pipeline, serving scales with sessions.
class LabelStore {
 public:
  /// Builds graph tables + labels from `list` in a fresh in-memory
  /// database.
  static Status Build(const EdgeList& list, LabelBuildOptions options,
                      std::unique_ptr<LabelStore>* out,
                      LabelBuildStats* stats = nullptr);

  /// Restores from a WriteLabelSnapshot() file instead of rebuilding.
  /// A restored store has no graph — probes work, staleness cannot move
  /// (nothing can mutate a graph it doesn't have), and graph() is null.
  static Status Load(const std::string& path,
                     std::unique_ptr<LabelStore>* out);

  Status WriteSnapshot(const std::string& path) const;

  LabelIndex* labels() const { return index_.get(); }
  /// Null for a snapshot-restored store.
  GraphStore* graph() const { return graph_.get(); }

  /// Never-answer-stale gate: true when the backing graph mutated after
  /// the build. A restored store is fresh by construction.
  bool stale() const {
    return graph_ != nullptr && index_->stale(graph_->mutation_epoch());
  }

 private:
  LabelStore() = default;

  std::unique_ptr<Database> db_;
  std::unique_ptr<GraphStore> graph_;
  std::unique_ptr<LabelIndex> index_;
};

}  // namespace relgraph
