#include "src/labels/labeled_path_finder.h"

#include "src/common/timer.h"

namespace relgraph {

Status LabeledPathFinder::Create(GraphStore* graph, const LabelIndex* labels,
                                 LabeledPathFinderOptions options,
                                 std::unique_ptr<LabeledPathFinder>* out) {
  auto finder = std::unique_ptr<LabeledPathFinder>(new LabeledPathFinder());
  finder->graph_ = graph;
  finder->labels_ = labels;
  RELGRAPH_RETURN_IF_ERROR(LabelProbe::Create(labels, &finder->probe_));
  RELGRAPH_RETURN_IF_ERROR(
      SqlPathFinder::Create(graph, options.fallback, &finder->fallback_));
  *out = std::move(finder);
  return Status::OK();
}

Status LabeledPathFinder::Distance(node_id_t s, node_id_t t,
                                   PathQueryResult* result,
                                   bool* served_from_labels) {
  if (served_from_labels != nullptr) *served_from_labels = false;
  if (labels_->stale(graph_->mutation_epoch())) {
    // The graph moved since the build: the labels may answer with a path
    // that no longer exists (or miss a shorter one). Never serve them.
    counters_.stale_fallbacks++;
    counters_.fallbacks++;
    return fallback_->Find(s, t, result);
  }
  Timer timer;
  LabelProbeResult probe;
  RELGRAPH_RETURN_IF_ERROR(probe_->Distance(s, t, &probe));
  if (!probe.answered) {
    counters_.inexact_fallbacks++;
    counters_.fallbacks++;
    return fallback_->Find(s, t, result);
  }
  *result = PathQueryResult{};
  result->found = probe.found;
  result->distance = probe.found ? probe.distance : kInfinity;
  result->stats.statements = probe.statements;
  result->stats.total_us = timer.ElapsedMicros();
  counters_.label_hits++;
  if (served_from_labels != nullptr) *served_from_labels = true;
  return Status::OK();
}

Status LabeledPathFinder::Find(node_id_t s, node_id_t t,
                               PathQueryResult* result) {
  counters_.path_fallbacks++;
  counters_.fallbacks++;
  return fallback_->Find(s, t, result);
}

}  // namespace relgraph
