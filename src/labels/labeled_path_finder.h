#pragma once

#include <memory>

#include "src/core/sql_path_finder.h"
#include "src/labels/label_index.h"
#include "src/labels/label_probe.h"

namespace relgraph {

struct LabeledPathFinderOptions {
  /// The exact fallback: the paper's FEM algorithms through the SQL-text
  /// client. `fallback.visited_table` must be unique per finder in one
  /// database.
  SqlPathFinderOptions fallback;
};

/// Why each query was (or was not) served from labels — the fast-path
/// hit/fallback accounting tools and benches print.
struct LabelServeCounters {
  int64_t label_hits = 0;         // answered from labels, no FEM
  int64_t fallbacks = 0;          // total FEM executions via this finder
  int64_t stale_fallbacks = 0;    // graph mutated since the build
  int64_t inexact_fallbacks = 0;  // partial index could not certify
  int64_t path_fallbacks = 0;     // full path requested (labels hold none)
};

/// The serve-from-index fast path with FEM as the exact slow path:
/// Distance() answers from two label probes + min when the index can
/// *prove* the answer (fresh labels, certified exact), and transparently
/// runs the full FEM search otherwise — a stale or partial index degrades
/// to the paper's algorithm, never to a wrong answer. Find() (full path)
/// always runs FEM: labels store distances, not paths.
class LabeledPathFinder {
 public:
  /// `labels` may live in graph->db() (built in place) or in a separate
  /// restored database; the finder probes wherever the index points and
  /// falls back onto `graph`.
  static Status Create(GraphStore* graph, const LabelIndex* labels,
                       LabeledPathFinderOptions options,
                       std::unique_ptr<LabeledPathFinder>* out);

  /// Distance-only query. `result->path` stays empty on a label hit;
  /// `served_from_labels` (optional) reports which path answered.
  Status Distance(node_id_t s, node_id_t t, PathQueryResult* result,
                  bool* served_from_labels = nullptr);

  /// Full-path query: always the FEM fallback.
  Status Find(node_id_t s, node_id_t t, PathQueryResult* result);

  const LabelServeCounters& counters() const { return counters_; }
  const LabelIndex* labels() const { return labels_; }
  SqlPathFinder* fallback() { return fallback_.get(); }

 private:
  LabeledPathFinder() = default;

  GraphStore* graph_ = nullptr;
  const LabelIndex* labels_ = nullptr;
  std::unique_ptr<LabelProbe> probe_;
  std::unique_ptr<SqlPathFinder> fallback_;
  LabelServeCounters counters_;
};

}  // namespace relgraph
