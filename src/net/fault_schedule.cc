#include "src/net/fault_schedule.h"

namespace relgraph {
namespace net {

Status ReplicaFleet::Start(ShardedGraphStore* store, int replicas_per_shard,
                           ShardServerOptions base,
                           std::unique_ptr<ReplicaFleet>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  if (replicas_per_shard < 1) {
    return Status::InvalidArgument("replicas_per_shard must be >= 1");
  }
  if (base.port != 0) {
    return Status::InvalidArgument(
        "fleet replicas must use ephemeral ports (base.port == 0)");
  }
  auto fleet = std::unique_ptr<ReplicaFleet>(
      new ReplicaFleet(store, replicas_per_shard, base));
  fleet->servers_.resize(store->num_shards());
  fleet->ports_.resize(store->num_shards());
  for (int shard = 0; shard < store->num_shards(); shard++) {
    for (int r = 0; r < replicas_per_shard; r++) {
      std::unique_ptr<ShardServer> server;
      RELGRAPH_RETURN_IF_ERROR(
          ShardServer::Start(store, shard, base, &server));
      fleet->ports_[shard].push_back(server->port());
      fleet->servers_[shard].push_back(std::move(server));
    }
  }
  *out = std::move(fleet);
  return Status::OK();
}

std::vector<std::string> ReplicaFleet::Endpoints() const {
  std::vector<std::string> endpoints;
  endpoints.reserve(ports_.size());
  for (const auto& shard_ports : ports_) {
    std::string joined;
    for (uint16_t p : shard_ports) {
      if (!joined.empty()) joined += '|';
      joined += "127.0.0.1:" + std::to_string(p);
    }
    endpoints.push_back(std::move(joined));
  }
  return endpoints;
}

Status ReplicaFleet::CheckIndex(int shard, int replica) const {
  if (shard < 0 || shard >= num_shards() || replica < 0 ||
      replica >= replicas_per_shard_) {
    return Status::InvalidArgument(
        "no replica " + std::to_string(replica) + " of shard " +
        std::to_string(shard) + " in this fleet");
  }
  return Status::OK();
}

Status ReplicaFleet::Kill(int shard, int replica) {
  RELGRAPH_RETURN_IF_ERROR(CheckIndex(shard, replica));
  // Destroying the server stops it (connections cut, port released) — the
  // closest in-process stand-in for SIGKILL on the replica's process.
  servers_[shard][replica].reset();
  return Status::OK();
}

Status ReplicaFleet::Restart(int shard, int replica) {
  RELGRAPH_RETURN_IF_ERROR(CheckIndex(shard, replica));
  if (servers_[shard][replica] != nullptr) return Status::OK();
  ShardServerOptions opts = base_;
  opts.port = ports_[shard][replica];  // same address clients already know
  return ShardServer::Start(store_, shard, opts, &servers_[shard][replica]);
}

Status ReplicaFleet::SetDelay(int shard, int replica, int ms) {
  RELGRAPH_RETURN_IF_ERROR(CheckIndex(shard, replica));
  if (servers_[shard][replica] == nullptr) {
    return Status::InvalidArgument("cannot delay a killed replica");
  }
  servers_[shard][replica]->InjectResponseDelayMs(ms);
  return Status::OK();
}

Status ReplicaFleet::DropConnections(int shard, int replica) {
  RELGRAPH_RETURN_IF_ERROR(CheckIndex(shard, replica));
  if (servers_[shard][replica] == nullptr) {
    return Status::InvalidArgument(
        "cannot drop connections of a killed replica");
  }
  servers_[shard][replica]->InjectDropConnections();
  return Status::OK();
}

Status ReplicaFleet::Corrupt(int shard, int replica) {
  RELGRAPH_RETURN_IF_ERROR(CheckIndex(shard, replica));
  if (servers_[shard][replica] == nullptr) {
    return Status::InvalidArgument("cannot corrupt a killed replica");
  }
  servers_[shard][replica]->InjectExpandError(Status::Corruption(
      "checksum mismatch on replica " + std::to_string(replica) +
      " of shard " + std::to_string(shard)));
  return Status::OK();
}

Status ReplicaFleet::Heal() {
  for (int shard = 0; shard < num_shards(); shard++) {
    for (int r = 0; r < replicas_per_shard_; r++) {
      RELGRAPH_RETURN_IF_ERROR(Restart(shard, r));
      servers_[shard][r]->InjectResponseDelayMs(0);
      servers_[shard][r]->InjectExpandError(Status::OK());
    }
  }
  return Status::OK();
}

FaultSchedule& FaultSchedule::Kill(int64_t round, int shard, int replica) {
  events_.push_back({round, Op::kKill, shard, replica, 0});
  return *this;
}

FaultSchedule& FaultSchedule::Restart(int64_t round, int shard, int replica) {
  events_.push_back({round, Op::kRestart, shard, replica, 0});
  return *this;
}

FaultSchedule& FaultSchedule::DelayMs(int64_t round, int shard, int replica,
                                      int ms) {
  events_.push_back({round, Op::kDelayMs, shard, replica, ms});
  return *this;
}

FaultSchedule& FaultSchedule::DropConnections(int64_t round, int shard,
                                              int replica) {
  events_.push_back({round, Op::kDropConnections, shard, replica, 0});
  return *this;
}

FaultSchedule& FaultSchedule::CorruptPage(int64_t round, int shard,
                                          int replica) {
  events_.push_back({round, Op::kCorrupt, shard, replica, 0});
  return *this;
}

Status FaultSchedule::OnRound(int64_t round, ReplicaFleet* fleet) const {
  for (const Event& e : events_) {
    if (e.round != round) continue;
    switch (e.op) {
      case Op::kKill:
        RELGRAPH_RETURN_IF_ERROR(fleet->Kill(e.shard, e.replica));
        break;
      case Op::kRestart:
        RELGRAPH_RETURN_IF_ERROR(fleet->Restart(e.shard, e.replica));
        break;
      case Op::kDelayMs:
        RELGRAPH_RETURN_IF_ERROR(fleet->SetDelay(e.shard, e.replica, e.arg));
        break;
      case Op::kDropConnections:
        RELGRAPH_RETURN_IF_ERROR(fleet->DropConnections(e.shard, e.replica));
        break;
      case Op::kCorrupt:
        RELGRAPH_RETURN_IF_ERROR(fleet->Corrupt(e.shard, e.replica));
        break;
    }
  }
  return Status::OK();
}

std::string FaultSchedule::ToString() const {
  std::string out = "[";
  for (const Event& e : events_) {
    if (out.size() > 1) out += ", ";
    out += "round " + std::to_string(e.round) + ": ";
    switch (e.op) {
      case Op::kKill:
        out += "kill";
        break;
      case Op::kRestart:
        out += "restart";
        break;
      case Op::kDelayMs:
        out += "delay(" + std::to_string(e.arg) + "ms)";
        break;
      case Op::kDropConnections:
        out += "drop-conns";
        break;
      case Op::kCorrupt:
        out += "corrupt";
        break;
    }
    out += " s" + std::to_string(e.shard) + "r" + std::to_string(e.replica);
  }
  return out + "]";
}

}  // namespace net
}  // namespace relgraph
