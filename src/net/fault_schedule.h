#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/net/shard_server.h"

namespace relgraph {
namespace net {

/// A replicated shard fleet for tests and tools: `replicas_per_shard`
/// ShardServer processes-in-miniature per shard, all over one shared
/// ShardedGraphStore, each on its own loopback port. The fleet remembers
/// every replica's port, so a killed replica restarts *on the same port*
/// (SO_REUSEADDR) — exactly what a supervised production process would do —
/// and clients redial the address they already know.
class ReplicaFleet {
 public:
  static Status Start(ShardedGraphStore* store, int replicas_per_shard,
                      ShardServerOptions base,
                      std::unique_ptr<ReplicaFleet>* out);

  int num_shards() const { return static_cast<int>(servers_.size()); }
  int replicas_per_shard() const { return replicas_per_shard_; }

  /// Coordinator-ready endpoint strings: one per shard, replicas joined
  /// with '|' ("127.0.0.1:p1|127.0.0.1:p2").
  std::vector<std::string> Endpoints() const;

  /// nullptr while that replica is killed.
  ShardServer* server(int shard, int replica) const {
    return servers_[shard][replica].get();
  }
  uint16_t port(int shard, int replica) const {
    return ports_[shard][replica];
  }

  /// Stops the replica as if its process died (connections cut, port
  /// released). No-op if already dead.
  Status Kill(int shard, int replica);
  /// Restarts a killed replica on its original port. No-op if alive.
  Status Restart(int shard, int replica);
  /// Injects a response delay (0 clears); replica must be alive.
  Status SetDelay(int shard, int replica, int ms);
  /// Abruptly drops the replica's open connections; replica must be alive.
  Status DropConnections(int shard, int replica);
  /// Marks the replica's data corrupted: every expand request it receives
  /// from now on is answered with a typed Corruption Error frame (the
  /// transport stays healthy). Fleet replicas share one in-process store,
  /// so this models what a replica with its own bit-flipped pages would
  /// do — detect at read time and refuse the answer; the on-disk half of
  /// that story (real page CRCs, snapshot verification) is covered by the
  /// DiskManager/snapshot tests and the CI snapshot smoke. Replica must be
  /// alive; Heal() clears.
  Status Corrupt(int shard, int replica);
  /// Restarts every dead replica and clears every delay and corruption —
  /// one call returns the fleet to pristine between schedule runs.
  Status Heal();

 private:
  ReplicaFleet(ShardedGraphStore* store, int replicas_per_shard,
               ShardServerOptions base)
      : store_(store), replicas_per_shard_(replicas_per_shard), base_(base) {}

  Status CheckIndex(int shard, int replica) const;

  ShardedGraphStore* store_;
  int replicas_per_shard_;
  ShardServerOptions base_;
  std::vector<std::vector<std::unique_ptr<ShardServer>>> servers_;
  std::vector<std::vector<uint16_t>> ports_;
};

/// A deterministic fault script: "at FEM round K, do X to replica R of
/// shard S". The coordinator's round hook calls OnRound() right before each
/// round's shard fan-out, so the same schedule replays the same
/// interleaving every run — the schedule-exploration idiom: tests enumerate
/// schedules (every round × every replica × every op) and assert the
/// invariant under all of them, reaching interleavings a timing-based test
/// only hits by luck.
class FaultSchedule {
 public:
  enum class Op {
    kKill,             // stop the replica's server (process death)
    kRestart,          // bring a killed replica back on its old port
    kDelayMs,          // arg = response delay in ms (0 clears)
    kDropConnections,  // cut every open connection once
    kCorrupt,          // replica answers expands with typed Corruption
  };

  struct Event {
    int64_t round = 0;  // FEM round (1-based) this fires before
    Op op = Op::kKill;
    int shard = 0;
    int replica = 0;
    int arg = 0;  // kDelayMs only
  };

  FaultSchedule& Kill(int64_t round, int shard, int replica);
  FaultSchedule& Restart(int64_t round, int shard, int replica);
  FaultSchedule& DelayMs(int64_t round, int shard, int replica, int ms);
  FaultSchedule& DropConnections(int64_t round, int shard, int replica);
  FaultSchedule& CorruptPage(int64_t round, int shard, int replica);

  const std::vector<Event>& events() const { return events_; }

  /// Applies every event scheduled for `round`, in insertion order.
  /// Designed to sit in DistOptions::round_hook.
  Status OnRound(int64_t round, ReplicaFleet* fleet) const;

  /// Human-readable one-liner for test failure messages.
  std::string ToString() const;

 private:
  std::vector<Event> events_;
};

}  // namespace net
}  // namespace relgraph
