#include "src/net/prober.h"

#include <chrono>

namespace relgraph {
namespace net {

const char* ReplicaHealthName(ReplicaHealth h) {
  switch (h) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDead:
      return "dead";
  }
  return "unknown";
}

HealthProber::HealthProber(std::vector<Target> targets, ProberOptions options)
    : targets_(std::move(targets)), options_(options) {
  if (options_.probe_interval_ms > 0 && !targets_.empty()) {
    thread_ = std::thread([this] { Loop(); });
  }
}

HealthProber::~HealthProber() { Stop(); }

void HealthProber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthProber::Loop() {
  const auto interval = std::chrono::milliseconds(options_.probe_interval_ms);
  while (true) {
    for (const Target& t : targets_) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
      }
      probes_sent_.fetch_add(1, std::memory_order_relaxed);
      Status s = t.probe();
      if (s.ok()) {
        t.state->RecordSuccess();
      } else {
        t.state->RecordFailure(options_);
      }
    }
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      return;
    }
  }
}

}  // namespace net
}  // namespace relgraph
