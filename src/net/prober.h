#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace relgraph {
namespace net {

/// Health of one shard replica, as routing sees it.
///
///   healthy — answering probes/requests; preferred by routing.
///   suspect — at least one recent consecutive failure; routed to only
///             when no healthy replica exists.
///   dead    — failed `dead_after` consecutive times; routed to last
///             (the attempt doubles as a recovery probe — its circuit
///             breaker keeps the cost of a still-dead replica near zero).
enum class ReplicaHealth : int { kHealthy = 0, kSuspect = 1, kDead = 2 };

const char* ReplicaHealthName(ReplicaHealth h);

/// Thresholds for the failure->suspect->dead ladder and the probe cadence.
struct ProberOptions {
  /// Probe every replica this often. <= 0 disables the background prober
  /// (health then updates only passively, from request outcomes).
  int64_t probe_interval_ms = 250;
  /// Consecutive failures before healthy -> suspect.
  int suspect_after = 1;
  /// Consecutive failures before -> dead. Dead replicas keep being probed
  /// at the same cadence: one success revives them to healthy.
  int dead_after = 3;
};

/// One replica's shared health cell: written by the background prober and
/// by request outcomes (passive detection is faster than the next probe
/// tick), read lock-free on every routing decision.
class HealthState {
 public:
  ReplicaHealth health() const {
    return static_cast<ReplicaHealth>(
        state_.load(std::memory_order_relaxed));
  }

  /// Any successful probe or request: one good answer proves liveness.
  void RecordSuccess() {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    state_.store(static_cast<int>(ReplicaHealth::kHealthy),
                 std::memory_order_relaxed);
  }

  /// A failed probe or a transport-failed request; walks the ladder.
  void RecordFailure(const ProberOptions& opts) {
    const int fails =
        consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fails >= opts.dead_after) {
      state_.store(static_cast<int>(ReplicaHealth::kDead),
                   std::memory_order_relaxed);
    } else if (fails >= opts.suspect_after) {
      state_.store(static_cast<int>(ReplicaHealth::kSuspect),
                   std::memory_order_relaxed);
    }
  }

  /// Marks dead outright (e.g. endpoint unreachable at wiring time).
  void MarkDead() {
    state_.store(static_cast<int>(ReplicaHealth::kDead),
                 std::memory_order_relaxed);
  }

 private:
  std::atomic<int> state_{static_cast<int>(ReplicaHealth::kHealthy)};
  std::atomic<int> consecutive_failures_{0};
};

/// Background health prober: one thread sweeping a fixed set of replicas on
/// a cadence, reusing the wire's kHeartbeat/kHeartbeatAck frames (the probe
/// callback is typically RemoteShardService::Ping). Routing then consults
/// an up-to-date health cell instead of discovering a dead replica
/// per-request; dead replicas keep being probed, so recovery is noticed
/// without any query traffic.
class HealthProber {
 public:
  struct Target {
    /// Bounded health check (e.g. a heartbeat round trip). Must be safe to
    /// call concurrently with request traffic.
    std::function<Status()> probe;
    HealthState* state = nullptr;
  };

  /// Starts the probe thread immediately.
  HealthProber(std::vector<Target> targets, ProberOptions options);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  /// Stops and joins the probe thread. Idempotent.
  void Stop();

  /// Probes sent since construction (all targets, all sweeps).
  int64_t probes_sent() const {
    return probes_sent_.load(std::memory_order_relaxed);
  }
  /// Completed full sweeps — tests wait on this to know every replica's
  /// health reflects the world at least once since an injected change.
  int64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const std::vector<Target> targets_;
  const ProberOptions options_;

  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;

  std::atomic<int64_t> probes_sent_{0};
  std::atomic<int64_t> sweeps_{0};
};

}  // namespace net
}  // namespace relgraph
