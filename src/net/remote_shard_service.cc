#include "src/net/remote_shard_service.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace relgraph {
namespace net {

Status RemoteShardService::Create(
    const std::string& host, uint16_t port, int shard, int num_shards,
    RemoteShardOptions options, std::unique_ptr<RemoteShardService>* out) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (options.breaker_failure_threshold < 1) {
    return Status::InvalidArgument("breaker threshold must be >= 1");
  }
  *out = std::unique_ptr<RemoteShardService>(
      new RemoteShardService(host, port, shard, num_shards, options));
  return Status::OK();
}

Status RemoteShardService::Validate() {
  // Eager validation: a wrong address, dead server, version skew, or
  // shard-identity mismatch fails at wiring time with the real reason, not
  // on the first query round.
  Socket sock;
  RELGRAPH_RETURN_IF_ERROR(
      Dial(DeadlineAfterMs(options_.connect_timeout_ms), &sock));
  ReturnSocket(std::move(sock));
  return Status::OK();
}

Status RemoteShardService::Connect(
    const std::string& host, uint16_t port, int shard, int num_shards,
    RemoteShardOptions options, std::unique_ptr<RemoteShardService>* out) {
  RELGRAPH_RETURN_IF_ERROR(
      Create(host, port, shard, num_shards, options, out));
  Status st = (*out)->Validate();
  if (!st.ok()) out->reset();
  return st;
}

Status RemoteShardService::Dial(Deadline deadline, Socket* out) {
  Socket sock;
  RELGRAPH_RETURN_IF_ERROR(TcpConnect(host_, port_, deadline, &sock));
  HandshakeRequest req;
  req.shard = shard_;
  req.num_shards = num_shards_;
  RELGRAPH_RETURN_IF_ERROR(SendFrame(&sock, FrameType::kHandshake,
                                     EncodeHandshakeRequest(req), deadline));
  FrameType type;
  std::string payload;
  RELGRAPH_RETURN_IF_ERROR(RecvFrame(&sock, &type, &payload, deadline));
  if (type == FrameType::kError) {
    Status remote;
    RELGRAPH_RETURN_IF_ERROR(DecodeErrorStatus(payload, &remote));
    return remote;
  }
  if (type != FrameType::kHandshakeAck) {
    return Status::Corruption("expected handshake ack");
  }
  HandshakeAck ack;
  RELGRAPH_RETURN_IF_ERROR(DecodeHandshakeAck(payload, &ack));
  if (ack.shard != shard_) {
    return Status::InvalidArgument(
        "server acked shard " + std::to_string(ack.shard) + ", expected " +
        std::to_string(shard_));
  }
  *out = std::move(sock);
  return Status::OK();
}

Status RemoteShardService::CheckoutSocket(Deadline deadline, Socket* out) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!idle_socks_.empty()) {
      *out = std::move(idle_socks_.back());
      idle_socks_.pop_back();
      return Status::OK();
    }
  }
  return Dial(deadline, out);
}

void RemoteShardService::ReturnSocket(Socket sock) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (static_cast<int>(idle_socks_.size()) <
      options_.max_pooled_connections) {
    idle_socks_.push_back(std::move(sock));
  }
  // else: sock closes on scope exit — the pool is full.
}

Status RemoteShardService::ExpandOnce(Socket* sock,
                                      const ShardExpandRequest& request,
                                      ShardExpandResponse* response,
                                      Deadline deadline) {
  RELGRAPH_RETURN_IF_ERROR(SendFrame(sock, FrameType::kExpandRequest,
                                     EncodeExpandRequest(request),
                                     deadline));
  FrameType type;
  std::string payload;
  RELGRAPH_RETURN_IF_ERROR(RecvFrame(sock, &type, &payload, deadline));
  if (type == FrameType::kError) {
    Status remote;
    RELGRAPH_RETURN_IF_ERROR(DecodeErrorStatus(payload, &remote));
    return remote.ok() ? Status::Corruption("error frame carried OK")
                       : remote;
  }
  if (type != FrameType::kExpandResponse) {
    return Status::Corruption("expected expand response frame");
  }
  return DecodeExpandResponse(payload, response);
}

bool RemoteShardService::IsRetryable(const Status& st) {
  // Transport-class failures: the connection (or its deadline) failed, not
  // the shard's execution of a well-formed request. Expansion is a pure
  // read, so re-sending it is safe.
  return st.IsUnavailable() || st.IsDeadlineExceeded() || st.IsIOError();
}

Status RemoteShardService::BreakerAdmit() {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (!breaker_open_) return Status::OK();
  if (std::chrono::steady_clock::now() < breaker_open_until_) {
    return Status::Unavailable(
        "circuit open for shard " + std::to_string(shard_) + " (" + host_ +
        ":" + std::to_string(port_) + "); failing fast");
  }
  // Half-open: exactly one caller probes the shard; concurrent callers keep
  // failing fast until the probe records an outcome (success closes the
  // circuit, failure re-opens the window). Without this slot, N threads
  // arriving at cooldown expiry would all hammer a possibly-still-dead
  // shard at once — the stampede the breaker exists to prevent.
  if (half_open_probe_inflight_) {
    return Status::Unavailable(
        "circuit open for shard " + std::to_string(shard_) + " (" + host_ +
        ":" + std::to_string(port_) + "); half-open probe in flight");
  }
  half_open_probe_inflight_ = true;
  return Status::OK();
}

void RemoteShardService::RecordSuccess() {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  consecutive_failures_ = 0;
  breaker_open_ = false;
  half_open_probe_inflight_ = false;
}

void RemoteShardService::RecordFailure() {
  failures_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(breaker_mu_);
  consecutive_failures_++;
  half_open_probe_inflight_ = false;
  if (consecutive_failures_ >= options_.breaker_failure_threshold) {
    if (!breaker_open_) {
      breaker_opens_.fetch_add(1, std::memory_order_relaxed);
    }
    breaker_open_ = true;
    breaker_open_until_ = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options_.breaker_open_ms);
  }
}

bool RemoteShardService::circuit_open() const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return breaker_open_ &&
         std::chrono::steady_clock::now() < breaker_open_until_;
}

int64_t RemoteShardService::BackoffWithJitterMs(int attempt) {
  int64_t backoff = options_.backoff_base_ms;
  for (int i = 1; i < attempt && backoff < options_.backoff_max_ms; i++) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_max_ms);
  if (backoff <= 0) return 0;
  std::lock_guard<std::mutex> lock(jitter_mu_);
  return backoff + static_cast<int64_t>(
                       jitter_rng_.NextBounded(static_cast<uint64_t>(backoff)));
}

Status RemoteShardService::Expand(const ShardExpandRequest& request,
                                  ShardExpandResponse* response) {
  *response = ShardExpandResponse{};
  RELGRAPH_RETURN_IF_ERROR(BreakerAdmit());

  Status last;
  for (int attempt = 1; attempt <= options_.max_attempts; attempt++) {
    if (attempt > 1) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffWithJitterMs(attempt - 1)));
    }
    const Deadline deadline = DeadlineAfterMs(options_.request_timeout_ms);
    Socket sock;
    last = CheckoutSocket(deadline, &sock);
    if (last.ok()) {
      last = ExpandOnce(&sock, request, response, deadline);
    }
    if (last.ok()) {
      ReturnSocket(std::move(sock));
      RecordSuccess();
      return Status::OK();
    }
    // Failed attempt: the connection state is unknown (half-written frame,
    // stale response in flight) — never reuse it, and never leak a
    // partially decoded response into the next attempt.
    *response = ShardExpandResponse{};
    if (!IsRetryable(last)) {
      // Application-level error from the shard (it executed and said no):
      // retrying cannot change the answer. The shard answered, so it is
      // alive — record success for the breaker (closing it if this was the
      // half-open probe; the slot must be released either way).
      RecordSuccess();
      return last;
    }
  }
  RecordFailure();
  return Status::Unavailable(
      "shard " + std::to_string(shard_) + " (" + host_ + ":" +
      std::to_string(port_) + ") unreachable after " +
      std::to_string(options_.max_attempts) +
      " attempt(s); last error: " + last.ToString());
}

Status RemoteShardService::Ping() { return Ping(options_.request_timeout_ms); }

Status RemoteShardService::Ping(int64_t timeout_ms) {
  const Deadline deadline = DeadlineAfterMs(timeout_ms);
  Socket sock;
  RELGRAPH_RETURN_IF_ERROR(CheckoutSocket(deadline, &sock));
  RELGRAPH_RETURN_IF_ERROR(
      SendFrame(&sock, FrameType::kHeartbeat, std::string(), deadline));
  FrameType type;
  std::string payload;
  RELGRAPH_RETURN_IF_ERROR(RecvFrame(&sock, &type, &payload, deadline));
  if (type != FrameType::kHeartbeatAck) {
    return Status::Corruption("expected heartbeat ack");
  }
  ReturnSocket(std::move(sock));
  return Status::OK();
}

}  // namespace net
}  // namespace relgraph
