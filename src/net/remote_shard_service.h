#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/dist/shard_service.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace relgraph {
namespace net {

/// Failure-handling knobs of the remote shard stub. The defaults suit a
/// LAN/loopback deployment; tests shrink them to exercise every path in
/// milliseconds.
struct RemoteShardOptions {
  /// Deadline for dialing + handshaking a new connection.
  int64_t connect_timeout_ms = 1000;
  /// Per-attempt deadline covering the whole request round trip
  /// (serialize, send, receive, decode).
  int64_t request_timeout_ms = 5000;
  /// Total tries per Expand(): 1 initial + (max_attempts - 1) retries,
  /// each on a freshly dialed connection (the failed one is discarded).
  int max_attempts = 3;
  /// Exponential backoff between attempts: base * 2^(attempt-1), capped at
  /// `backoff_max_ms`, plus uniform jitter in [0, backoff) so a fleet of
  /// sessions retrying a recovering shard does not stampede in lockstep.
  int64_t backoff_base_ms = 10;
  int64_t backoff_max_ms = 200;
  /// Circuit breaker: after this many *consecutive* failed Expand() calls
  /// the circuit opens and calls fail fast with Unavailable (no network)
  /// for `breaker_open_ms`; then one half-open probe attempt is let
  /// through — success closes the circuit, failure re-opens it.
  int breaker_failure_threshold = 3;
  int64_t breaker_open_ms = 1000;
  /// Idle connections kept for reuse (each Expand checks one out; beyond
  /// this, returned connections are closed instead of pooled).
  int max_pooled_connections = 8;
  /// Jitter source seed (deterministic per-stub by default).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Client stub implementing ShardService over the src/net wire — the
/// "RPC stub implementing Expand" the PR-5 boundary was designed for. The
/// coordinator cannot tell it from LocalShardService on the happy path
/// (bit-identical responses); on failure it degrades instead of hanging:
/// per-request deadlines, bounded retry with exponential backoff + jitter
/// on connection failure/timeout, and a circuit breaker so a dead shard
/// answers Status::Unavailable immediately instead of burning the full
/// retry budget on every round.
///
/// Thread-safe: concurrent sessions share one stub per shard, each request
/// checks a pooled connection out (dialing a new one when none is idle).
class RemoteShardService : public ShardService {
 public:
  /// Builds a stub without touching the network (options validation only).
  /// Used by replicated fleets, where a currently-dead replica is a state
  /// to route around, not a wiring error.
  static Status Create(const std::string& host, uint16_t port, int shard,
                       int num_shards, RemoteShardOptions options,
                       std::unique_ptr<RemoteShardService>* out);

  /// Eagerly dials and validates the handshake (magic, wire version, shard
  /// identity, partition count); the validated connection is pooled for the
  /// first Expand(). Distinguishes misconfiguration (InvalidArgument /
  /// Corruption) from a merely-unreachable endpoint (Unavailable).
  Status Validate();

  /// Create() + Validate(): the single-endpoint wiring path, where a dead
  /// endpoint should fail at startup, not on the first query.
  static Status Connect(const std::string& host, uint16_t port, int shard,
                        int num_shards, RemoteShardOptions options,
                        std::unique_ptr<RemoteShardService>* out);

  Status Expand(const ShardExpandRequest& request,
                ShardExpandResponse* response) override;

  /// Heartbeat round trip on a pooled connection (dials if needed),
  /// bounded by request_timeout_ms. OK means the shard is alive.
  Status Ping();
  /// Same, with an explicit bound — the health prober probes on a faster
  /// clock than request traffic.
  Status Ping(int64_t timeout_ms);

  int shard() const { return shard_; }
  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

  /// Observability (tests assert on these; an admission controller would
  /// read them).
  int64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  int64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  /// Closed->open breaker transitions since construction.
  int64_t breaker_opens() const {
    return breaker_opens_.load(std::memory_order_relaxed);
  }
  bool circuit_open() const;

  void AddResilience(ResilienceCounters* out) const override {
    out->retries += retries();
    out->failures += failures();
    out->breaker_opens += breaker_opens();
  }

 private:
  RemoteShardService(std::string host, uint16_t port, int shard,
                     int num_shards, const RemoteShardOptions& options)
      : host_(std::move(host)),
        port_(port),
        shard_(shard),
        num_shards_(num_shards),
        options_(options),
        jitter_rng_(options.jitter_seed ^ (static_cast<uint64_t>(port) << 16)
                    ^ static_cast<uint64_t>(shard)) {}

  /// Dials and handshakes a fresh connection within `deadline`.
  Status Dial(Deadline deadline, Socket* out);
  /// Pops a pooled connection or dials a new one.
  Status CheckoutSocket(Deadline deadline, Socket* out);
  void ReturnSocket(Socket sock);
  /// One request/response exchange on one connection.
  Status ExpandOnce(Socket* sock, const ShardExpandRequest& request,
                    ShardExpandResponse* response, Deadline deadline);

  /// Breaker bookkeeping around one whole Expand() outcome. While the
  /// circuit is open past its cooldown, exactly ONE caller is admitted as
  /// the half-open probe (the slot is held until that caller records an
  /// outcome); everyone else keeps failing fast.
  Status BreakerAdmit();  // Unavailable while the circuit is open
  void RecordSuccess();
  void RecordFailure();

  /// True for transport-class errors worth retrying on a fresh
  /// connection; application errors from the shard are returned as-is.
  static bool IsRetryable(const Status& st);

  int64_t BackoffWithJitterMs(int attempt);

  const std::string host_;
  const uint16_t port_;
  const int shard_;
  const int num_shards_;
  const RemoteShardOptions options_;

  std::mutex pool_mu_;
  std::vector<Socket> idle_socks_;

  mutable std::mutex breaker_mu_;
  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  /// True while a half-open probe request is in flight; gates the slot.
  bool half_open_probe_inflight_ = false;
  std::chrono::steady_clock::time_point breaker_open_until_{};

  std::mutex jitter_mu_;
  Rng jitter_rng_;

  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<int64_t> breaker_opens_{0};
};

}  // namespace net
}  // namespace relgraph
