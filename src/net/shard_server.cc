#include "src/net/shard_server.h"

#include <chrono>
#include <utility>

namespace relgraph {
namespace net {

namespace {
/// Poll granularity for idle waits: how quickly a stop request is
/// observed by the accept loop and idle connections.
constexpr int64_t kPollSliceMs = 50;
}  // namespace

Status ShardServer::Start(ShardedGraphStore* store, int shard,
                          ShardServerOptions options,
                          std::unique_ptr<ShardServer>* out) {
  if (store == nullptr) {
    return Status::InvalidArgument("null ShardedGraphStore");
  }
  if (shard < 0 || shard >= store->num_shards()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("server workers must be >= 1");
  }
  auto server = std::unique_ptr<ShardServer>(
      new ShardServer(store, shard, options));
  RELGRAPH_RETURN_IF_ERROR(LocalShardService::Create(
      store, shard, options.shard, &server->local_));
  RELGRAPH_RETURN_IF_ERROR(
      Listener::Listen(options.port, &server->listener_));
  server->conn_pool_ = std::make_unique<ThreadPool>(options.workers);
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  *out = std::move(server);
  return Status::OK();
}

Status ShardServer::StartRefusing(int shard, Status refusal,
                                  ShardServerOptions options,
                                  std::unique_ptr<ShardServer>* out) {
  if (refusal.ok()) {
    return Status::InvalidArgument(
        "a refusing server needs a non-OK refusal status");
  }
  if (options.workers < 1) {
    return Status::InvalidArgument("server workers must be >= 1");
  }
  auto server = std::unique_ptr<ShardServer>(
      new ShardServer(/*store=*/nullptr, shard, options));
  server->refusal_ = std::move(refusal);
  RELGRAPH_RETURN_IF_ERROR(
      Listener::Listen(options.port, &server->listener_));
  server->conn_pool_ = std::make_unique<ThreadPool>(options.workers);
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  *out = std::move(server);
  return Status::OK();
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Connection workers observe stopping_ at their next poll slice; queued
  // handlers that never started return immediately. Shutdown() drains and
  // joins them all (and refuses any late submits — the fixed race).
  if (conn_pool_) conn_pool_->Shutdown();
}

void ShardServer::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Connections now serve only frames already pending and retire once
  // idle; Shutdown() blocks until the last one has.
  if (conn_pool_) conn_pool_->Shutdown();
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed) &&
         !draining_.load(std::memory_order_relaxed)) {
    Socket conn;
    Status st = listener_.Accept(&conn, DeadlineAfterMs(kPollSliceMs));
    if (st.IsDeadlineExceeded()) continue;
    if (!st.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      // Transient accept failure (e.g. EMFILE): back off one slice.
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollSliceMs));
      continue;
    }
    auto shared = std::make_shared<Socket>(std::move(conn));
    conn_pool_->Submit([this, shared] { ServeConn(std::move(*shared)); });
  }
  // The accept thread owns the listener's lifecycle: closing it here (not
  // from whichever thread requested the stop) keeps the fd single-owner,
  // and a self-stop (InjectStopAfterRequests) starts refusing connects
  // within one poll slice even before Stop() is called.
  listener_.Close();
}

void ShardServer::DelaySlices(int ms) {
  while (ms > 0 && !stopping_.load(std::memory_order_relaxed)) {
    const int slice = ms < kPollSliceMs ? ms : static_cast<int>(kPollSliceMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    ms -= slice;
  }
}

bool ShardServer::HandleFrame(Socket* conn, FrameType type,
                              const std::string& payload, bool* handshaken) {
  const Deadline io_deadline = DeadlineAfterMs(options_.io_timeout_ms);
  switch (type) {
    case FrameType::kHandshake: {
      if (!refusal_.ok()) {
        // Refusing server (snapshot failed verification): every client
        // learns the typed reason and must go elsewhere.
        SendFrame(conn, FrameType::kError, EncodeErrorStatus(refusal_),
                  io_deadline);
        return false;
      }
      HandshakeRequest req;
      Status st = DecodeHandshakeRequest(payload, &req);
      if (st.ok() && req.magic != kWireMagic) {
        st = Status::InvalidArgument("bad magic: peer is not a shard client");
      }
      if (st.ok() && req.version != kWireVersion) {
        st = Status::InvalidArgument(
            "wire version mismatch: client " + std::to_string(req.version) +
            ", server " + std::to_string(kWireVersion));
      }
      if (st.ok() && req.shard != shard_) {
        st = Status::InvalidArgument(
            "shard identity mismatch: client dialed shard " +
            std::to_string(req.shard) + ", this server serves shard " +
            std::to_string(shard_));
      }
      if (st.ok() && req.num_shards != store_->num_shards()) {
        st = Status::InvalidArgument(
            "partition count mismatch: client routes over " +
            std::to_string(req.num_shards) + " shards, server store has " +
            std::to_string(store_->num_shards()));
      }
      if (!st.ok()) {
        SendFrame(conn, FrameType::kError, EncodeErrorStatus(st),
                  io_deadline);
        return false;
      }
      HandshakeAck ack;
      ack.shard = shard_;
      *handshaken = true;
      return SendFrame(conn, FrameType::kHandshakeAck,
                       EncodeHandshakeAck(ack), io_deadline)
          .ok();
    }
    case FrameType::kExpandRequest: {
      if (!*handshaken) {
        SendFrame(conn, FrameType::kError,
                  EncodeErrorStatus(Status::InvalidArgument(
                      "expand before handshake")),
                  io_deadline);
        return false;
      }
      ShardExpandRequest req;
      Status st = DecodeExpandRequest(payload, &req);
      if (!st.ok()) {
        SendFrame(conn, FrameType::kError, EncodeErrorStatus(st),
                  io_deadline);
        return false;  // framing is broken; do not trust this stream
      }
      const int delay = response_delay_ms_.load(std::memory_order_relaxed);
      if (delay > 0) DelaySlices(delay);
      if (stopping_.load(std::memory_order_relaxed)) return false;
      if (expand_error_armed_.load(std::memory_order_acquire)) {
        Status injected;
        {
          std::lock_guard<std::mutex> lock(inject_mu_);
          injected = expand_error_;
        }
        if (!injected.ok()) {
          // Injected data fault (e.g. corruption detected at read time):
          // typed Error, connection stays healthy.
          return SendFrame(conn, FrameType::kError,
                           EncodeErrorStatus(injected), io_deadline)
              .ok();
        }
      }
      ShardExpandResponse resp;
      st = local_->Expand(req, &resp);
      if (!st.ok()) {
        // Shard-side execution error: ship the typed Status; the
        // connection itself is healthy, so keep serving it.
        return SendFrame(conn, FrameType::kError, EncodeErrorStatus(st),
                         io_deadline)
            .ok();
      }
      // Count before sending: a client that has the response in hand must
      // already observe the incremented counter (tests assert on it).
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      if (!SendFrame(conn, FrameType::kExpandResponse,
                     EncodeExpandResponse(resp), io_deadline)
               .ok()) {
        return false;
      }
      int64_t left = stop_after_requests_.load(std::memory_order_relaxed);
      if (left >= 0 &&
          stop_after_requests_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
        // Injected death: as if the process was killed after this
        // response. The accept loop and every connection retire at their
        // next poll slice.
        stopping_.store(true, std::memory_order_relaxed);
      }
      return true;
    }
    case FrameType::kHeartbeat:
      return SendFrame(conn, FrameType::kHeartbeatAck, std::string(),
                       io_deadline)
          .ok();
    default:
      SendFrame(conn, FrameType::kError,
                EncodeErrorStatus(Status::InvalidArgument(
                    "unexpected frame type from client")),
                io_deadline);
      return false;
  }
}

void ShardServer::ServeConn(Socket conn) {
  bool handshaken = false;
  const int64_t my_epoch = drop_epoch_.load(std::memory_order_relaxed);
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (drop_epoch_.load(std::memory_order_relaxed) != my_epoch) {
      break;  // injected connection drop: hang up abruptly
    }
    // Idle poll in slices so a stop request retires the connection even
    // when the client never sends another request. Under drain, only
    // frames already pending are served (zero wait), then the connection
    // retires as soon as it goes idle.
    const bool draining = draining_.load(std::memory_order_relaxed);
    Status st =
        conn.WaitReadable(DeadlineAfterMs(draining ? 0 : kPollSliceMs));
    if (st.IsDeadlineExceeded()) {
      if (draining) break;
      continue;
    }
    if (!st.ok()) break;
    FrameType type;
    std::string payload;
    st = RecvFrame(&conn, &type, &payload,
                   DeadlineAfterMs(options_.io_timeout_ms));
    if (!st.ok()) {
      if (st.IsCorruption()) {
        // Tell the peer why before hanging up (best effort).
        SendFrame(&conn, FrameType::kError, EncodeErrorStatus(st),
                  DeadlineAfterMs(options_.io_timeout_ms));
      }
      break;  // peer closed, timed out mid-frame, or sent garbage
    }
    if (!HandleFrame(&conn, type, payload, &handshaken)) break;
  }
}

}  // namespace net
}  // namespace relgraph
