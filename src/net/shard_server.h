#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/thread_pool.h"
#include "src/dist/shard_service.h"
#include "src/net/socket.h"
#include "src/net/wire.h"

namespace relgraph {
namespace net {

struct ShardServerOptions {
  /// TCP port to listen on (loopback); 0 picks an ephemeral port — read
  /// it back from ShardServer::port().
  uint16_t port = 0;
  /// Worker threads serving connections. One accepted connection pins one
  /// worker for its lifetime (the per-connection handler loops on the
  /// socket), so this bounds concurrent client connections; later
  /// connections queue until a worker frees up.
  int workers = 4;
  /// Connection pool of the underlying LocalShardService.
  LocalShardOptions shard;
  /// Per-frame I/O deadline once a request has started arriving (an idle
  /// connection waits indefinitely in poll slices, a half-sent frame must
  /// not hold a worker forever).
  int64_t io_timeout_ms = 5000;
};

/// One shard of a ShardedGraphStore served over TCP — the paper's §7
/// "each partition is processed by its own RDBMS node", with the node
/// boundary now a real wire. The server owns a LocalShardService (so
/// execution, prepared probes, and connection pooling are exactly the
/// in-process path) and speaks the src/net frame protocol: handshake
/// validation, ExpandRequest -> ExpandResponse, Heartbeat -> HeartbeatAck,
/// and typed Error frames for shard-side failures.
///
/// Stop() (or destruction) closes the listener and retires every
/// connection at the next poll slice; in-flight requests finish or fail,
/// clients see the close and run their retry/degradation policy.
class ShardServer {
 public:
  static Status Start(ShardedGraphStore* store, int shard,
                      ShardServerOptions options,
                      std::unique_ptr<ShardServer>* out);

  /// Starts a server that *refuses to serve*: every handshake is answered
  /// with a typed Error frame carrying `refusal` (non-OK — e.g. the
  /// Corruption from a failed snapshot verification) and the connection
  /// closes. No store is attached, no expand request ever executes; a
  /// replicated client treats the refusal like any failed replica and
  /// fails over. This is how a shard_server whose on-disk snapshot fails
  /// verification stays visibly up without risking wrong answers.
  static Status StartRefusing(int shard, Status refusal,
                              ShardServerOptions options,
                              std::unique_ptr<ShardServer>* out);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  uint16_t port() const { return listener_.port(); }
  int shard() const { return shard_; }
  int num_shards() const { return store_ == nullptr ? -1
                                                    : store_->num_shards(); }
  LocalShardService* local_service() { return local_.get(); }

  /// Graceful shutdown: stop accepting, retire every connection, join all
  /// threads. Idempotent.
  void Stop();

  /// Graceful *drain* (SIGTERM semantics): stop accepting new connections,
  /// let every in-flight request finish and each connection's
  /// already-pending frames be served, then retire connections as they go
  /// idle and join all threads. Unlike Stop(), no request that the server
  /// has started reading is ever abandoned. Idempotent; Stop() after a
  /// drain is a no-op.
  void Drain();

  /// Expand requests answered successfully since Start().
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// ----- fault injection (tests / the CI kill-one-shard smoke) -----------

  /// Sleeps `ms` before answering each expand request — pushes responses
  /// past a client deadline to exercise its timeout/retry path. 0 clears.
  void InjectResponseDelayMs(int ms) {
    response_delay_ms_.store(ms, std::memory_order_relaxed);
  }
  /// Stops the whole server (as if the process died) after `n` more
  /// successful expand responses — a deterministic "shard dies mid-query"
  /// for multi-round queries. Negative disables.
  void InjectStopAfterRequests(int64_t n) {
    stop_after_requests_.store(n, std::memory_order_relaxed);
  }
  /// Abruptly closes every currently-open connection (at its next poll
  /// slice) while the server keeps running and accepting — the "network
  /// blip" fault: clients see a peer close and must redial/retry.
  void InjectDropConnections() {
    drop_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  /// While set to a non-OK status, every expand request is answered with a
  /// typed Error frame carrying it (the connection stays open — transport
  /// is healthy, the data is not). Models a replica detecting page
  /// corruption at read time; a replicated client fails over. OK clears.
  void InjectExpandError(const Status& status) {
    std::lock_guard<std::mutex> lock(inject_mu_);
    expand_error_ = status;
    expand_error_armed_.store(!status.ok(), std::memory_order_release);
  }

 private:
  ShardServer(ShardedGraphStore* store, int shard,
              const ShardServerOptions& options)
      : store_(store), shard_(shard), options_(options) {}

  void AcceptLoop();
  void ServeConn(Socket conn);
  /// Handles one decoded frame; false when the connection should close.
  bool HandleFrame(Socket* conn, FrameType type, const std::string& payload,
                   bool* handshaken);
  /// Interruptible sleep for the injected response delay.
  void DelaySlices(int ms);

  ShardedGraphStore* store_;
  int shard_;
  ShardServerOptions options_;
  std::unique_ptr<LocalShardService> local_;
  Listener listener_;
  std::unique_ptr<ThreadPool> conn_pool_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int> response_delay_ms_{0};
  std::atomic<int64_t> stop_after_requests_{-1};
  /// Bumped by InjectDropConnections(); each connection remembers the epoch
  /// it was accepted in and retires when the epoch moves.
  std::atomic<int64_t> drop_epoch_{0};
  /// Non-OK when started via StartRefusing: answered to every handshake.
  Status refusal_;
  /// InjectExpandError state: armed flag checked lock-free on the hot
  /// path, the Status itself behind the mutex (it is not trivially
  /// copyable).
  std::mutex inject_mu_;
  Status expand_error_;
  std::atomic<bool> expand_error_armed_{false};
};

}  // namespace net
}  // namespace relgraph
