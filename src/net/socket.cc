#include "src/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "src/common/crc32c.h"

namespace relgraph {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + strerror(errno));
}

/// Remaining deadline budget in whole milliseconds, clamped to >= 0.
int RemainingMs(Deadline deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return static_cast<int>(std::max<int64_t>(0, left.count()));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Waits for `events` readiness; DeadlineExceeded when the budget runs out
/// first. Retries EINTR with the remaining budget.
Status PollFor(int fd, short events, Deadline deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout_ms = RemainingMs(deadline);
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      if (pfd.revents & POLLNVAL) {
        return Status::IOError("poll on invalid socket");
      }
      // POLLERR/POLLHUP also count as ready: the caller's next syscall
      // (recv, send, or the SO_ERROR check after connect) surfaces the
      // real error with its errno intact.
      return Status::OK();
    }
    if (rc == 0) return Status::DeadlineExceeded("socket wait timed out");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const char* data, size_t len, Deadline deadline) {
  if (!valid()) return Status::IOError("send on closed socket");
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE -> Status, not kill
    // the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      RELGRAPH_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("peer closed connection");
    }
    return Errno("send");
  }
  return Status::OK();
}

Status Socket::RecvAll(char* out, size_t len, Deadline deadline) {
  if (!valid()) return Status::IOError("recv on closed socket");
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, out + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Unavailable("peer closed connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RELGRAPH_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      return Status::Unavailable("peer closed connection");
    }
    return Errno("recv");
  }
  return Status::OK();
}

Status Socket::WaitReadable(Deadline deadline) {
  if (!valid()) return Status::IOError("wait on closed socket");
  return PollFor(fd_, POLLIN, deadline);
}

Status TcpConnect(const std::string& host, uint16_t port, Deadline deadline,
                  Socket* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  RELGRAPH_RETURN_IF_ERROR(SetNonBlocking(fd));
  int one = 1;
  // Expansion rounds are small request/response exchanges; Nagle would
  // serialize them against delayed ACKs.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }

  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno == ECONNREFUSED) {
      return Status::Unavailable("connection refused: " + host + ":" +
                                 std::to_string(port));
    }
    if (errno != EINPROGRESS) return Errno("connect");
    RELGRAPH_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline));
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      if (err == ECONNREFUSED || err == EHOSTUNREACH || err == ENETUNREACH ||
          err == ETIMEDOUT) {
        return Status::Unavailable(std::string("connect: ") + strerror(err));
      }
      return Status::IOError(std::string("connect: ") + strerror(err));
    }
  }
  *out = std::move(sock);
  return Status::OK();
}

Status Listener::Listen(uint16_t port, Listener* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  RELGRAPH_RETURN_IF_ERROR(SetNonBlocking(fd));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(fd, 64) < 0) return Errno("listen");

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) < 0) {
    return Errno("getsockname");
  }
  out->sock_ = std::move(sock);
  out->port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status Listener::Accept(Socket* out, Deadline deadline) {
  if (!valid()) return Status::IOError("accept on closed listener");
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      RELGRAPH_RETURN_IF_ERROR(SetNonBlocking(fd));
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = std::move(conn);
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RELGRAPH_RETURN_IF_ERROR(PollFor(sock_.fd(), POLLIN, deadline));
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status SendFrame(Socket* sock, FrameType type, const std::string& payload,
                 Deadline deadline) {
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(type, static_cast<uint32_t>(payload.size()),
                    crc32c::Value(payload.data(), payload.size()), header);
  // One buffer, one send path: framing errors cannot split a header from
  // its payload on a partial write.
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(header, kFrameHeaderBytes);
  frame.append(payload);
  return sock->SendAll(frame.data(), frame.size(), deadline);
}

Status RecvFrame(Socket* sock, FrameType* type, std::string* payload,
                 Deadline deadline) {
  char header[kFrameHeaderBytes];
  RELGRAPH_RETURN_IF_ERROR(
      sock->RecvAll(header, kFrameHeaderBytes, deadline));
  uint32_t payload_len, payload_crc;
  RELGRAPH_RETURN_IF_ERROR(
      DecodeFrameHeader(header, type, &payload_len, &payload_crc));
  payload->resize(payload_len);
  if (payload_len > 0) {
    RELGRAPH_RETURN_IF_ERROR(
        sock->RecvAll(payload->data(), payload_len, deadline));
  }
  // Wire integrity (v3): a byte flipped on the socket — payload OR the
  // checksum itself — surfaces as typed Corruption here, before any
  // payload decoder sees the bytes.
  if (crc32c::Value(payload->data(), payload->size()) != payload_crc) {
    return Status::Corruption("frame payload checksum mismatch");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace relgraph
