#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/wire.h"

namespace relgraph {
namespace net {

/// Absolute deadline for one socket operation (steady clock: immune to
/// wall-clock jumps). Every blocking call below takes one; expiry surfaces
/// as Status::DeadlineExceeded, never an indefinite block.
using Deadline = std::chrono::steady_clock::time_point;

inline Deadline DeadlineAfterMs(int64_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

/// Move-only RAII wrapper over one connected TCP fd. All I/O is
/// deadline-bounded: the fd is non-blocking and readiness is awaited with
/// poll() for at most the remaining deadline budget.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes exactly `len` bytes or fails (DeadlineExceeded on timeout,
  /// Unavailable when the peer closed, IOError otherwise).
  Status SendAll(const char* data, size_t len, Deadline deadline);
  /// Reads exactly `len` bytes or fails (same taxonomy; a clean peer close
  /// mid-message is Unavailable — the caller's retry policy handles it).
  Status RecvAll(char* out, size_t len, Deadline deadline);

  /// Waits until the fd is readable. OK on readable, DeadlineExceeded on
  /// timeout — lets servers poll for the next request in short slices and
  /// check a stop flag between them.
  Status WaitReadable(Deadline deadline);

 private:
  int fd_ = -1;
};

/// Connects to host:port within the deadline (non-blocking connect +
/// poll). Refused/unreachable endpoints fail with Unavailable.
Status TcpConnect(const std::string& host, uint16_t port, Deadline deadline,
                  Socket* out);

/// Listening TCP socket on 127.0.0.1 (the loopback transport this PR
/// ships; binding wider is a deployment concern, not a protocol one).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// from port()).
  static Status Listen(uint16_t port, Listener* out);

  bool valid() const { return sock_.valid(); }
  uint16_t port() const { return port_; }
  void Close() { sock_.Close(); }

  /// Accepts one connection, waiting at most until `deadline`
  /// (DeadlineExceeded on timeout). The accepted socket is non-blocking.
  Status Accept(Socket* out, Deadline deadline);

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

/// ----- framed I/O over a Socket --------------------------------------------

/// Sends one frame (header + payload) within the deadline.
Status SendFrame(Socket* sock, FrameType type, const std::string& payload,
                 Deadline deadline);

/// Receives one frame within the deadline, validating the header
/// (Corruption on a malformed one, Unavailable on peer close,
/// DeadlineExceeded on timeout).
Status RecvFrame(Socket* sock, FrameType* type, std::string* payload,
                 Deadline deadline);

}  // namespace net
}  // namespace relgraph
