#include "src/net/wire.h"

#include <cstring>

namespace relgraph {
namespace net {

namespace {

constexpr uint8_t kMinFrameType = static_cast<uint8_t>(FrameType::kHandshake);
constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::kHeartbeatAck);

constexpr uint32_t kMaxStatusCode =
    static_cast<uint32_t>(Status::Code::kDeadlineExceeded);

Status MakeStatus(Status::Code code, std::string msg) {
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case Status::Code::kInternal:
      return Status::Internal(std::move(msg));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::Corruption("unknown status code on the wire");
}

}  // namespace

void WireWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; i++) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; i++) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutBytes(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

Status WireReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::Corruption("truncated frame payload");
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status WireReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return Status::Corruption("truncated frame payload");
  uint16_t out = 0;
  for (int i = 0; i < 2; i++) {
    out |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
  }
  *v = out;
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::Corruption("truncated frame payload");
  uint32_t out = 0;
  for (int i = 0; i < 4; i++) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
  }
  *v = out;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::Corruption("truncated frame payload");
  uint64_t out = 0;
  for (int i = 0; i < 8; i++) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
  }
  *v = out;
  return Status::OK();
}

Status WireReader::GetI32(int32_t* v) {
  uint32_t raw;
  RELGRAPH_RETURN_IF_ERROR(GetU32(&raw));
  *v = static_cast<int32_t>(raw);
  return Status::OK();
}

Status WireReader::GetI64(int64_t* v) {
  uint64_t raw;
  RELGRAPH_RETURN_IF_ERROR(GetU64(&raw));
  *v = static_cast<int64_t>(raw);
  return Status::OK();
}

Status WireReader::GetBytes(std::string* s) {
  uint32_t len;
  RELGRAPH_RETURN_IF_ERROR(GetU32(&len));
  if (remaining() < len) return Status::Corruption("truncated frame payload");
  s->assign(data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::Finish() const {
  if (remaining() != 0) {
    return Status::Corruption("trailing bytes after frame payload");
  }
  return Status::OK();
}

void EncodeFrameHeader(FrameType type, uint32_t payload_len,
                       uint32_t payload_crc, char out[kFrameHeaderBytes]) {
  for (int i = 0; i < 4; i++) {
    out[i] = static_cast<char>(payload_len >> (8 * i));
  }
  out[4] = static_cast<char>(type);
  for (int i = 0; i < 4; i++) {
    out[5 + i] = static_cast<char>(payload_crc >> (8 * i));
  }
}

Status DecodeFrameHeader(const char in[kFrameHeaderBytes], FrameType* type,
                         uint32_t* payload_len, uint32_t* payload_crc) {
  uint32_t len = 0;
  for (int i = 0; i < 4; i++) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  const uint8_t raw_type = static_cast<uint8_t>(in[4]);
  if (raw_type < kMinFrameType || raw_type > kMaxFrameType) {
    return Status::Corruption("unknown frame type " +
                              std::to_string(raw_type));
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " + std::to_string(len) +
                              " exceeds limit");
  }
  uint32_t crc = 0;
  for (int i = 0; i < 4; i++) {
    crc |= static_cast<uint32_t>(static_cast<uint8_t>(in[5 + i])) << (8 * i);
  }
  *type = static_cast<FrameType>(raw_type);
  *payload_len = len;
  *payload_crc = crc;
  return Status::OK();
}

std::string EncodeExpandRequest(const ShardExpandRequest& req) {
  WireWriter w;
  w.PutU8(req.forward ? 1 : 0);
  w.PutI64(req.session_id);
  w.PutU64(req.nodes.size());
  for (node_id_t n : req.nodes) w.PutI64(n);
  return w.Take();
}

Status DecodeExpandRequest(const std::string& payload,
                           ShardExpandRequest* req) {
  WireReader r(payload);
  uint8_t forward;
  RELGRAPH_RETURN_IF_ERROR(r.GetU8(&forward));
  if (forward > 1) return Status::Corruption("bad direction flag");
  int64_t session_id;
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&session_id));
  uint64_t count;
  RELGRAPH_RETURN_IF_ERROR(r.GetU64(&count));
  // The count must be coverable by the bytes actually present — reject it
  // up front so a corrupt length cannot drive a huge allocation.
  if (count > r.remaining() / 8) {
    return Status::Corruption("frontier count exceeds payload");
  }
  req->forward = forward == 1;
  req->session_id = session_id;
  req->nodes.clear();
  req->nodes.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    int64_t n;
    RELGRAPH_RETURN_IF_ERROR(r.GetI64(&n));
    req->nodes.push_back(n);
  }
  return r.Finish();
}

std::string EncodeExpandResponse(const ShardExpandResponse& resp) {
  WireWriter w;
  w.PutU64(resp.edges.size());
  for (const ShippedEdge& e : resp.edges) {
    w.PutI64(e.frontier_node);
    w.PutI64(e.emit_node);
    w.PutI64(e.cost);
  }
  w.PutI64(resp.statements);
  w.PutI64(resp.elapsed_us);
  return w.Take();
}

Status DecodeExpandResponse(const std::string& payload,
                            ShardExpandResponse* resp) {
  WireReader r(payload);
  uint64_t count;
  RELGRAPH_RETURN_IF_ERROR(r.GetU64(&count));
  if (count > r.remaining() / 24) {
    return Status::Corruption("edge count exceeds payload");
  }
  resp->edges.clear();
  resp->edges.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    ShippedEdge e;
    RELGRAPH_RETURN_IF_ERROR(r.GetI64(&e.frontier_node));
    RELGRAPH_RETURN_IF_ERROR(r.GetI64(&e.emit_node));
    RELGRAPH_RETURN_IF_ERROR(r.GetI64(&e.cost));
    resp->edges.push_back(e);
  }
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&resp->statements));
  RELGRAPH_RETURN_IF_ERROR(r.GetI64(&resp->elapsed_us));
  return r.Finish();
}

std::string EncodeHandshakeRequest(const HandshakeRequest& req) {
  WireWriter w;
  w.PutU32(req.magic);
  w.PutU16(req.version);
  w.PutI32(req.shard);
  w.PutI32(req.num_shards);
  return w.Take();
}

Status DecodeHandshakeRequest(const std::string& payload,
                              HandshakeRequest* req) {
  WireReader r(payload);
  RELGRAPH_RETURN_IF_ERROR(r.GetU32(&req->magic));
  RELGRAPH_RETURN_IF_ERROR(r.GetU16(&req->version));
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&req->shard));
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&req->num_shards));
  return r.Finish();
}

std::string EncodeHandshakeAck(const HandshakeAck& ack) {
  WireWriter w;
  w.PutU16(ack.version);
  w.PutI32(ack.shard);
  return w.Take();
}

Status DecodeHandshakeAck(const std::string& payload, HandshakeAck* ack) {
  WireReader r(payload);
  RELGRAPH_RETURN_IF_ERROR(r.GetU16(&ack->version));
  RELGRAPH_RETURN_IF_ERROR(r.GetI32(&ack->shard));
  return r.Finish();
}

std::string EncodeErrorStatus(const Status& status) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutBytes(status.message());
  return w.Take();
}

Status DecodeErrorStatus(const std::string& payload, Status* status) {
  WireReader r(payload);
  uint32_t code;
  RELGRAPH_RETURN_IF_ERROR(r.GetU32(&code));
  if (code > kMaxStatusCode) {
    return Status::Corruption("unknown status code on the wire");
  }
  std::string msg;
  RELGRAPH_RETURN_IF_ERROR(r.GetBytes(&msg));
  RELGRAPH_RETURN_IF_ERROR(r.Finish());
  *status = MakeStatus(static_cast<Status::Code>(code), std::move(msg));
  return Status::OK();
}

}  // namespace net
}  // namespace relgraph
