#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/dist/shard_service.h"

namespace relgraph {
namespace net {

/// The shard wire format, version 3. Every message is one *frame*:
///
///     [u32 payload_len][u8 frame_type][u32 payload_crc][payload_len bytes]
///
/// with all integers little-endian regardless of host order, and
/// `payload_crc` the CRC32C of the payload bytes — RecvFrame verifies it,
/// so a byte flipped anywhere on the socket decodes to Status::Corruption,
/// never to a mangled response. The payload of each frame type is a fixed
/// field sequence (below); decoding is bounds-checked everywhere and must
/// consume the payload exactly, so a truncated, oversized, or
/// trailing-garbage frame is rejected as Status::Corruption instead of
/// being misread.
///
/// A connection opens with Handshake -> HandshakeAck (magic + version + the
/// shard identity the client expects, so a client dialed at the wrong
/// server fails fast), then carries any number of ExpandRequest ->
/// ExpandResponse / Heartbeat -> HeartbeatAck exchanges. A shard-side
/// failure answers with an Error frame carrying the typed Status; transport
/// growth happens by bumping kWireVersion and extending the handshake.
constexpr uint32_t kWireMagic = 0x52475348;  // "RGSH"
/// v2 added the session id to ExpandRequest so shard-side admission can be
/// per-session fair; v3 added the payload CRC32C to the frame header. Both
/// sides live in this tree, so the bumps are clean.
constexpr uint16_t kWireVersion = 3;
/// Upper bound on one frame's payload; a length field beyond this is
/// corruption (or a peer speaking another protocol), not a real message.
constexpr uint32_t kMaxFramePayload = 64u << 20;
/// Bytes of the fixed frame header ([u32 len][u8 type][u32 payload crc]).
constexpr size_t kFrameHeaderBytes = 9;

enum class FrameType : uint8_t {
  kHandshake = 1,
  kHandshakeAck = 2,
  kExpandRequest = 3,
  kExpandResponse = 4,
  kError = 5,
  kHeartbeat = 6,
  kHeartbeatAck = 7,
};

/// Client side of the connection opening: what it expects of the peer.
struct HandshakeRequest {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  int32_t shard = -1;       // shard the client believes it dialed
  int32_t num_shards = -1;  // partition count the client routed with
};

/// Server's acceptance: its own version and the shard it actually serves.
struct HandshakeAck {
  uint16_t version = kWireVersion;
  int32_t shard = -1;
};

/// Appends little-endian fields to a payload string.
class WireWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBytes(const std::string& s);  // u32 length prefix + raw bytes

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reads over one frame payload. Every getter
/// fails with Status::Corruption on a short buffer; Finish() additionally
/// rejects trailing bytes, so decoders prove they consumed the payload
/// exactly.
class WireReader {
 public:
  WireReader(const char* data, size_t len) : data_(data), len_(len) {}
  explicit WireReader(const std::string& payload)
      : WireReader(payload.data(), payload.size()) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI32(int32_t* v);
  Status GetI64(int64_t* v);
  Status GetBytes(std::string* s);

  size_t remaining() const { return len_ - pos_; }
  /// Corruption unless the payload was consumed exactly.
  Status Finish() const;

 private:
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// ----- frame header ---------------------------------------------------------

/// Renders the 9-byte header for a `payload_len`-byte frame of `type`
/// whose payload hashes to `payload_crc` (CRC32C).
void EncodeFrameHeader(FrameType type, uint32_t payload_len,
                       uint32_t payload_crc, char out[kFrameHeaderBytes]);

/// Parses and validates a frame header: known type, payload length within
/// kMaxFramePayload. Corruption otherwise. `payload_crc` receives the
/// stated payload checksum; verifying it against the received payload
/// bytes is the transport's job (RecvFrame).
Status DecodeFrameHeader(const char in[kFrameHeaderBytes], FrameType* type,
                         uint32_t* payload_len, uint32_t* payload_crc);

/// ----- payload codecs -------------------------------------------------------

std::string EncodeExpandRequest(const ShardExpandRequest& req);
Status DecodeExpandRequest(const std::string& payload,
                           ShardExpandRequest* req);

std::string EncodeExpandResponse(const ShardExpandResponse& resp);
Status DecodeExpandResponse(const std::string& payload,
                            ShardExpandResponse* resp);

std::string EncodeHandshakeRequest(const HandshakeRequest& req);
Status DecodeHandshakeRequest(const std::string& payload,
                              HandshakeRequest* req);

std::string EncodeHandshakeAck(const HandshakeAck& ack);
Status DecodeHandshakeAck(const std::string& payload, HandshakeAck* ack);

/// An Error frame ships a typed non-OK Status (code + message) back to the
/// client, which returns it from Expand() as if the local service had
/// produced it.
std::string EncodeErrorStatus(const Status& status);
Status DecodeErrorStatus(const std::string& payload, Status* status);

}  // namespace net
}  // namespace relgraph
