#include "src/sql/ast.h"

#include <sstream>

namespace relgraph::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.IsNull()) return "NULL";
      if (literal.type() == TypeId::kVarchar) {
        return "'" + literal.AsString() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kParameter:
      return ":" + param_name;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT (" : "-(") + left->ToString() +
             ")";
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpName(binary_op) + " " +
             right->ToString() + ")";
    case ExprKind::kFuncCall: {
      std::ostringstream os;
      os << func_name << "(";
      if (star_arg) os << "*";
      for (size_t i = 0; i < args.size(); i++) {
        if (i > 0) os << ", ";
        os << args[i]->ToString();
      }
      os << ")";
      if (window != nullptr) {
        os << " OVER (";
        if (!window->partition_by.empty()) {
          os << "PARTITION BY ";
          for (size_t i = 0; i < window->partition_by.size(); i++) {
            if (i > 0) os << ", ";
            os << window->partition_by[i]->ToString();
          }
        }
        if (!window->order_by.empty()) {
          if (!window->partition_by.empty()) os << " ";
          os << "ORDER BY ";
          for (size_t i = 0; i < window->order_by.size(); i++) {
            if (i > 0) os << ", ";
            os << window->order_by[i]->expr->ToString();
            if (!window->order_by[i]->ascending) os << " DESC";
          }
        }
        os << ")";
      }
      return os.str();
    }
    case ExprKind::kSubquery:
      return "(" + subquery->ToString() + ")";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  if (top.has_value()) os << "TOP " << *top << " ";
  for (size_t i = 0; i < items.size(); i++) {
    if (i > 0) os << ", ";
    if (items[i].expr == nullptr) {
      os << "*";
    } else {
      os << items[i].expr->ToString();
      if (!items[i].alias.empty()) os << " AS " << items[i].alias;
    }
  }
  if (!from.empty()) {
    os << " FROM ";
    for (size_t i = 0; i < from.size(); i++) {
      if (i > 0) os << ", ";
      const FromItem& fi = from[i];
      if (fi.kind == FromKind::kTable) {
        os << fi.table_name;
      } else {
        os << "(" << fi.subquery->ToString() << ")";
      }
      if (!fi.alias.empty() && fi.alias != fi.table_name) {
        os << " " << fi.alias;
      }
      if (!fi.column_aliases.empty()) {
        os << " (";
        for (size_t j = 0; j < fi.column_aliases.size(); j++) {
          if (j > 0) os << ", ";
          os << fi.column_aliases[j];
        }
        os << ")";
      }
    }
  }
  if (where != nullptr) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); i++) {
      if (i > 0) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); i++) {
      if (i > 0) os << ", ";
      os << order_by[i]->expr->ToString();
      if (!order_by[i]->ascending) os << " DESC";
    }
  }
  if (limit.has_value()) os << " LIMIT " << *limit;
  return os.str();
}

}  // namespace relgraph::sql
