#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace relgraph::sql {

// Abstract syntax of the dialect: exactly what the paper's Listings 1-4 use
// (window function, MERGE, scalar subqueries, derived tables) plus the DDL
// needed to stand the schema up. Owned trees via unique_ptr; the planner
// consumes the AST read-only.

struct SelectStmt;

// ----- Expressions ----------------------------------------------------------

enum class ExprKind {
  kLiteral,     // 42, 3.5, 'text', NULL
  kColumnRef,   // nid or q.nid
  kParameter,   // :lb
  kUnary,       // NOT e, -e
  kBinary,      // e + e, e AND e, e = e ...
  kFuncCall,    // MIN(e), COUNT(*), ROW_NUMBER() OVER (...)
  kSubquery,    // (SELECT ...) as a scalar value
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct OrderItem;  // defined below (needs Expr)

/// OVER (PARTITION BY cols ORDER BY keys) — only ROW_NUMBER is supported,
/// which is the one window function the paper's E-operator needs.
struct WindowSpec {
  std::vector<ExprPtr> partition_by;
  std::vector<std::unique_ptr<OrderItem>> order_by;
};

struct Expr {
  ExprKind kind;

  // kLiteral
  relgraph::Value literal;

  // kColumnRef: qualifier empty for unqualified names.
  std::string qualifier;
  std::string column;

  // kParameter
  std::string param_name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;   // also the unary operand
  ExprPtr right;

  // kFuncCall: name upper-cased (MIN/MAX/SUM/COUNT/ROW_NUMBER).
  std::string func_name;
  std::vector<ExprPtr> args;
  bool star_arg = false;                 // COUNT(*)
  std::unique_ptr<WindowSpec> window;    // non-null => window function

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  /// Round-trippable rendering, used by tests and error messages.
  std::string ToString() const;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

// ----- SELECT ---------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;       // null => bare `*`
  std::string alias;  // optional AS name
};

enum class FromKind { kTable, kSubquery };

struct FromItem {
  FromKind kind = FromKind::kTable;
  std::string table_name;                  // kTable
  std::unique_ptr<SelectStmt> subquery;    // kSubquery
  std::string alias;                       // optional for tables
  /// Optional derived-column list: `tmp (nid, p2s, cost, rownum)`.
  std::vector<std::string> column_aliases;
};

struct SelectStmt {
  bool distinct = false;
  std::optional<int64_t> top;    // SELECT TOP n
  std::vector<SelectItem> items;
  std::vector<FromItem> from;    // empty => SELECT without FROM
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  std::vector<std::unique_ptr<OrderItem>> order_by;
  std::optional<int64_t> limit;  // LIMIT n

  std::string ToString() const;
};

// ----- DML ------------------------------------------------------------------

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        // empty => full row order
  std::vector<std::vector<ExprPtr>> rows;  // VALUES (...), (...)
  std::unique_ptr<SelectStmt> select;      // INSERT ... SELECT
};

struct SetItem {
  std::string column;
  ExprPtr expr;
};

struct UpdateStmt {
  std::string table;
  std::vector<SetItem> sets;
  ExprPtr where;  // null => all rows
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

/// MERGE INTO target [AS] t USING <table | (subquery)> [AS] s [(cols)]
/// ON (t.k = s.k)
/// WHEN MATCHED [AND cond] THEN UPDATE SET ...
/// WHEN NOT MATCHED [BY TARGET] THEN INSERT [(cols)] VALUES (...)
struct MergeStmt {
  std::string target_table;
  std::string target_alias;  // defaults to table name
  FromItem source;           // table or subquery, with alias/column aliases
  ExprPtr on;
  ExprPtr matched_condition;       // optional extra AND after MATCHED
  std::vector<SetItem> matched_sets;
  std::vector<std::string> insert_columns;  // empty => full row order
  std::vector<ExprPtr> insert_values;
  bool has_matched_clause = false;
  bool has_not_matched_clause = false;
};

// ----- DDL ------------------------------------------------------------------

struct ColumnDef {
  std::string name;
  relgraph::TypeId type;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  /// CLUSTER BY (col) [UNIQUE]: rows live in a clustered B+-tree.
  std::string cluster_by;
  bool cluster_unique = false;
};

struct CreateIndexStmt {
  std::string index_name;  // informational; the engine keys indexes by column
  std::string table;
  std::string column;
  bool unique = false;
};

struct DropTableStmt {
  std::string table;
};

/// DROP INDEX <name> ON <table>; resolved by index name, falling back to
/// the indexed column (the engine keys indexes by column).
struct DropIndexStmt {
  std::string index_name;
  std::string table;
};

struct TruncateStmt {
  std::string table;
};

// ----- Statement ------------------------------------------------------------

enum class StmtKind {
  kSelect, kInsert, kUpdate, kDelete, kMerge,
  kCreateTable, kCreateIndex, kDropTable, kDropIndex, kTruncate,
};

struct Statement {
  StmtKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<MergeStmt> merge;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<DropIndexStmt> drop_index;
  std::unique_ptr<TruncateStmt> truncate;
};

}  // namespace relgraph::sql
