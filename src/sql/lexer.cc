#include "src/sql/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>

namespace relgraph::sql {

namespace {

/// Reserved words. Anything else alphabetic is an identifier. Sorted for
/// readability; lookup is linear over a small array (lexing is never a
/// bottleneck next to executing the statement).
constexpr std::array<const char*, 51> kKeywords = {
    "ALL",    "AND",     "AS",      "ASC",    "BY",      "CLUSTER",
    "COUNT",  "CREATE",  "DELETE",  "DESC",   "DISTINCT", "DOUBLE",
    "DROP",   "EXISTS",  "FROM",    "GROUP",  "HAVING",  "INDEX",
    "INSERT", "INT",     "INTO",    "IS",     "LIMIT",   "MATCHED",
    "MAX",    "MERGE",   "MIN",     "NOT",    "NULL",    "ON",
    "OR",     "ORDER",   "OVER",    "PARTITION", "ROW_NUMBER", "SELECT",
    "SET",    "SUM",     "TABLE",   "THEN",    "TOP",
    "TRUNCATE", "UNIQUE", "UPDATE",  "USING",  "VALUES",  "VARCHAR",
    "WHEN",   "WHERE",   "BIGINT",  "INTEGER",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kParameter: return "parameter";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kSemicolon: return "';'";
  }
  return "?";
}

bool Lexer::IsKeyword(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

Status Lexer::Tokenize(const std::string& input, std::vector<Token>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') i++;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t end = input.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated /* comment at offset " +
                                       std::to_string(i));
      }
      i = end + 2;
      continue;
    }

    Token tok;
    tok.offset = i;

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) i++;
      tok.text = input.substr(start, i - start);
      std::string upper = ToUpper(tok.text);
      if (IsKeyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.kind = TokenKind::kIdentifier;
      }
      out->push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) i++;
      bool is_float = false;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        i++;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) i++;
      }
      tok.text = input.substr(start, i - start);
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInteger;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      out->push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      // SQL string literal; '' inside is an escaped quote.
      std::string value;
      i++;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          i++;
          closed = true;
          break;
        }
        value.push_back(input[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
      out->push_back(std::move(tok));
      continue;
    }

    if (c == ':' && i + 1 < n && IsIdentStart(input[i + 1])) {
      size_t start = ++i;
      while (i < n && IsIdentChar(input[i])) i++;
      tok.kind = TokenKind::kParameter;
      tok.text = input.substr(start, i - start);
      out->push_back(std::move(tok));
      continue;
    }

    auto single = [&](TokenKind k) {
      tok.kind = k;
      tok.text = std::string(1, c);
      i++;
      out->push_back(tok);
    };
    switch (c) {
      case ',': single(TokenKind::kComma); continue;
      case '.': single(TokenKind::kDot); continue;
      case '(': single(TokenKind::kLParen); continue;
      case ')': single(TokenKind::kRParen); continue;
      case '*': single(TokenKind::kStar); continue;
      case '+': single(TokenKind::kPlus); continue;
      case '-': single(TokenKind::kMinus); continue;
      case '/': single(TokenKind::kSlash); continue;
      case ';': single(TokenKind::kSemicolon); continue;
      case '=': single(TokenKind::kEq); continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kNe;
          tok.text = "!=";
          i += 2;
          out->push_back(tok);
          continue;
        }
        return Status::InvalidArgument("stray '!' at offset " +
                                       std::to_string(i));
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kLe;
          tok.text = "<=";
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          tok.kind = TokenKind::kNe;
          tok.text = "<>";
          i += 2;
        } else {
          tok.kind = TokenKind::kLt;
          tok.text = "<";
          i++;
        }
        out->push_back(tok);
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.kind = TokenKind::kGe;
          tok.text = ">=";
          i += 2;
        } else {
          tok.kind = TokenKind::kGt;
          tok.text = ">";
          i++;
        }
        out->push_back(tok);
        continue;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(i));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out->push_back(std::move(end));
  return Status::OK();
}

}  // namespace relgraph::sql
