#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sql/token.h"

namespace relgraph::sql {

/// Splits one SQL string into tokens. Comments (`-- ...` to end of line and
/// `/* ... */`) are skipped. Keywords are recognized case-insensitively;
/// identifiers keep their original spelling (name lookup downstream is
/// case-insensitive, matching the usual RDBMS behaviour for unquoted names).
class Lexer {
 public:
  /// Tokenizes the whole input; on success `out` ends with a kEnd token.
  static Status Tokenize(const std::string& input, std::vector<Token>* out);

  /// True when `upper` is a reserved word of the dialect (upper-cased).
  static bool IsKeyword(const std::string& upper);
};

}  // namespace relgraph::sql
