#include "src/sql/parser.h"

#include <utility>

#include "src/sql/lexer.h"

namespace relgraph::sql {

namespace {

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

}  // namespace

// ----- plumbing --------------------------------------------------------------

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // the kEnd sentinel
  return tokens_[i];
}

Token Parser::Advance() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) pos_++;
  return t;
}

bool Parser::CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) return ErrorHere(std::string("keyword ") + kw);
  return Status::OK();
}

bool Parser::Match(TokenKind k) {
  if (Peek().kind == k) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind k, Token* out) {
  if (Peek().kind != k) return ErrorHere(TokenKindName(k));
  Token t = Advance();
  if (out != nullptr) *out = std::move(t);
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& expected) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEnd
                        ? "end of input"
                        : std::string(TokenKindName(t.kind)) +
                              (t.text.empty() ? "" : " '" + t.text + "'");
  return Status::InvalidArgument("expected " + expected + ", got " + got +
                                 " at offset " + std::to_string(t.offset));
}

// ----- entry points ----------------------------------------------------------

Status Parser::Parse(const std::string& input,
                     std::unique_ptr<Statement>* out) {
  std::vector<Token> tokens;
  RELGRAPH_RETURN_IF_ERROR(Lexer::Tokenize(input, &tokens));
  Parser p(std::move(tokens));
  RELGRAPH_RETURN_IF_ERROR(p.ParseStatement(out));
  p.Match(TokenKind::kSemicolon);
  if (p.Peek().kind != TokenKind::kEnd) {
    return p.ErrorHere("end of statement");
  }
  return Status::OK();
}

Status Parser::ParseScript(const std::string& input,
                           std::vector<std::unique_ptr<Statement>>* out) {
  std::vector<Token> tokens;
  RELGRAPH_RETURN_IF_ERROR(Lexer::Tokenize(input, &tokens));
  Parser p(std::move(tokens));
  out->clear();
  while (p.Peek().kind != TokenKind::kEnd) {
    if (p.Match(TokenKind::kSemicolon)) continue;
    std::unique_ptr<Statement> stmt;
    RELGRAPH_RETURN_IF_ERROR(p.ParseStatement(&stmt));
    out->push_back(std::move(stmt));
    if (p.Peek().kind != TokenKind::kEnd) {
      RELGRAPH_RETURN_IF_ERROR(p.Expect(TokenKind::kSemicolon));
    }
  }
  return Status::OK();
}

// ----- statements ------------------------------------------------------------

Status Parser::ParseStatement(std::unique_ptr<Statement>* out) {
  auto stmt = std::make_unique<Statement>();
  if (CheckKeyword("SELECT")) {
    stmt->kind = StmtKind::kSelect;
    RELGRAPH_RETURN_IF_ERROR(ParseSelect(&stmt->select));
  } else if (CheckKeyword("INSERT")) {
    stmt->kind = StmtKind::kInsert;
    RELGRAPH_RETURN_IF_ERROR(ParseInsert(&stmt->insert));
  } else if (CheckKeyword("UPDATE")) {
    stmt->kind = StmtKind::kUpdate;
    RELGRAPH_RETURN_IF_ERROR(ParseUpdate(&stmt->update));
  } else if (CheckKeyword("DELETE")) {
    stmt->kind = StmtKind::kDelete;
    RELGRAPH_RETURN_IF_ERROR(ParseDelete(&stmt->del));
  } else if (CheckKeyword("MERGE")) {
    stmt->kind = StmtKind::kMerge;
    RELGRAPH_RETURN_IF_ERROR(ParseMerge(&stmt->merge));
  } else if (CheckKeyword("CREATE")) {
    RELGRAPH_RETURN_IF_ERROR(ParseCreate(&stmt));
  } else if (MatchKeyword("DROP")) {
    if (MatchKeyword("INDEX")) {
      // DROP INDEX <name> ON <table>
      Token name, table;
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("ON"));
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &table));
      stmt->kind = StmtKind::kDropIndex;
      stmt->drop_index = std::make_unique<DropIndexStmt>();
      stmt->drop_index->index_name = name.text;
      stmt->drop_index->table = table.text;
    } else {
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      Token name;
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
      stmt->kind = StmtKind::kDropTable;
      stmt->drop_table = std::make_unique<DropTableStmt>();
      stmt->drop_table->table = name.text;
    }
  } else if (MatchKeyword("TRUNCATE")) {
    MatchKeyword("TABLE");  // optional noise word
    Token name;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
    stmt->kind = StmtKind::kTruncate;
    stmt->truncate = std::make_unique<TruncateStmt>();
    stmt->truncate->table = name.text;
  } else {
    return ErrorHere("a statement (SELECT/INSERT/UPDATE/DELETE/MERGE/CREATE/"
                     "DROP/TRUNCATE)");
  }
  *out = std::move(stmt);
  return Status::OK();
}

Status Parser::ParseSelect(std::unique_ptr<SelectStmt>* out) {
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto sel = std::make_unique<SelectStmt>();
  if (MatchKeyword("DISTINCT")) sel->distinct = true;
  if (MatchKeyword("TOP")) {
    Token n;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kInteger, &n));
    sel->top = n.int_value;
  }

  // Select list.
  do {
    SelectItem item;
    if (Peek().kind == TokenKind::kStar) {
      Advance();  // bare `*`
    } else {
      RELGRAPH_RETURN_IF_ERROR(ParseExpr(&item.expr));
      if (MatchKeyword("AS")) {
        Token a;
        RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &a));
        item.alias = a.text;
      } else if (Peek().kind == TokenKind::kIdentifier) {
        item.alias = Advance().text;  // bare alias
      }
    }
    sel->items.push_back(std::move(item));
  } while (Match(TokenKind::kComma));

  if (MatchKeyword("FROM")) {
    do {
      FromItem fi;
      RELGRAPH_RETURN_IF_ERROR(ParseFromItem(&fi));
      sel->from.push_back(std::move(fi));
    } while (Match(TokenKind::kComma));
  }

  if (MatchKeyword("WHERE")) {
    RELGRAPH_RETURN_IF_ERROR(ParseExpr(&sel->where));
  }
  if (MatchKeyword("GROUP")) {
    RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ExprPtr e;
      RELGRAPH_RETURN_IF_ERROR(ParseExpr(&e));
      sel->group_by.push_back(std::move(e));
    } while (Match(TokenKind::kComma));
  }
  if (MatchKeyword("ORDER")) {
    RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
    RELGRAPH_RETURN_IF_ERROR(ParseOrderItems(&sel->order_by));
  }
  if (MatchKeyword("LIMIT")) {
    Token n;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kInteger, &n));
    sel->limit = n.int_value;
  }
  *out = std::move(sel);
  return Status::OK();
}

Status Parser::ParseFromItem(FromItem* out) {
  if (Match(TokenKind::kLParen)) {
    out->kind = FromKind::kSubquery;
    RELGRAPH_RETURN_IF_ERROR(ParseSelect(&out->subquery));
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  } else {
    Token name;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
    out->kind = FromKind::kTable;
    out->table_name = name.text;
  }
  // Optional alias (with optional AS), optional derived column list.
  if (MatchKeyword("AS")) {
    Token a;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &a));
    out->alias = a.text;
  } else if (Peek().kind == TokenKind::kIdentifier) {
    out->alias = Advance().text;
  }
  if (Peek().kind == TokenKind::kLParen &&
      Peek(1).kind == TokenKind::kIdentifier &&
      (Peek(2).kind == TokenKind::kComma || Peek(2).kind == TokenKind::kRParen)) {
    Advance();  // (
    RELGRAPH_RETURN_IF_ERROR(ParseIdentifierList(&out->column_aliases));
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  }
  if (out->kind == FromKind::kSubquery && out->alias.empty()) {
    return Status::InvalidArgument("derived table requires an alias");
  }
  return Status::OK();
}

Status Parser::ParseOrderItems(std::vector<std::unique_ptr<OrderItem>>* out) {
  do {
    auto item = std::make_unique<OrderItem>();
    RELGRAPH_RETURN_IF_ERROR(ParseExpr(&item->expr));
    if (MatchKeyword("DESC")) {
      item->ascending = false;
    } else {
      MatchKeyword("ASC");
    }
    out->push_back(std::move(item));
  } while (Match(TokenKind::kComma));
  return Status::OK();
}

Status Parser::ParseIdentifierList(std::vector<std::string>* out) {
  do {
    Token t;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &t));
    out->push_back(t.text);
  } while (Match(TokenKind::kComma));
  return Status::OK();
}

Status Parser::ParseInsert(std::unique_ptr<InsertStmt>* out) {
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto ins = std::make_unique<InsertStmt>();
  Token name;
  RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
  ins->table = name.text;
  if (Peek().kind == TokenKind::kLParen &&
      Peek(1).kind == TokenKind::kIdentifier) {
    Advance();
    RELGRAPH_RETURN_IF_ERROR(ParseIdentifierList(&ins->columns));
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
  }
  if (MatchKeyword("VALUES")) {
    do {
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<ExprPtr> row;
      do {
        ExprPtr e;
        RELGRAPH_RETURN_IF_ERROR(ParseExpr(&e));
        row.push_back(std::move(e));
      } while (Match(TokenKind::kComma));
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      ins->rows.push_back(std::move(row));
    } while (Match(TokenKind::kComma));
  } else if (CheckKeyword("SELECT")) {
    RELGRAPH_RETURN_IF_ERROR(ParseSelect(&ins->select));
  } else {
    return ErrorHere("VALUES or SELECT");
  }
  *out = std::move(ins);
  return Status::OK();
}

Status Parser::ParseSetItems(std::vector<SetItem>* out) {
  do {
    Token col;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &col));
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kEq));
    SetItem s;
    s.column = col.text;
    RELGRAPH_RETURN_IF_ERROR(ParseExpr(&s.expr));
    out->push_back(std::move(s));
  } while (Match(TokenKind::kComma));
  return Status::OK();
}

Status Parser::ParseUpdate(std::unique_ptr<UpdateStmt>* out) {
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto upd = std::make_unique<UpdateStmt>();
  Token name;
  RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
  upd->table = name.text;
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("SET"));
  RELGRAPH_RETURN_IF_ERROR(ParseSetItems(&upd->sets));
  if (MatchKeyword("WHERE")) {
    RELGRAPH_RETURN_IF_ERROR(ParseExpr(&upd->where));
  }
  *out = std::move(upd);
  return Status::OK();
}

Status Parser::ParseDelete(std::unique_ptr<DeleteStmt>* out) {
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto del = std::make_unique<DeleteStmt>();
  Token name;
  RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
  del->table = name.text;
  if (MatchKeyword("WHERE")) {
    RELGRAPH_RETURN_IF_ERROR(ParseExpr(&del->where));
  }
  *out = std::move(del);
  return Status::OK();
}

Status Parser::ParseMerge(std::unique_ptr<MergeStmt>* out) {
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("MERGE"));
  MatchKeyword("INTO");  // MERGE [INTO] target — both spellings appear
  auto m = std::make_unique<MergeStmt>();
  Token name;
  RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
  m->target_table = name.text;
  if (MatchKeyword("AS")) {
    Token a;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &a));
    m->target_alias = a.text;
  } else if (Peek().kind == TokenKind::kIdentifier) {
    m->target_alias = Advance().text;
  }
  if (m->target_alias.empty()) m->target_alias = m->target_table;

  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("USING"));
  RELGRAPH_RETURN_IF_ERROR(ParseFromItem(&m->source));
  if (m->source.alias.empty()) m->source.alias = m->source.table_name;

  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("ON"));
  bool paren = Match(TokenKind::kLParen);
  RELGRAPH_RETURN_IF_ERROR(ParseExpr(&m->on));
  if (paren) RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

  while (CheckKeyword("WHEN")) {
    Advance();
    if (MatchKeyword("MATCHED")) {
      m->has_matched_clause = true;
      if (MatchKeyword("AND")) {
        RELGRAPH_RETURN_IF_ERROR(ParseExpr(&m->matched_condition));
      }
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("SET"));
      RELGRAPH_RETURN_IF_ERROR(ParseSetItems(&m->matched_sets));
    } else if (MatchKeyword("NOT")) {
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("MATCHED"));
      if (MatchKeyword("BY")) {
        // "BY TARGET" — the paper's Listing 2(4) spelling. TARGET is not a
        // reserved word (it doubles as the customary merge alias), so it
        // arrives as an identifier.
        Token t;
        RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &t));
        std::string upper = t.text;
        for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
        if (upper != "TARGET") return ErrorHere("TARGET after BY");
      }
      m->has_not_matched_clause = true;
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
      if (Peek().kind == TokenKind::kLParen &&
          Peek(1).kind == TokenKind::kIdentifier &&
          Peek(2).kind != TokenKind::kLParen) {
        Advance();
        RELGRAPH_RETURN_IF_ERROR(ParseIdentifierList(&m->insert_columns));
        RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      }
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      do {
        ExprPtr e;
        RELGRAPH_RETURN_IF_ERROR(ParseExpr(&e));
        m->insert_values.push_back(std::move(e));
      } while (Match(TokenKind::kComma));
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    } else {
      return ErrorHere("MATCHED or NOT MATCHED");
    }
  }
  if (!m->has_matched_clause && !m->has_not_matched_clause) {
    return Status::InvalidArgument("MERGE requires at least one WHEN clause");
  }
  *out = std::move(m);
  return Status::OK();
}

Status Parser::ParseCreate(std::unique_ptr<Statement>* out) {
  RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  bool unique = MatchKeyword("UNIQUE");
  if (MatchKeyword("TABLE")) {
    if (unique) return Status::InvalidArgument("CREATE UNIQUE TABLE");
    auto ct = std::make_unique<CreateTableStmt>();
    Token name;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &name));
    ct->table = name.text;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    do {
      Token col;
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &col));
      ColumnDef def;
      def.name = col.text;
      if (MatchKeyword("INT") || MatchKeyword("BIGINT") ||
          MatchKeyword("INTEGER")) {
        def.type = TypeId::kInt;
      } else if (MatchKeyword("DOUBLE")) {
        def.type = TypeId::kDouble;
      } else if (MatchKeyword("VARCHAR")) {
        if (Match(TokenKind::kLParen)) {  // VARCHAR(n): length is advisory
          RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kInteger));
          RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        }
        def.type = TypeId::kVarchar;
      } else {
        return ErrorHere("a column type (INT/BIGINT/DOUBLE/VARCHAR)");
      }
      ct->columns.push_back(std::move(def));
    } while (Match(TokenKind::kComma));
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (MatchKeyword("CLUSTER")) {
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      Token col;
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &col));
      ct->cluster_by = col.text;
      RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      ct->cluster_unique = MatchKeyword("UNIQUE");
    }
    (*out)->kind = StmtKind::kCreateTable;
    (*out)->create_table = std::move(ct);
    return Status::OK();
  }
  if (MatchKeyword("INDEX")) {
    auto ci = std::make_unique<CreateIndexStmt>();
    ci->unique = unique;
    if (Peek().kind == TokenKind::kIdentifier) {
      ci->index_name = Advance().text;
    }
    RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("ON"));
    Token table;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &table));
    ci->table = table.text;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    Token col;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &col));
    ci->column = col.text;
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    (*out)->kind = StmtKind::kCreateIndex;
    (*out)->create_index = std::move(ci);
    return Status::OK();
  }
  return ErrorHere("TABLE or INDEX after CREATE");
}

// ----- expressions -----------------------------------------------------------

Status Parser::ParseExpr(ExprPtr* out) { return ParseOr(out); }

Status Parser::ParseOr(ExprPtr* out) {
  RELGRAPH_RETURN_IF_ERROR(ParseAnd(out));
  while (MatchKeyword("OR")) {
    ExprPtr rhs;
    RELGRAPH_RETURN_IF_ERROR(ParseAnd(&rhs));
    *out = MakeBinary(BinaryOp::kOr, std::move(*out), std::move(rhs));
  }
  return Status::OK();
}

Status Parser::ParseAnd(ExprPtr* out) {
  RELGRAPH_RETURN_IF_ERROR(ParseNot(out));
  while (MatchKeyword("AND")) {
    ExprPtr rhs;
    RELGRAPH_RETURN_IF_ERROR(ParseNot(&rhs));
    *out = MakeBinary(BinaryOp::kAnd, std::move(*out), std::move(rhs));
  }
  return Status::OK();
}

Status Parser::ParseNot(ExprPtr* out) {
  if (MatchKeyword("NOT")) {
    ExprPtr inner;
    RELGRAPH_RETURN_IF_ERROR(ParseNot(&inner));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->unary_op = UnaryOp::kNot;
    e->left = std::move(inner);
    *out = std::move(e);
    return Status::OK();
  }
  return ParseComparison(out);
}

Status Parser::ParseComparison(ExprPtr* out) {
  RELGRAPH_RETURN_IF_ERROR(ParseAdditive(out));
  BinaryOp op;
  switch (Peek().kind) {
    case TokenKind::kEq: op = BinaryOp::kEq; break;
    case TokenKind::kNe: op = BinaryOp::kNe; break;
    case TokenKind::kLt: op = BinaryOp::kLt; break;
    case TokenKind::kLe: op = BinaryOp::kLe; break;
    case TokenKind::kGt: op = BinaryOp::kGt; break;
    case TokenKind::kGe: op = BinaryOp::kGe; break;
    default:
      // IS [NOT] NULL sugar: rewritten to = / <> against a NULL literal is
      // wrong under three-valued logic, so it gets a dedicated function.
      if (CheckKeyword("IS")) {
        Advance();
        bool negated = MatchKeyword("NOT");
        RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFuncCall;
        e->func_name = negated ? "IS_NOT_NULL" : "IS_NULL";
        e->args.push_back(std::move(*out));
        *out = std::move(e);
      }
      return Status::OK();
  }
  Advance();
  ExprPtr rhs;
  RELGRAPH_RETURN_IF_ERROR(ParseAdditive(&rhs));
  *out = MakeBinary(op, std::move(*out), std::move(rhs));
  return Status::OK();
}

Status Parser::ParseAdditive(ExprPtr* out) {
  RELGRAPH_RETURN_IF_ERROR(ParseMultiplicative(out));
  while (true) {
    BinaryOp op;
    if (Peek().kind == TokenKind::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().kind == TokenKind::kMinus) {
      op = BinaryOp::kSub;
    } else {
      return Status::OK();
    }
    Advance();
    ExprPtr rhs;
    RELGRAPH_RETURN_IF_ERROR(ParseMultiplicative(&rhs));
    *out = MakeBinary(op, std::move(*out), std::move(rhs));
  }
}

Status Parser::ParseMultiplicative(ExprPtr* out) {
  RELGRAPH_RETURN_IF_ERROR(ParseUnary(out));
  while (true) {
    BinaryOp op;
    if (Peek().kind == TokenKind::kStar) {
      op = BinaryOp::kMul;
    } else if (Peek().kind == TokenKind::kSlash) {
      op = BinaryOp::kDiv;
    } else {
      return Status::OK();
    }
    Advance();
    ExprPtr rhs;
    RELGRAPH_RETURN_IF_ERROR(ParseUnary(&rhs));
    *out = MakeBinary(op, std::move(*out), std::move(rhs));
  }
}

Status Parser::ParseUnary(ExprPtr* out) {
  if (Match(TokenKind::kMinus)) {
    ExprPtr inner;
    RELGRAPH_RETURN_IF_ERROR(ParseUnary(&inner));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kUnary;
    e->unary_op = UnaryOp::kNeg;
    e->left = std::move(inner);
    *out = std::move(e);
    return Status::OK();
  }
  Match(TokenKind::kPlus);  // unary plus is a no-op
  return ParsePrimary(out);
}

Status Parser::ParsePrimary(ExprPtr* out) {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = Value(Advance().int_value);
      *out = std::move(e);
      return Status::OK();
    }
    case TokenKind::kFloat: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = Value(Advance().float_value);
      *out = std::move(e);
      return Status::OK();
    }
    case TokenKind::kString: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLiteral;
      e->literal = Value(Advance().text);
      *out = std::move(e);
      return Status::OK();
    }
    case TokenKind::kParameter: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kParameter;
      e->param_name = Advance().text;
      *out = std::move(e);
      return Status::OK();
    }
    case TokenKind::kLParen: {
      Advance();
      if (CheckKeyword("SELECT")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kSubquery;
        RELGRAPH_RETURN_IF_ERROR(ParseSelect(&e->subquery));
        RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        *out = std::move(e);
        return Status::OK();
      }
      RELGRAPH_RETURN_IF_ERROR(ParseExpr(out));
      return Expect(TokenKind::kRParen);
    }
    case TokenKind::kKeyword: {
      if (t.text == "NULL") {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Null();
        *out = std::move(e);
        return Status::OK();
      }
      if (t.text == "MIN" || t.text == "MAX" || t.text == "SUM" ||
          t.text == "COUNT" || t.text == "ROW_NUMBER") {
        std::string name = Advance().text;
        return ParseFunctionCall(name, out);
      }
      return ErrorHere("an expression");
    }
    case TokenKind::kIdentifier: {
      std::string first = Advance().text;
      if (Peek().kind == TokenKind::kLParen) {
        // Unreserved function name (none today) — report clearly.
        return Status::InvalidArgument("unknown function '" + first +
                                       "' at offset " + std::to_string(t.offset));
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kColumnRef;
      if (Match(TokenKind::kDot)) {
        Token col;
        RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kIdentifier, &col));
        e->qualifier = std::move(first);
        e->column = col.text;
      } else {
        e->column = std::move(first);
      }
      *out = std::move(e);
      return Status::OK();
    }
    default:
      return ErrorHere("an expression");
  }
}

Status Parser::ParseFunctionCall(const std::string& upper_name, ExprPtr* out) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = upper_name;
  RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
  if (Peek().kind == TokenKind::kStar) {
    Advance();
    e->star_arg = true;
  } else if (Peek().kind != TokenKind::kRParen) {
    do {
      ExprPtr arg;
      RELGRAPH_RETURN_IF_ERROR(ParseExpr(&arg));
      e->args.push_back(std::move(arg));
    } while (Match(TokenKind::kComma));
  }
  RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));

  if (MatchKeyword("OVER")) {
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    auto win = std::make_unique<WindowSpec>();
    if (MatchKeyword("PARTITION")) {
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        ExprPtr p;
        RELGRAPH_RETURN_IF_ERROR(ParseExpr(&p));
        win->partition_by.push_back(std::move(p));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("ORDER")) {
      RELGRAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      RELGRAPH_RETURN_IF_ERROR(ParseOrderItems(&win->order_by));
    }
    RELGRAPH_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    e->window = std::move(win);
  } else if (upper_name == "ROW_NUMBER") {
    return Status::InvalidArgument("ROW_NUMBER() requires an OVER clause");
  }
  *out = std::move(e);
  return Status::OK();
}

}  // namespace relgraph::sql
