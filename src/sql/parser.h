#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sql/ast.h"
#include "src/sql/token.h"

namespace relgraph::sql {

/// Recursive-descent parser for the dialect in the paper's listings.
/// One Parser instance parses one statement string (optionally ending in a
/// semicolon). Errors carry the offending offset and what was expected.
class Parser {
 public:
  /// Parses exactly one statement.
  static Status Parse(const std::string& input,
                      std::unique_ptr<Statement>* out);

  /// Parses a script: statements separated by semicolons. Empty statements
  /// (stray semicolons) are skipped.
  static Status ParseScript(const std::string& input,
                            std::vector<std::unique_ptr<Statement>>* out);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool MatchKeyword(const char* kw);
  bool CheckKeyword(const char* kw) const;
  Status ExpectKeyword(const char* kw);
  bool Match(TokenKind k);
  Status Expect(TokenKind k, Token* out = nullptr);
  Status ErrorHere(const std::string& expected) const;

  Status ParseStatement(std::unique_ptr<Statement>* out);
  Status ParseSelect(std::unique_ptr<SelectStmt>* out);
  Status ParseInsert(std::unique_ptr<InsertStmt>* out);
  Status ParseUpdate(std::unique_ptr<UpdateStmt>* out);
  Status ParseDelete(std::unique_ptr<DeleteStmt>* out);
  Status ParseMerge(std::unique_ptr<MergeStmt>* out);
  Status ParseCreate(std::unique_ptr<Statement>* out);
  Status ParseFromItem(FromItem* out);
  Status ParseOrderItems(std::vector<std::unique_ptr<OrderItem>>* out);
  Status ParseIdentifierList(std::vector<std::string>* out);
  Status ParseSetItems(std::vector<SetItem>* out);

  // Expression precedence climbing: Or > And > Not > comparison > additive >
  // multiplicative > unary > primary.
  Status ParseExpr(ExprPtr* out);
  Status ParseOr(ExprPtr* out);
  Status ParseAnd(ExprPtr* out);
  Status ParseNot(ExprPtr* out);
  Status ParseComparison(ExprPtr* out);
  Status ParseAdditive(ExprPtr* out);
  Status ParseMultiplicative(ExprPtr* out);
  Status ParseUnary(ExprPtr* out);
  Status ParsePrimary(ExprPtr* out);
  Status ParseFunctionCall(const std::string& upper_name, ExprPtr* out);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace relgraph::sql
