#include "src/sql/planner.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <utility>

#include "src/exec/agg_executors.h"
#include "src/exec/dml_executors.h"
#include "src/exec/join_executors.h"
#include "src/exec/scan_executors.h"
#include "src/exec/sort_executor.h"
#include "src/exec/window_executor.h"

namespace relgraph::sql {

namespace {

bool CiEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Unqualified part of a (possibly alias-prefixed) schema column name.
std::string Suffix(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

void FlattenAnd(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    FlattenAnd(e->left.get(), out);
    FlattenAnd(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

bool IsAggregateName(const std::string& f) {
  return f == "MIN" || f == "MAX" || f == "SUM" || f == "COUNT";
}

/// True when `e` reads a column of the current row (a scalar subquery does
/// not: the engine has no correlated subqueries, so it evaluates to a
/// row-independent constant).
bool ReadsRowColumns(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return true;
    case ExprKind::kUnary:
      return ReadsRowColumns(*e.left);
    case ExprKind::kBinary:
      return ReadsRowColumns(*e.left) || ReadsRowColumns(*e.right);
    case ExprKind::kFuncCall:
      for (const auto& a : e.args) {
        if (a != nullptr && ReadsRowColumns(*a)) return true;
      }
      return false;
    default:
      return false;
  }
}

/// Comparisons an index probe can serve (everything but <>).
bool IsSargableCmpOp(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kLe || op == BinaryOp::kLt ||
         op == BinaryOp::kGe || op == BinaryOp::kGt;
}

/// A conjunct shaped `col OP expr` / `expr OP col` with exactly one
/// column-reference side — the candidate shape for sargable extraction.
bool IsSargShaped(const Expr& e) {
  return e.kind == ExprKind::kBinary && IsSargableCmpOp(e.binary_op) &&
         (e.left->kind == ExprKind::kColumnRef) !=
             (e.right->kind == ExprKind::kColumnRef);
}

/// The runtime comparison for a sargable AST operator.
CompareOp ToCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLe: return CompareOp::kLe;
    case BinaryOp::kLt: return CompareOp::kLt;
    case BinaryOp::kGe: return CompareOp::kGe;
    case BinaryOp::kGt: return CompareOp::kGt;
    default: return CompareOp::kEq;
  }
}

/// Normalizes `k OP col` onto `col OP' k` by flipping the inequality.
CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;  // = / <> are symmetric
  }
}

/// True when the expression's value depends on execution-time bindings —
/// a `:param` or a scalar subquery anywhere in the tree. Such values
/// cannot fold at compile time; index bounds over them are evaluated at
/// open instead.
bool HasRuntimeSlots(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kParameter:
    case ExprKind::kSubquery:
      return true;
    case ExprKind::kUnary:
      return HasRuntimeSlots(*e.left);
    case ExprKind::kBinary:
      return HasRuntimeSlots(*e.left) || HasRuntimeSlots(*e.right);
    case ExprKind::kFuncCall:
      for (const auto& a : e.args) {
        if (a != nullptr && HasRuntimeSlots(*a)) return true;
      }
      return false;
    default:
      return false;
  }
}

/// True when the expression contains a plain (non-window) aggregate call.
bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall && e.window == nullptr &&
      IsAggregateName(e.func_name)) {
    return true;
  }
  if (e.left != nullptr && ContainsAggregate(*e.left)) return true;
  if (e.right != nullptr && ContainsAggregate(*e.right)) return true;
  for (const auto& a : e.args) {
    if (ContainsAggregate(*a)) return true;
  }
  return false;
}

const Expr* FindWindowCall(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall && e.window != nullptr) return &e;
  if (e.left != nullptr) {
    if (const Expr* w = FindWindowCall(*e.left)) return w;
  }
  if (e.right != nullptr) {
    if (const Expr* w = FindWindowCall(*e.right)) return w;
  }
  for (const auto& a : e.args) {
    if (const Expr* w = FindWindowCall(*a)) return w;
  }
  return nullptr;
}

/// True when every column the expression touches resolves in `schema` (and
/// the expression is safe to evaluate early: no subqueries). Used to decide
/// whether a WHERE conjunct can be pushed below a join.
bool AllRefsResolveIn(const Expr& e, const Schema& schema,
                      const std::string& alias) {
  switch (e.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return true;
    case ExprKind::kSubquery:
      return false;  // conservatively keep subqueries above the join
    case ExprKind::kColumnRef: {
      if (!e.qualifier.empty() && !CiEquals(e.qualifier, alias)) return false;
      std::string full =
          e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
      for (const auto& c : schema.columns()) {
        if (CiEquals(c.name, full) || CiEquals(Suffix(c.name), e.column)) {
          return true;
        }
      }
      return false;
    }
    case ExprKind::kUnary:
      return AllRefsResolveIn(*e.left, schema, alias);
    case ExprKind::kBinary:
      return AllRefsResolveIn(*e.left, schema, alias) &&
             AllRefsResolveIn(*e.right, schema, alias);
    case ExprKind::kFuncCall:
      if (e.window != nullptr || IsAggregateName(e.func_name)) return false;
      for (const auto& a : e.args) {
        if (!AllRefsResolveIn(*a, schema, alias)) return false;
      }
      return true;
  }
  return false;
}

/// Best-effort output type for a projected expression (column types are
/// advisory in this engine; values carry their own type at runtime).
TypeId InferType(const Expr& e, const Schema& schema) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.IsNull() ? TypeId::kInt : e.literal.type();
    case ExprKind::kColumnRef: {
      // Exact, then unqualified-suffix match; fall back to INT.
      std::string full =
          e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
      for (const auto& c : schema.columns()) {
        if (CiEquals(c.name, full)) return c.type;
      }
      for (const auto& c : schema.columns()) {
        if (CiEquals(Suffix(c.name), e.column)) return c.type;
      }
      return TypeId::kInt;
    }
    case ExprKind::kParameter:
      return TypeId::kInt;
    case ExprKind::kUnary:
      return e.unary_op == UnaryOp::kNeg ? InferType(*e.left, schema)
                                         : TypeId::kInt;
    case ExprKind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          TypeId l = InferType(*e.left, schema);
          TypeId r = InferType(*e.right, schema);
          return (l == TypeId::kDouble || r == TypeId::kDouble)
                     ? TypeId::kDouble
                     : TypeId::kInt;
        }
        default:
          return TypeId::kInt;  // comparisons and logic yield 0/1
      }
    case ExprKind::kFuncCall:
      if (e.func_name == "COUNT" || e.func_name == "ROW_NUMBER" ||
          e.func_name == "IS_NULL" || e.func_name == "IS_NOT_NULL") {
        return TypeId::kInt;
      }
      if (!e.args.empty()) return InferType(*e.args[0], schema);
      return TypeId::kInt;
    case ExprKind::kSubquery:
      return TypeId::kInt;
  }
  return TypeId::kInt;
}

/// Output column name for a select item: alias first, then the bare column
/// name for plain references, then a positional fallback.
std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr) {
    if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
    if (item.expr->kind == ExprKind::kFuncCall) {
      std::string lower = item.expr->func_name;
      for (char& c : lower) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return lower;
    }
  }
  return "col" + std::to_string(index + 1);
}

Status CoerceValue(const Value& v, TypeId target, Value* out) {
  if (v.IsNull()) {
    *out = Value::Null();
    return Status::OK();
  }
  if (v.type() == target) {
    *out = v;
    return Status::OK();
  }
  if (v.type() == TypeId::kInt && target == TypeId::kDouble) {
    *out = Value(static_cast<double>(v.AsInt()));
    return Status::OK();
  }
  return Status::InvalidArgument(std::string("cannot store ") +
                                 TypeName(v.type()) + " into " +
                                 TypeName(target) + " column");
}

}  // namespace

// ----- entry -----------------------------------------------------------------

Status Planner::Compile(const Statement& stmt, PreparedPlan* out) {
  out->kind = stmt.kind;
  out->ctx = std::make_unique<BindContext>();
  plan_ = out;
  Status s;
  switch (stmt.kind) {
    case StmtKind::kSelect:
      s = PlanSelect(*stmt.select, &out->root);
      break;
    case StmtKind::kInsert:
      s = CompileInsert(*stmt.insert);
      break;
    case StmtKind::kUpdate:
      s = CompileUpdate(*stmt.update);
      break;
    case StmtKind::kDelete:
      s = CompileDelete(*stmt.del);
      break;
    case StmtKind::kMerge:
      s = CompileMerge(*stmt.merge);
      break;
    case StmtKind::kCreateTable:
    case StmtKind::kCreateIndex:
    case StmtKind::kDropTable:
    case StmtKind::kDropIndex:
    case StmtKind::kTruncate:
      // DDL keeps no plan; ExecutePreparedPlan re-runs it from the AST
      // (name resolution happens at execution, matching ad-hoc DDL).
      s = Status::OK();
      break;
  }
  plan_ = nullptr;
  return s;
}

Status Planner::ExecuteDdl(const Statement& stmt) {
  switch (stmt.kind) {
    case StmtKind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case StmtKind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
    case StmtKind::kDropTable:
      // Catalog::DropTable bumps the version itself.
      return db_->catalog()->DropTable(stmt.drop_table->table);
    case StmtKind::kDropIndex:
      return ExecuteDropIndex(*stmt.drop_index);
    case StmtKind::kTruncate: {
      // Data-only: rows vanish but the schema (and thus every compiled
      // plan) stays valid — no version bump.
      Table* t = nullptr;
      RELGRAPH_RETURN_IF_ERROR(FindTable(stmt.truncate->table, &t));
      return t->Truncate();
    }
    default:
      return Status::Internal("ExecuteDdl called on a non-DDL statement");
  }
}

Status Planner::FindTable(const std::string& name, Table** out) const {
  Table* t = db_->catalog()->GetTable(name);
  if (t == nullptr) {
    for (const std::string& n : db_->catalog()->TableNames()) {
      if (CiEquals(n, name)) {
        t = db_->catalog()->GetTable(n);
        break;
      }
    }
  }
  if (t == nullptr) return Status::NotFound("no table named " + name);
  *out = t;
  return Status::OK();
}

// ----- sargable-conjunct extraction ------------------------------------------

Status Planner::BindSargShaped(const Expr& c, const Schema& bind_schema,
                               Table* table, const Schema& resolve_schema,
                               bool use_qualifier, SargCandidate* best,
                               ExprRef* bound) {
  const bool col_on_left = c.left->kind == ExprKind::kColumnRef;
  const Expr& col_side = col_on_left ? *c.left : *c.right;
  const Expr& const_side = col_on_left ? *c.right : *c.left;
  ExprRef l, r;
  RELGRAPH_RETURN_IF_ERROR(BindExpr(*c.left, bind_schema, &l));
  RELGRAPH_RETURN_IF_ERROR(BindExpr(*c.right, bind_schema, &r));
  const bool is_eq = c.binary_op == BinaryOp::kEq;
  if (table != nullptr && (!best->active || (is_eq && !best->equality)) &&
      !ReadsRowColumns(const_side)) {
    std::string resolved;
    Status found =
        ResolveColumn(use_qualifier ? col_side.qualifier : std::string(),
                      col_side.column, resolve_schema, &resolved);
    if (found.ok() && table->HasIndexOn(resolved)) {
      CompareOp op = ToCompareOp(c.binary_op);
      if (!col_on_left) op = FlipCompare(op);
      const ExprRef& const_bound = col_on_left ? r : l;
      if (HasRuntimeSlots(const_side)) {
        // The key depends on `:params` / scalar-subquery slots: keep the
        // normalized comparison and the key expression; the executor
        // computes the bounds at open with the execution's bindings.
        best->active = true;
        best->equality = is_eq;
        best->column = resolved;
        best->is_static = false;
        best->op = op;
        best->key = const_bound;
      } else {
        // Plan-time constant: the bound side folded to a literal during
        // binding, so this Evaluate is free and the range is fixed.
        Value v = const_bound->Evaluate(Tuple(std::vector<Value>{}),
                                        Schema(std::vector<Column>{}));
        int64_t lo, hi;
        if (v.type() == TypeId::kInt && KeyRangeFor(op, v.AsInt(), &lo, &hi)) {
          best->active = true;
          best->equality = is_eq;
          best->column = resolved;
          best->is_static = true;
          best->lo = lo;
          best->hi = hi;
          best->key = nullptr;
        }
      }
    }
  }
  *bound = Cmp(ToCompareOp(c.binary_op), std::move(l), std::move(r));
  return Status::OK();
}

// ----- name resolution and expression binding --------------------------------

Status Planner::ResolveColumn(const std::string& qualifier,
                              const std::string& column, const Schema& schema,
                              std::string* resolved) const {
  std::string full = qualifier.empty() ? column : qualifier + "." + column;
  for (const auto& c : schema.columns()) {
    if (CiEquals(c.name, full)) {
      *resolved = c.name;
      return Status::OK();
    }
  }
  if (!qualifier.empty()) {
    // `Table.col` against a plain (unprefixed) schema.
    for (const auto& c : schema.columns()) {
      if (CiEquals(c.name, column)) {
        *resolved = c.name;
        return Status::OK();
      }
    }
    return Status::NotFound("unknown column " + full);
  }
  // Unqualified: unique suffix match across prefixed names.
  const std::string* match = nullptr;
  for (const auto& c : schema.columns()) {
    if (CiEquals(Suffix(c.name), column)) {
      if (match != nullptr && !CiEquals(*match, c.name)) {
        return Status::InvalidArgument("ambiguous column " + column);
      }
      match = &c.name;
    }
  }
  if (match == nullptr) return Status::NotFound("unknown column " + column);
  *resolved = *match;
  return Status::OK();
}

Status Planner::BindExpr(const Expr& e, const Schema& schema, ExprRef* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      *out = Lit(e.literal);
      return Status::OK();
    case ExprKind::kColumnRef: {
      std::string resolved;
      RELGRAPH_RETURN_IF_ERROR(
          ResolveColumn(e.qualifier, e.column, schema, &resolved));
      *out = Col(std::move(resolved));
      return Status::OK();
    }
    case ExprKind::kParameter: {
      // Parse-once / bind-many: the parameter compiles to a slot read —
      // never a folded literal — so the plan re-executes with fresh
      // values without re-planning.
      size_t slot = plan_->ctx->AddNamedSlot(e.param_name);
      *out = Param(plan_->ctx.get(), slot, e.param_name);
      return Status::OK();
    }
    case ExprKind::kUnary: {
      ExprRef inner;
      RELGRAPH_RETURN_IF_ERROR(BindExpr(*e.left, schema, &inner));
      if (e.unary_op == UnaryOp::kNot) {
        *out = Not(std::move(inner));
      } else {
        *out = Sub(Lit(int64_t{0}), std::move(inner));
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      ExprRef l, r;
      RELGRAPH_RETURN_IF_ERROR(BindExpr(*e.left, schema, &l));
      RELGRAPH_RETURN_IF_ERROR(BindExpr(*e.right, schema, &r));
      switch (e.binary_op) {
        case BinaryOp::kAdd: *out = Add(std::move(l), std::move(r)); break;
        case BinaryOp::kSub: *out = Sub(std::move(l), std::move(r)); break;
        case BinaryOp::kMul: *out = Mul(std::move(l), std::move(r)); break;
        case BinaryOp::kDiv: *out = Div(std::move(l), std::move(r)); break;
        case BinaryOp::kEq:
          *out = Cmp(CompareOp::kEq, std::move(l), std::move(r));
          break;
        case BinaryOp::kNe:
          *out = Cmp(CompareOp::kNe, std::move(l), std::move(r));
          break;
        case BinaryOp::kLt:
          *out = Cmp(CompareOp::kLt, std::move(l), std::move(r));
          break;
        case BinaryOp::kLe:
          *out = Cmp(CompareOp::kLe, std::move(l), std::move(r));
          break;
        case BinaryOp::kGt:
          *out = Cmp(CompareOp::kGt, std::move(l), std::move(r));
          break;
        case BinaryOp::kGe:
          *out = Cmp(CompareOp::kGe, std::move(l), std::move(r));
          break;
        case BinaryOp::kAnd: *out = And(std::move(l), std::move(r)); break;
        case BinaryOp::kOr: *out = Or(std::move(l), std::move(r)); break;
      }
      return Status::OK();
    }
    case ExprKind::kFuncCall: {
      if (e.func_name == "IS_NULL" || e.func_name == "IS_NOT_NULL") {
        ExprRef inner;
        RELGRAPH_RETURN_IF_ERROR(BindExpr(*e.args[0], schema, &inner));
        *out = IsNull(std::move(inner), e.func_name == "IS_NOT_NULL");
        return Status::OK();
      }
      if (e.window != nullptr) {
        return Status::NotSupported(
            "window function allowed only as a top-level select item");
      }
      return Status::NotSupported(
          "aggregate " + e.func_name +
          " not allowed here (only in the select list of an aggregate query)");
    }
    case ExprKind::kSubquery: {
      // The subquery compiles to its own pipeline, evaluated into an
      // anonymous slot at *bind* time — once per execution, right before
      // the main plan opens. This keeps the paper's
      // `d2s = (select min(d2s) ...)` fresh across re-executions of a
      // prepared statement (the old planner folded it into the plan,
      // which is why no plan could outlive one execution).
      ExecRef sub;
      RELGRAPH_RETURN_IF_ERROR(PlanSelect(*e.subquery, &sub));
      if (sub->OutputSchema().NumColumns() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must produce one column");
      }
      size_t slot = plan_->ctx->AddAnonymousSlot();
      plan_->subqueries.push_back({slot, std::move(sub)});
      *out = BoundSlot(plan_->ctx.get(), slot);
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

// ----- FROM ------------------------------------------------------------------

Status Planner::PlanFromItem(const FromItem& item, FromPlan* out) {
  if (item.kind == FromKind::kTable) {
    RELGRAPH_RETURN_IF_ERROR(FindTable(item.table_name, &out->base_table));
    out->alias = item.alias.empty() ? item.table_name : item.alias;
    if (!item.column_aliases.empty()) {
      return Status::NotSupported("column alias list on a base table");
    }
    out->prefixed_schema =
        PrefixSchema(out->base_table->schema(), out->alias + ".");
    return Status::OK();
  }
  // Derived table.
  ExecRef sub;
  RELGRAPH_RETURN_IF_ERROR(PlanSelect(*item.subquery, &sub));
  Schema sub_schema = sub->OutputSchema();
  std::vector<std::string> names;
  if (!item.column_aliases.empty()) {
    if (item.column_aliases.size() != sub_schema.NumColumns()) {
      return Status::InvalidArgument(
          "derived table column list arity mismatch: " + item.alias);
    }
    names = item.column_aliases;
  } else {
    names.reserve(sub_schema.NumColumns());
    for (const auto& c : sub_schema.columns()) names.push_back(Suffix(c.name));
  }
  for (auto& n : names) n = item.alias + "." + n;
  out->alias = item.alias;
  out->plan = std::make_unique<RenameExecutor>(std::move(sub), names);
  out->prefixed_schema = out->plan->OutputSchema();
  return Status::OK();
}

Status Planner::PlanFrom(const SelectStmt& sel, ExecRef* out) {
  std::vector<FromPlan> items;
  items.reserve(sel.from.size());
  for (const auto& fi : sel.from) {
    FromPlan fp;
    RELGRAPH_RETURN_IF_ERROR(PlanFromItem(fi, &fp));
    items.push_back(std::move(fp));
  }

  std::vector<const Expr*> conjuncts;
  FlattenAnd(sel.where.get(), &conjuncts);
  std::vector<bool> used(conjuncts.size(), false);

  // Predicate pushdown: a conjunct whose columns all come from one from-item
  // filters that item before it joins (inner joins only, which is all this
  // dialect has). This is what makes `q.nid = :mid and q.f = 2` in the
  // E-operator statements scan a one-row frontier instead of all of
  // TVisited — the plan the paper credits the RDBMS optimizer with.
  std::vector<std::vector<size_t>> pushed(items.size());
  for (size_t c = 0; c < conjuncts.size(); c++) {
    for (size_t i = 0; i < items.size(); i++) {
      if (AllRefsResolveIn(*conjuncts[c], items[i].prefixed_schema,
                           items[i].alias)) {
        pushed[i].push_back(c);
        used[c] = true;
        break;
      }
    }
  }

  // Materialize a from-item as an executor with alias-prefixed columns and
  // its pushed filters applied. For base tables, a pushed `col OP const`
  // conjunct (OP in {=, <=, <, >=, >}) over an indexed column turns the
  // heap scan into an index range scan — the access path the F/E-operator
  // SELECTs (`... where f = 2`, `... and d2s = (select min(d2s) ...)`) get
  // from a real RDBMS optimizer, and the same one the native finder's
  // FrontierScan/FirstOpenAt build by hand. The conjunct still filters
  // residually, so the plans stay exactly equivalent; with equal index
  // keys the scan order also matches the filtered full scan (index ties
  // break on scan position), keeping TOP-1 picks identical.
  auto materialize = [&](size_t idx, ExecRef* result) -> Status {
    FromPlan& fp = items[idx];
    const Schema& schema = fp.prefixed_schema;
    std::vector<ExprRef> filters;
    SargCandidate sarg;
    for (size_t c : pushed[idx]) {
      const Expr* cj = conjuncts[c];
      ExprRef bound;
      if (fp.base_table != nullptr && IsSargShaped(*cj)) {
        RELGRAPH_RETURN_IF_ERROR(
            BindSargShaped(*cj, schema, fp.base_table, fp.base_table->schema(),
                           /*use_qualifier=*/false, &sarg, &bound));
      } else {
        RELGRAPH_RETURN_IF_ERROR(BindExpr(*cj, schema, &bound));
      }
      filters.push_back(std::move(bound));
    }

    ExecRef e;
    if (fp.plan != nullptr) {
      e = std::move(fp.plan);
    } else {
      ExecRef scan;
      if (sarg.active && sarg.is_static) {
        scan = std::make_unique<IndexRangeScanExecutor>(
            fp.base_table, sarg.column, sarg.lo, sarg.hi);
      } else if (sarg.active) {
        // Runtime-bounded probe: the key is a `:param` / subquery slot;
        // bounds re-compute at every open of the prepared plan.
        scan = std::make_unique<IndexRangeScanExecutor>(
            fp.base_table, sarg.column, sarg.op, sarg.key);
      } else {
        scan = std::make_unique<SeqScanExecutor>(fp.base_table);
      }
      std::vector<std::string> names;
      for (const auto& c : fp.prefixed_schema.columns()) {
        names.push_back(c.name);
      }
      e = std::make_unique<RenameExecutor>(std::move(scan), names);
    }
    for (ExprRef& f : filters) {
      e = std::make_unique<FilterExecutor>(std::move(e), std::move(f));
    }
    *result = std::move(e);
    return Status::OK();
  };

  ExecRef acc;
  RELGRAPH_RETURN_IF_ERROR(materialize(0, &acc));
  for (size_t i = 1; i < items.size(); i++) {
    FromPlan& next = items[i];
    // Index nested-loop opportunity: an unused equality conjunct that links
    // a column of the accumulated plan to an indexed column of `next`.
    bool planned = false;
    if (next.base_table != nullptr) {
      for (size_t c = 0; c < conjuncts.size() && !planned; c++) {
        if (used[c]) continue;
        const Expr* e = conjuncts[c];
        if (e->kind != ExprKind::kBinary || e->binary_op != BinaryOp::kEq) {
          continue;
        }
        if (e->left->kind != ExprKind::kColumnRef ||
            e->right->kind != ExprKind::kColumnRef) {
          continue;
        }
        for (int swap = 0; swap < 2 && !planned; swap++) {
          const Expr& outer_ref = swap == 0 ? *e->left : *e->right;
          const Expr& inner_ref = swap == 0 ? *e->right : *e->left;
          // Inner side must name a column of `next`'s base table.
          if (!inner_ref.qualifier.empty() &&
              !CiEquals(inner_ref.qualifier, next.alias)) {
            continue;
          }
          std::string inner_col;
          if (!ResolveColumn("", inner_ref.column, next.base_table->schema(),
                             &inner_col)
                   .ok()) {
            continue;
          }
          if (!next.base_table->HasIndexOn(inner_col)) continue;
          // Outer side must resolve in the accumulated schema.
          std::string outer_col;
          if (!ResolveColumn(outer_ref.qualifier, outer_ref.column,
                             acc->OutputSchema(), &outer_col)
                   .ok()) {
            continue;
          }
          std::vector<std::string> names;
          for (const auto& col : acc->OutputSchema().columns()) {
            names.push_back(col.name);
          }
          for (const auto& col : next.prefixed_schema.columns()) {
            names.push_back(col.name);
          }
          ExecRef join = std::make_unique<IndexNestedLoopJoinExecutor>(
              std::move(acc), next.base_table, inner_col, Col(outer_col));
          acc = std::make_unique<RenameExecutor>(std::move(join), names);
          // Filters pushed onto the inner table apply right after the probe
          // (the renamed schema has the prefixed inner columns).
          for (size_t pc : pushed[i]) {
            ExprRef bound;
            RELGRAPH_RETURN_IF_ERROR(
                BindExpr(*conjuncts[pc], acc->OutputSchema(), &bound));
            acc = std::make_unique<FilterExecutor>(std::move(acc),
                                                   std::move(bound));
          }
          used[c] = true;
          planned = true;
        }
      }
    }
    if (!planned) {
      ExecRef rhs;
      RELGRAPH_RETURN_IF_ERROR(materialize(i, &rhs));
      acc = std::make_unique<NestedLoopJoinExecutor>(std::move(acc),
                                                     std::move(rhs), nullptr);
    }
  }

  // Residual predicate.
  ExprRef residual;
  for (size_t c = 0; c < conjuncts.size(); c++) {
    if (used[c]) continue;
    ExprRef bound;
    RELGRAPH_RETURN_IF_ERROR(
        BindExpr(*conjuncts[c], acc->OutputSchema(), &bound));
    residual = residual == nullptr ? std::move(bound)
                                   : And(std::move(residual), std::move(bound));
  }
  if (residual != nullptr) {
    acc = std::make_unique<FilterExecutor>(std::move(acc), std::move(residual));
  }
  *out = std::move(acc);
  return Status::OK();
}

// ----- SELECT ----------------------------------------------------------------

Status Planner::PlanSelect(const SelectStmt& sel, ExecRef* out) {
  ExecRef child;
  if (sel.from.empty()) {
    if (sel.where != nullptr) {
      return Status::NotSupported("WHERE without FROM");
    }
    std::vector<Tuple> one = {Tuple{}};
    child = std::make_unique<MaterializedExecutor>(std::move(one), Schema{});
  } else {
    RELGRAPH_RETURN_IF_ERROR(PlanFrom(sel, &child));
  }

  // ---- window function (at most one, as a top-level select item) ----
  int window_item = -1;
  std::string window_col;
  for (size_t i = 0; i < sel.items.size(); i++) {
    if (sel.items[i].expr == nullptr) continue;
    const Expr* w = FindWindowCall(*sel.items[i].expr);
    if (w == nullptr) continue;
    if (window_item >= 0) {
      return Status::NotSupported("multiple window functions in one SELECT");
    }
    if (w != sel.items[i].expr.get()) {
      return Status::NotSupported(
          "window function must be a bare select item");
    }
    if (w->func_name != "ROW_NUMBER" || !w->args.empty() || w->star_arg) {
      return Status::NotSupported("only ROW_NUMBER() OVER (...) is supported");
    }
    window_item = static_cast<int>(i);
    window_col = sel.items[i].alias.empty() ? "rownum" : sel.items[i].alias;

    std::vector<std::string> partition_cols;
    for (const auto& p : w->window->partition_by) {
      if (p->kind != ExprKind::kColumnRef) {
        return Status::NotSupported("PARTITION BY requires column references");
      }
      std::string resolved;
      RELGRAPH_RETURN_IF_ERROR(ResolveColumn(p->qualifier, p->column,
                                             child->OutputSchema(), &resolved));
      partition_cols.push_back(std::move(resolved));
    }
    std::vector<SortKey> order_keys;
    for (const auto& o : w->window->order_by) {
      SortKey key;
      RELGRAPH_RETURN_IF_ERROR(
          BindExpr(*o->expr, child->OutputSchema(), &key.expr));
      key.ascending = o->ascending;
      order_keys.push_back(std::move(key));
    }
    child = std::make_unique<WindowRowNumberExecutor>(
        std::move(child), std::move(partition_cols), std::move(order_keys),
        window_col);
  }

  const Schema& in_schema = child->OutputSchema();

  // ---- aggregate path ----
  bool has_aggregate = false;
  for (const auto& item : sel.items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      has_aggregate = true;
      break;
    }
  }

  std::vector<ExprRef> project_exprs;
  std::vector<Column> project_cols;

  if (has_aggregate) {
    std::vector<std::string> group_cols;
    for (const auto& g : sel.group_by) {
      if (g->kind != ExprKind::kColumnRef) {
        return Status::NotSupported("GROUP BY requires column references");
      }
      std::string resolved;
      RELGRAPH_RETURN_IF_ERROR(
          ResolveColumn(g->qualifier, g->column, in_schema, &resolved));
      group_cols.push_back(std::move(resolved));
    }
    std::vector<AggSpec> specs;
    // Select items must be aggregate calls or grouped columns; record how
    // each item maps onto the aggregate output.
    struct ItemSlot { std::string column; TypeId type; };
    std::vector<ItemSlot> slots;
    for (size_t i = 0; i < sel.items.size(); i++) {
      const SelectItem& item = sel.items[i];
      if (item.expr == nullptr) {
        return Status::NotSupported("* in an aggregate query");
      }
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kFuncCall && IsAggregateName(e.func_name)) {
        AggSpec spec;
        if (e.func_name == "MIN") spec.op = AggOp::kMin;
        else if (e.func_name == "MAX") spec.op = AggOp::kMax;
        else if (e.func_name == "SUM") spec.op = AggOp::kSum;
        else spec.op = AggOp::kCount;
        if (!e.star_arg) {
          if (e.args.size() != 1) {
            return Status::InvalidArgument(e.func_name +
                                           " takes exactly one argument");
          }
          RELGRAPH_RETURN_IF_ERROR(
              BindExpr(*e.args[0], in_schema, &spec.expr));
        } else if (spec.op != AggOp::kCount) {
          return Status::InvalidArgument(e.func_name + "(*) is not valid");
        }
        spec.name = "agg" + std::to_string(specs.size() + 1);
        slots.push_back({spec.name, spec.op == AggOp::kCount
                                        ? TypeId::kInt
                                        : InferType(e, in_schema)});
        specs.push_back(std::move(spec));
      } else if (e.kind == ExprKind::kColumnRef) {
        std::string resolved;
        RELGRAPH_RETURN_IF_ERROR(
            ResolveColumn(e.qualifier, e.column, in_schema, &resolved));
        if (std::find(group_cols.begin(), group_cols.end(), resolved) ==
            group_cols.end()) {
          return Status::InvalidArgument("column " + resolved +
                                         " is not in GROUP BY");
        }
        slots.push_back({resolved, InferType(e, in_schema)});
      } else {
        return Status::NotSupported(
            "aggregate select items must be aggregates or grouped columns");
      }
    }
    child = std::make_unique<HashAggregateExecutor>(
        std::move(child), std::move(group_cols), std::move(specs));
    for (size_t i = 0; i < sel.items.size(); i++) {
      project_exprs.push_back(Col(slots[i].column));
      project_cols.push_back({ItemName(sel.items[i], i), slots[i].type});
    }
  } else {
    if (!sel.group_by.empty()) {
      return Status::NotSupported("GROUP BY without aggregates");
    }
    for (size_t i = 0; i < sel.items.size(); i++) {
      const SelectItem& item = sel.items[i];
      if (item.expr == nullptr) {  // bare *: expand every input column
        for (const auto& c : in_schema.columns()) {
          project_exprs.push_back(Col(c.name));
          project_cols.push_back({c.name, c.type});
        }
        continue;
      }
      if (static_cast<int>(i) == window_item) {
        project_exprs.push_back(Col(window_col));
        project_cols.push_back({window_col, TypeId::kInt});
        continue;
      }
      ExprRef bound;
      RELGRAPH_RETURN_IF_ERROR(BindExpr(*item.expr, in_schema, &bound));
      project_exprs.push_back(std::move(bound));
      project_cols.push_back(
          {ItemName(item, i), InferType(*item.expr, in_schema)});
    }
  }

  Schema project_schema{project_cols};

  // ---- ORDER BY: prefer sorting on the projected output; fall back to the
  // pre-projection schema when the key only exists there. ----
  std::vector<SortKey> outer_keys;
  bool sort_before_project = false;
  std::vector<SortKey> inner_keys;
  for (const auto& o : sel.order_by) {
    ExprRef bound;
    Status s = BindExpr(*o->expr, project_schema, &bound);
    if (s.ok()) {
      outer_keys.push_back({std::move(bound), o->ascending});
      continue;
    }
    RELGRAPH_RETURN_IF_ERROR(BindExpr(*o->expr, in_schema, &bound));
    sort_before_project = true;
    inner_keys.push_back({std::move(bound), o->ascending});
  }
  if (sort_before_project && !outer_keys.empty()) {
    return Status::NotSupported(
        "ORDER BY mixes projected and pre-projection columns");
  }

  if (sort_before_project) {
    child = std::make_unique<SortExecutor>(std::move(child),
                                           std::move(inner_keys));
  }
  child = std::make_unique<ProjectExecutor>(
      std::move(child), std::move(project_exprs), project_schema);
  if (!outer_keys.empty()) {
    child = std::make_unique<SortExecutor>(std::move(child),
                                           std::move(outer_keys));
  }

  if (sel.distinct) {
    // DISTINCT = group by every output column with no aggregates.
    std::vector<std::string> names;
    for (const auto& c : project_schema.columns()) {
      if (std::find(names.begin(), names.end(), c.name) != names.end()) {
        return Status::NotSupported("DISTINCT with duplicate output names");
      }
      names.push_back(c.name);
    }
    child = std::make_unique<HashAggregateExecutor>(
        std::move(child), std::move(names), std::vector<AggSpec>{});
  }

  int64_t limit = -1;
  if (sel.top.has_value()) limit = *sel.top;
  if (sel.limit.has_value()) {
    limit = limit < 0 ? *sel.limit : std::min(limit, *sel.limit);
  }
  if (limit >= 0) {
    child = std::make_unique<LimitExecutor>(std::move(child), limit);
  }

  *out = std::move(child);
  return Status::OK();
}

// ----- DML -------------------------------------------------------------------

Status Planner::CompileInsert(const InsertStmt& ins) {
  Table* table = nullptr;
  RELGRAPH_RETURN_IF_ERROR(FindTable(ins.table, &table));
  plan_->table = table;
  const Schema& schema = table->schema();

  // Map the statement's column list onto table positions (identity when
  // the list is absent).
  std::vector<size_t> positions;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); i++) positions.push_back(i);
  } else {
    for (const auto& name : ins.columns) {
      std::string resolved;
      RELGRAPH_RETURN_IF_ERROR(ResolveColumn("", name, schema, &resolved));
      positions.push_back(schema.IndexOf(resolved));
    }
  }

  if (ins.select != nullptr) {
    ExecRef src;
    RELGRAPH_RETURN_IF_ERROR(PlanSelect(*ins.select, &src));
    if (src->OutputSchema().NumColumns() != positions.size()) {
      return Status::InvalidArgument("INSERT ... SELECT arity mismatch");
    }
    // Rearrange the SELECT output into full-width table rows.
    std::vector<ExprRef> exprs(schema.NumColumns());
    for (size_t j = 0; j < positions.size(); j++) {
      exprs[positions[j]] = Col(src->OutputSchema().column(j).name);
    }
    for (size_t i = 0; i < exprs.size(); i++) {
      if (exprs[i] == nullptr) exprs[i] = NullLit();
    }
    plan_->root = std::make_unique<ProjectExecutor>(std::move(src),
                                                    std::move(exprs), schema);
    plan_->insert_from_select = true;
    return Status::OK();
  }

  // VALUES rows compile to full-width expression rows (missing columns
  // are NULL literals); evaluation and type coercion happen per
  // execution, where `:params` carry that execution's values.
  Schema empty;
  plan_->insert_rows.reserve(ins.rows.size());
  for (const auto& row : ins.rows) {
    if (row.size() != positions.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    std::vector<ExprRef> exprs(schema.NumColumns());
    for (size_t j = 0; j < row.size(); j++) {
      RELGRAPH_RETURN_IF_ERROR(
          BindExpr(*row[j], empty, &exprs[positions[j]]));
    }
    for (size_t i = 0; i < exprs.size(); i++) {
      if (exprs[i] == nullptr) exprs[i] = NullLit();
    }
    plan_->insert_rows.push_back(std::move(exprs));
  }
  return Status::OK();
}

namespace {

/// Flattens a WHERE clause into its top-level AND conjuncts.
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    CollectConjuncts(*e.left, out);
    CollectConjuncts(*e.right, out);
    return;
  }
  out->push_back(&e);
}

}  // namespace

Status Planner::CompileUpdate(const UpdateStmt& upd) {
  Table* table = nullptr;
  RELGRAPH_RETURN_IF_ERROR(FindTable(upd.table, &table));
  plan_->table = table;
  for (const auto& s : upd.sets) {
    SetClause clause;
    RELGRAPH_RETURN_IF_ERROR(
        ResolveColumn("", s.column, table->schema(), &clause.column));
    RELGRAPH_RETURN_IF_ERROR(BindExpr(*s.expr, table->schema(), &clause.expr));
    plan_->sets.push_back(std::move(clause));
  }
  if (upd.where == nullptr) return Status::OK();

  // Sargable-conjunct extraction: a top-level `col OP <row-independent
  // expr>` conjunct (OP in {=, <=, <, >=, >}) on an indexed column turns
  // the full-scan UPDATE into an index range probe — the plan the
  // F-operator statements (`... WHERE flag = 2`, `... AND dist = (SELECT
  // MIN(dist) ...)`, BSEG's `dist <= bound`) want once TVisited carries
  // flag/dist indexes. An equality conjunct beats a range conjunct (tighter
  // probe); the full predicate is still evaluated residually, so every
  // plan stays exactly equivalent to the full scan. Bounds over `:params`
  // or subquery slots stay symbolic and re-evaluate per execution.
  const Schema& schema = table->schema();
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*upd.where, &conjuncts);
  ExprRef where;
  SargCandidate sarg;
  for (const Expr* c : conjuncts) {
    ExprRef bound;
    if (IsSargShaped(*c)) {
      RELGRAPH_RETURN_IF_ERROR(BindSargShaped(*c, schema, table, schema,
                                              /*use_qualifier=*/true, &sarg,
                                              &bound));
    } else {
      RELGRAPH_RETURN_IF_ERROR(BindExpr(*c, schema, &bound));
    }
    where = where == nullptr ? std::move(bound)
                             : And(std::move(where), std::move(bound));
  }
  plan_->where = std::move(where);
  if (sarg.active) {
    plan_->sarg.active = true;
    plan_->sarg.column = sarg.column;
    plan_->sarg.is_static = sarg.is_static;
    plan_->sarg.lo = sarg.lo;
    plan_->sarg.hi = sarg.hi;
    plan_->sarg.op = sarg.op;
    plan_->sarg.key = sarg.key;
  }
  return Status::OK();
}

Status Planner::CompileDelete(const DeleteStmt& del) {
  Table* table = nullptr;
  RELGRAPH_RETURN_IF_ERROR(FindTable(del.table, &table));
  plan_->table = table;
  if (del.where != nullptr) {
    RELGRAPH_RETURN_IF_ERROR(
        BindExpr(*del.where, table->schema(), &plan_->where));
  }
  return Status::OK();
}

// ----- MERGE -----------------------------------------------------------------

Status Planner::CompileMerge(const MergeStmt& m) {
  Table* target = nullptr;
  RELGRAPH_RETURN_IF_ERROR(FindTable(m.target_table, &target));
  plan_->table = target;
  const Schema& target_schema = target->schema();

  // Plan the source with *plain* column names: MergeInto prefixes them
  // itself ("s.") for the matched branch.
  ExecRef source;
  Schema source_schema;
  if (m.source.kind == FromKind::kTable) {
    Table* src_table = nullptr;
    RELGRAPH_RETURN_IF_ERROR(FindTable(m.source.table_name, &src_table));
    source = std::make_unique<SeqScanExecutor>(src_table);
    source_schema = src_table->schema();
  } else {
    RELGRAPH_RETURN_IF_ERROR(PlanSelect(*m.source.subquery, &source));
    source_schema = source->OutputSchema();
  }
  if (!m.source.column_aliases.empty()) {
    if (m.source.column_aliases.size() != source_schema.NumColumns()) {
      return Status::InvalidArgument("MERGE source column list arity mismatch");
    }
    source = std::make_unique<RenameExecutor>(std::move(source),
                                              m.source.column_aliases);
    source_schema = source->OutputSchema();
  }

  const std::string& src_alias = m.source.alias;

  // ON clause: exactly `target.k = source.k` (either order).
  if (m.on == nullptr || m.on->kind != ExprKind::kBinary ||
      m.on->binary_op != BinaryOp::kEq ||
      m.on->left->kind != ExprKind::kColumnRef ||
      m.on->right->kind != ExprKind::kColumnRef) {
    return Status::NotSupported(
        "MERGE ON must be <target>.<col> = <source>.<col>");
  }
  MergeSpec spec;
  for (int swap = 0; swap < 2; swap++) {
    const Expr& t_ref = swap == 0 ? *m.on->left : *m.on->right;
    const Expr& s_ref = swap == 0 ? *m.on->right : *m.on->left;
    bool t_side = t_ref.qualifier.empty() ||
                  CiEquals(t_ref.qualifier, m.target_alias);
    bool s_side =
        s_ref.qualifier.empty() || CiEquals(s_ref.qualifier, src_alias);
    if (!t_side || !s_side) continue;
    std::string t_col, s_col;
    if (!ResolveColumn("", t_ref.column, target_schema, &t_col).ok()) continue;
    if (!ResolveColumn("", s_ref.column, source_schema, &s_col).ok()) continue;
    spec.target_key_column = t_col;
    spec.source_key_column = s_col;
    break;
  }
  if (spec.target_key_column.empty()) {
    return Status::InvalidArgument(
        "MERGE ON condition does not name a target and a source column");
  }

  if (m.matched_condition != nullptr) {
    RELGRAPH_RETURN_IF_ERROR(
        BindMergeExpr(*m.matched_condition, m.target_alias, target_schema,
                      src_alias, source_schema, &spec.matched_condition));
  }
  for (const auto& s : m.matched_sets) {
    SetClause clause;
    RELGRAPH_RETURN_IF_ERROR(
        ResolveColumn("", s.column, target_schema, &clause.column));
    RELGRAPH_RETURN_IF_ERROR(BindMergeExpr(*s.expr, m.target_alias,
                                           target_schema, src_alias,
                                           source_schema, &clause.expr));
    spec.matched_sets.push_back(std::move(clause));
  }

  if (m.has_not_matched_clause) {
    std::vector<size_t> positions;
    if (m.insert_columns.empty()) {
      if (m.insert_values.size() != target_schema.NumColumns()) {
        return Status::InvalidArgument("MERGE insert arity mismatch");
      }
      for (size_t i = 0; i < target_schema.NumColumns(); i++) {
        positions.push_back(i);
      }
    } else {
      if (m.insert_values.size() != m.insert_columns.size()) {
        return Status::InvalidArgument("MERGE insert arity mismatch");
      }
      for (const auto& name : m.insert_columns) {
        std::string resolved;
        RELGRAPH_RETURN_IF_ERROR(
            ResolveColumn("", name, target_schema, &resolved));
        positions.push_back(target_schema.IndexOf(resolved));
      }
    }
    spec.insert_values.assign(target_schema.NumColumns(), NullLit());
    for (size_t j = 0; j < positions.size(); j++) {
      ExprRef bound;
      // Insert values see the plain source row (SQL: only source columns are
      // in scope for the NOT MATCHED branch).
      RELGRAPH_RETURN_IF_ERROR(
          BindExpr(*m.insert_values[j], source_schema, &bound));
      spec.insert_values[positions[j]] = std::move(bound);
    }
  }

  plan_->root = std::move(source);
  plan_->merge_spec = std::move(spec);
  return Status::OK();
}

/// Rewrites a MERGE expression's column qualifiers (the statement's
/// aliases) onto MergeInto's combined "t." / "s." namespace.
Status Planner::BindMergeExpr(const Expr& e, const std::string& target_alias,
                              const Schema& target,
                              const std::string& source_alias,
                              const Schema& source, ExprRef* out) {
  // Column references get their alias rewritten onto "t."/"s."; everything
  // else recurses structurally. A rewritten copy of the AST would also work
  // but this avoids the clone.
  if (e.kind == ExprKind::kColumnRef) {
    auto resolve_in = [&](const Schema& s, std::string* res) {
      for (const auto& c : s.columns()) {
        if (CiEquals(c.name, e.column)) {
          *res = c.name;
          return true;
        }
      }
      return false;
    };
    std::string plain;
    if (!e.qualifier.empty()) {
      if (CiEquals(e.qualifier, target_alias) && resolve_in(target, &plain)) {
        *out = Col("t." + plain);
        return Status::OK();
      }
      if (CiEquals(e.qualifier, source_alias) && resolve_in(source, &plain)) {
        *out = Col("s." + plain);
        return Status::OK();
      }
      return Status::NotFound("unknown MERGE column " + e.qualifier + "." +
                              e.column);
    }
    bool in_t = resolve_in(target, &plain);
    std::string t_name = "t." + plain;
    bool in_s = resolve_in(source, &plain);
    if (in_t && in_s) {
      return Status::InvalidArgument("ambiguous MERGE column " + e.column);
    }
    if (in_t) {
      *out = Col(std::move(t_name));
      return Status::OK();
    }
    if (in_s) {
      *out = Col("s." + plain);
      return Status::OK();
    }
    return Status::NotFound("unknown MERGE column " + e.column);
  }

  auto recurse = [&](const Expr& sub, ExprRef* res) {
    return BindMergeExpr(sub, target_alias, target, source_alias, source, res);
  };
  switch (e.kind) {
    case ExprKind::kLiteral:
      *out = Lit(e.literal);
      return Status::OK();
    case ExprKind::kParameter: {
      size_t slot = plan_->ctx->AddNamedSlot(e.param_name);
      *out = Param(plan_->ctx.get(), slot, e.param_name);
      return Status::OK();
    }
    case ExprKind::kUnary: {
      ExprRef inner;
      RELGRAPH_RETURN_IF_ERROR(recurse(*e.left, &inner));
      *out = e.unary_op == UnaryOp::kNot
                 ? Not(std::move(inner))
                 : Sub(Lit(int64_t{0}), std::move(inner));
      return Status::OK();
    }
    case ExprKind::kBinary: {
      ExprRef l, r;
      RELGRAPH_RETURN_IF_ERROR(recurse(*e.left, &l));
      RELGRAPH_RETURN_IF_ERROR(recurse(*e.right, &r));
      switch (e.binary_op) {
        case BinaryOp::kAdd: *out = Add(std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kSub: *out = Sub(std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kMul: *out = Mul(std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kDiv: *out = Div(std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kEq: *out = Cmp(CompareOp::kEq, std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kNe: *out = Cmp(CompareOp::kNe, std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kLt: *out = Cmp(CompareOp::kLt, std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kLe: *out = Cmp(CompareOp::kLe, std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kGt: *out = Cmp(CompareOp::kGt, std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kGe: *out = Cmp(CompareOp::kGe, std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kAnd: *out = And(std::move(l), std::move(r)); return Status::OK();
        case BinaryOp::kOr: *out = Or(std::move(l), std::move(r)); return Status::OK();
      }
      return Status::Internal("unhandled binary op");
    }
    case ExprKind::kFuncCall:
      if (e.func_name == "IS_NULL" || e.func_name == "IS_NOT_NULL") {
        ExprRef inner;
        RELGRAPH_RETURN_IF_ERROR(recurse(*e.args[0], &inner));
        *out = IsNull(std::move(inner), e.func_name == "IS_NOT_NULL");
        return Status::OK();
      }
      return Status::NotSupported("function " + e.func_name + " inside MERGE");
    case ExprKind::kSubquery:
      return Status::NotSupported("subquery inside a MERGE action");
    default:
      return Status::Internal("unhandled expression kind in MERGE");
  }
}

// ----- DDL -------------------------------------------------------------------

Status Planner::ExecuteCreateTable(const CreateTableStmt& ct) {
  std::vector<Column> cols;
  for (const auto& c : ct.columns) cols.push_back({c.name, c.type});
  TableOptions options;
  if (!ct.cluster_by.empty()) {
    options.storage = TableStorage::kClustered;
    Schema s{cols};
    std::string resolved;
    RELGRAPH_RETURN_IF_ERROR(ResolveColumn("", ct.cluster_by, s, &resolved));
    options.cluster_key = resolved;
    options.cluster_unique = ct.cluster_unique;
  }
  Table* out = nullptr;
  return db_->catalog()->CreateTable(ct.table, Schema{std::move(cols)},
                                     options, &out);
}

Status Planner::ExecuteCreateIndex(const CreateIndexStmt& ci) {
  Table* table = nullptr;
  RELGRAPH_RETURN_IF_ERROR(FindTable(ci.table, &table));
  std::string resolved;
  RELGRAPH_RETURN_IF_ERROR(
      ResolveColumn("", ci.column, table->schema(), &resolved));
  // Catalog-owned DDL: the index lands and the catalog version bumps, so
  // cached plans get a chance to pick the new access path up.
  return db_->catalog()->CreateSecondaryIndex(table, resolved, ci.unique,
                                              ci.index_name);
}

Status Planner::ExecuteDropIndex(const DropIndexStmt& di) {
  Table* table = nullptr;
  RELGRAPH_RETURN_IF_ERROR(FindTable(di.table, &table));
  return db_->catalog()->DropSecondaryIndex(table, di.index_name);
}

// ----- bind + execute --------------------------------------------------------

Status BindPreparedPlan(PreparedPlan* plan, const SqlParams& params) {
  BindContext* ctx = plan->ctx.get();
  ctx->ClearBindings();
  RELGRAPH_RETURN_IF_ERROR(ctx->BindNamed(params));
  // Scalar subqueries evaluate in registration order (inner before outer),
  // against the database's *current* data — exactly what re-planning from
  // text would have computed, minus the parse and plan.
  for (auto& sq : plan->subqueries) {
    std::vector<Tuple> rows;
    RELGRAPH_RETURN_IF_ERROR(Collect(sq.plan.get(), &rows));
    if (rows.size() > 1) {
      return Status::InvalidArgument("scalar subquery produced " +
                                     std::to_string(rows.size()) + " rows");
    }
    ctx->Set(sq.slot, rows.empty() ? Value::Null() : rows[0].value(0));
  }
  return Status::OK();
}

Status ExecutePreparedPlan(Database* db, const Statement& ast,
                           PreparedPlan* plan, SqlResult* result) {
  *result = SqlResult{};
  switch (plan->kind) {
    case StmtKind::kSelect: {
      result->schema = plan->root->OutputSchema();
      RELGRAPH_RETURN_IF_ERROR(Collect(plan->root.get(), &result->rows));
      result->affected = static_cast<int64_t>(result->rows.size());
      return Status::OK();
    }
    case StmtKind::kInsert: {
      if (plan->insert_from_select) {
        return InsertFromExecutor(plan->table, plan->root.get(),
                                  &result->affected);
      }
      const Schema& schema = plan->table->schema();
      Schema empty;
      for (const auto& row : plan->insert_rows) {
        std::vector<Value> values(schema.NumColumns());
        for (size_t i = 0; i < row.size(); i++) {
          Value v = row[i]->Evaluate(Tuple{}, empty);
          RELGRAPH_RETURN_IF_ERROR(
              CoerceValue(v, schema.column(i).type, &values[i]));
        }
        RELGRAPH_RETURN_IF_ERROR(plan->table->Insert(Tuple(std::move(values))));
        result->affected++;
      }
      return Status::OK();
    }
    case StmtKind::kUpdate: {
      if (plan->sarg.active) {
        if (plan->sarg.is_static) {
          return UpdateWhereIndexed(plan->table, plan->sarg.column,
                                    plan->sarg.lo, plan->sarg.hi, plan->where,
                                    plan->sets, &result->affected);
        }
        return UpdateWhereIndexedDynamic(plan->table, plan->sarg.column,
                                         plan->sarg.op, plan->sarg.key,
                                         plan->where, plan->sets,
                                         &result->affected);
      }
      return UpdateWhere(plan->table, plan->where, plan->sets,
                         &result->affected);
    }
    case StmtKind::kDelete:
      return DeleteWhere(plan->table, plan->where, &result->affected);
    case StmtKind::kMerge:
      return MergeInto(plan->table, plan->root.get(), plan->merge_spec,
                       &result->affected);
    default: {
      Planner planner(db);
      return planner.ExecuteDdl(ast);
    }
  }
}

}  // namespace relgraph::sql
