#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/exec/bind_context.h"
#include "src/exec/dml_executors.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"
#include "src/sql/ast.h"

namespace relgraph::sql {

/// Named statement parameters (`:lb`, `:minCost`). The path-finding client
/// re-issues the same statement each iteration with fresh bindings,
/// exactly like a JDBC PreparedStatement — and since the planner compiles
/// parameters into BindContext slots, re-execution really is bind-only.
using SqlParams = std::map<std::string, relgraph::Value>;

/// Result of one statement: rows+schema for SELECT, affected-row count for
/// DML (the SQLCA reading the paper's Algorithm 1 polls), nothing for DDL.
struct SqlResult {
  int64_t affected = 0;
  relgraph::Schema schema;
  std::vector<relgraph::Tuple> rows;

  /// First column of the first row; NULL Value when the result is empty.
  relgraph::Value Scalar() const {
    if (rows.empty() || rows[0].NumValues() == 0) return relgraph::Value::Null();
    return rows[0].value(0);
  }
};

/// One compiled, parameterized physical statement — what Prepare()
/// produces and Execute(params) re-runs. Compilation folds parse-time
/// constants but keeps `:params` and scalar subqueries as BindContext
/// slot reads, so the plan outlives any single execution:
///
///   bind:    write parameter Values into `ctx`, run each entry of
///            `subqueries` and write its scalar into its slot;
///   execute: Init + drain `root` (SELECT) or run the stored DML
///            primitive — index-probe bounds that depend on slots are
///            re-evaluated at open (IndexRangeScanExecutor runtime
///            bounds, UpdateWhereIndexedDynamic).
///
/// DDL kinds compile to just their statement kind and re-execute from the
/// AST (there is no plan worth caching; DDL invalidates plans instead).
struct PreparedPlan {
  StmtKind kind = StmtKind::kSelect;

  /// Runtime slots the plan's Param()/BoundSlot() expressions read.
  /// Behind a unique_ptr: expressions capture the context's address.
  std::unique_ptr<relgraph::BindContext> ctx;

  /// Scalar-subquery plans, evaluated into their slots at bind time in
  /// registration order (inner subqueries register before the outer
  /// expressions that contain them, so dependencies are always ready).
  struct SubqueryPlan {
    size_t slot;
    relgraph::ExecRef plan;
  };
  std::vector<SubqueryPlan> subqueries;

  /// SELECT pipeline; also the shaped INSERT..SELECT source and the
  /// MERGE source.
  relgraph::ExecRef root;

  relgraph::Table* table = nullptr;  // DML target

  // INSERT ... VALUES: one full-table-width expression row per tuple
  // (missing columns filled with NULL literals); evaluated and coerced
  // per execution.
  std::vector<std::vector<relgraph::ExprRef>> insert_rows;
  bool insert_from_select = false;

  // UPDATE / DELETE.
  std::vector<relgraph::SetClause> sets;
  relgraph::ExprRef where;

  /// Sargable UPDATE probe: static bounds when the conjunct was a
  /// plan-time constant, a runtime key expression otherwise.
  struct Sarg {
    bool active = false;
    std::string column;
    bool is_static = false;
    int64_t lo = 0, hi = 0;                              // static bounds
    relgraph::CompareOp op = relgraph::CompareOp::kEq;   // runtime bounds
    relgraph::ExprRef key;
  } sarg;

  relgraph::MergeSpec merge_spec;  // MERGE (root is the source)
};

/// Binds one execution's values: named parameters from `params` (every
/// registered name must be present), then the scalar subqueries in
/// registration order.
Status BindPreparedPlan(PreparedPlan* plan, const SqlParams& params);

/// Runs a bound plan, materializing SELECT output into `result`. DDL
/// kinds re-execute from `ast` through Planner::ExecuteDdl.
Status ExecutePreparedPlan(Database* db, const Statement& ast,
                           PreparedPlan* plan, SqlResult* result);

/// Translates one parsed Statement into a PreparedPlan: executor
/// pipelines for SELECT, the DML primitives (InsertFromExecutor /
/// UpdateWhere / DeleteWhere / MergeInto) for writes, catalog calls for
/// DDL.
///
/// Scope rules (deliberately the subset the paper's listings exercise):
///  - FROM lists join left-to-right; an equality conjunct in WHERE that links
///    the accumulated plan to an indexed column of the next base table turns
///    that step into an index nested-loop join (the plan the paper's RDBMS
///    optimizer picks for the E-operator).
///  - Scalar subqueries (uncorrelated only) compile to their own plans,
///    evaluated at bind time — the paper's
///    `d2s = (select min(d2s) from TVisited where f = 0)` re-evaluates on
///    every execution of the prepared statement.
///  - Window: one ROW_NUMBER() OVER (...) per SELECT.
///  - Aggregate queries: every select item is an aggregate call or a
///    GROUP BY column.
class Planner {
 public:
  explicit Planner(Database* db) : db_(db) {}

  /// Compiles `stmt` into `out` (whose BindContext the compiled
  /// expressions reference — `out` must not be re-seated afterwards).
  Status Compile(const Statement& stmt, PreparedPlan* out);

  /// Executes a DDL / TRUNCATE statement from its AST, bumping the
  /// catalog version for schema-changing kinds so cached plans re-plan.
  Status ExecuteDdl(const Statement& stmt);

 private:
  struct FromPlan {
    ExecRef plan;            // null for base tables until materialized
    Table* base_table = nullptr;
    std::string alias;       // effective alias (explicit or table name)
    Schema prefixed_schema;  // alias-qualified column names
  };

  Status CompileInsert(const InsertStmt& ins);
  Status CompileUpdate(const UpdateStmt& upd);
  Status CompileDelete(const DeleteStmt& del);
  Status CompileMerge(const MergeStmt& m);
  Status ExecuteCreateTable(const CreateTableStmt& ct);
  Status ExecuteCreateIndex(const CreateIndexStmt& ci);
  Status ExecuteDropIndex(const DropIndexStmt& di);

  /// Builds the executor pipeline for a SELECT without running it.
  Status PlanSelect(const SelectStmt& sel, ExecRef* out);

  /// FROM + WHERE with join-conjunct extraction; `remaining_where` receives
  /// the non-join part of the predicate (already bound).
  Status PlanFrom(const SelectStmt& sel, ExecRef* out);
  Status PlanFromItem(const FromItem& item, FromPlan* out);

  /// Candidate index probe extracted from sargable conjuncts. An equality
  /// conjunct beats a range conjunct (tighter probe); within each class
  /// the first match wins. Plan-time constants become static bounds;
  /// conjuncts over `:params` / scalar subqueries keep the (normalized)
  /// comparison and the key expression for evaluation at open time.
  struct SargCandidate {
    bool active = false;
    bool equality = false;
    std::string column;
    bool is_static = false;
    int64_t lo = 0, hi = 0;
    CompareOp op = CompareOp::kEq;  // column-on-the-left normalized
    ExprRef key;
  };

  /// Shared body of the sargable-conjunct extraction used by both the
  /// UPDATE planner and SELECT's base-table scan choice: binds a
  /// `col OP expr` / `expr OP col` conjunct against `bind_schema` into the
  /// residual comparison `bound`, and updates `best` when the conjunct is
  /// an index-servable `col OP <row-independent expr>` over `table` (the
  /// column resolved against `resolve_schema`; the column side's qualifier
  /// is honored only when `use_qualifier`).
  Status BindSargShaped(const Expr& c, const Schema& bind_schema,
                        Table* table, const Schema& resolve_schema,
                        bool use_qualifier, SargCandidate* best,
                        ExprRef* bound);

  /// AST expression -> runtime expression against `schema`. Parameters
  /// and scalar subqueries register slots on the plan under compilation.
  Status BindExpr(const Expr& e, const Schema& schema, ExprRef* out);
  /// MERGE expressions: column qualifiers rewritten onto the "t."/"s."
  /// combined namespace.
  Status BindMergeExpr(const Expr& e, const std::string& target_alias,
                       const Schema& target, const std::string& source_alias,
                       const Schema& source, ExprRef* out);
  /// Resolves a (qualifier, column) reference to the schema's column name.
  Status ResolveColumn(const std::string& qualifier, const std::string& column,
                       const Schema& schema, std::string* resolved) const;

  Status FindTable(const std::string& name, Table** out) const;

  Database* db_;
  PreparedPlan* plan_ = nullptr;  // current compile target
};

}  // namespace relgraph::sql
