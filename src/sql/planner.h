#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/exec/executor.h"
#include "src/exec/expression.h"
#include "src/sql/ast.h"

namespace relgraph::sql {

/// Named statement parameters (`:lb`, `:minCost`). The path-finding client
/// re-issues the same statement text each iteration with fresh bindings,
/// exactly like a JDBC PreparedStatement.
using SqlParams = std::map<std::string, relgraph::Value>;

/// Result of one statement: rows+schema for SELECT, affected-row count for
/// DML (the SQLCA reading the paper's Algorithm 1 polls), nothing for DDL.
struct SqlResult {
  int64_t affected = 0;
  relgraph::Schema schema;
  std::vector<relgraph::Tuple> rows;

  /// First column of the first row; NULL Value when the result is empty.
  relgraph::Value Scalar() const {
    if (rows.empty() || rows[0].NumValues() == 0) return relgraph::Value::Null();
    return rows[0].value(0);
  }
};

/// Translates one parsed Statement into engine calls: executor pipelines for
/// SELECT, the DML primitives (InsertFromExecutor / UpdateWhere / DeleteWhere
/// / MergeInto) for writes, catalog calls for DDL.
///
/// Scope rules (deliberately the subset the paper's listings exercise):
///  - FROM lists join left-to-right; an equality conjunct in WHERE that links
///    the accumulated plan to an indexed column of the next base table turns
///    that step into an index nested-loop join (the plan the paper's RDBMS
///    optimizer picks for the E-operator).
///  - Scalar subqueries are evaluated eagerly (uncorrelated only) — the
///    paper's `d2s = (select min(d2s) from TVisited where f = 0)`.
///  - Window: one ROW_NUMBER() OVER (...) per SELECT.
///  - Aggregate queries: every select item is an aggregate call or a
///    GROUP BY column.
class Planner {
 public:
  Planner(Database* db, const SqlParams* params) : db_(db), params_(params) {}

  /// Executes `stmt`, materializing SELECT output into `result`.
  Status Execute(const Statement& stmt, SqlResult* result);

  /// Builds the executor pipeline for a SELECT without running it.
  Status PlanSelect(const SelectStmt& sel, ExecRef* out);

 private:
  struct FromPlan {
    ExecRef plan;            // null for base tables until materialized
    Table* base_table = nullptr;
    std::string alias;       // effective alias (explicit or table name)
    Schema prefixed_schema;  // alias-qualified column names
  };

  Status ExecuteSelect(const SelectStmt& sel, SqlResult* result);
  Status ExecuteInsert(const InsertStmt& ins, SqlResult* result);
  Status ExecuteUpdate(const UpdateStmt& upd, SqlResult* result);
  Status ExecuteDelete(const DeleteStmt& del, SqlResult* result);
  Status ExecuteMerge(const MergeStmt& m, SqlResult* result);
  Status ExecuteCreateTable(const CreateTableStmt& ct);
  Status ExecuteCreateIndex(const CreateIndexStmt& ci);

  /// FROM + WHERE with join-conjunct extraction; `remaining_where` receives
  /// the non-join part of the predicate (already bound).
  Status PlanFrom(const SelectStmt& sel, ExecRef* out);
  Status PlanFromItem(const FromItem& item, FromPlan* out);

  /// Candidate index probe extracted from sargable conjuncts. An equality
  /// conjunct beats a range conjunct (tighter probe); within each class
  /// the first match wins.
  struct SargCandidate {
    std::string column;
    int64_t lo = 0, hi = 0;
    bool have_range = false;
    bool equality = false;
  };

  /// Shared body of the sargable-conjunct extraction used by both the
  /// UPDATE planner and SELECT's base-table scan choice: binds a
  /// `col OP expr` / `expr OP col` conjunct against `bind_schema` into the
  /// residual comparison `bound`, and updates `best` when the conjunct is
  /// an index-servable `col OP <row-independent INT>` over `table` (the
  /// column resolved against `resolve_schema`; the column side's qualifier
  /// is honored only when `use_qualifier`).
  Status BindSargShaped(const Expr& c, const Schema& bind_schema,
                        Table* table, const Schema& resolve_schema,
                        bool use_qualifier, SargCandidate* best,
                        ExprRef* bound);

  /// AST expression -> runtime expression against `schema`.
  Status BindExpr(const Expr& e, const Schema& schema, ExprRef* out);
  /// Resolves a (qualifier, column) reference to the schema's column name.
  Status ResolveColumn(const std::string& qualifier, const std::string& column,
                       const Schema& schema, std::string* resolved) const;

  Status EvalScalarSubquery(const SelectStmt& sub, Value* out);
  /// Evaluates a constant expression (literals/params/arithmetic/subquery).
  Status EvalConstExpr(const Expr& e, Value* out);

  Status FindTable(const std::string& name, Table** out) const;

  Database* db_;
  const SqlParams* params_;
};

}  // namespace relgraph::sql
