#include "src/sql/sql_engine.h"

#include "src/sql/parser.h"

namespace relgraph::sql {

Status SqlEngine::Execute(const std::string& statement, SqlResult* result,
                          const SqlParams& params) {
  std::unique_ptr<Statement> stmt;
  RELGRAPH_RETURN_IF_ERROR(Parser::Parse(statement, &stmt));
  // MERGE is an engine-profile feature (§2.2): PostgreSQL 9.0 rejects it,
  // forcing the client onto the update-then-insert pair — the behaviour the
  // paper's Figure 8(a) measures.
  if (stmt->kind == StmtKind::kMerge && !db_->SupportsMerge()) {
    return Status::NotSupported(
        "this engine profile does not support MERGE (use UPDATE + INSERT)");
  }
  db_->RecordStatement(statement);
  Planner planner(db_, &params);
  SqlResult local;
  RELGRAPH_RETURN_IF_ERROR(planner.Execute(*stmt, &local));
  if (result != nullptr) *result = std::move(local);
  return Status::OK();
}

Status SqlEngine::ExecuteScript(const std::string& script, SqlResult* last,
                                const SqlParams& params) {
  std::vector<std::unique_ptr<Statement>> stmts;
  RELGRAPH_RETURN_IF_ERROR(Parser::ParseScript(script, &stmts));
  SqlResult local;
  for (const auto& stmt : stmts) {
    if (stmt->kind == StmtKind::kMerge && !db_->SupportsMerge()) {
      return Status::NotSupported(
          "this engine profile does not support MERGE (use UPDATE + INSERT)");
    }
    db_->RecordStatement("script statement");
    Planner planner(db_, &params);
    local = SqlResult{};
    RELGRAPH_RETURN_IF_ERROR(planner.Execute(*stmt, &local));
  }
  if (last != nullptr) *last = std::move(local);
  return Status::OK();
}

Status SqlEngine::QueryScalar(const std::string& statement, Value* out,
                              const SqlParams& params) {
  SqlResult r;
  RELGRAPH_RETURN_IF_ERROR(Execute(statement, &r, params));
  *out = r.Scalar();
  return Status::OK();
}

Status SqlEngine::Explain(const std::string& statement, std::string* plan,
                          const SqlParams& params) {
  std::unique_ptr<Statement> stmt;
  RELGRAPH_RETURN_IF_ERROR(Parser::Parse(statement, &stmt));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::NotSupported("EXPLAIN supports SELECT statements");
  }
  Planner planner(db_, &params);
  ExecRef root;
  RELGRAPH_RETURN_IF_ERROR(planner.PlanSelect(*stmt->select, &root));
  plan->clear();
  root->Explain(0, plan);
  return Status::OK();
}

}  // namespace relgraph::sql
