#include "src/sql/sql_engine.h"

#include "src/sql/parser.h"

namespace relgraph::sql {

// ----- PreparedStatement -----------------------------------------------------

Status PreparedStatement::CompileNow() {
  plan_ = PreparedPlan{};
  Planner planner(db_);
  RELGRAPH_RETURN_IF_ERROR(planner.Compile(*ast_, &plan_));
  planned_version_ = db_->catalog()->version();
  db_->RecordPrepare();
  return Status::OK();
}

Status PreparedStatement::EnsureFresh() {
  if (db_->catalog()->version() == planned_version_) return Status::OK();
  return CompileNow();
}

Status PreparedStatement::Execute(const SqlParams& params, SqlResult* result) {
  RELGRAPH_RETURN_IF_ERROR(EnsureFresh());
  // MERGE is an engine-profile feature (§2.2): PostgreSQL 9.0 rejects it,
  // forcing the client onto the update-then-insert pair — the behaviour the
  // paper's Figure 8(a) measures. Rejected before the statement counts.
  if (ast_->kind == StmtKind::kMerge && !db_->SupportsMerge()) {
    return Status::NotSupported(
        "this engine profile does not support MERGE (use UPDATE + INSERT)");
  }
  db_->RecordStatement(sql_);
  RELGRAPH_RETURN_IF_ERROR(BindPreparedPlan(&plan_, params));
  SqlResult local;
  RELGRAPH_RETURN_IF_ERROR(ExecutePreparedPlan(db_, *ast_, &plan_, &local));
  if (result != nullptr) *result = std::move(local);
  return Status::OK();
}

Status PreparedStatement::QueryScalar(const SqlParams& params, Value* out) {
  SqlResult r;
  RELGRAPH_RETURN_IF_ERROR(Execute(params, &r));
  *out = r.Scalar();
  return Status::OK();
}

Status PreparedStatement::ExplainBound(const SqlParams& params,
                                       std::string* plan) {
  RELGRAPH_RETURN_IF_ERROR(EnsureFresh());
  if (ast_->kind != StmtKind::kSelect) {
    return Status::NotSupported("EXPLAIN supports SELECT statements");
  }
  RELGRAPH_RETURN_IF_ERROR(BindPreparedPlan(&plan_, params));
  plan->clear();
  plan_.root->Explain(0, plan);
  return Status::OK();
}

// ----- SqlEngine -------------------------------------------------------------

Status SqlEngine::Prepare(const std::string& statement,
                          std::shared_ptr<PreparedStatement>* out) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_capacity_ > 0) {
      auto it = cache_.find(statement);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        db_->RecordPlanCacheHit();
        *out = it->second.stmt;
        return Status::OK();
      }
    }
  }
  // Parse + compile outside the lock (the slow path); a racing thread
  // preparing the same text at worst compiles twice and the second insert
  // replaces the first — both handles stay valid (shared ownership).
  std::unique_ptr<Statement> ast;
  RELGRAPH_RETURN_IF_ERROR(Parser::Parse(statement, &ast));
  std::shared_ptr<PreparedStatement> ps(
      new PreparedStatement(db_, statement, std::move(ast)));
  RELGRAPH_RETURN_IF_ERROR(ps->CompileNow());
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_capacity_ > 0) {
      auto it = cache_.find(statement);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        it->second.stmt = ps;
      } else {
        lru_.push_front(statement);
        cache_[statement] = {ps, lru_.begin()};
      }
      while (cache_.size() > cache_capacity_) {
        cache_.erase(lru_.back());
        lru_.pop_back();
      }
    }
  }
  *out = std::move(ps);
  return Status::OK();
}

Status SqlEngine::Execute(const std::string& statement, SqlResult* result,
                          const SqlParams& params) {
  std::shared_ptr<PreparedStatement> ps;
  RELGRAPH_RETURN_IF_ERROR(Prepare(statement, &ps));
  return ps->Execute(params, result);
}

Status SqlEngine::ExecuteScript(const std::string& script, SqlResult* last,
                                const SqlParams& params) {
  std::vector<std::unique_ptr<Statement>> stmts;
  RELGRAPH_RETURN_IF_ERROR(Parser::ParseScript(script, &stmts));
  SqlResult local;
  for (auto& stmt : stmts) {
    // Compile right before running (earlier statements may have created
    // the tables this one needs) and bind the caller's parameters into
    // *every* statement — each statement requires exactly the names it
    // references, extra bindings pass through untouched.
    std::shared_ptr<PreparedStatement> ps(
        new PreparedStatement(db_, "script statement", std::move(stmt)));
    RELGRAPH_RETURN_IF_ERROR(ps->CompileNow());
    local = SqlResult{};
    RELGRAPH_RETURN_IF_ERROR(ps->Execute(params, &local));
  }
  if (last != nullptr) *last = std::move(local);
  return Status::OK();
}

Status SqlEngine::QueryScalar(const std::string& statement, Value* out,
                              const SqlParams& params) {
  SqlResult r;
  RELGRAPH_RETURN_IF_ERROR(Execute(statement, &r, params));
  *out = r.Scalar();
  return Status::OK();
}

Status SqlEngine::Explain(const std::string& statement, std::string* plan,
                          const SqlParams& params) {
  std::shared_ptr<PreparedStatement> ps;
  RELGRAPH_RETURN_IF_ERROR(Prepare(statement, &ps));
  return ps->ExplainBound(params, plan);
}

void SqlEngine::SetPlanCacheCapacity(size_t n) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_capacity_ = n;
  while (cache_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace relgraph::sql
