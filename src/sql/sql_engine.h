#pragma once

#include <string>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/sql/planner.h"

namespace relgraph::sql {

/// Text-in, rows-out entry point: the engine's equivalent of a JDBC
/// connection. Each Execute() call parses, plans, and runs one SQL
/// statement, and counts as one statement against Database::stats() —
/// which is exactly how the paper's client-side algorithms account for
/// their "number of SQLs issued".
///
///   SqlEngine conn(db);
///   SqlResult r;
///   conn.Execute("select top 1 nid from TVisited where f = 0 and "
///                "d2s = (select min(d2s) from TVisited where f = 0)", &r);
///
/// Statements may carry named parameters (`:mid`, `:lb`, `:minCost`) bound
/// per call, like a PreparedStatement re-executed with fresh values.
class SqlEngine {
 public:
  explicit SqlEngine(Database* db) : db_(db) {}

  Database* db() { return db_; }

  /// Parses and executes one statement. `result` may be nullptr when the
  /// caller only needs success/failure (DDL).
  Status Execute(const std::string& statement, SqlResult* result = nullptr,
                 const SqlParams& params = {});

  /// Executes a semicolon-separated script; `last` (optional) receives the
  /// result of the final statement.
  Status ExecuteScript(const std::string& script, SqlResult* last = nullptr,
                       const SqlParams& params = {});

  /// Runs a single-value query (e.g. `select min(d2s) from ...`). An empty
  /// result yields a NULL Value.
  Status QueryScalar(const std::string& statement, Value* out,
                     const SqlParams& params = {});

  /// EXPLAIN: plans a SELECT without running it and renders the physical
  /// operator tree (one operator per line, children indented) — shows the
  /// index-nested-loop picks and pushed-down filters the paper attributes
  /// to the RDBMS optimizer. Scalar subqueries are still evaluated during
  /// planning (they parameterize the plan).
  Status Explain(const std::string& statement, std::string* plan,
                 const SqlParams& params = {});

 private:
  Database* db_;
};

}  // namespace relgraph::sql
