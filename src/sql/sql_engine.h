#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/db/database.h"
#include "src/sql/planner.h"

namespace relgraph::sql {

/// One prepared statement: SQL text parsed once, compiled once into a
/// parameterized physical plan, then re-executed any number of times with
/// fresh bindings — the JDBC PreparedStatement contract the paper's
/// client assumes:
///
///   std::shared_ptr<PreparedStatement> pick;
///   conn.Prepare("select top 1 nid from TVisited where f = 0 and "
///                "d2s = (select min(d2s) from TVisited where f = 0)", &pick);
///   for (...) pick->Execute({}, &r);     // bind + run; zero parse/plan
///
/// Each Execute() rebinds `:params`, re-evaluates scalar subqueries into
/// their slots (so `min(d2s)` tracks the data), and re-opens the plan.
/// The handle watches the catalog version: CREATE/DROP INDEX or table DDL
/// re-plans it transparently on the next use (counted in
/// DatabaseStats::prepares), so a handle held across schema changes picks
/// up the new access paths — EXPLAIN on the same handle flips from
/// SeqScan to IndexRangeScan after `create index`.
class PreparedStatement {
 public:
  /// Rebinds and runs. Counts one statement against Database::stats();
  /// `result` may be nullptr when the caller only needs success/failure.
  Status Execute(const SqlParams& params = {}, SqlResult* result = nullptr);
  Status Execute(SqlResult* result) { return Execute(SqlParams{}, result); }

  /// Single-value form (e.g. `select min(d2s) ...`); empty result = NULL.
  Status QueryScalar(const SqlParams& params, Value* out);

  /// Renders the physical plan under the given bindings without running
  /// it (SELECT only). Runtime index bounds show the values the bindings
  /// imply; scalar subqueries are evaluated to show their current values
  /// (they parameterize the plan, as in ad-hoc EXPLAIN).
  Status ExplainBound(const SqlParams& params, std::string* plan);

  const std::string& sql() const { return sql_; }

 private:
  friend class SqlEngine;
  PreparedStatement(Database* db, std::string sql,
                    std::unique_ptr<Statement> ast)
      : db_(db), sql_(std::move(sql)), ast_(std::move(ast)) {}

  /// (Re)compiles the AST into plan_; counts one prepare.
  Status CompileNow();
  /// Re-plans when the catalog version moved since compilation.
  Status EnsureFresh();

  Database* db_;
  std::string sql_;
  std::unique_ptr<Statement> ast_;  // parse once
  PreparedPlan plan_;
  uint64_t planned_version_ = 0;
};

/// Text-in, rows-out entry point: the engine's equivalent of a JDBC
/// connection. Execute() parses, plans, and runs one SQL statement, and
/// counts as one statement against Database::stats() — which is exactly
/// how the paper's client-side algorithms account for their "number of
/// SQLs issued".
///
///   SqlEngine conn(db);
///   SqlResult r;
///   conn.Execute("select top 1 nid from TVisited where f = 0 and "
///                "d2s = (select min(d2s) from TVisited where f = 0)", &r);
///
/// Statements may carry named parameters (`:mid`, `:lb`, `:minCost`) bound
/// per call. Under the hood every Execute() goes through Prepare(): an LRU
/// plan cache keyed by SQL text hands repeated statements their compiled
/// plan back (DatabaseStats::plan_cache_hits), so even text-only callers
/// pay parse+plan once per distinct statement; explicit Prepare() skips
/// the text lookup entirely. DDL invalidates via the catalog version.
///
/// The text-keyed cache itself is mutex-guarded, so concurrent Prepare()
/// calls on a shared engine cannot corrupt it. That does NOT make
/// concurrent *execution* safe: Execute() of the same text from two
/// threads hands both the same cached handle, and a PreparedStatement
/// must never run on two threads at once (binding mutates its plan).
/// Concurrent executors need their own connection — exactly what the
/// distributed shard pool does, one engine + handles per pooled
/// connection; the cache lock is a guard rail, not a session model.
class SqlEngine {
 public:
  explicit SqlEngine(Database* db) : db_(db) {}

  Database* db() { return db_; }

  /// Parses + compiles `statement` once (or returns the cached handle for
  /// this exact text). The handle stays valid after eviction — the cache
  /// holds shared ownership.
  Status Prepare(const std::string& statement,
                 std::shared_ptr<PreparedStatement>* out);

  /// Prepare (cached) + bind + run. `result` may be nullptr (DDL).
  Status Execute(const std::string& statement, SqlResult* result = nullptr,
                 const SqlParams& params = {});

  /// Executes a semicolon-separated script; `last` (optional) receives the
  /// result of the final statement. Named parameters bind in every
  /// statement of the script.
  Status ExecuteScript(const std::string& script, SqlResult* last = nullptr,
                       const SqlParams& params = {});

  /// Runs a single-value query (e.g. `select min(d2s) from ...`). An empty
  /// result yields a NULL Value.
  Status QueryScalar(const std::string& statement, Value* out,
                     const SqlParams& params = {});

  /// EXPLAIN: plans a SELECT without running it and renders the physical
  /// operator tree (one operator per line, children indented) — shows the
  /// index-nested-loop picks and pushed-down filters the paper attributes
  /// to the RDBMS optimizer. Equivalent to Prepare + ExplainBound(params).
  Status Explain(const std::string& statement, std::string* plan,
                 const SqlParams& params = {});

  /// Plan-cache capacity in distinct statements. 0 disables caching, so
  /// every Execute() re-parses and re-plans — the paper's literal
  /// text-interface regime (bench_sql_client's "text" series uses this to
  /// measure exactly what prepared execution removes).
  void SetPlanCacheCapacity(size_t n);
  size_t plan_cache_size() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
  }

 private:
  Database* db_;
  mutable std::mutex cache_mu_;  // guards cache_, lru_, cache_capacity_
  size_t cache_capacity_ = 128;
  std::list<std::string> lru_;  // front = most recently used
  struct CacheEntry {
    std::shared_ptr<PreparedStatement> stmt;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, CacheEntry> cache_;
};

}  // namespace relgraph::sql
