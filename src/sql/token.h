#pragma once

#include <cstdint>
#include <string>

namespace relgraph::sql {

/// Lexical token kinds for the SQL dialect of the paper's listings.
/// Keywords are folded into kKeyword with the upper-cased text in `text`;
/// the parser matches on that text, which keeps the enum small and makes
/// adding keywords a parser-only change.
enum class TokenKind {
  kEnd,         // end of input
  kIdentifier,  // table / column / alias names (case-preserving)
  kKeyword,     // SELECT, FROM, MERGE, ... (text upper-cased)
  kInteger,     // 42
  kFloat,       // 3.5
  kString,      // 'text' (SQL single quotes, '' escape)
  kParameter,   // :name

  kComma,       // ,
  kDot,         // .
  kLParen,      // (
  kRParen,      // )
  kStar,        // *
  kPlus,        // +
  kMinus,       // -
  kSlash,       // /
  kEq,          // =
  kNe,          // <> or !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kSemicolon,   // ;
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Identifier spelling (original case), keyword (upper case), literal
  /// spelling, or parameter name (without the colon).
  std::string text;
  int64_t int_value = 0;    // kInteger
  double float_value = 0;   // kFloat
  size_t offset = 0;        // byte offset into the statement, for errors

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

}  // namespace relgraph::sql
