#include "src/storage/buffer_pool.h"

#include <cstring>

namespace relgraph {

BufferPool::BufferPool(size_t pool_size, DiskManager* disk,
                       bool concurrent_readers)
    : concurrent_readers_(concurrent_readers),
      disk_(disk),
      replacer_(pool_size) {
  frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; i++) {
    frames_.push_back(std::make_unique<Page>());
    free_list_.push_back(static_cast<frame_id_t>(i));
  }
  page_table_.reserve(pool_size * 2);
}

Status BufferPool::GetFreeFrame(frame_id_t* frame_id) {
  if (!free_list_.empty()) {
    *frame_id = free_list_.back();
    free_list_.pop_back();
    return Status::OK();
  }
  if (!replacer_.Victim(frame_id)) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  Page* victim = frames_[*frame_id].get();
  stats_.evictions++;
  if (victim->is_dirty_) {
    stats_.dirty_writebacks++;
    RELGRAPH_RETURN_IF_ERROR(disk_->WritePage(victim->page_id_, victim->data_));
    victim->is_dirty_ = false;
  }
  page_table_.erase(victim->page_id_);
  victim->page_id_ = kInvalidPageId;
  return Status::OK();
}

Status BufferPool::FetchPage(page_id_t page_id, Page** out) {
  OptionalLock lock(this);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    stats_.hits++;
    Page* page = frames_[it->second].get();
    if (page->pin_count_ == 0) replacer_.Pin(it->second);
    page->pin_count_++;
    *out = page;
    return Status::OK();
  }
  stats_.misses++;
  frame_id_t frame;
  RELGRAPH_RETURN_IF_ERROR(GetFreeFrame(&frame));
  Page* page = frames_[frame].get();
  Status st = disk_->ReadPage(page_id, page->data_);
  if (!st.ok()) {
    free_list_.push_back(frame);
    return st;
  }
  page->page_id_ = page_id;
  page->pin_count_ = 1;
  page->is_dirty_ = false;
  page_table_[page_id] = frame;
  *out = page;
  return Status::OK();
}

Status BufferPool::NewPage(page_id_t* page_id, Page** out) {
  OptionalLock lock(this);
  frame_id_t frame;
  RELGRAPH_RETURN_IF_ERROR(GetFreeFrame(&frame));
  *page_id = disk_->AllocatePage();
  Page* page = frames_[frame].get();
  std::memset(page->data_, 0, kPageSize);
  page->page_id_ = *page_id;
  page->pin_count_ = 1;
  page->is_dirty_ = true;  // a new page must reach disk at least once
  page_table_[*page_id] = frame;
  *out = page;
  return Status::OK();
}

Status BufferPool::UnpinPage(page_id_t page_id, bool is_dirty) {
  OptionalLock lock(this);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page " +
                            std::to_string(page_id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count_ <= 0) {
    return Status::Internal("unpin of unpinned page " +
                            std::to_string(page_id));
  }
  page->is_dirty_ = page->is_dirty_ || is_dirty;
  page->pin_count_--;
  if (page->pin_count_ == 0) replacer_.Unpin(it->second);
  return Status::OK();
}

Status BufferPool::FlushPage(page_id_t page_id) {
  OptionalLock lock(this);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::OK();
  Page* page = frames_[it->second].get();
  if (page->is_dirty_) {
    RELGRAPH_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data_));
    page->is_dirty_ = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  OptionalLock lock(this);
  for (const auto& [page_id, frame] : page_table_) {
    Page* page = frames_[frame].get();
    if (page->is_dirty_) {
      RELGRAPH_RETURN_IF_ERROR(disk_->WritePage(page_id, page->data_));
      page->is_dirty_ = false;
    }
  }
  return Status::OK();
}

size_t BufferPool::PinnedFrames() const {
  OptionalLock lock(this);
  size_t n = 0;
  for (const auto& f : frames_) {
    if (f->pin_count() > 0) n++;
  }
  return n;
}

}  // namespace relgraph
