#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/config.h"
#include "src/common/status.h"
#include "src/storage/disk_manager.h"
#include "src/storage/lru_replacer.h"

namespace relgraph {

/// In-memory image of one disk page plus its bookkeeping.
class Page {
 public:
  char* data() { return data_; }
  const char* data() const { return data_; }
  page_id_t page_id() const { return page_id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return is_dirty_; }

 private:
  friend class BufferPool;
  char data_[kPageSize] = {0};
  page_id_t page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool is_dirty_ = false;
};

struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;

  double HitRate() const {
    int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Fixed-capacity page cache between the access methods and the disk
/// manager. This is the component the paper's buffer-size experiments
/// (Figures 8(b), 9(g)) vary: the pool size in pages is the analogue of the
/// RDBMS buffer setting.
///
/// Usage protocol (RocksDB-block-cache-like pin discipline):
///   Page* p; pool.FetchPage(id, &p);  ... use p->data() ...
///   pool.UnpinPage(id, /*dirty=*/true_if_modified);
/// Pinned pages are never evicted; fetching when every frame is pinned
/// returns ResourceExhausted.
class BufferPool {
 public:
  BufferPool(size_t pool_size, DiskManager* disk);

  /// Pins page `page_id`, reading it from disk on a miss.
  Status FetchPage(page_id_t page_id, Page** out);

  /// Allocates a brand-new page on disk and pins it.
  Status NewPage(page_id_t* page_id, Page** out);

  /// Drops one pin; marks the frame dirty if the caller modified it.
  Status UnpinPage(page_id_t page_id, bool is_dirty);

  /// Writes a page back to disk if present and dirty.
  Status FlushPage(page_id_t page_id);

  /// Writes back every dirty page.
  Status FlushAll();

  size_t pool_size() const { return frames_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }
  DiskManager* disk() { return disk_; }

  /// Number of currently pinned frames (test/diagnostic hook).
  size_t PinnedFrames() const;

 private:
  Status GetFreeFrame(frame_id_t* frame_id);

  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::vector<frame_id_t> free_list_;
  std::unordered_map<page_id_t, frame_id_t> page_table_;
  LruReplacer replacer_;
  BufferPoolStats stats_;
};

/// RAII pin guard: fetches on construction, unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, page_id_t page_id) : pool_(pool) {
    status_ = pool->FetchPage(page_id, &page_);
    if (!status_.ok()) page_ = nullptr;
  }
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      page_ = other.page_;
      dirty_ = other.dirty_;
      status_ = other.status_;
      other.page_ = nullptr;
      other.pool_ = nullptr;
    }
    return *this;
  }

  bool ok() const { return page_ != nullptr; }
  const Status& status() const { return status_; }
  Page* page() { return page_; }
  char* data() { return page_->data(); }
  const char* data() const { return page_->data(); }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (page_ != nullptr && pool_ != nullptr) {
      pool_->UnpinPage(page_->page_id(), dirty_);
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
  Status status_;
};

}  // namespace relgraph
